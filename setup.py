"""Setuptools entry point.

``pip install -e .`` requires the ``wheel`` package (PEP 660 editable
installs build a wheel); on fully offline machines without ``wheel``,
``python setup.py develop`` achieves the same editable install.
"""

from setuptools import setup

setup()
