#!/usr/bin/env python
"""A/B harness for the distilled rewrite-rule engine.

Builds a seed family of synthesis windows (element-wise ops against a
spread of constants), synthesizes them cold into a persistent cache,
distills the cache into a verified rulebook, then times a *perturbed*
family (unseen constants, doubled lane counts — windows the exact-key
cache has never seen) through three arms:

* ``fresh``    — cold CEGIS per window (ground truth programs);
* ``warm``     — the seed cache attached, no rulebook (exact-key warm:
  every perturbed window still misses and re-synthesizes);
* ``rulebook`` — the seed cache plus the distilled rulebook (pattern
  match + hole instantiation + concrete spot-check, no solver).

Gates (exit 1 on violation):

* the distilled rulebook is non-empty;
* a deliberately unsound injected rule is rejected by the verifier;
* every rule-served program is bit-identical (structurally, via
  ``program_signature``) to the fresh-synthesis program for the same
  window — zero mismatches tolerated;
* the rulebook arm records ``rule_matches > 0`` and a lower wall time
  than the exact-key-warm arm.

Writes ``BENCH_rules.json``.

Usage:
    python scripts/bench_rules.py [--smoke] [--isa x86] [--timeout 25]
        [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.autollvm import build_dictionary  # noqa: E402
from repro.halide import ir as hir  # noqa: E402
from repro.perf import global_counters, snapshot, snapshot_delta  # noqa: E402
from repro.service.store import PersistentCache  # noqa: E402
from repro.synthesis import (  # noqa: E402
    CegisOptions,
    GrammarOptions,
    MemoCache,
    SynthesisFailure,
    build_grammar,
    dictionary_fingerprint,
    synthesize,
)
from repro.synthesis.rules import (  # noqa: E402
    Rule,
    distill_rules,
    load_rulebook,
    program_signature,
    verify_rule,
)


def seed_family(isa: str, smoke: bool) -> list[hir.HExpr]:
    """Windows synthesized cold to populate the cache being distilled."""
    ops = ("add", "mul") if smoke else ("add", "mul", "max_s", "min_s")
    consts = (3, 5, 9) if smoke else (3, 5, 9, 17)
    return [
        hir.HBin(op, hir.HLoad("a", 8, 16), hir.HConst(c, 8, 16))
        for op in ops
        for c in consts
    ]


def perturbed_family(isa: str, smoke: bool) -> list[hir.HExpr]:
    """Near-miss windows: same shapes, unseen constants and lane counts."""
    ops = ("add", "mul") if smoke else ("add", "mul", "max_s", "min_s")
    windows = []
    for op in ops:
        for c in ((11, 21) if smoke else (11, 21, 63, -7)):
            windows.append(
                hir.HBin(op, hir.HLoad("a", 8, 16), hir.HConst(c, 8, 16))
            )
        # Doubled lanes: exercises equivalence-class re-binding
        # (e.g. _mm_add_epi16 -> _mm256_add_epi16).
        windows.append(
            hir.HBin(op, hir.HLoad("a", 16, 16), hir.HConst(13, 16, 16))
        )
    return windows


def synth_arm(
    windows: list[hir.HExpr],
    isa: str,
    dictionary,
    cache,
    options: CegisOptions,
    rules=None,
) -> tuple[float, list[str | None], dict]:
    """Compile every window through one arm; returns (wall, signatures,
    perf-delta)."""
    before = snapshot()
    start = time.monotonic()
    signatures: list[str | None] = []
    for window in windows:
        grammar = build_grammar(window, isa, dictionary, GrammarOptions())
        try:
            result = synthesize(
                window, grammar, options, cache,
                dictionary=dictionary, rules=rules,
            )
            signatures.append(program_signature(result.program))
        except SynthesisFailure:
            signatures.append(None)
    wall = time.monotonic() - start
    delta = {k: v for k, v in snapshot_delta(before).items() if v}
    return wall, signatures, delta


def unsound_rule_rejected(book, dictionary) -> bool:
    """Inject a deliberately wrong rule and confirm the verifier kills it.

    The tampered rule reuses a verified rule's pattern but serves the
    input unchanged (an identity program) — wrong for every non-zero
    constant, so any sound verifier must reject it.
    """
    if not book.rules:
        return False
    victim = book.rules[0]
    template = victim.template
    # Walk to any SInput leaf to use as the bogus "program".
    from repro.synthesis.program import SInput

    leaf = next(
        (n for n in template.walk() if isinstance(n, SInput)), None
    )
    if leaf is None:
        return False
    bogus = Rule(
        key=victim.key,
        isa=victim.isa,
        slots=victim.slots,
        holes=victim.holes,
        template=leaf,
        cost=0.0,
    )
    ok, reason = verify_rule(bogus)
    return not ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small family for CI")
    parser.add_argument("--isa", default="x86")
    parser.add_argument("--timeout", type=float, default=25.0,
                        help="per-window CEGIS budget in seconds")
    parser.add_argument("--output", default="BENCH_rules.json")
    args = parser.parse_args()

    isa = args.isa
    dictionary = build_dictionary((isa,))
    fingerprint = dictionary_fingerprint(dictionary)
    options = CegisOptions(timeout_seconds=args.timeout)
    seeds = seed_family(isa, args.smoke)
    perturbed = perturbed_family(isa, args.smoke)
    report: dict = {
        "isa": isa,
        "smoke": args.smoke,
        "seed_windows": len(seeds),
        "perturbed_windows": len(perturbed),
    }
    gates: dict[str, bool] = {}

    with tempfile.TemporaryDirectory() as tmp:
        # Phase 1: cold synthesis of the seed family into the cache.
        seed_root = str(pathlib.Path(tmp) / "seed")
        cache = PersistentCache(seed_root, isa, dictionary)
        cold_wall, cold_sigs, _ = synth_arm(
            seeds, isa, dictionary, cache, options
        )
        report["cold"] = {
            "wall_seconds": round(cold_wall, 3),
            "synthesized": sum(1 for s in cold_sigs if s),
        }

        # Phase 2: distill + verify.
        start = time.monotonic()
        book, distill_report = distill_rules(
            cache._entries.items(), isa, fingerprint=fingerprint, seed=7
        )
        book.save(cache.dir)
        report["distill"] = {
            "wall_seconds": round(time.monotonic() - start, 3),
            **distill_report.to_dict(),
            "book": book.stats(),
        }
        gates["rulebook_nonempty"] = len(book) > 0

        # Phase 3: the verifier must reject an injected unsound rule.
        gates["unsound_rule_rejected"] = unsound_rule_rejected(
            book, dictionary
        )

        # Phase 4: arms over the perturbed family.  Each warm arm gets
        # an isolated copy of the seed cache so one arm's write-through
        # can never turn another arm's misses into exact-key hits.
        warm_root = str(pathlib.Path(tmp) / "warm")
        rule_root = str(pathlib.Path(tmp) / "rule")
        shutil.copytree(seed_root, warm_root)
        shutil.copytree(seed_root, rule_root)

        fresh_wall, fresh_sigs, _ = synth_arm(
            perturbed, isa, dictionary, MemoCache(), options
        )
        warm_wall, warm_sigs, _ = synth_arm(
            perturbed, isa, dictionary,
            PersistentCache(warm_root, isa, dictionary), options,
        )
        rule_cache = PersistentCache(rule_root, isa, dictionary)
        loaded = load_rulebook(
            rule_cache.dir, dictionary, expect_fingerprint=fingerprint,
            use_cache=False,
        )
        matches_before = global_counters().rule_matches
        rule_wall, rule_sigs, rule_perf = synth_arm(
            perturbed, isa, dictionary, rule_cache, options, rules=loaded,
        )
        rule_matches = global_counters().rule_matches - matches_before

        mismatches = [
            str(perturbed[i])
            for i in range(len(perturbed))
            if rule_sigs[i] is not None
            and fresh_sigs[i] is not None
            and rule_sigs[i] != fresh_sigs[i]
        ]
        report["arms"] = {
            "fresh": {"wall_seconds": round(fresh_wall, 3)},
            "warm": {"wall_seconds": round(warm_wall, 3)},
            "rulebook": {
                "wall_seconds": round(rule_wall, 3),
                "rule_matches": rule_matches,
                "rule_misses": rule_perf.get("rule_misses", 0),
            },
        }
        report["speedup_vs_warm"] = (
            round(warm_wall / rule_wall, 2) if rule_wall > 0 else None
        )
        report["identity_mismatches"] = mismatches
        gates["rule_matches_nonzero"] = rule_matches > 0
        gates["bit_identical"] = not mismatches
        gates["rulebook_beats_exact_warm"] = rule_wall < warm_wall

    report["gates"] = gates
    ok = all(gates.values())
    report["ok"] = ok
    pathlib.Path(args.output).write_text(json.dumps(report, indent=2))
    print(json.dumps(report, indent=2))
    print("PASS" if ok else "FAIL", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
