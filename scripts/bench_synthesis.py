#!/usr/bin/env python
"""Benchmark the synthesis hot path and audit its determinism.

Runs each suite benchmark through the Hydride compiler twice — once on
the optimised path (packed batched evaluation, cached argument pools,
incremental SAT) and once with ``CegisOptions.legacy_eval=True``, which
restores the pre-optimisation enumeration loop as the baseline — then
writes ``BENCH_synthesis.json`` with both wall times, the speedup, the
per-phase timer breakdown (enumeration / dedup / blast / sat / verify)
and the hot-path counter deltas for each arm.

The two arms must synthesize *identical* programs for the fixed CEGIS
seed; a mismatch is a determinism bug and fails the run.  Slow results
do not fail the run — CI uses this in a "crash only" smoke job.

Usage:
    python scripts/bench_synthesis.py [--smoke] [--isa x86]
        [--suite name,name,...] [--timeout 30] [--output PATH]
        [--skip-baseline]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.autollvm import build_dictionary  # noqa: E402
from repro.backend.hydride import HydrideCompiler  # noqa: E402
from repro.perf import derived_metrics, snapshot, snapshot_delta  # noqa: E402
from repro.synthesis import CegisOptions, MemoCache  # noqa: E402
from repro.workloads.registry import benchmark_named  # noqa: E402

# Fast benchmarks exercising swizzles, saturating arithmetic and widening
# multiplies — enough signal for CI without a long wall-clock bill.
SMOKE_SUITE = ("dilate3x3", "average_pool")
FULL_SUITE = ("dilate3x3", "average_pool", "max_pool", "add", "mul")


def run_case(
    name: str,
    isa: str,
    dictionary,
    timeout: float,
    legacy: bool,
    absint: bool = False,
) -> dict:
    """Compile one benchmark end-to-end; returns timings + programs."""
    benchmark = benchmark_named(name)
    kernels = benchmark.lower(isa)
    options = CegisOptions(
        timeout_seconds=timeout, legacy_eval=legacy, absint_prune=absint
    )
    compiler = HydrideCompiler(
        dictionary=dictionary, cache=MemoCache(), cegis=options
    )
    before = snapshot()
    start = time.monotonic()
    programs: list[str] = []
    for kernel in kernels:
        compiled = compiler.compile(kernel, isa)
        programs.extend(p.describe() for p in compiled.programs)
    seconds = time.monotonic() - start
    counters = snapshot_delta(before)
    return {
        "seconds": round(seconds, 3),
        "programs": programs,
        "counters": counters,
        "derived": {
            key: round(value, 4)
            for key, value in derived_metrics(counters).items()
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small fast suite")
    parser.add_argument("--isa", default="x86")
    parser.add_argument("--suite", default="", help="comma-separated benchmark names")
    # Generous per-window budget: if the wall-clock limit binds, the two
    # arms truncate their searches at different points and the
    # determinism audit reports a spurious mismatch.
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--output", default="BENCH_synthesis.json")
    parser.add_argument(
        "--skip-baseline",
        action="store_true",
        help="only run the optimised path (no legacy arm, no speedup)",
    )
    parser.add_argument(
        "--skip-absint",
        action="store_true",
        help="skip the absint_prune determinism arm",
    )
    args = parser.parse_args(argv)

    if args.suite:
        suite = tuple(args.suite.split(","))
    else:
        suite = SMOKE_SUITE if args.smoke else FULL_SUITE

    dictionary = build_dictionary(("x86", "hvx", "arm"))
    report: dict = {
        "suite": list(suite),
        "isa": args.isa,
        "timeout_seconds": args.timeout,
        "cases": [],
    }
    total_new = 0.0
    total_baseline = 0.0
    total_absint_pruned = 0
    mismatches: list[str] = []

    for name in suite:
        print(f"[bench] {name} ({args.isa}) optimised ...", flush=True)
        new = run_case(name, args.isa, dictionary, args.timeout, legacy=False)
        case = {
            "benchmark": name,
            "seconds_optimised": new["seconds"],
            "counters_optimised": new["counters"],
            "derived_optimised": new["derived"],
            "programs": new["programs"],
        }
        total_new += new["seconds"]
        if not args.skip_baseline:
            print(f"[bench] {name} ({args.isa}) baseline ...", flush=True)
            old = run_case(name, args.isa, dictionary, args.timeout, legacy=True)
            total_baseline += old["seconds"]
            identical = old["programs"] == new["programs"]
            if not identical:
                mismatches.append(name)
            case.update(
                seconds_baseline=old["seconds"],
                counters_baseline=old["counters"],
                speedup=round(old["seconds"] / max(new["seconds"], 1e-9), 2),
                identical_programs=identical,
            )
            print(
                f"[bench] {name}: baseline={old['seconds']:.2f}s "
                f"optimised={new['seconds']:.2f}s "
                f"speedup={case['speedup']:.2f}x identical={identical}",
                flush=True,
            )
        else:
            print(f"[bench] {name}: optimised={new['seconds']:.2f}s", flush=True)
        if not args.skip_absint:
            # Third arm: abstract-interpretation pruning must change
            # nothing about the synthesized programs — only skip work.
            print(f"[bench] {name} ({args.isa}) absint ...", flush=True)
            pruned = run_case(
                name, args.isa, dictionary, args.timeout, legacy=False,
                absint=True,
            )
            identical = pruned["programs"] == new["programs"]
            if not identical:
                mismatches.append(f"{name} (absint)")
            case.update(
                seconds_absint=pruned["seconds"],
                counters_absint=pruned["counters"],
                absint_identical_programs=identical,
                absint_pruned=pruned["counters"].get("absint_pruned", 0),
            )
            total_absint_pruned += pruned["counters"].get("absint_pruned", 0)
            print(
                f"[bench] {name}: absint={pruned['seconds']:.2f}s "
                f"pruned={case['absint_pruned']} identical={identical}",
                flush=True,
            )
        report["cases"].append(case)

    report["total_seconds_optimised"] = round(total_new, 3)
    if not args.skip_baseline:
        report["total_seconds_baseline"] = round(total_baseline, 3)
        report["speedup"] = round(total_baseline / max(total_new, 1e-9), 2)
        report["identical_programs"] = not mismatches
        print(
            f"[bench] total: baseline={total_baseline:.2f}s "
            f"optimised={total_new:.2f}s speedup={report['speedup']:.2f}x"
        )

    if not args.skip_absint:
        report["absint_pruned_total"] = total_absint_pruned

    out = pathlib.Path(args.output)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {out}")

    if not args.skip_absint and total_absint_pruned == 0:
        print(
            "[bench] ABSINT FAILURE: absint_prune arm pruned nothing — "
            "the abstraction lost all precision",
            file=sys.stderr,
        )
        return 1
    if mismatches:
        print(
            f"[bench] DETERMINISM FAILURE: baseline and optimised paths "
            f"disagree on {', '.join(mismatches)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
