#!/usr/bin/env python
"""Benchmark the synthesis hot path and audit its determinism.

Runs each suite benchmark through the Hydride compiler on up to four
arms — the optimised path (packed batched evaluation, cached argument
pools, incremental SAT), the ``legacy_eval`` baseline (the
pre-optimisation enumeration loop), the ``absint_prune`` arm, and
(with ``--arms N``) the portfolio racer — then writes
``BENCH_synthesis.json`` with per-arm wall times, speedups, per-phase
timer breakdowns and hot-path counter deltas.

All arms must synthesize *identical* programs for the fixed CEGIS seed;
a mismatch is a determinism bug and fails the run.  The portfolio arm
additionally must finish within ``--max-portfolio-slowdown`` of the
inline optimised arm (on boxes without spare cores the racer falls back
inline, which trivially passes).

Counter hygiene: the smoke suite is verified by structural and
probabilistic checks alone, so its runs issue *zero* SAT queries.  For
such arms the sat-family counters (``sat_conflicts``,
``learned_clauses_retained``, ``incremental_queries``, ...) are omitted
from the report and replaced with an explanatory ``"sat": "n/a"`` note
instead of being recorded as misleading zeros.

Two additional phases cover what the compile suite cannot:

* a CDCL solver microbench (random 3-SAT) compares the modern core
  (VSIDS decay, Luby restarts, LBD clause-DB reduction) against
  ``SolverConfig.legacy()`` on SAT-heavy instances — recorded, not
  gated;
* a repeated-family reuse phase compiles the suite twice against one
  shared cross-window :class:`ReuseStore` (fresh result caches each
  run) and fails unless the warm run shows nonzero counterexample-suite
  hits.

Usage:
    python scripts/bench_synthesis.py [--smoke | --quick] [--isa x86]
        [--suite name,name,...] [--timeout 120] [--output PATH]
        [--arms N] [--max-portfolio-slowdown 1.1]
        [--skip-baseline] [--skip-absint] [--skip-solver-bench]
        [--skip-reuse]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.autollvm import build_dictionary  # noqa: E402
from repro.backend.hydride import HydrideCompiler  # noqa: E402
from repro.perf import derived_metrics, snapshot, snapshot_delta  # noqa: E402
from repro.smt.sat import (  # noqa: E402
    CdclSolver,
    SolverBudgetExceeded,
    SolverConfig,
)
from repro.synthesis import CegisOptions, MemoCache, ReuseStore  # noqa: E402
from repro.workloads.registry import benchmark_named  # noqa: E402

# Fast benchmarks exercising swizzles, saturating arithmetic and widening
# multiplies — enough signal for CI without a long wall-clock bill.
SMOKE_SUITE = ("dilate3x3", "average_pool")
FULL_SUITE = ("dilate3x3", "average_pool", "max_pool", "add", "mul")

# Sat-family counters: meaningless (identically zero) on runs whose
# verification ladder never reached the SMT tier.
_SAT_COUNTERS = (
    "sat_queries", "sat_conflicts", "sat_restarts", "sat_clauses_deleted",
    "learned_clauses_retained", "incremental_queries", "fresh_queries",
)
_SAT_DERIVED = ("learned_clauses_retained", "incremental_share")
SAT_COUNTER_NOTE = (
    "arms with counters['sat'] == 'n/a ...' issued zero SAT queries "
    "(every window was verified structurally/probabilistically); their "
    "sat-family counters are omitted rather than reported as zeros"
)

# Solver microbench: random 3-SAT near the phase transition, where the
# modern heuristics (restarts + decay) separate from the legacy core.
SOLVER_BENCH_FULL = {"n_vars": 180, "ratio": 4.2, "seeds": tuple(range(1, 9)),
                     "max_conflicts": 300_000}
SOLVER_BENCH_QUICK = {"n_vars": 150, "ratio": 4.2, "seeds": (1, 2, 3),
                      "max_conflicts": 60_000}


def _scrub_sat_counters(counters: dict, derived: dict) -> tuple[dict, dict]:
    """Drop sat-family counters from enumeration-only runs (see module doc)."""
    if counters.get("sat_queries", 0):
        return counters, derived
    counters = {k: v for k, v in counters.items() if k not in _SAT_COUNTERS}
    counters["sat"] = "n/a (enumeration-only run: zero SAT queries issued)"
    derived = {k: v for k, v in derived.items() if k not in _SAT_DERIVED}
    return counters, derived


def run_case(
    name: str,
    isa: str,
    dictionary,
    timeout: float,
    legacy: bool = False,
    absint: bool = False,
    arms: int = 0,
    reuse: ReuseStore | None = None,
) -> dict:
    """Compile one benchmark end-to-end; returns timings + programs."""
    benchmark = benchmark_named(name)
    kernels = benchmark.lower(isa)
    options = CegisOptions(
        timeout_seconds=timeout, legacy_eval=legacy, absint_prune=absint,
        portfolio_arms=arms,
    )
    compiler = HydrideCompiler(
        dictionary=dictionary, cache=MemoCache(), cegis=options, reuse=reuse,
    )
    before = snapshot()
    start = time.monotonic()
    programs: list[str] = []
    for kernel in kernels:
        compiled = compiler.compile(kernel, isa)
        programs.extend(p.describe() for p in compiled.programs)
    seconds = time.monotonic() - start
    counters = snapshot_delta(before)
    derived = {
        key: round(value, 4)
        for key, value in derived_metrics(counters).items()
    }
    counters, derived = _scrub_sat_counters(counters, derived)
    return {
        "seconds": round(seconds, 3),
        "programs": programs,
        "counters": counters,
        "derived": derived,
    }


# ----------------------------------------------------------------------
# CDCL solver microbench (modern core vs SolverConfig.legacy())
# ----------------------------------------------------------------------


def _random_3sat(seed: int, n_vars: int, n_clauses: int) -> list[tuple[int, ...]]:
    rng = random.Random(seed)
    clauses = []
    for _ in range(n_clauses):
        chosen = rng.sample(range(1, n_vars + 1), 3)
        clauses.append(
            tuple(v if rng.random() < 0.5 else -v for v in chosen)
        )
    return clauses


def _solve_timed(n_vars, clauses, config, max_conflicts) -> dict:
    solver = CdclSolver(n_vars, clauses, config=config)
    start = time.monotonic()
    try:
        result = solver.solve(max_conflicts=max_conflicts)
        verdict = "sat" if result.satisfiable else "unsat"
        conflicts = result.conflicts
        if result.satisfiable:
            for clause in clauses:
                assert any(
                    result.model[abs(lit)] == (lit > 0) for lit in clause
                ), "model does not satisfy the formula"
    except SolverBudgetExceeded as exc:
        verdict = "budget"
        conflicts = exc.conflicts
    return {
        "seconds": round(time.monotonic() - start, 3),
        "verdict": verdict,
        "conflicts": conflicts,
        "restarts": solver.restarts,
        "clauses_deleted": solver.clauses_deleted,
    }


def run_solver_bench(params: dict) -> tuple[dict, list[str]]:
    """Random 3-SAT A/B: modern CDCL config vs the legacy core."""
    n_vars = params["n_vars"]
    n_clauses = int(n_vars * params["ratio"])
    report = {
        "n_vars": n_vars,
        "clause_ratio": params["ratio"],
        "max_conflicts": params["max_conflicts"],
        "instances": [],
    }
    failures: list[str] = []
    total_modern = 0.0
    total_legacy = 0.0
    for seed in params["seeds"]:
        clauses = _random_3sat(seed, n_vars, n_clauses)
        modern = _solve_timed(
            n_vars, clauses, SolverConfig(), params["max_conflicts"]
        )
        legacy = _solve_timed(
            n_vars, clauses, SolverConfig.legacy(), params["max_conflicts"]
        )
        total_modern += modern["seconds"]
        total_legacy += legacy["seconds"]
        if (
            "budget" not in (modern["verdict"], legacy["verdict"])
            and modern["verdict"] != legacy["verdict"]
        ):
            failures.append(
                f"solver seed {seed}: modern says {modern['verdict']}, "
                f"legacy says {legacy['verdict']}"
            )
        report["instances"].append(
            {"seed": seed, "modern": modern, "legacy": legacy}
        )
        print(
            f"[bench] solver seed {seed}: modern={modern['seconds']:.2f}s "
            f"({modern['verdict']}) legacy={legacy['seconds']:.2f}s "
            f"({legacy['verdict']})",
            flush=True,
        )
    report["total_seconds_modern"] = round(total_modern, 3)
    report["total_seconds_legacy"] = round(total_legacy, 3)
    report["speedup"] = round(total_legacy / max(total_modern, 1e-9), 2)
    print(
        f"[bench] solver total: modern={total_modern:.2f}s "
        f"legacy={total_legacy:.2f}s speedup={report['speedup']:.2f}x",
        flush=True,
    )
    return report, failures


# ----------------------------------------------------------------------
# Cross-window reuse phase (repeated family, shared ReuseStore)
# ----------------------------------------------------------------------


def run_reuse_phase(
    suite: tuple[str, ...], isa: str, dictionary, timeout: float
) -> tuple[dict, list[str]]:
    """Compile the suite twice against one shared cross-window store.

    Each pass uses a fresh result cache, so every window re-synthesizes;
    only the counterexample/clause reuse store persists between them.
    The warm pass must show nonzero counterexample-suite hits.
    """
    reuse = ReuseStore()
    report: dict = {"suite": list(suite), "runs": {}}
    failures: list[str] = []
    programs: dict[str, list[str]] = {}
    for label in ("cold", "warm"):
        before = snapshot()
        start = time.monotonic()
        run_programs: list[str] = []
        for name in suite:
            case = run_case(name, isa, dictionary, timeout, reuse=reuse)
            run_programs.extend(case["programs"])
        seconds = time.monotonic() - start
        delta = snapshot_delta(before)
        programs[label] = run_programs
        report["runs"][label] = {
            "seconds": round(seconds, 3),
            "reuse_cex_hits": delta.get("reuse_cex_hits", 0),
            "reuse_cex_misses": delta.get("reuse_cex_misses", 0),
            "reuse_cex_preloaded": delta.get("reuse_cex_preloaded", 0),
            "reuse_clause_hits": delta.get("reuse_clause_hits", 0),
            "reuse_clauses_preloaded": delta.get(
                "reuse_clauses_preloaded", 0
            ),
        }
        print(
            f"[bench] reuse {label}: {seconds:.2f}s, "
            f"cex hits={report['runs'][label]['reuse_cex_hits']:.0f} "
            f"(refuters={report['runs'][label]['reuse_cex_preloaded']:.0f})",
            flush=True,
        )
    cold = report["runs"]["cold"]
    warm = report["runs"]["warm"]
    report["warm_vs_cold"] = round(
        cold["seconds"] / max(warm["seconds"], 1e-9), 2
    )
    # Informational: stored refuters can reorder counterexample discovery,
    # so warm programs are correct but not guaranteed bit-identical.
    report["programs_identical"] = programs["cold"] == programs["warm"]
    if warm["reuse_cex_hits"] <= 0:
        failures.append(
            "reuse phase: warm run scored zero counterexample-suite hits"
        )
    return report, failures


# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small fast suite")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke subset: implies --smoke and shrinks the solver "
        "microbench (fewer seeds, smaller instances, tighter budget)",
    )
    parser.add_argument("--isa", default="x86")
    parser.add_argument("--suite", default="", help="comma-separated benchmark names")
    # Generous per-window budget: if the wall-clock limit binds, the
    # arms truncate their searches at different points and the
    # determinism audit reports a spurious mismatch.
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--output", default="BENCH_synthesis.json")
    parser.add_argument(
        "--arms",
        "--portfolio",
        dest="arms",
        type=int,
        default=0,
        help="record a portfolio arm racing this many CEGIS arms per "
        "window (0 = no portfolio arm)",
    )
    parser.add_argument(
        "--max-portfolio-slowdown",
        type=float,
        default=1.1,
        help="fail if the portfolio arm's total wall time exceeds this "
        "multiple of the inline optimised arm",
    )
    parser.add_argument(
        "--skip-baseline",
        action="store_true",
        help="only run the optimised path (no legacy arm, no speedup)",
    )
    parser.add_argument(
        "--skip-absint",
        action="store_true",
        help="skip the absint_prune determinism arm",
    )
    parser.add_argument(
        "--skip-solver-bench",
        action="store_true",
        help="skip the CDCL solver microbench",
    )
    parser.add_argument(
        "--skip-reuse",
        action="store_true",
        help="skip the repeated-family cross-window reuse phase",
    )
    args = parser.parse_args(argv)

    if args.suite:
        suite = tuple(args.suite.split(","))
    else:
        suite = SMOKE_SUITE if (args.smoke or args.quick) else FULL_SUITE

    dictionary = build_dictionary(("x86", "hvx", "arm"))
    report: dict = {
        "suite": list(suite),
        "isa": args.isa,
        "timeout_seconds": args.timeout,
        "sat_counter_note": SAT_COUNTER_NOTE,
        "cases": [],
    }
    total_new = 0.0
    total_baseline = 0.0
    total_portfolio = 0.0
    total_absint_pruned = 0
    portfolio_counters: dict[str, float] = {}
    mismatches: list[str] = []
    failures: list[str] = []

    for name in suite:
        print(f"[bench] {name} ({args.isa}) optimised ...", flush=True)
        new = run_case(name, args.isa, dictionary, args.timeout)
        case = {
            "benchmark": name,
            "seconds_optimised": new["seconds"],
            "counters_optimised": new["counters"],
            "derived_optimised": new["derived"],
            "programs": new["programs"],
        }
        total_new += new["seconds"]
        if not args.skip_baseline:
            print(f"[bench] {name} ({args.isa}) baseline ...", flush=True)
            old = run_case(name, args.isa, dictionary, args.timeout, legacy=True)
            total_baseline += old["seconds"]
            identical = old["programs"] == new["programs"]
            if not identical:
                mismatches.append(name)
            case.update(
                seconds_baseline=old["seconds"],
                counters_baseline=old["counters"],
                speedup=round(old["seconds"] / max(new["seconds"], 1e-9), 2),
                identical_programs=identical,
            )
            print(
                f"[bench] {name}: baseline={old['seconds']:.2f}s "
                f"optimised={new['seconds']:.2f}s "
                f"speedup={case['speedup']:.2f}x identical={identical}",
                flush=True,
            )
        else:
            print(f"[bench] {name}: optimised={new['seconds']:.2f}s", flush=True)
        if not args.skip_absint:
            # Abstract-interpretation pruning must change nothing about
            # the synthesized programs — only skip work.
            print(f"[bench] {name} ({args.isa}) absint ...", flush=True)
            pruned = run_case(
                name, args.isa, dictionary, args.timeout, absint=True
            )
            identical = pruned["programs"] == new["programs"]
            if not identical:
                mismatches.append(f"{name} (absint)")
            case.update(
                seconds_absint=pruned["seconds"],
                counters_absint=pruned["counters"],
                absint_identical_programs=identical,
                absint_pruned=pruned["counters"].get("absint_pruned", 0),
            )
            total_absint_pruned += pruned["counters"].get("absint_pruned", 0)
            print(
                f"[bench] {name}: absint={pruned['seconds']:.2f}s "
                f"pruned={case['absint_pruned']} identical={identical}",
                flush=True,
            )
        if args.arms >= 2:
            # Portfolio arm: the racer must return exactly the programs
            # the inline paths agreed on, first winner cancelling the
            # rest.  On boxes without spare cores it falls back inline.
            print(
                f"[bench] {name} ({args.isa}) portfolio x{args.arms} ...",
                flush=True,
            )
            raced = run_case(
                name, args.isa, dictionary, args.timeout, arms=args.arms
            )
            identical = raced["programs"] == new["programs"]
            if not identical:
                mismatches.append(f"{name} (portfolio)")
            case.update(
                seconds_portfolio=raced["seconds"],
                counters_portfolio=raced["counters"],
                portfolio_identical_programs=identical,
            )
            total_portfolio += raced["seconds"]
            for key in (
                "portfolio_windows", "portfolio_arms_launched",
                "portfolio_cancels", "portfolio_cex_broadcast",
                "portfolio_inline_fallbacks",
            ):
                portfolio_counters[key] = (
                    portfolio_counters.get(key, 0)
                    + raced["counters"].get(key, 0)
                )
            print(
                f"[bench] {name}: portfolio={raced['seconds']:.2f}s "
                f"identical={identical} "
                f"(windows="
                f"{raced['counters'].get('portfolio_windows', 0):.0f}, "
                f"inline_fallbacks="
                f"{raced['counters'].get('portfolio_inline_fallbacks', 0):.0f})",
                flush=True,
            )
        report["cases"].append(case)

    report["total_seconds_optimised"] = round(total_new, 3)
    if not args.skip_baseline:
        report["total_seconds_baseline"] = round(total_baseline, 3)
        report["speedup"] = round(total_baseline / max(total_new, 1e-9), 2)
        report["identical_programs"] = not mismatches
        print(
            f"[bench] total: baseline={total_baseline:.2f}s "
            f"optimised={total_new:.2f}s speedup={report['speedup']:.2f}x"
        )

    if not args.skip_absint:
        report["absint_pruned_total"] = total_absint_pruned

    if args.arms >= 2:
        slowdown = round(total_portfolio / max(total_new, 1e-9), 2)
        report["portfolio"] = {
            "arms": args.arms,
            "total_seconds": round(total_portfolio, 3),
            "slowdown_vs_optimised": slowdown,
            "counters": portfolio_counters,
        }
        print(
            f"[bench] portfolio total: {total_portfolio:.2f}s "
            f"({slowdown:.2f}x optimised)"
        )
        if slowdown > args.max_portfolio_slowdown:
            failures.append(
                f"portfolio arm {slowdown:.2f}x slower than the optimised "
                f"arm (gate: {args.max_portfolio_slowdown:.2f}x)"
            )

    if not args.skip_solver_bench:
        params = SOLVER_BENCH_QUICK if args.quick else SOLVER_BENCH_FULL
        solver_report, solver_failures = run_solver_bench(params)
        report["solver_bench"] = solver_report
        failures.extend(solver_failures)

    if not args.skip_reuse:
        reuse_report, reuse_failures = run_reuse_phase(
            suite, args.isa, dictionary, args.timeout
        )
        report["reuse"] = reuse_report
        failures.extend(reuse_failures)

    out = pathlib.Path(args.output)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {out}")

    if not args.skip_absint and total_absint_pruned == 0:
        failures.append(
            "absint_prune arm pruned nothing — the abstraction lost all "
            "precision"
        )
    if mismatches:
        failures.append(
            f"determinism: arms disagree on {', '.join(mismatches)}"
        )
    for failure in failures:
        print(f"[bench] FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
