#!/usr/bin/env python
"""Benchmark the offline IR-generation pipeline and audit its determinism.

Three arms, each in its *own subprocess* so per-process caches (lru_cache
on catalogs, parsed ISAs, the artifact memo) can't flatter any arm:

``serial``
    The reference: :func:`build_equivalence_classes` (the unsharded
    in-memory engine) plus dictionary assembly.

``parallel``
    A cold ``repro.irgen`` build with ``--jobs N`` (sharded similarity
    checking, pooled parsing), persisted into a fresh artifact store.

``warm``
    A second process loading that artifact.  It must be a pure cache hit:
    any rebuild, or any equivalence check performed, fails the run.

All three arms must produce the identical class partition (member names,
argument orders, parameter values, fixed params) and the identical
AutoLLVM dictionary fingerprint; a mismatch is a determinism bug and
fails the run.  Slow results do not fail the run — CI uses this in a
"crash only" smoke job.  Speedups only show on multi-core machines; the
warm-load time is the headline number everywhere.

Usage:
    python scripts/bench_irgen.py [--smoke] [--jobs N]
        [--isas x86,hvx,arm] [--output BENCH_irgen.json]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

SMOKE_ISAS = ("hvx",)
FULL_ISAS = ("x86", "hvx", "arm")


# ----------------------------------------------------------------------
# Arm bodies (run in subprocesses via `--arm`)
# ----------------------------------------------------------------------


def _arm_serial(isas: tuple[str, ...], cache_dir: str, jobs: int) -> dict:
    from repro.autollvm.intrinsics import dictionary_from_classes
    from repro.irgen import partition_digest
    from repro.similarity.engine import build_equivalence_classes
    from repro.synthesis.serialize import dictionary_fingerprint

    start = time.monotonic()
    classes, stats = build_equivalence_classes(isas)
    dictionary = dictionary_from_classes(isas, classes)
    return {
        "seconds": time.monotonic() - start,
        "digest": partition_digest(classes),
        "dictionary_fingerprint": dictionary_fingerprint(dictionary),
        "op_names": [op.name for op in dictionary.ops],
        "stats": stats.to_dict(),
    }


def _arm_parallel(isas: tuple[str, ...], cache_dir: str, jobs: int) -> dict:
    from repro.irgen import ensure_artifact, partition_digest
    from repro.synthesis.serialize import dictionary_fingerprint

    start = time.monotonic()
    artifact = ensure_artifact(isas, cache_dir, jobs=jobs)
    seconds = time.monotonic() - start
    return {
        "seconds": seconds,
        "loaded": artifact.loaded,
        "jobs": artifact.jobs,
        "digest": partition_digest(artifact.classes),
        "dictionary_fingerprint": dictionary_fingerprint(artifact.dictionary),
        "op_names": [op.name for op in artifact.dictionary.ops],
        "stats": artifact.stats.to_dict(),
        "phase_seconds": {
            k: round(v, 4) for k, v in sorted(artifact.phase_seconds.items())
        },
    }


def _arm_warm(isas: tuple[str, ...], cache_dir: str, jobs: int) -> dict:
    from repro.irgen import ensure_artifact, partition_digest
    from repro.perf import snapshot, snapshot_delta
    from repro.synthesis.serialize import dictionary_fingerprint

    before = snapshot()
    start = time.monotonic()
    artifact = ensure_artifact(isas, cache_dir)
    load_seconds = time.monotonic() - start
    dict_start = time.monotonic()
    dictionary = artifact.dictionary
    delta = snapshot_delta(before)
    return {
        "seconds": load_seconds,
        "dictionary_seconds": time.monotonic() - dict_start,
        "loaded": artifact.loaded,
        # Any equivalence checking in the warm arm means the "cache hit"
        # actually recomputed something.
        "check_seconds": delta.get("seconds_irgen_check", 0.0),
        "checks_delta": 0 if artifact.loaded else artifact.stats.checks,
        "digest": partition_digest(artifact.classes),
        "dictionary_fingerprint": dictionary_fingerprint(dictionary),
        "op_names": [op.name for op in dictionary.ops],
    }


_ARMS = {"serial": _arm_serial, "parallel": _arm_parallel, "warm": _arm_warm}


def _run_arm(arm: str, isas: tuple[str, ...], cache_dir: str, jobs: int) -> dict:
    """Execute one arm in a fresh interpreter; returns its JSON report."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        out_path = handle.name
    env = dict(os.environ)
    env.pop("REPRO_IRGEN_CACHE", None)  # arms opt in explicitly
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    try:
        proc = subprocess.run(
            [
                sys.executable, os.path.abspath(__file__),
                "--arm", arm, "--arm-output", out_path,
                "--isas", ",".join(isas),
                "--cache-dir", cache_dir, "--jobs", str(jobs),
            ],
            env=env,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"arm {arm!r} failed:\n{proc.stdout}\n{proc.stderr}"
            )
        return json.loads(pathlib.Path(out_path).read_text())
    finally:
        try:
            os.unlink(out_path)
        except OSError:
            pass


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="hvx only (fast)")
    parser.add_argument("--isas", default="", help="comma-separated ISA set")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    parser.add_argument("--output", default="BENCH_irgen.json")
    parser.add_argument("--cache-dir", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--arm", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--arm-output", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.isas:
        isas = tuple(s for s in args.isas.split(",") if s)
    else:
        isas = SMOKE_ISAS if args.smoke else FULL_ISAS

    if args.arm:  # subprocess mode
        report = _ARMS[args.arm](isas, args.cache_dir, args.jobs)
        pathlib.Path(args.arm_output).write_text(
            json.dumps(report, sort_keys=True)
        )
        return 0

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="irgen-bench-") as cache_dir:
        print(f"[bench] serial engine ({'+'.join(isas)}) ...", flush=True)
        serial = _run_arm("serial", isas, cache_dir, 1)
        print(
            f"[bench] serial: {serial['seconds']:.2f}s "
            f"({serial['stats']['classes']} classes, "
            f"{serial['stats']['checks']} checks)",
            flush=True,
        )

        print(f"[bench] parallel cold build (jobs={args.jobs}) ...", flush=True)
        parallel = _run_arm("parallel", isas, cache_dir, args.jobs)
        if parallel["loaded"]:
            failures.append("parallel arm loaded a pre-existing artifact")
        print(
            f"[bench] parallel: {parallel['seconds']:.2f}s "
            f"(phases: {parallel['phase_seconds']})",
            flush=True,
        )

        print("[bench] warm load ...", flush=True)
        warm = _run_arm("warm", isas, cache_dir, 1)
        if not warm["loaded"]:
            failures.append("warm arm rebuilt instead of loading the artifact")
        if warm["checks_delta"]:
            failures.append(
                f"warm arm performed {warm['checks_delta']} equivalence checks"
            )
        print(
            f"[bench] warm: load={warm['seconds']:.3f}s "
            f"dictionary={warm['dictionary_seconds']:.3f}s "
            f"loaded={warm['loaded']}",
            flush=True,
        )

    for name, arm in (("parallel", parallel), ("warm", warm)):
        if arm["digest"] != serial["digest"]:
            failures.append(f"{name} partition digest != serial")
        if arm["dictionary_fingerprint"] != serial["dictionary_fingerprint"]:
            failures.append(f"{name} dictionary fingerprint != serial")
        if arm["op_names"] != serial["op_names"]:
            failures.append(f"{name} AutoLLVM op names != serial")

    identical = not failures
    speedup = round(serial["seconds"] / max(parallel["seconds"], 1e-9), 2)
    report = {
        "isas": list(isas),
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "serial": serial,
        "parallel": parallel,
        "warm": {k: v for k, v in warm.items() if k != "op_names"},
        "speedup": speedup,
        "warm_load_seconds": round(warm["seconds"], 4),
        "identical": identical,
        "failures": failures,
    }
    # op name lists are long and identical across arms; keep one copy.
    report["serial"] = {k: v for k, v in serial.items() if k != "op_names"}
    report["parallel"] = {k: v for k, v in parallel.items() if k != "op_names"}
    report["op_count"] = len(serial["op_names"])

    out = pathlib.Path(args.output)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"[bench] total: serial={serial['seconds']:.2f}s "
        f"parallel={parallel['seconds']:.2f}s (jobs={args.jobs}, "
        f"speedup={speedup:.2f}x on {os.cpu_count()} cpus) "
        f"warm={warm['seconds']:.3f}s identical={identical}"
    )
    print(f"[bench] wrote {out}")

    if failures:
        for failure in failures:
            print(f"[bench] DETERMINISM FAILURE: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
