#!/usr/bin/env python
"""End-to-end daemon proof for CI (the ``daemon-smoke`` job).

Drives a real ``repro.daemon`` subprocess through the serving story the
design promises, asserting at each step:

1. **cross-client dedup** — two concurrent clients submit the *same*
   batch; the daemon must run exactly one synthesis per unique job
   (``runs.jobs`` == unique jobs) and answer both clients (followers
   coalesce in-flight or hit L1 after the fact);
2. **L1** — a second pass over the same daemon is served entirely from
   the in-memory tier with zero synthesis;
3. **cache packs** — ``pack export`` from the warm cache, then a
   *fresh* daemon with ``--warm-pack`` serves the same batch with zero
   synthesis calls (the fleet warm-up story);
4. **drain** — both daemons exit 0 on SIGTERM.

Scrapes ``/stats`` after each phase and writes them as a JSON artifact.

Usage::

    PYTHONPATH=src python scripts/daemon_smoke.py --out reports/daemon-stats.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.daemon.client import DaemonClient, http_get  # noqa: E402
from repro.daemon.proc import DaemonProcess  # noqa: E402


def _requests(benchmarks: list[str], isa: str) -> list[dict]:
    return [{"benchmark": name, "isa": isa} for name in benchmarks]


def _submit_batch(
    addr: str, requests: list[dict], tenant: str, out: dict
) -> None:
    with DaemonClient.connect(addr, timeout=600.0) as client:
        out[tenant] = client.submit_many(requests, tenant=tenant)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--benchmarks", default="add,mul")
    parser.add_argument("--isa", default="x86")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--synth-timeout", type=float, default=15.0)
    parser.add_argument("--out", default=None, help="stats artifact path")
    args = parser.parse_args(argv)

    benchmarks = [s for s in args.benchmarks.split(",") if s]
    requests = _requests(benchmarks, args.isa)
    work = Path(tempfile.mkdtemp(prefix="repro-daemon-smoke-"))
    warm_cache = work / "cache-a"
    fresh_cache = work / "cache-b"
    pack_path = work / "warm.pack"
    extra = ["--synth-timeout", str(args.synth_timeout)]
    failures: list[str] = []
    artifact: dict = {"benchmarks": benchmarks, "isa": args.isa}

    # ------------------------------------------------------------------
    # Phase 1+2: cold daemon; concurrent duplicate clients; L1 repass.
    # ------------------------------------------------------------------
    with DaemonProcess(
        cache_dir=str(warm_cache), jobs=args.jobs, extra_args=extra
    ) as daemon:
        print(f"[smoke] cold daemon at {daemon.addr}")
        batches: dict = {}
        start = time.monotonic()
        threads = [
            threading.Thread(
                target=_submit_batch,
                args=(daemon.addr, requests, tenant, batches),
            )
            for tenant in ("tenant-a", "tenant-b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.monotonic() - start
        for tenant in ("tenant-a", "tenant-b"):
            frames = batches.get(tenant, [])
            bad = [f for f in frames if not f.get("ok")]
            if len(frames) != len(requests) or bad:
                failures.append(
                    f"{tenant}: {len(frames)}/{len(requests)} answers, "
                    f"errors {[f.get('error') for f in bad]}"
                )
        stats = http_get(daemon.addr, "/stats")
        artifact["cold"] = stats
        daemon_counters = stats["daemon"]
        unique = len(requests)
        if stats["runs"]["jobs"] != unique:
            failures.append(
                f"dedup: {stats['runs']['jobs']} syntheses for "
                f"{unique} unique jobs across 2 clients (want exactly "
                f"{unique})"
            )
        duplicates = daemon_counters["coalesced"] + daemon_counters["l1_hits"]
        if duplicates < unique:
            failures.append(
                f"dedup: only {duplicates} duplicate submits absorbed "
                f"(coalesced {daemon_counters['coalesced']} + l1 "
                f"{daemon_counters['l1_hits']}), want >= {unique}"
            )
        print(
            f"[smoke] cold pass: {unique} unique jobs, "
            f"{daemon_counters['coalesced']} coalesced, "
            f"{daemon_counters['l1_hits']} L1 hits, "
            f"{stats['runs']['synth_calls']} synth calls in {wall:.1f}s"
        )

        # Second pass: same daemon, everything from L1, zero synthesis.
        with DaemonClient.connect(daemon.addr, timeout=120.0) as client:
            repass = client.submit_many(requests, tenant="tenant-a")
        synth = sum(
            (f.get("telemetry") or {}).get("synth_calls", 0) for f in repass
        )
        not_l1 = [f for f in repass if f.get("served_by") != "l1"]
        if synth or not_l1:
            failures.append(
                f"L1 repass: {synth} synth calls, "
                f"{len(not_l1)} responses not served by l1"
            )
        stats = http_get(daemon.addr, "/stats")
        artifact["warm"] = stats
        l1 = stats["tiers"]["l1"]
        print(
            f"[smoke] L1 repass: hit rate {l1['hit_rate']:.2f} "
            f"({l1['hits']}/{l1['lookups']})"
        )

    # ------------------------------------------------------------------
    # Phase 3: pack export -> fresh daemon import -> zero synthesis.
    # ------------------------------------------------------------------
    env_path = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.daemon", "pack", "export",
            "--cache-dir", str(warm_cache), "--output", str(pack_path),
        ],
        env={**os.environ, "PYTHONPATH": env_path},
        capture_output=True,
        text=True,
        timeout=120,
    )
    print(f"[smoke] {proc.stdout.strip()}")
    if proc.returncode != 0:
        failures.append(f"pack export failed: {proc.stderr.strip()}")
    else:
        with DaemonProcess(
            cache_dir=str(fresh_cache),
            jobs=args.jobs,
            extra_args=extra + ["--warm-pack", str(pack_path)],
        ) as daemon:
            print(f"[smoke] pack-warmed fresh daemon at {daemon.addr}")
            with DaemonClient.connect(daemon.addr, timeout=600.0) as client:
                frames = client.submit_many(requests, tenant="fleet")
            bad = [f for f in frames if not f.get("ok")]
            if bad:
                failures.append(
                    f"pack-warmed daemon errors: "
                    f"{[f.get('error') for f in bad]}"
                )
            stats = http_get(daemon.addr, "/stats")
            artifact["pack_warmed"] = stats
            synth = stats["runs"]["synth_calls"]
            imported = stats["daemon"]["pack_imported_entries"]
            if synth:
                failures.append(
                    f"pack-warmed fresh daemon synthesized {synth} times "
                    "(want zero — the pack must carry the warm cache)"
                )
            if not imported:
                failures.append("pack import reported zero entries")
            print(
                f"[smoke] pack-warmed pass: {imported} entries imported, "
                f"{synth} synth calls, L2 hit rate "
                f"{stats['tiers']['l2']['hit_rate']}"
            )

    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(json.dumps(artifact, indent=2, sort_keys=True))
        print(f"[smoke] stats artifact -> {out_path}")

    if failures:
        print("[smoke] FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("[smoke] PASS: dedup, L1, and pack warm-up all proven")
    return 0


if __name__ == "__main__":
    sys.exit(main())
