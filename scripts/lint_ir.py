#!/usr/bin/env python
"""Lint the generated ISA spec corpora (thin wrapper over repro.analysis).

Usage:
    python scripts/lint_ir.py [--isa x86] [--smoke] [--json] [--verbose]

Run from the repo root; adds ``src/`` to ``sys.path`` when the package is
not installed, so the script works in a fresh checkout.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
