"""Regenerate every paper table/figure and write rendered reports.

Usage:
    python scripts/run_all_experiments.py [--full] [--out reports/]

Without --full a representative benchmark subset is used (see
benchmarks/conftest.py); --full runs all 33 benchmarks on all targets and
can take a long while.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--out", default="reports")
    parser.add_argument(
        "--only", default="", help="comma-separated subset, e.g. table1,figure6"
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="fan suite compilations out over N service workers",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent synthesis cache directory (survives restarts)",
    )
    parser.add_argument(
        "--daemon", default=None, metavar="ADDR",
        help="submit suite compilations to a running repro.daemon at "
        "host:port instead of spawning local workers",
    )
    parser.add_argument(
        "--irgen-cache", default=None,
        help="offline IR-generation artifact store: equivalence classes "
        "and the AutoLLVM dictionary load from disk instead of being "
        "recomputed (see python -m repro.irgen build)",
    )
    args = parser.parse_args()
    if args.full:
        os.environ["REPRO_FULL_SUITE"] = "1"
    if args.irgen_cache:
        # Before the repro.experiments imports below: every table pulls
        # the dictionary/classes at first use.
        os.environ["REPRO_IRGEN_CACHE"] = args.irgen_cache

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    from repro.experiments import (
        figure6,
        figure7,
        table1,
        table2,
        table3,
        table4,
        table5,
    )
    from repro.experiments.runner import ExperimentRunner
    from repro.synthesis import CegisOptions
    from repro.workloads.registry import all_benchmarks, benchmark_named

    wanted = set(filter(None, args.only.split(",")))

    def selected(name: str) -> bool:
        return not wanted or name in wanted

    if args.full:
        benchmarks = all_benchmarks()
    else:
        names = [
            "dilate3x3", "average_pool", "max_pool", "sobel3x3",
            "add", "mul", "softmax", "matmul_b1", "l2norm", "conv_nn",
            "fully_connected", "gaussian7x7", "conv3x3a16",
        ]
        benchmarks = [benchmark_named(n) for n in names]

    runner = ExperimentRunner(
        CegisOptions(timeout_seconds=20.0, scale_factor=8),
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        daemon_addr=args.daemon,
    )

    def emit(name: str, text: str, seconds: float) -> None:
        path = out_dir / f"{name}.txt"
        path.write_text(text + f"\n\n[generated in {seconds:.1f}s]\n")
        print(f"== {name} ({seconds:.1f}s) -> {path}")
        print(text)
        print()

    if selected("table1"):
        # The paper's seven 3-ISA rows, then the rvv-extended partition
        # (per-ISA rows plus the 4-ISA combination).
        start = time.time()
        emit("table1", table1.render(table1.run()), time.time() - start)
        start = time.time()
        emit(
            "table1_rvv",
            table1.render(table1.run(("x86", "hvx", "arm", "rvv"))),
            time.time() - start,
        )
    if selected("table2"):
        start = time.time()
        emit("table2", table2.render(table2.run()), time.time() - start)
    if selected("table3"):
        start = time.time()
        emit("table3", table3.render(table3.run()), time.time() - start)
    if selected("table5") or selected("figure7"):
        start = time.time()
        result5 = table5.run(("x86", "hvx", "arm") if args.full else ("x86", "hvx"))
        emit("table5", table5.render(result5), time.time() - start)
        start = time.time()
        emit(
            "figure7",
            figure7.render(figure7.run(from_table5=result5)),
            time.time() - start,
        )
    if selected("figure6"):
        start = time.time()
        result6 = figure6.run(("x86", "hvx", "arm"), benchmarks, runner)
        emit("figure6", figure6.render(result6), time.time() - start)
    if selected("table4"):
        start = time.time()
        result4 = table4.run("x86", benchmarks[:6], runner)
        emit("table4", table4.render(result4), time.time() - start)
    return 0


if __name__ == "__main__":
    sys.exit(main())
