#!/usr/bin/env python
"""Chaos soak for the compilation service (``repro.faults`` harness).

Runs a job batch repeatedly under randomized-but-seeded fault schedules
(worker crashes and mute hangs, torn/corrupt/slow cache writes, pipe
EOFs, injected attempt timeouts) and asserts the service's survival
invariants:

* the scheduler **terminates** within a wall guard, every round;
* every job yields a :class:`JobResult` — fallbacks are fine, hangs and
  unhandled exceptions are not;
* after the soak, a fault-free rerun over the *surviving* cache produces
  results identical to a never-faulted reference run — i.e. no poisoned
  negative entries, no corrupt-file crashes, no stale state;
* no ``.tmp-*`` litter survives.

Each round runs in its own forked process so a reintroduced hang is
killed by the harness (and fails the run) instead of stalling it; the
same seed always replays the same schedules, which is what makes this a
regression test.  Usage::

    PYTHONPATH=src python scripts/chaos_service.py --seed 0 --jobs 2

With ``--daemon`` the soak targets a live :mod:`repro.daemon` instead:
each round starts a daemon subprocess under a seeded fault plan (which
now also draws daemon-side faults — connection drops mid-response,
enqueue failures), hammers it with two concurrent clients submitting
the *same* batch (exercising cross-client dedup), and asserts the
serving invariants:

* every client request gets an answer or a *typed* error — never a
  hang (clients retry dropped connections up to the wall guard);
* the daemon stays healthy (``/healthz``) through every round and
  exits 0 on SIGTERM drain;
* a fault-free daemon rerun over the surviving cache reproduces the
  never-faulted reference runtimes bit-for-bit.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import random
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults import (  # noqa: E402
    FaultPlan,
    RandomPlanOptions,
    install_plan,
    random_plan,
)
from repro.service import (  # noqa: E402
    CompileJob,
    JobResult,
    Scheduler,
    ServiceOptions,
    reap_tmp,
)
from repro.synthesis import CegisOptions  # noqa: E402


def _jobs(benchmarks: list[str], isas: list[str]) -> list[CompileJob]:
    # No per-job wall budget on purpose: the scheduler's kill backstop
    # (ServiceOptions.kill_seconds) must be what bounds a mute worker.
    return [
        CompileJob(name, isa, "hydride", retries=1, fallback="llvm")
        for isa in isas
        for name in benchmarks
    ]


def _result_row(outcome: JobResult) -> dict:
    return {
        "benchmark": outcome.result.benchmark,
        "isa": outcome.result.target,
        "ok": outcome.ok,
        "runtime_us": outcome.result.runtime_us,
        "fallback": outcome.telemetry.fallback,
        "error": outcome.result.error,
    }


def _batch_main(
    report_path: str,
    cache_dir: str,
    plan_json: str | None,
    benchmarks: list[str],
    isas: list[str],
    jobs: int,
    synth_timeout: float,
    kill_seconds: float,
) -> None:
    """One guarded batch (a chaos round, the reference, or the rerun).

    Runs in a forked child; writes a JSON report and exits 0 only when
    every job came back as a JobResult.  A hang here is the parent's
    wall guard's problem — that is the point.
    """
    if plan_json:
        install_plan(FaultPlan.from_json(plan_json))
    batch = _jobs(benchmarks, isas)
    scheduler = Scheduler(
        ServiceOptions(
            jobs=jobs,
            cache_dir=cache_dir,
            cegis=CegisOptions(timeout_seconds=synth_timeout, scale_factor=8),
            kill_seconds=kill_seconds,
        )
    )
    violations: list[str] = []
    try:
        results = scheduler.run(batch)
    except BaseException as exc:  # noqa: BLE001 - a crash IS the finding
        Path(report_path).write_text(
            json.dumps(
                {
                    "ok": False,
                    "violations": [
                        f"scheduler raised {type(exc).__name__}: {exc}"
                    ],
                }
            )
        )
        sys.exit(1)
    if len(results) != len(batch):
        violations.append(
            f"{len(batch)} jobs in, {len(results)} results out"
        )
    for outcome in results:
        if not isinstance(outcome, JobResult):
            violations.append(f"non-JobResult outcome {type(outcome).__name__}")
            continue
        if not outcome.ok:
            violations.append(
                f"{outcome.result.benchmark}/{outcome.result.target} "
                f"failed outright: {outcome.result.error}"
            )
    report = {
        "ok": not violations,
        "violations": violations,
        "results": [
            _result_row(r) for r in results if isinstance(r, JobResult)
        ],
        "stats": scheduler.last_stats.to_dict(),
    }
    Path(report_path).write_text(json.dumps(report, indent=2))
    sys.exit(0 if not violations else 1)


def _run_guarded(args_tuple: tuple, wall_guard: float) -> tuple[str, dict | None]:
    """Run one batch under the wall guard.

    Returns ``(status, report)`` where status is ``ok``, ``violated`` or
    ``wedged`` (scheduler failed to terminate — the cardinal sin).
    """
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=_batch_main, args=args_tuple)
    started = time.monotonic()
    proc.start()
    proc.join(wall_guard)
    if proc.is_alive():
        proc.terminate()
        proc.join(5.0)
        if proc.is_alive():
            proc.kill()
            proc.join()
        return "wedged", None
    report = None
    report_path = Path(args_tuple[0])
    if report_path.exists():
        try:
            report = json.loads(report_path.read_text())
        except json.JSONDecodeError:
            pass
    if proc.exitcode == 0 and report is not None and report.get("ok"):
        report["wall_seconds"] = round(time.monotonic() - started, 2)
        return "ok", report
    return "violated", report


def _runtimes(report: dict) -> dict[tuple[str, str], float | None]:
    return {
        (row["benchmark"], row["isa"]): row["runtime_us"]
        for row in report.get("results", [])
    }


# ----------------------------------------------------------------------
# Daemon soak (--daemon): chaos against a live repro.daemon
# ----------------------------------------------------------------------


def _daemon_requests(benchmarks: list[str], isas: list[str]) -> list[dict]:
    return [
        {"benchmark": name, "isa": isa, "compiler": "hydride"}
        for isa in isas
        for name in benchmarks
    ]


def _daemon_client_batch(
    addr: str, requests: list[dict], tenant: str, deadline: float
) -> list[dict] | str:
    """Submit ``requests``, retrying dropped connections until deadline.

    Returns the response frames, or a violation string.  A typed error
    frame is an *answer*; only a missing answer (hang / endless drops)
    is a violation.
    """
    from repro.daemon.client import (
        DaemonClient,
        DaemonConnectionError,
        DaemonError,
    )

    last_error = "no attempt made"
    while time.monotonic() < deadline:
        budget = max(1.0, deadline - time.monotonic())
        try:
            with DaemonClient.connect(addr, timeout=budget) as client:
                return client.submit_many(requests, tenant=tenant)
        except DaemonConnectionError as exc:
            # An injected drop: typed client-side error.  A real client
            # retries; resubmitting is idempotent (L1 / dedup absorb it).
            last_error = f"connection dropped: {exc}"
            time.sleep(0.2)
        except DaemonError as exc:
            return f"client {tenant}: unexpected daemon error: {exc}"
    return f"client {tenant}: unanswered at wall guard ({last_error})"


def _daemon_round(
    name: str,
    cache: Path,
    plan,
    benchmarks: list[str],
    isas: list[str],
    args: argparse.Namespace,
) -> tuple[list[str], dict[str, list[dict]]]:
    """One daemon lifetime: start under ``plan``, soak, drain.

    Returns ``(violations, frames_by_client)``.
    """
    import threading

    from repro.daemon.client import DaemonConnectionError, http_get
    from repro.daemon.proc import DaemonProcess, DaemonStartError

    extra = [
        "--synth-timeout", str(args.synth_timeout),
        "--kill-seconds", str(args.kill_seconds),
        "--drain-seconds", "30",
    ]
    env = {"REPRO_FAULTS": plan.to_json()} if plan is not None else {}
    requests = _daemon_requests(benchmarks, isas)
    violations: list[str] = []
    frames: dict[str, list[dict]] = {}
    daemon = DaemonProcess(
        cache_dir=str(cache), jobs=args.jobs, extra_args=extra, env=env
    )
    try:
        daemon.start()
    except DaemonStartError as exc:
        return [f"{name}: daemon failed to start: {exc}"], {}
    try:
        deadline = time.monotonic() + args.wall_guard

        # Two clients race the SAME batch: cross-client dedup must
        # coalesce them, and *both* must be fully answered.
        def run_client(tag: str) -> None:
            frames[tag] = _daemon_client_batch(
                daemon.addr, requests, tag, deadline
            )

        threads = [
            threading.Thread(target=run_client, args=(tag,), daemon=True)
            for tag in ("tenant-a", "tenant-b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(args.wall_guard + 10.0)
            if thread.is_alive():
                violations.append(
                    f"{name}: a client thread outlived the wall guard — "
                    "the daemon hung a response"
                )
        for tag in ("tenant-a", "tenant-b"):
            batch = frames.get(tag)
            if isinstance(batch, str):
                violations.append(f"{name}: {batch}")
                frames[tag] = []
            elif batch is None:
                frames[tag] = []
            else:
                missing = len(requests) - len(batch)
                if missing:
                    violations.append(
                        f"{name}: client {tag} missing {missing} answers"
                    )
        try:
            health = http_get(daemon.addr, "/healthz", timeout=10.0)
            if not health.get("ok"):
                violations.append(f"{name}: daemon unhealthy after round")
        except DaemonConnectionError as exc:
            violations.append(f"{name}: health probe failed: {exc}")
    finally:
        code = daemon.stop(timeout=60.0)
    if code != 0:
        violations.append(
            f"{name}: daemon exited {code} on SIGTERM (want clean drain 0)"
        )
    return violations, frames


def _frame_runtimes(batch: list[dict]) -> dict[tuple[str, str], float | None]:
    runtimes: dict[tuple[str, str], float | None] = {}
    for frame in batch:
        result = frame.get("result") or {}
        if frame.get("ok") and result.get("benchmark"):
            runtimes[(result["benchmark"], result["isa"])] = result.get(
                "runtime_us"
            )
    return runtimes


def _daemon_soak(args: argparse.Namespace) -> int:
    benchmarks = [s for s in args.benchmarks.split(",") if s]
    isas = [s for s in args.isa.split(",") if s]
    work = Path(args.cache_dir or tempfile.mkdtemp(prefix="repro-chaos-"))
    work.mkdir(parents=True, exist_ok=True)
    chaos_cache = work / "daemon-chaos-cache"
    reference_cache = work / "daemon-reference-cache"
    print(
        f"[chaos --daemon] seed={args.seed} rounds={args.rounds} work={work}"
    )
    failures: list[str] = []

    # 1. Fault-free reference daemon over a fresh cache.
    violations, frames = _daemon_round(
        "reference", reference_cache, None, benchmarks, isas, args
    )
    reference_frames = frames.get("tenant-a", [])
    bad = [f for f in reference_frames if not f.get("ok")]
    if violations or bad or not reference_frames:
        print(
            f"[chaos --daemon] FATAL: reference round degraded: "
            f"{violations or [e.get('error') for e in bad] or 'no frames'}"
        )
        return 2
    print(
        f"[chaos --daemon] reference: "
        f"{len(reference_frames)} answers per client"
    )

    # 2. Seeded chaos rounds, one daemon lifetime each, shared cache.
    subseeds = random.Random(f"chaos:{args.seed}").sample(
        range(1 << 30), args.rounds
    )
    plan_options = RandomPlanOptions(hang_seconds=args.kill_seconds + 8.0)
    for round_index, subseed in enumerate(subseeds):
        plan = random_plan(subseed, plan_options)
        schedule = ", ".join(
            f"{s.site}:{s.kind}@{s.at}" for s in plan.specs
        )
        violations, frames = _daemon_round(
            f"round{round_index}", chaos_cache, plan, benchmarks, isas, args
        )
        answered = {
            tag: len(batch) for tag, batch in frames.items()
        }
        typed = sum(
            1
            for batch in frames.values()
            for frame in batch
            if not frame.get("ok")
        )
        print(
            f"[chaos --daemon] round {round_index}: "
            f"{'ok' if not violations else 'VIOLATED'} "
            f"(schedule [{schedule}], answers {answered}, "
            f"{typed} typed errors)"
        )
        failures.extend(violations)

    # 3. Fault-free rerun daemon over the surviving cache must
    #    reproduce the reference bit-for-bit, with no fallbacks.
    violations, frames = _daemon_round(
        "rerun", chaos_cache, None, benchmarks, isas, args
    )
    failures.extend(violations)
    rerun_frames = frames.get("tenant-a", [])
    for frame in rerun_frames:
        if not frame.get("ok"):
            failures.append(
                f"rerun: typed error from a fault-free daemon: "
                f"{frame.get('error')}"
            )
        elif (frame.get("telemetry") or {}).get("fallback"):
            failures.append(
                "rerun: fallback in a fault-free daemon — surviving "
                "cache is poisoned or the hydride path broke"
            )
    want = _frame_runtimes(reference_frames)
    have = _frame_runtimes(rerun_frames)
    for key, runtime in want.items():
        got = have.get(key, "missing")
        if got != runtime:
            failures.append(
                f"rerun diverged from reference: "
                f"{key[0]}/{key[1]}: {got} != {runtime}"
            )
    litter = [str(p) for p in chaos_cache.glob("**/.tmp-*")]
    if litter:
        failures.append(f".tmp litter survived the soak: {litter}")

    summary = {
        "mode": "daemon",
        "seed": args.seed,
        "rounds": args.rounds,
        "failures": failures,
        "ok": not failures,
    }
    if args.report:
        Path(args.report).write_text(json.dumps(summary, indent=2))
    if failures:
        print("[chaos --daemon] FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"[chaos --daemon] PASS: {args.rounds} faulted daemon lifetimes, "
        "every client answered, rerun identical to reference"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--benchmarks", default="add,mul")
    parser.add_argument("--isa", default="x86")
    parser.add_argument("--synth-timeout", type=float, default=6.0)
    parser.add_argument(
        "--kill-seconds", type=float, default=60.0,
        help="scheduler kill backstop; injected hangs outlast it on "
        "purpose, legitimate cold synthesis must finish well within it",
    )
    parser.add_argument(
        "--wall-guard", type=float, default=180.0,
        help="per-batch wall guard; a round that outlives it fails the soak",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="work directory (default: a fresh temp dir)",
    )
    parser.add_argument("--report", default=None, help="summary JSON path")
    parser.add_argument(
        "--daemon", action="store_true",
        help="soak a live repro.daemon (spawned per round) instead of "
        "the in-process batch scheduler",
    )
    args = parser.parse_args(argv)
    if args.daemon:
        return _daemon_soak(args)

    benchmarks = [s for s in args.benchmarks.split(",") if s]
    isas = [s for s in args.isa.split(",") if s]
    work = Path(args.cache_dir or tempfile.mkdtemp(prefix="repro-chaos-"))
    work.mkdir(parents=True, exist_ok=True)
    chaos_cache = work / "chaos-cache"
    reference_cache = work / "reference-cache"
    print(f"[chaos] seed={args.seed} rounds={args.rounds} work={work}")

    failures: list[str] = []

    def batch(name, cache, plan):
        return _run_guarded(
            (
                str(work / f"report-{name}.json"),
                str(cache),
                plan.to_json() if plan else None,
                benchmarks,
                isas,
                args.jobs,
                args.synth_timeout,
                args.kill_seconds,
            ),
            args.wall_guard,
        )

    # 1. Fault-free reference over a fresh cache.  It must not need
    #    fallbacks or kills: otherwise the baseline itself is degraded
    #    (e.g. --kill-seconds below real cold-synthesis time) and the
    #    rerun comparison proves nothing.
    status, reference = batch("reference", reference_cache, None)
    ref_stats = (reference or {}).get("stats", {})
    if status != "ok" or ref_stats.get("fallbacks") or ref_stats.get("killed"):
        print(
            f"[chaos] FATAL: fault-free reference run degraded "
            f"(status={status}, fallbacks={ref_stats.get('fallbacks')}, "
            f"killed={ref_stats.get('killed')}): "
            f"{(reference or {}).get('violations')}"
        )
        return 2
    print(
        f"[chaos] reference: {len(reference.get('results', []))} jobs ok "
        f"in {reference.get('wall_seconds')}s"
    )

    # 2. Seeded chaos rounds over the (persistent) chaos cache.
    subseeds = random.Random(f"chaos:{args.seed}").sample(range(1 << 30), args.rounds)
    plan_options = RandomPlanOptions(hang_seconds=args.kill_seconds + 8.0)
    for round_index, subseed in enumerate(subseeds):
        plan = random_plan(subseed, plan_options)
        schedule = ", ".join(f"{s.site}:{s.kind}@{s.at}" for s in plan.specs)
        status, report = batch(f"round{round_index}", chaos_cache, plan)
        stats = (report or {}).get("stats", {})
        fired = stats.get("perf", {}).get("faults_injected", 0)
        print(
            f"[chaos] round {round_index}: {status} "
            f"(schedule [{schedule}], {fired:.0f} faults fired, "
            f"{stats.get('fallbacks', 0)} fallbacks, "
            f"{stats.get('killed', 0)} killed, "
            f"{stats.get('worker_eofs', 0)} pipe EOFs, "
            f"wall {(report or {}).get('wall_seconds', '?')}s)"
        )
        if status == "wedged":
            failures.append(
                f"round {round_index}: scheduler failed to terminate within "
                f"{args.wall_guard}s (schedule [{schedule}])"
            )
        elif status != "ok":
            failures.append(
                f"round {round_index}: invariant violations "
                f"{(report or {}).get('violations')} (schedule [{schedule}])"
            )

    # 3. Recovery: reap litter, then a fault-free rerun over the
    #    surviving cache must reproduce the reference bit-for-bit.
    reaped = reap_tmp(chaos_cache, min_age_seconds=0.0, recursive=True)
    status, rerun = batch("rerun", chaos_cache, None)
    if status != "ok":
        failures.append(
            f"fault-free rerun over the surviving cache {status}: "
            f"{(rerun or {}).get('violations')}"
        )
    else:
        if rerun["stats"].get("fallbacks"):
            failures.append(
                "fault-free rerun needed fallbacks — surviving cache is "
                "poisoned or the hydride path broke"
            )
        mismatches = [
            f"{key[0]}/{key[1]}: {have} != reference {want}"
            for key, want in _runtimes(reference).items()
            for have in [_runtimes(rerun).get(key, "missing")]
            if have != want
        ]
        if mismatches:
            failures.append(
                "rerun diverged from the never-faulted reference: "
                + "; ".join(mismatches)
            )
    litter = [str(p) for p in chaos_cache.glob("**/.tmp-*")]
    if litter:
        failures.append(f".tmp litter survived the soak: {litter}")

    summary = {
        "seed": args.seed,
        "rounds": args.rounds,
        "tmp_reaped": reaped,
        "failures": failures,
        "ok": not failures,
    }
    if args.report:
        Path(args.report).write_text(json.dumps(summary, indent=2))
    if failures:
        print("[chaos] FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"[chaos] PASS: {args.rounds} faulted rounds survived, "
        f"{reaped} tmp file(s) reaped, rerun identical to reference"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
