"""Tests for the machine performance model."""

import pytest

from repro.machine import MachineOp, TARGETS, simulate_kernel
from repro.machine.ops import op_from_spec, port_for_family
from repro.machine.simulator import simulate_body


def _op(port="alu", rtp=0.5, latency=1.0, carried=False, name="op"):
    return MachineOp(name, port, latency, rtp, carried)


class TestOps:
    def test_port_classification(self):
        assert port_for_family("ew_add") == "alu"
        assert port_for_family("dot_dpwssd") == "mul"
        assert port_for_family("unpack_lo") == "shuffle"
        assert port_for_family("swizzle_shuff") == "shuffle"

    def test_unknown_port_rejected(self):
        with pytest.raises(ValueError):
            MachineOp("x", "fpu", 1.0, 1.0)

    def test_op_from_spec(self):
        from repro.isa.registry import load_isa

        spec = load_isa("x86").spec("_mm512_madd_epi16")
        op = op_from_spec(spec)
        assert op.port == "mul"
        assert op.latency == spec.latency


class TestSimulator:
    def test_port_bound(self):
        target = TARGETS["x86"]  # 2 alu units
        body = [_op("alu", rtp=0.5)] * 8  # 4 cycles of alu work, 2 units
        cycles, _, bound = simulate_body(body, target)
        assert cycles == pytest.approx(2.0)
        assert bound == "port:alu"

    def test_single_mul_unit_binds(self):
        target = TARGETS["x86"]
        body = [_op("mul", rtp=0.5)] * 8 + [_op("alu", rtp=0.5)] * 2
        cycles, per_port, bound = simulate_body(body, target)
        assert bound == "port:mul"
        assert cycles == pytest.approx(4.0)

    def test_carried_chain_bound(self):
        target = TARGETS["x86"]
        body = [_op("alu", rtp=0.5, latency=4.0, carried=True)] * 3
        cycles, _, bound = simulate_body(body, target)
        assert bound == "carried"
        assert cycles == pytest.approx(12.0)

    def test_spill_penalty(self):
        target = TARGETS["x86"]
        body = [_op("alu")] * 2
        light, _, _ = simulate_body(body, target, live_values=8)
        heavy, _, _ = simulate_body(body, target, live_values=40)
        assert heavy > light

    def test_total_scales_with_iterations(self):
        target = TARGETS["hvx"]
        body = [_op("alu", rtp=1.0)] * 4
        one = simulate_kernel(body, 10, target)
        two = simulate_kernel(body, 20, target)
        assert two.total_cycles == pytest.approx(2 * one.total_cycles)

    def test_minimum_one_cycle(self):
        target = TARGETS["arm"]
        result = simulate_kernel([], 5, target)
        assert result.cycles_per_iteration == 1.0

    def test_frequency_affects_runtime_not_cycles(self):
        body = [_op("alu", rtp=1.0)] * 4
        hvx = simulate_kernel(body, 100, TARGETS["hvx"])
        arm = simulate_kernel(body, 100, TARGETS["arm"])
        assert arm.runtime_us < hvx.runtime_us  # 3.49 GHz vs 1 GHz

    def test_fewer_instructions_run_faster(self):
        """The property every Figure 6 comparison rests on."""
        target = TARGETS["hvx"]
        dot = [_op("mul", rtp=1.0, name="vdmpy")]
        naive = [
            _op("shuffle", rtp=1.0, name="widen"),
            _op("shuffle", rtp=1.0, name="widen"),
            _op("mul", rtp=1.0, name="vmpy"),
            _op("shuffle", rtp=1.0, name="shuf"),
            _op("alu", rtp=0.5, name="add"),
        ]
        fast = simulate_kernel(dot, 1000, target)
        slow = simulate_kernel(naive, 1000, target)
        assert slow.total_cycles > 2 * fast.total_cycles
