"""Tests for the deterministic fault-injection plane (``repro.faults``)
and the crash/hang hardening it exercises in the store, scheduler, and
job layers."""

import json
import time

import pytest

from repro import faults
from repro.autollvm import build_dictionary
from repro.faults import (
    SITES,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RandomPlanOptions,
    random_plan,
)
from repro.halide import ir as hir
from repro.service import (
    CompileJob,
    PersistentCache,
    Scheduler,
    ServiceOptions,
    reap_tmp,
)
from repro.service.scheduler import _kill_limit
from repro.service.store import atomic_write
from repro.synthesis import CegisOptions, MemoCache
from repro.synthesis.program import SConcat, SInput, SSlice


@pytest.fixture(scope="module")
def dictionary():
    return build_dictionary(("x86", "hvx", "arm"))


@pytest.fixture(autouse=True)
def _no_leftover_plan(monkeypatch):
    monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
    yield
    faults.clear_plan()


def _window(names=("ld0", "ld1")):
    return hir.HBin(
        "add", hir.HLoad(names[0], 16, 16), hir.HLoad(names[1], 16, 16)
    )


def _program():
    # Spec-consistent shape (declared load widths, 256-bit result): the
    # abstract screen on PersistentCache.lookup evicts programs whose
    # input or output widths contradict the window they are served for.
    return SConcat(
        SSlice(SInput("ld1", 16, 16), high=True),
        SSlice(SInput("ld0", 16, 16), high=False),
    )


class TestPlan:
    def test_random_plan_deterministic(self):
        assert random_plan(7).to_json() == random_plan(7).to_json()
        assert random_plan(7).to_json() != random_plan(8).to_json()

    def test_random_plan_draws_legal_kinds(self):
        for seed in range(50):
            for spec in random_plan(seed).specs:
                assert spec.kind in SITES[spec.site]
                if spec.kind == "hang":
                    # Open-ended hangs are opt-in only: a random soak
                    # must always be bounded by the kill backstop.
                    assert spec.delay > 0

    def test_json_round_trip(self):
        plan = random_plan(3, RandomPlanOptions(max_faults=5))
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.seed == 3
        assert [s.to_obj() for s in restored.specs] == [
            s.to_obj() for s in plan.specs
        ]

    def test_bare_list_payload_accepted(self):
        plan = FaultPlan.from_json('[{"site": "store.load", "kind": "raise"}]')
        assert plan.specs[0].site == "store.load"

    def test_bad_payloads_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json("{not json")
        with pytest.raises(ValueError):
            FaultPlan.from_json('[{"kind": "raise"}]')  # no site

    def test_fires_on_nth_call_for_count_calls(self):
        plan = FaultPlan([FaultSpec("s", "raise", at=2, count=2)])
        fired = [plan.fire("s") is not None for _ in range(5)]
        assert fired == [False, True, True, False, False]

    def test_count_zero_fires_forever(self):
        plan = FaultPlan([FaultSpec("s", "raise", at=3, count=0)])
        assert [plan.fire("s") is not None for _ in range(5)] == [
            False, False, True, True, True,
        ]

    def test_match_filters_on_detail(self):
        plan = FaultPlan([FaultSpec("s", "raise", match="add")])
        assert plan.fire("s", "mul") is None
        assert plan.fire("s", "add:x86") is not None
        assert plan.fired == [("s", "raise", "add:x86")]

    def test_reset_replays_identically(self):
        plan = FaultPlan([FaultSpec("s", "raise", at=2)])
        first = [plan.fire("s") is not None for _ in range(3)]
        plan.reset()
        assert [plan.fire("s") is not None for _ in range(3)] == first


class TestActivation:
    def test_no_plan_is_a_noop(self):
        assert faults.check("store.load", "whatever") is None

    def test_installed_plan_fires_and_counts(self):
        from repro.perf import global_counters

        faults.install_plan(FaultPlan([FaultSpec("s", "raise")]))
        before = global_counters().faults_injected
        assert faults.check("s").kind == "raise"
        assert global_counters().faults_injected == before + 1

    def test_env_inline_json(self, monkeypatch):
        monkeypatch.setenv(
            faults.ENV_FAULTS,
            '[{"site": "s", "kind": "raise"}]',
        )
        with pytest.raises(InjectedFault):
            faults.trip("s")

    def test_env_plan_file(self, monkeypatch, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(FaultPlan([FaultSpec("s", "eof")]).to_json())
        monkeypatch.setenv(faults.ENV_FAULTS, str(path))
        with pytest.raises(EOFError):
            faults.trip("s")

    def test_unusable_env_ignored(self, monkeypatch, capsys):
        monkeypatch.setenv(faults.ENV_FAULTS, "{not json")
        assert faults.check("s") is None
        assert "ignoring unusable" in capsys.readouterr().err

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(
            faults.ENV_FAULTS, '[{"site": "s", "kind": "eof"}]'
        )
        faults.install_plan(FaultPlan([FaultSpec("s", "raise")]))
        assert faults.check("s").kind == "raise"


class TestAtomicWriteFaults:
    def test_corrupt_truncate_zero_payloads(self, tmp_path):
        for kind, check in (
            ("corrupt", lambda t: "\x00" in t),
            ("truncate", lambda t: 0 < len(t) < len('{"a": 12345678}')),
            ("zero", lambda t: t == ""),
        ):
            faults.install_plan(
                FaultPlan([FaultSpec("store.atomic_write", kind)])
            )
            path = tmp_path / f"{kind}.json"
            atomic_write(path, '{"a": 12345678}')
            assert check(path.read_text()), kind
            faults.clear_plan()

    def test_leak_tmp_leaves_litter_and_reap_removes_it(self, tmp_path):
        faults.install_plan(
            FaultPlan([FaultSpec("store.atomic_write", "leak_tmp")])
        )
        atomic_write(tmp_path / "x.json", "{}")
        assert (tmp_path / "x.json").read_text() == "{}"
        assert len(list(tmp_path.glob(".tmp-*"))) == 1
        assert reap_tmp(tmp_path, min_age_seconds=0.0) == 1
        assert not list(tmp_path.glob(".tmp-*"))

    def test_crash_leaves_tmp_never_partial_entry(self, tmp_path):
        faults.install_plan(
            FaultPlan([FaultSpec("store.atomic_write.crash", "raise")])
        )
        with pytest.raises(InjectedFault):
            atomic_write(tmp_path / "x.json", "{}")
        # The destination never appeared; only .tmp litter (reapable).
        assert not (tmp_path / "x.json").exists()
        assert len(list(tmp_path.glob(".tmp-*"))) == 1

    def test_reap_age_guard_spares_live_writers(self, tmp_path):
        (tmp_path / ".tmp-live.json").write_text("")
        assert reap_tmp(tmp_path, min_age_seconds=60.0) == 0
        assert reap_tmp(tmp_path, min_age_seconds=0.0) == 1


class TestStoreHardening:
    def test_cache_write_errors_never_fail_the_compile(
        self, tmp_path, dictionary
    ):
        cache = PersistentCache(tmp_path, "x86", dictionary)
        faults.install_plan(
            FaultPlan([FaultSpec("store.atomic_write.crash", "raise", count=0)])
        )
        cache.store(_window(), "x86", _program(), 4.0)
        cache.store_failure(_window(names=("p", "q")), "x86")
        assert cache.write_errors == 2
        # In-memory state is intact; only the disk entry was lost.
        assert cache.lookup(_window(), "x86") is not None
        faults.clear_plan()
        reopened = PersistentCache(tmp_path, "x86", dictionary)
        assert len(reopened) == 0

    def test_corrupt_entry_skipped_then_overwritten(self, tmp_path, dictionary):
        faults.install_plan(
            FaultPlan([FaultSpec("store.atomic_write", "corrupt", match="e-")])
        )
        first = PersistentCache(tmp_path, "x86", dictionary)
        first.store(_window(), "x86", _program(), 4.0)
        faults.clear_plan()
        # The corrupt file is skipped (charged once), then the window
        # re-synthesizes and the overwrite makes the entry readable.
        second = PersistentCache(tmp_path, "x86", dictionary)
        assert len(second) == 0
        assert second.load_errors == 1
        second.store(_window(), "x86", _program(), 4.0)
        third = PersistentCache(tmp_path, "x86", dictionary)
        assert len(third) == 1
        assert third.load_errors == 0

    def test_load_faults_charged_as_load_errors(self, tmp_path, dictionary):
        seeded = PersistentCache(tmp_path, "x86", dictionary)
        seeded.store(_window(), "x86", _program(), 4.0)
        faults.install_plan(FaultPlan([FaultSpec("store.load", "raise")]))
        reopened = PersistentCache(tmp_path, "x86", dictionary)
        assert reopened.load_errors == 1
        assert len(reopened) == 0

    def test_stale_tmp_litter_reaped_on_open(self, tmp_path, dictionary):
        cache = PersistentCache(tmp_path, "x86", dictionary)
        stale = cache.dir / ".tmp-stale.json"
        stale.write_text("{")
        import os

        old = time.time() - 3600
        os.utime(stale, (old, old))
        reopened = PersistentCache(tmp_path, "x86", dictionary)
        assert reopened.tmp_reaped == 1
        assert not stale.exists()


class TestBudgetTaggedNegatives:
    def test_smaller_budget_failure_not_replayed_at_larger(self):
        cache = MemoCache()
        window = _window()
        cache.set_budget(3.0)
        cache.store_failure(window, "x86")
        assert cache.lookup_failure(window, "x86")
        cache.set_budget(6.0)
        assert not cache.lookup_failure(window, "x86")
        cache.set_budget(1.5)
        assert cache.lookup_failure(window, "x86")

    def test_merge_keeps_widest_budget(self):
        cache = MemoCache()
        window = _window()
        cache.set_budget(2.0)
        cache.store_failure(window, "x86")
        cache.set_budget(4.0)
        cache.store_failure(window, "x86")
        cache.set_budget(3.0)
        assert cache.lookup_failure(window, "x86")

    def test_untagged_failure_replayed_unconditionally(self):
        cache = MemoCache()
        window = _window()
        cache.store_failure(window, "x86")  # no budget set: unconditional
        cache.set_budget(1e9)
        assert cache.lookup_failure(window, "x86")

    def test_budget_persists_across_restart(self, tmp_path, dictionary):
        window = _window()
        writer = PersistentCache(tmp_path, "x86", dictionary)
        writer.set_budget(3.0)
        writer.store_failure(window, "x86")

        replay = PersistentCache(tmp_path, "x86", dictionary)
        replay.set_budget(3.0)
        assert replay.lookup_failure(window, "x86")

        wider = PersistentCache(tmp_path, "x86", dictionary)
        wider.set_budget(6.0)
        assert not wider.lookup_failure(window, "x86")

    def test_success_supersedes_persisted_failure(self, tmp_path, dictionary):
        window = _window()
        cache = PersistentCache(tmp_path, "x86", dictionary)
        cache.set_budget(3.0)
        cache.store_failure(window, "x86")
        assert list(cache.dir.glob("f-*.json"))
        cache.store(window, "x86", _program(), 4.0)
        assert not list(cache.dir.glob("f-*.json"))
        reopened = PersistentCache(tmp_path, "x86", dictionary)
        reopened.set_budget(1.0)
        assert not reopened.lookup_failure(window, "x86")
        assert reopened.lookup(window, "x86") is not None


class TestSchedulerHardening:
    CEGIS = CegisOptions(timeout_seconds=6.0, scale_factor=8)

    def test_kill_limit_always_finite(self):
        assert _kill_limit(CompileJob("add", "x86")) == 600.0
        assert _kill_limit(CompileJob("add", "x86"), 30.0) == 30.0
        assert (
            _kill_limit(CompileJob("add", "x86", timeout_seconds=10.0), 30.0)
            == 20.0
        )

    def test_eof_on_mute_worker_resolves_to_fallback(self, tmp_path):
        # The PR-2 deadlock: the worker closes its pipe and hangs.
        # poll(0) stays True forever after EOF, so before the fix the
        # monitor loop spun on a connection that could never deliver.
        faults.install_plan(
            FaultPlan(
                [FaultSpec("scheduler.worker.mute", "hang",
                           match="add", delay=30.0)]
            )
        )
        scheduler = Scheduler(
            ServiceOptions(jobs=2, cache_dir=str(tmp_path), cegis=self.CEGIS)
        )
        started = time.monotonic()
        results = scheduler.run(
            [CompileJob("add", "x86", "llvm"), CompileJob("mul", "x86", "llvm")]
        )
        assert time.monotonic() - started < 25.0
        assert scheduler.last_stats.worker_eofs == 1
        by_name = {r.result.benchmark: r for r in results}
        assert by_name["add"].ok
        assert "pipe closed" in by_name["add"].result.error
        assert by_name["mul"].ok
        assert not by_name["mul"].result.error

    def test_none_timeout_worker_killed_by_backstop(self, tmp_path):
        # Before the fix _kill_limit returned None for jobs without a
        # wall budget and a hung worker wedged the scheduler forever.
        faults.install_plan(
            FaultPlan(
                [FaultSpec("scheduler.worker.start", "hang",
                           match="add", delay=30.0)]
            )
        )
        scheduler = Scheduler(
            ServiceOptions(
                jobs=2, cache_dir=str(tmp_path),
                cegis=self.CEGIS, kill_seconds=2.0,
            )
        )
        started = time.monotonic()
        results = scheduler.run(
            [CompileJob("add", "x86", "llvm"), CompileJob("mul", "x86", "llvm")]
        )
        assert time.monotonic() - started < 25.0
        assert scheduler.last_stats.killed == 1
        by_name = {r.result.benchmark: r for r in results}
        assert by_name["add"].ok
        assert "killed after timeout" in by_name["add"].result.error

    def test_crash_before_send_resolves_to_fallback(self, tmp_path):
        faults.install_plan(
            FaultPlan(
                [FaultSpec("scheduler.worker.send", "exit", match="add")]
            )
        )
        scheduler = Scheduler(
            ServiceOptions(jobs=2, cache_dir=str(tmp_path), cegis=self.CEGIS)
        )
        results = scheduler.run(
            [CompileJob("add", "x86", "llvm"), CompileJob("mul", "x86", "llvm")]
        )
        by_name = {r.result.benchmark: r for r in results}
        assert by_name["add"].ok
        assert by_name["add"].telemetry.fallback == "llvm"
        assert by_name["mul"].ok


class TestJobLadderFaults:
    CEGIS = CegisOptions(timeout_seconds=6.0, scale_factor=8)

    def test_injected_attempt_error_goes_to_fallback(self):
        faults.install_plan(FaultPlan([FaultSpec("jobs.attempt", "raise")]))
        scheduler = Scheduler(ServiceOptions(jobs=1, cegis=self.CEGIS))
        outcome = scheduler.run(
            [CompileJob("add", "x86", "halide", fallback="llvm")]
        )[0]
        assert outcome.ok
        assert outcome.telemetry.fallback == "llvm"
        assert outcome.telemetry.attempts == 1  # deterministic: no retry
        assert outcome.result.error.startswith("fallback=llvm: injected fault")

    def test_injected_timeout_walks_the_retry_ladder(self):
        faults.install_plan(FaultPlan([FaultSpec("jobs.attempt", "timeout")]))
        scheduler = Scheduler(ServiceOptions(jobs=1, cegis=self.CEGIS))
        outcome = scheduler.run([CompileJob("add", "x86", "llvm")])[0]
        assert outcome.ok
        assert outcome.telemetry.attempts == 2
        assert not outcome.telemetry.fallback


@pytest.mark.service_smoke
class TestChaosSmoke:
    """One seeded chaos round end-to-end through the soak harness: the
    scheduler terminates, every job resolves, the fault-free rerun over
    the surviving cache matches the never-faulted reference, and no
    ``.tmp-*`` litter survives."""

    def test_single_round_soak(self, tmp_path):
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).resolve().parent.parent
            / "scripts" / "chaos_service.py"
        )
        spec = importlib.util.spec_from_file_location("chaos_service", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        report = tmp_path / "summary.json"
        assert (
            module.main(
                [
                    "--seed", "0", "--jobs", "2", "--rounds", "1",
                    "--cache-dir", str(tmp_path / "work"),
                    "--report", str(report),
                ]
            )
            == 0
        )
        summary = json.loads(report.read_text())
        assert summary["ok"]
        assert summary["failures"] == []
