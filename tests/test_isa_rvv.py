"""Tests for the vector-length-agnostic RVV catalog (repro.isa.rvv).

The RVV specs keep VLEN/LMUL/SEW symbolic in the pseudocode text and
bind them only at lowering time, so the same spec text must parse,
canonicalise and fuzz clean at the solver-tractable VLEN *and* at a
doubled VLEN — that agreement is the scale-down soundness argument.
"""

import pytest

from repro.analysis.cli import _check_spec_record
from repro.analysis.diagnostics import DiagnosticSink
from repro.autollvm.intrinsics import dictionary_isas
from repro.irgen import build_artifact, partition_digest
from repro.isa.fuzz import fuzz_catalog
from repro.isa.registry import CORE_ISAS, load_isa, supported_isas
from repro.isa.rvv import VLEN_SOLVER, generate_rvv_catalog, rvv_semantics
from repro.isa.spec import InstructionSpec, OperandSpec
from repro.synthesis.serialize import dictionary_fingerprint


@pytest.fixture(scope="module")
def catalog():
    return generate_rvv_catalog()


@pytest.fixture(scope="module")
def loaded():
    return load_isa("rvv")


class TestCatalog:
    def test_generation_is_deterministic(self, catalog):
        again = generate_rvv_catalog()
        assert [s.name for s in catalog.specs] == [s.name for s in again.specs]
        for ours, theirs in zip(catalog.specs, again.specs):
            assert ours.pseudocode == theirs.pseudocode
            assert ours.output_width == theirs.output_width
            assert ours.attributes == theirs.attributes

    def test_minimum_coverage(self, catalog):
        assert len(catalog.specs) >= 250
        families = {s.family for s in catalog.specs}
        # Families shared with the other ISAs so cross-ISA classes merge.
        assert {
            "ew_add", "ew_mullo", "widen_s", "widen_u", "narrow_sat_s",
            "narrow_sat_u", "predicated_mux", "dot_madd", "dot_4way",
            "dot_dpbusd",
        } <= families
        assert all(s.isa == "rvv" for s in catalog.specs)
        assert all(s.extension == "V" for s in catalog.specs)

    def test_machine_parameters_stay_symbolic(self, catalog):
        # The VL computation appears as *text*; no generator may splice a
        # concrete vl into the pseudocode.
        for spec in catalog.specs:
            assert "vl = (VLEN * LMUL) / SEW" in spec.pseudocode
            assert all(
                key in spec.attributes for key in ("vlen", "lmul", "sew")
            )

    def test_all_specs_parse_and_canonicalise(self, catalog, loaded):
        assert len(loaded) == len(catalog)
        assert set(loaded.semantics) == {s.name for s in catalog.specs}


class TestVlAgnosticism:
    def test_pseudocode_identical_across_vlen(self, catalog):
        doubled = generate_rvv_catalog(vlen=2 * VLEN_SOLVER)
        ours = {s.name: s.pseudocode for s in catalog.specs}
        theirs = {s.name: s.pseudocode for s in doubled.specs}
        shared = set(ours) & set(theirs)
        assert len(shared) >= 250
        assert all(ours[name] == theirs[name] for name in shared)

    def test_fuzz_clean_at_solver_vlen(self, catalog, loaded):
        assert fuzz_catalog(catalog.specs, loaded.semantics, trials=4) == []

    def test_fuzz_clean_at_doubled_vlen(self):
        # The scale-down argument: byte-identical spec text lowered at a
        # wider VLEN still agrees with the concrete reference.
        doubled = generate_rvv_catalog(vlen=2 * VLEN_SOLVER)
        semantics = {s.name: rvv_semantics(s) for s in doubled.specs}
        assert fuzz_catalog(doubled.specs, semantics, trials=2) == []

    def test_untileable_vlen_rejected(self):
        with pytest.raises(ValueError):
            generate_rvv_catalog(vlen=96)


class TestRegistry:
    def test_rvv_registered(self):
        assert "rvv" in supported_isas()

    def test_unknown_isa_raises(self):
        with pytest.raises(ValueError, match="supported"):
            load_isa("vax")

    def test_dictionary_isas(self):
        # Core ISAs keep the historical 3-ISA dictionary (and thus its
        # fingerprint); plug-in ISAs opt into a widened one.
        assert dictionary_isas("x86") == CORE_ISAS
        assert dictionary_isas("rvv") == CORE_ISAS + ("rvv",)


class TestIrgenDeterminism:
    @pytest.fixture(scope="class")
    def artifacts(self):
        return {
            jobs: build_artifact(("rvv",), jobs=jobs) for jobs in (1, 2)
        }

    def test_digest_identical_across_jobs(self, artifacts):
        assert partition_digest(artifacts[1].classes) == partition_digest(
            artifacts[2].classes
        )

    def test_dictionary_identical_across_jobs(self, artifacts):
        assert dictionary_fingerprint(
            artifacts[1].dictionary
        ) == dictionary_fingerprint(artifacts[2].dictionary)


class TestWidthLintRules:
    def _spec(self, **attrs):
        return InstructionSpec(
            name="bad", isa="rvv", asm="bad", extension="V", family="f",
            operands=(OperandSpec("vs2", 128), OperandSpec("vm", 24)),
            output_width=96, pseudocode="x", latency=1.0, throughput=1.0,
            attributes=attrs,
        )

    def _rules(self, **attrs):
        sink = DiagnosticSink()
        _check_spec_record(self._spec(**attrs), set(), sink)
        return [d.rule for d in sink.diagnostics]

    def test_element_must_tile_output(self):
        assert self._rules(elem_width=7) == ["spec/lane-width"]

    def test_lane_must_tile_output(self):
        assert self._rules(elem_width=8, lane_bits=64) == ["spec/lane-width"]

    def test_element_must_tile_lane(self):
        assert self._rules(elem_width=32, lane_bits=48) == ["spec/lane-width"]

    def test_mask_output_width_checked(self):
        assert self._rules(mask_output=True, mask_elems=16) == [
            "spec/mask-width"
        ]

    def test_mask_operand_width_checked(self):
        assert self._rules(mask_elems=16, mask_operands=("vm",)) == [
            "spec/mask-width"
        ]

    def test_consistent_spec_is_clean(self):
        assert self._rules(elem_width=32, lane_bits=96) == []
        assert self._rules(mask_elems=24, mask_operands=("vm",)) == []
