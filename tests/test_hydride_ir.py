"""Tests for Hydride IR: AST, interpretation, lowering, transforms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitvector import bv
from repro.hydride_ir import (
    BvBinOp,
    BvCast,
    BvConcat,
    BvExtract,
    BvVar,
    ForConcat,
    Input,
    SemanticsFunction,
    iconst,
    interpret,
    iparam,
    ivar,
    pretty,
    to_term,
)
from repro.hydride_ir.indexexpr import IBin, IConst, normalize_affine, simplify_index
from repro.hydride_ir.interp import SemanticsError, compute_width
from repro.hydride_ir.transforms import canonicalize, propagate_constants, reroll
from repro.smt.eval import evaluate


def _simd_add(count: int, elem: int) -> SemanticsFunction:
    """Unrolled element-wise add, the raw parser-output shape."""
    parts = []
    for i in range(count):
        low = iconst(i * elem)
        parts.append(
            BvBinOp(
                "bvadd",
                BvExtract(BvVar("a"), low, iconst(elem)),
                BvExtract(BvVar("b"), low, iconst(elem)),
            )
        )
    width = iconst(count * elem)
    return SemanticsFunction(
        "add", (Input("a", width), Input("b", width)), {}, BvConcat(tuple(parts))
    )


class TestIndexExpr:
    def test_arithmetic_sugar(self):
        e = iparam("p") * 3 + 5
        assert e.evaluate({"p": 4}) == 17

    def test_folding(self):
        assert simplify_index(iconst(2) + iconst(3)) == IConst(5)
        assert simplify_index(iparam("p") * 1) == iparam("p")
        assert simplify_index(iparam("p") + 0) == iparam("p")

    def test_unbound_param(self):
        with pytest.raises(KeyError):
            iparam("p").evaluate({})

    def test_params_and_ivars_collected(self):
        e = iparam("p") + ivar("i") * 2
        assert e.params() == {"p"}
        assert e.ivars() == {"i"}

    def test_normalize_affine_orders_terms(self):
        lane, k = ivar("lane"), ivar("k")
        messy = (iconst(64) + lane * 128) + k * 16
        tidy = normalize_affine(messy)
        # var terms first (appearance order), constant last.
        assert isinstance(tidy, IBin) and tidy.op == "+"
        assert tidy.right == IConst(64)
        assert tidy.evaluate({"lane": 2, "k": 3}) == messy.evaluate({"lane": 2, "k": 3})

    def test_normalize_affine_drops_zero(self):
        lane = ivar("lane")
        assert normalize_affine(lane * 8 + 0) == IBin("*", lane, IConst(8))

    def test_normalize_merges_coefficients(self):
        i = ivar("i")
        merged = normalize_affine(i * 3 + i * 5)
        assert merged.evaluate({"i": 2}) == 16

    @given(st.integers(-20, 20), st.integers(-20, 20), st.integers(0, 7))
    def test_normalize_preserves_value(self, c1, c2, iv):
        i = ivar("i")
        expr = (i * c1 + 7) + (i * c2 - 3)
        assert normalize_affine(expr).evaluate({"i": iv}) == expr.evaluate({"i": iv})


class TestInterp:
    def test_simd_add(self):
        func = _simd_add(4, 8)
        out = interpret(func, {"a": bv(0x04030201, 32), "b": bv(0x01010101, 32)})
        assert out.value == 0x05040302

    def test_forconcat_lane_order(self):
        # dst[i] = i-th 8-bit slice of a: identity function.
        body = ForConcat(
            "i", iconst(4), BvExtract(BvVar("a"), ivar("i") * 8, iconst(8))
        )
        func = SemanticsFunction("id", (Input("a", iconst(32)),), {}, body)
        assert interpret(func, {"a": bv(0xDEADBEEF, 32)}).value == 0xDEADBEEF

    def test_missing_input(self):
        with pytest.raises(SemanticsError):
            interpret(_simd_add(2, 8), {"a": bv(0, 16)})

    def test_width_mismatch(self):
        with pytest.raises(SemanticsError):
            interpret(_simd_add(2, 8), {"a": bv(0, 8), "b": bv(0, 16)})

    def test_out_of_range_extract(self):
        body = BvExtract(BvVar("a"), iconst(12), iconst(8))
        func = SemanticsFunction("bad", (Input("a", iconst(16)),), {}, body)
        with pytest.raises(SemanticsError):
            interpret(func, {"a": bv(0, 16)})

    def test_parameterized_semantics(self):
        elem = iparam("ew")
        body = ForConcat(
            "i",
            iparam("n"),
            BvBinOp(
                "bvadd",
                BvExtract(BvVar("a"), ivar("i") * elem, elem),
                BvExtract(BvVar("b"), ivar("i") * elem, elem),
            ),
        )
        func = SemanticsFunction(
            "padd",
            (Input("a", iparam("n") * elem), Input("b", iparam("n") * elem)),
            {"n": 2, "ew": 8},
            body,
        )
        out = interpret(func, {"a": bv(0x0102, 16), "b": bv(0x0101, 16)})
        assert out.value == 0x0203
        # Same semantics at different parameters.
        out32 = interpret(
            func, {"a": bv(0x00010002, 32), "b": bv(0x00010001, 32)},
            params={"n": 2, "ew": 16},
        )
        assert out32.value == 0x00020003

    def test_to_term_matches_interpret(self):
        func = canonicalize(_simd_add(4, 8))
        term = to_term(func)
        env = {"a": bv(0x11223344, 32), "b": bv(0x01020304, 32)}
        assert evaluate(term, env).value == interpret(func, env).value

    def test_to_term_rename(self):
        func = canonicalize(_simd_add(2, 8))
        term = to_term(func, rename={"a": "x0", "b": "x1"})
        assert set(term.variables()) == {"x0", "x1"}

    def test_compute_width(self):
        func = _simd_add(4, 8)
        assert compute_width(func.body, {}, {"a": 32, "b": 32}) == 32


class TestReroll:
    def test_simd_reroll(self):
        func = _simd_add(8, 8)
        rolled = reroll(func.body)
        assert isinstance(rolled, ForConcat)
        assert rolled.count == IConst(8)

    def test_reroll_preserves_semantics(self):
        func = _simd_add(8, 8)
        rolled = func.with_body(reroll(func.body))
        env = {"a": bv(0x0102030405060708, 64), "b": bv(0x1111111111111111, 64)}
        assert interpret(rolled, env).value == interpret(func, env).value

    def test_interleave_rerolls_with_grouping(self):
        # Alternating a/b slices: needs pair-grouped anti-unification.
        parts = []
        for i in range(4):
            parts.append(BvExtract(BvVar("a"), iconst(i * 8), iconst(8)))
            parts.append(BvExtract(BvVar("b"), iconst(i * 8), iconst(8)))
        rolled = reroll(BvConcat(tuple(parts)))
        assert isinstance(rolled, ForConcat)
        inner = rolled.body
        assert isinstance(inner, BvConcat) and len(inner.parts) == 2

    def test_non_affine_stays_unrolled(self):
        offsets = [0, 8, 24]  # not an affine progression, prime length
        parts = [
            BvExtract(BvVar("a"), iconst(low), iconst(8)) for low in offsets
        ]
        rolled = reroll(BvConcat(tuple(parts)))
        assert isinstance(rolled, BvConcat)

    def test_single_part_collapses(self):
        part = BvExtract(BvVar("a"), iconst(0), iconst(8))
        assert reroll(BvConcat((part,))) == part


class TestCanonicalize:
    def test_two_level_nest(self):
        func = canonicalize(_simd_add(8, 8))
        body = func.body
        assert isinstance(body, ForConcat)
        assert isinstance(body.body, ForConcat)
        assert body.body.count == IConst(1)

    def test_scalar_gets_nested(self):
        body = BvBinOp("bvadd", BvVar("a"), BvVar("b"))
        func = SemanticsFunction(
            "sadd", (Input("a", iconst(32)), Input("b", iconst(32))), {}, body
        )
        canonical = canonicalize(func)
        assert isinstance(canonical.body, ForConcat)
        assert isinstance(canonical.body.body, ForConcat)

    def test_canonicalize_preserves_semantics(self):
        func = _simd_add(4, 16)
        canonical = canonicalize(func)
        env = {"a": bv(0x123456789ABCDEF0, 64), "b": bv(0x1010101010101010, 64)}
        assert interpret(canonical, env).value == interpret(func, env).value

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, (1 << 32) - 1), st.integers(0, (1 << 32) - 1))
    def test_canonical_equals_unrolled(self, a, b):
        func = _simd_add(4, 8)
        canonical = canonicalize(func)
        env = {"a": bv(a, 32), "b": bv(b, 32)}
        assert interpret(canonical, env).value == interpret(func, env).value


class TestConstProp:
    def test_single_iteration_loop_removed(self):
        inner = BvExtract(BvVar("a"), iconst(0), iconst(8))
        body = ForConcat("i", iconst(1), inner)
        assert propagate_constants(body) == inner

    def test_cast_width_folded(self):
        body = BvCast("sext", BvVar("a"), iconst(2) * iconst(8))
        folded = propagate_constants(body)
        assert folded.new_width == IConst(16)


class TestPrinter:
    def test_pretty_mentions_structure(self):
        text = pretty(canonicalize(_simd_add(4, 8)))
        assert "for-concat" in text
        assert "bvadd" in text
        assert "%a" in text

    def test_pretty_shows_params(self):
        func = SemanticsFunction(
            "f", (Input("a", iparam("w")),), {"w": 32}, BvVar("a")
        )
        assert "w=32" in pretty(func)
