"""Tests for the cross-layer IR verifier (repro.analysis)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    DiagnosticSink,
    IRVerificationError,
    Provenance,
    Severity,
    check_semantics,
    rule_doc,
    set_verification,
    verification,
    verification_enabled,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.hooks import ENV_FLAG
from repro.isa.registry import load_isa

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestDiagnosticsEngine:
    def test_emit_and_counts(self):
        sink = DiagnosticSink()
        sink.emit("hydride/binop-width", "w1", Severity.ERROR)
        sink.emit("hydride/const-range", "w2", Severity.WARNING)
        assert sink.error_count == 1
        assert sink.warning_count == 1
        assert sink.has_errors()
        assert [d.rule for d in sink.errors()] == ["hydride/binop-width"]

    def test_unknown_rule_rejected(self):
        sink = DiagnosticSink()
        with pytest.raises(KeyError):
            sink.emit("hydride/no-such-rule", "boom")

    def test_rule_catalog_documented(self):
        for rule in RULES:
            layer, _, defect = rule.partition("/")
            assert layer in {"spec", "hydride", "halide", "synth", "llvm"}
            assert defect
            assert rule_doc(rule)

    def test_storage_cap_keeps_counts(self):
        sink = DiagnosticSink(max_per_rule=3)
        for i in range(10):
            sink.emit("llvm/redef", f"dup {i}")
        assert len(sink.diagnostics) == 3
        assert sink.by_rule()["llvm/redef"] == 10
        assert sink.error_count == 10

    def test_provenance_format(self):
        where = Provenance(isa="x86", instruction="_mm_add_epi16", stage="parse")
        sink = DiagnosticSink()
        diag = sink.emit("hydride/binop-width", "widths 16 and 8", provenance=where)
        text = diag.format()
        assert "error[hydride/binop-width]" in text
        assert "x86:_mm_add_epi16" in text
        assert "@parse" in text

    def test_json_roundtrip(self):
        sink = DiagnosticSink()
        sink.emit(
            "halide/slice-bounds",
            "slice [8, 40) of 32 lanes",
            Severity.ERROR,
            Provenance(instruction="blur", stage="lowering"),
        )
        payload = json.loads(sink.to_json())
        assert payload["summary"]["errors"] == 1
        [record] = payload["diagnostics"]
        assert record["rule"] == "halide/slice-bounds"
        assert record["instruction"] == "blur"

    def test_raise_if_errors(self):
        sink = DiagnosticSink()
        sink.emit("llvm/undef-value", "use of %ghost")
        with pytest.raises(IRVerificationError) as info:
            sink.raise_if_errors("translate:w0")
        assert "translate:w0" in str(info.value)
        assert info.value.diagnostics[0].rule == "llvm/undef-value"


class TestVerificationGating:
    def test_env_flag_default_off(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        set_verification(None)
        assert not verification_enabled()

    @pytest.mark.parametrize("value,expected", [
        ("1", True),
        ("true", True),
        ("0", False),
        ("off", False),
        ("", False),
    ])
    def test_env_flag_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(ENV_FLAG, value)
        set_verification(None)
        assert verification_enabled() is expected

    def test_context_manager_restores(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        set_verification(None)
        with verification():
            assert verification_enabled()
            with verification(False):
                assert not verification_enabled()
            assert verification_enabled()
        assert not verification_enabled()


class TestCorpusClean:
    """The shipped spec corpora must lint clean (the CI gate)."""

    @pytest.mark.parametrize("isa", ["x86", "hvx", "arm"])
    def test_sampled_semantics_check_clean(self, isa):
        loaded = load_isa(isa)
        names = sorted(loaded.semantics)[::31]  # every 31st, cheap but broad
        for name in names:
            spec = loaded.spec(name)
            diagnostics = check_semantics(
                loaded.semantics[name],
                declared_output_width=spec.output_width,
                isa=isa,
            )
            errors = [d for d in diagnostics if d.severity is Severity.ERROR]
            assert errors == [], [d.format() for d in errors]


class TestLintCli:
    def test_smoke_mode_exits_clean(self, capsys):
        status = lint_main(["--smoke"])
        out = capsys.readouterr().out
        assert status == 0
        assert "OK" in out
        for isa in ("x86", "hvx", "arm"):
            assert isa in out

    def test_json_output(self, capsys):
        status = lint_main(["--isa", "hvx", "--smoke", "--json"])
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0

    def test_script_entry_point(self):
        """scripts/lint_ir.py --smoke is the tier-1 lint gate."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "lint_ir.py"),
             "--smoke", "--isa", "hvx"],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout
