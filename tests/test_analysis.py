"""Tests for the cross-layer IR verifier (repro.analysis)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    DiagnosticSink,
    IRVerificationError,
    Provenance,
    Severity,
    check_semantics,
    rule_doc,
    set_verification,
    verification,
    verification_enabled,
)
from repro.analysis.cli import (
    baseline_counts,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.hooks import ENV_FLAG
from repro.analysis.sarif import to_sarif
from repro.isa.registry import load_isa

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestDiagnosticsEngine:
    def test_emit_and_counts(self):
        sink = DiagnosticSink()
        sink.emit("hydride/binop-width", "w1", Severity.ERROR)
        sink.emit("hydride/const-range", "w2", Severity.WARNING)
        assert sink.error_count == 1
        assert sink.warning_count == 1
        assert sink.has_errors()
        assert [d.rule for d in sink.errors()] == ["hydride/binop-width"]

    def test_unknown_rule_rejected(self):
        sink = DiagnosticSink()
        with pytest.raises(KeyError):
            sink.emit("hydride/no-such-rule", "boom")

    def test_rule_catalog_documented(self):
        for rule in RULES:
            if rule == "A-INTERNAL":
                # The lint driver's crash tripwire is deliberately not
                # namespaced: it marks the run, not a layer.
                assert rule_doc(rule)
                continue
            layer, _, defect = rule.partition("/")
            assert layer in {"spec", "hydride", "halide", "synth", "llvm", "sem"}
            assert defect
            assert rule_doc(rule)

    def test_storage_cap_keeps_counts(self):
        sink = DiagnosticSink(max_per_rule=3)
        for i in range(10):
            sink.emit("llvm/redef", f"dup {i}")
        assert len(sink.diagnostics) == 3
        assert sink.by_rule()["llvm/redef"] == 10
        assert sink.error_count == 10

    def test_provenance_format(self):
        where = Provenance(isa="x86", instruction="_mm_add_epi16", stage="parse")
        sink = DiagnosticSink()
        diag = sink.emit("hydride/binop-width", "widths 16 and 8", provenance=where)
        text = diag.format()
        assert "error[hydride/binop-width]" in text
        assert "x86:_mm_add_epi16" in text
        assert "@parse" in text

    def test_json_roundtrip(self):
        sink = DiagnosticSink()
        sink.emit(
            "halide/slice-bounds",
            "slice [8, 40) of 32 lanes",
            Severity.ERROR,
            Provenance(instruction="blur", stage="lowering"),
        )
        payload = json.loads(sink.to_json())
        assert payload["summary"]["errors"] == 1
        [record] = payload["diagnostics"]
        assert record["rule"] == "halide/slice-bounds"
        assert record["instruction"] == "blur"

    def test_raise_if_errors(self):
        sink = DiagnosticSink()
        sink.emit("llvm/undef-value", "use of %ghost")
        with pytest.raises(IRVerificationError) as info:
            sink.raise_if_errors("translate:w0")
        assert "translate:w0" in str(info.value)
        assert info.value.diagnostics[0].rule == "llvm/undef-value"


class TestVerificationGating:
    def test_env_flag_default_off(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        set_verification(None)
        assert not verification_enabled()

    @pytest.mark.parametrize("value,expected", [
        ("1", True),
        ("true", True),
        ("0", False),
        ("off", False),
        ("", False),
    ])
    def test_env_flag_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(ENV_FLAG, value)
        set_verification(None)
        assert verification_enabled() is expected

    def test_context_manager_restores(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        set_verification(None)
        with verification():
            assert verification_enabled()
            with verification(False):
                assert not verification_enabled()
            assert verification_enabled()
        assert not verification_enabled()


class TestCorpusClean:
    """The shipped spec corpora must lint clean (the CI gate)."""

    @pytest.mark.parametrize("isa", ["x86", "hvx", "arm"])
    def test_sampled_semantics_check_clean(self, isa):
        loaded = load_isa(isa)
        names = sorted(loaded.semantics)[::31]  # every 31st, cheap but broad
        for name in names:
            spec = loaded.spec(name)
            diagnostics = check_semantics(
                loaded.semantics[name],
                declared_output_width=spec.output_width,
                isa=isa,
            )
            errors = [d for d in diagnostics if d.severity is Severity.ERROR]
            assert errors == [], [d.format() for d in errors]


class TestLintCli:
    def test_smoke_mode_exits_clean(self, capsys):
        status = lint_main(["--smoke"])
        out = capsys.readouterr().out
        assert status == 0
        assert "OK" in out
        for isa in ("x86", "hvx", "arm"):
            assert isa in out

    def test_json_output(self, capsys):
        status = lint_main(["--isa", "hvx", "--smoke", "--json"])
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0

    def test_script_entry_point(self):
        """scripts/lint_ir.py --smoke is the tier-1 lint gate."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "lint_ir.py"),
             "--smoke", "--isa", "hvx"],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

    def test_internal_checker_crash_fails_run(self, monkeypatch, capsys):
        """A checker crash must surface as A-INTERNAL and a nonzero exit,
        never as a silently-green run (the historical failure mode)."""
        import repro.analysis.semantic_check as semantic_check

        def boom(*args, **kwargs):
            raise RuntimeError("injected checker crash")

        monkeypatch.setattr(semantic_check, "check_semantic_rules", boom)
        status = lint_main(["--isa", "hvx", "--smoke"])
        out = capsys.readouterr().out
        assert status == 1
        assert "A-INTERNAL" in out
        assert "injected checker crash" in out
        assert "FAIL" in out


class TestSarifOutput:
    def _sink(self):
        sink = DiagnosticSink()
        sink.emit(
            "hydride/binop-width",
            "widths 16 and 8",
            Severity.ERROR,
            Provenance(isa="x86", instruction="_mm_add_epi16", stage="parse"),
        )
        sink.emit(
            "sem/dead-lanes",
            "input a: 64 of 128 bits never observed",
            Severity.NOTE,
            Provenance(isa="x86", instruction="_mm_mul_epi32", stage="absint"),
        )
        return sink

    def test_to_sarif_structure(self):
        payload = to_sarif(self._sink().diagnostics)
        assert payload["version"] == "2.1.0"
        [run] = payload["runs"]
        driver = run["tool"]["driver"]
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert set(rule_ids) == {"hydride/binop-width", "sem/dead-lanes"}
        results = run["results"]
        assert [r["level"] for r in results] == ["error", "note"]
        assert results[0]["ruleId"] == "hydride/binop-width"
        assert rule_ids[results[0]["ruleIndex"]] == "hydride/binop-width"
        [location] = results[0]["locations"]
        [logical] = location["logicalLocations"]
        assert logical["fullyQualifiedName"] == "x86:_mm_add_epi16"
        assert logical["kind"] == "parse"

    def test_cli_sarif_format(self, capsys):
        status = lint_main(["--isa", "hvx", "--smoke", "--format", "sarif"])
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["tool"]["driver"]["name"] == "hydride-lint"

    def test_cli_sarif_output_file(self, tmp_path):
        out = tmp_path / "report.sarif"
        status = lint_main(
            ["--isa", "hvx", "--smoke", "--format", "sarif",
             "--output", str(out)]
        )
        assert status == 0
        payload = json.loads(out.read_text())
        assert payload["version"] == "2.1.0"


class TestBaselineDiff:
    def _diags(self, extra=0):
        sink = DiagnosticSink()
        for _ in range(2 + extra):
            sink.emit(
                "sem/dead-lanes",
                "input a: bits never observed",
                Severity.NOTE,
                Provenance(isa="x86", instruction="foo", stage="absint"),
            )
        return sink.diagnostics

    def test_counts_and_clean_diff(self, tmp_path):
        diagnostics = self._diags()
        counts = baseline_counts(diagnostics)
        assert counts == {"sem/dead-lanes|x86|foo": 2}
        path = tmp_path / "baseline.json"
        write_baseline(str(path), diagnostics)
        baseline = load_baseline(str(path))
        assert diff_against_baseline(diagnostics, baseline) == []

    def test_new_findings_detected(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(str(path), self._diags())
        baseline = load_baseline(str(path))
        # One more of an existing key...
        grown = diff_against_baseline(self._diags(extra=1), baseline)
        assert grown == [("sem/dead-lanes|x86|foo", 3, 2)]
        # ... and a brand-new key (allowed count 0).
        sink = DiagnosticSink()
        sink.emit(
            "sem/select-const",
            "condition constant",
            Severity.WARNING,
            Provenance(isa="arm", instruction="bar", stage="absint"),
        )
        fresh = diff_against_baseline(sink.diagnostics, baseline)
        assert fresh == [("sem/select-const|arm|bar", 1, 0)]

    def test_disappearing_diagnostics_are_fine(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(str(path), self._diags(extra=3))
        assert diff_against_baseline(self._diags(), load_baseline(str(path))) == []

    def test_cli_round_trip(self, tmp_path, capsys):
        """--write-baseline followed by --baseline must be a clean run;
        an empty baseline must fail once any diagnostic exists."""
        path = tmp_path / "baseline.json"
        assert lint_main(
            ["--isa", "x86", "--write-baseline", str(path)]
        ) == 0
        assert lint_main(["--isa", "x86", "--baseline", str(path)]) == 0
        capsys.readouterr()
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"counts": {}}))
        # The x86 corpus carries known sem/* notes, so an empty baseline
        # must flag them as new findings.
        assert lint_main(["--isa", "x86", "--baseline", str(empty)]) == 1
        assert "not in the baseline" in capsys.readouterr().out
