"""The modern CDCL core: Luby restarts, VSIDS decay, DB reduction.

Covers the heuristic upgrade in :mod:`repro.smt.sat` — the Luby
sequence itself, activity decay ordering, LBD-based learned-clause
database reduction (which must never delete reason/glue clauses or
change verdicts), restart policies, and a randomized equivalence suite
pinning every configuration to the same verdicts on random CNFs.
"""

import random

import pytest

from repro.smt.sat import CdclSolver, SolverConfig, luby, solve_cnf


def random_cnf(rng: random.Random, num_vars: int, num_clauses: int):
    """Random 3-ish-SAT without tautology clauses (see test_smt_incremental)."""
    clauses = []
    while len(clauses) < num_clauses:
        width = rng.randint(1, 3)
        chosen = rng.sample(range(1, num_vars + 1), width)
        clause = [v if rng.random() < 0.5 else -v for v in chosen]
        if any(-lit in clause for lit in clause):
            continue
        clauses.append(clause)
    return clauses


def check_model(clauses, model):
    for clause in clauses:
        assert any(
            model[abs(lit)] == (lit > 0) for lit in clause
        ), f"model does not satisfy {clause}"


def pigeonhole(pigeons: int, holes: int):
    """PHP(p, h): UNSAT for p > h, and resolution-hard — a reliable way
    to force real conflict analysis and clause learning."""

    def hole_var(p, h):
        return p * holes + h + 1

    clauses = [[hole_var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-hole_var(p1, h), -hole_var(p2, h)])
    return pigeons * holes, clauses


class TestLuby:
    def test_first_fifteen_elements(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_block_maxima_are_powers_of_two(self):
        # Element 2^k - 1 closes a block with value 2^(k-1).
        for k in range(1, 10):
            assert luby((1 << k) - 1) == 1 << (k - 1)

    def test_one_indexed(self):
        with pytest.raises(ValueError):
            luby(0)


class TestSolverConfig:
    def test_legacy_pins_pre_upgrade_heuristics(self):
        legacy = SolverConfig.legacy()
        assert legacy.var_decay == pytest.approx(1.0 / 1.05)
        assert legacy.restart == "geometric"
        assert not legacy.reduce_db
        assert legacy.branch_seed is None

    def test_modern_defaults(self):
        config = SolverConfig()
        assert config.restart == "luby"
        assert config.reduce_db
        assert 0.0 < config.var_decay < 1.0


class TestActivityDecay:
    def test_increment_grows_per_conflict(self):
        solver = CdclSolver(config=SolverConfig(var_decay=0.5))
        solver._decay_activity()
        solver._decay_activity()
        assert solver.activity_inc == pytest.approx(4.0)

    def test_later_bumps_outrank_earlier_ones(self):
        """With decay on, a variable bumped after a conflict beats one
        bumped before it — recency drives the VSIDS ordering."""
        solver = CdclSolver(config=SolverConfig(var_decay=0.5))
        solver.ensure_vars(2)
        solver._bump(1)
        solver._decay_activity()
        solver._bump(2)
        assert solver.activity[2] > solver.activity[1]

    def test_no_decay_means_no_ordering(self):
        solver = CdclSolver(config=SolverConfig(var_decay=1.0))
        solver.ensure_vars(2)
        solver._bump(1)
        solver._decay_activity()
        solver._bump(2)
        assert solver.activity[2] == solver.activity[1]

    def test_rescale_preserves_relative_order(self):
        solver = CdclSolver(config=SolverConfig(var_decay=0.5))
        solver.ensure_vars(2)
        # Push the increment past the rescale threshold.
        solver._bump(1)
        for _ in range(400):
            solver._decay_activity()
        solver._bump(2)
        assert solver.activity[2] > solver.activity[1]
        assert solver.activity_inc < 1e100


class TestRestarts:
    def test_none_policy_never_restarts(self):
        num_vars, clauses = pigeonhole(5, 4)
        solver = CdclSolver(
            num_vars, clauses, config=SolverConfig(restart="none")
        )
        assert not solver.solve().satisfiable
        assert solver.restarts == 0

    def test_luby_restarts_fire_on_conflict_rich_instances(self):
        num_vars, clauses = pigeonhole(5, 4)
        solver = CdclSolver(
            num_vars, clauses, config=SolverConfig(restart="luby", luby_unit=4)
        )
        assert not solver.solve().satisfiable
        assert solver.restarts > 0
        assert solver.total_conflicts > solver.restarts

    def test_geometric_restarts_fire(self):
        num_vars, clauses = pigeonhole(5, 4)
        solver = CdclSolver(
            num_vars,
            clauses,
            config=SolverConfig(restart="geometric", restart_base=4),
        )
        assert not solver.solve().satisfiable
        assert solver.restarts > 0


class TestDbReduction:
    def test_reduction_fires_and_verdict_survives(self):
        num_vars, clauses = pigeonhole(5, 4)
        solver = CdclSolver(
            num_vars,
            clauses,
            config=SolverConfig(luby_unit=4, reduce_interval=5),
        )
        assert not solver.solve().satisfiable
        assert solver.db_reductions > 0
        assert solver.clauses_deleted > 0

    def test_glue_clauses_never_deleted(self):
        """With the keep threshold above every clause's LBD, reduction
        passes run but delete nothing."""
        num_vars, clauses = pigeonhole(5, 4)
        solver = CdclSolver(
            num_vars,
            clauses,
            config=SolverConfig(
                luby_unit=4, reduce_interval=5, reduce_keep_lbd=10_000
            ),
        )
        assert not solver.solve().satisfiable
        assert solver.db_reductions > 0
        assert solver.clauses_deleted == 0

    def test_reason_clauses_locked(self):
        """A learned clause serving as the reason of a live assignment
        must survive reduction even when its LBD marks it deletable."""
        solver = CdclSolver(
            4,
            config=SolverConfig(
                reduce_db=True, reduce_fraction=1.0, reduce_keep_lbd=0
            ),
        )
        locked = [1, 2]
        disposable = [3, 4]
        for clause in (locked, disposable):
            solver.learned.append(clause)
            solver._lbd[id(clause)] = 5
            solver._watch(clause[0], clause)
            solver._watch(clause[1], clause)
        solver.reason[1] = locked
        solver._reduce_db()
        assert locked in solver.learned
        assert disposable not in solver.learned
        assert all(
            disposable not in watchers for watchers in solver.watches.values()
        )

    def test_reduction_does_not_change_answers(self):
        rng = random.Random(4242)
        aggressive = SolverConfig(luby_unit=2, reduce_interval=3)
        for _ in range(20):
            num_vars = rng.randint(6, 14)
            clauses = random_cnf(rng, num_vars, rng.randint(10, 60))
            reference = solve_cnf(num_vars, clauses)
            reduced = CdclSolver(num_vars, clauses, config=aggressive).solve()
            assert reduced.satisfiable == reference.satisfiable
            if reduced.satisfiable:
                check_model(clauses, reduced.model)


class TestConfigEquivalence:
    """Every heuristic configuration is a complete decision procedure:
    all of them must agree on satisfiability, and every model returned
    must actually satisfy the formula."""

    CONFIGS = (
        SolverConfig(),
        SolverConfig.legacy(),
        SolverConfig(restart="none"),
        SolverConfig(restart="geometric", restart_base=8),
        SolverConfig(luby_unit=1, reduce_interval=4),
        SolverConfig(branch_seed=7, random_branch_freq=0.3),
        SolverConfig(var_decay=0.6, branch_seed=11, random_branch_freq=0.1),
    )

    def test_verdicts_agree_on_random_cnfs(self):
        rng = random.Random(1717)
        for _ in range(15):
            num_vars = rng.randint(6, 12)
            clauses = random_cnf(rng, num_vars, rng.randint(8, 50))
            verdicts = []
            for config in self.CONFIGS:
                result = CdclSolver(num_vars, clauses, config=config).solve()
                verdicts.append(result.satisfiable)
                if result.satisfiable:
                    check_model(clauses, result.model)
            assert len(set(verdicts)) == 1, f"configs disagree on {clauses}"

    def test_verdicts_agree_under_assumptions(self):
        rng = random.Random(8888)
        for _ in range(10):
            num_vars = rng.randint(6, 10)
            clauses = random_cnf(rng, num_vars, rng.randint(8, 40))
            assumed = [
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, num_vars + 1), 2)
            ]
            verdicts = []
            for config in self.CONFIGS:
                solver = CdclSolver(num_vars, clauses, config=config)
                result = solver.solve(assumptions=assumed)
                verdicts.append(result.satisfiable)
                if result.satisfiable:
                    check_model(clauses, result.model)
                    for lit in assumed:
                        assert result.model[abs(lit)] == (lit > 0)
            assert len(set(verdicts)) == 1

    def test_upgraded_matches_legacy_on_pigeonhole(self):
        num_vars, clauses = pigeonhole(4, 3)
        modern = CdclSolver(num_vars, clauses, config=SolverConfig()).solve()
        legacy = CdclSolver(
            num_vars, clauses, config=SolverConfig.legacy()
        ).solve()
        assert not modern.satisfiable
        assert not legacy.satisfiable
