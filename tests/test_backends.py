"""Tests for the compiler backends (Hydride, Halide-native, LLVM, Rake)."""

import pytest

from repro.backend import (
    CompileError,
    HalideNativeCompiler,
    HydrideCompiler,
    LlvmGenericCompiler,
    RakeCompiler,
)
from repro.backend.rake import RakeHvxInterpreter, rake_dictionary, rake_supported_count
from repro.autollvm import build_dictionary
from repro.halide.dsl import Buffer, Func, Var, cast, sat_cast
from repro.halide.lowering import lower_func
from repro.synthesis import CegisOptions, MemoCache

x, y = Var("x"), Var("y")


@pytest.fixture(scope="module")
def dictionary():
    return build_dictionary(("x86", "hvx", "arm"))


@pytest.fixture(scope="module")
def add_kernel():
    a, b = Buffer("a", 16), Buffer("b", 16)
    f = Func("vadd")
    f[x, y] = a[y, x] + b[y, x]
    f.vectorize(x, 32)
    return lower_func(f, {"x": 256, "y": 16})


@pytest.fixture(scope="module")
def hydride(dictionary):
    return HydrideCompiler(
        dictionary=dictionary,
        cache=MemoCache(),
        cegis=CegisOptions(timeout_seconds=20.0, scale_factor=8),
    )


class TestHydrideBackend:
    def test_compiles_add(self, hydride, add_kernel):
        compiled = hydride.compile(add_kernel, "hvx")
        assert compiled.compiler == "hydride"
        names = [op.name for op in compiled.body]
        assert any("vadd" in n for n in names)
        assert any(n.startswith("load.") for n in names)
        assert any(n.startswith("store.") for n in names)

    def test_cache_speeds_recompilation(self, hydride, add_kernel):
        first = hydride.compile(add_kernel, "hvx")
        second = hydride.compile(add_kernel, "hvx")
        assert second.compile_seconds < max(first.compile_seconds, 0.5)

    def test_emit_llvm(self, hydride, add_kernel):
        text = hydride.emit_llvm(add_kernel, "hvx")
        assert "@autollvm." in text

    def test_split_on_wide_window(self, dictionary):
        """A window too large for synthesis splits and still compiles."""
        a = Buffer("a", 8, signed=False)
        f = Func("widechain")
        total = None
        for dx in range(-3, 4):
            term = cast(32, a[y, x + dx], signed=False) * (dx + 5)
            total = term if total is None else total + term
        f[x, y] = sat_cast(8, total >> 6, signed=False)
        f.vectorize(x, 64)
        kernel = lower_func(f, {"x": 256, "y": 4})
        compiler = HydrideCompiler(
            dictionary=dictionary,
            cache=MemoCache(),
            cegis=CegisOptions(timeout_seconds=5.0, scale_factor=8),
        )
        compiled = compiler.compile(kernel, "hvx")
        assert compiled.accounting.splits >= 1
        assert compiled.body


class TestBaselines:
    def test_halide_native_compiles(self, add_kernel):
        compiled = HalideNativeCompiler().compile(add_kernel, "hvx")
        assert any("vadd" in op.name for op in compiled.body)

    def test_llvm_generic_expands_saturation_on_hvx(self):
        a, b = Buffer("a", 8, signed=False), Buffer("b", 8, signed=False)
        f = Func("satadd")
        from repro.halide.dsl import saturating_add

        f[x, y] = saturating_add(a[y, x], b[y, x])
        f.vectorize(x, 128)
        kernel = lower_func(f, {"x": 256, "y": 4})
        native = HalideNativeCompiler().compile(kernel, "hvx")
        generic = LlvmGenericCompiler().compile(kernel, "hvx")
        # LLVM's Hexagon lowering has no saturating add: many more ops.
        assert len(generic.body) > len(native.body)
        assert generic.simulate().total_cycles > native.simulate().total_cycles

    def test_llvm_x86_has_saturation(self):
        from repro.halide.dsl import saturating_add

        a, b = Buffer("a", 8, signed=False), Buffer("b", 8, signed=False)
        f = Func("satadd")
        f[x, y] = saturating_add(a[y, x], b[y, x])
        f.vectorize(x, 64)
        kernel = lower_func(f, {"x": 256, "y": 4})
        native = HalideNativeCompiler().compile(kernel, "x86")
        generic = LlvmGenericCompiler().compile(kernel, "x86")
        # Mature x86 lowering: parity on this kernel.
        assert len(generic.body) == len(native.body)

    def test_dot_product_rules_fire(self):
        from repro.workloads.dnn import matmul_stage

        func, extents = matmul_stage(1)(32)
        kernel = lower_func(func, extents)
        native = HalideNativeCompiler().compile(kernel, "hvx")
        assert any("dmpy" in op.name for op in native.body)


class TestRake:
    def test_arm_always_fails(self, dictionary, add_kernel):
        rake = RakeCompiler(dictionary=dictionary)
        with pytest.raises(CompileError):
            rake.compile(add_kernel, "arm")

    def test_subset_smaller_than_full(self, dictionary):
        restricted = rake_dictionary(dictionary)
        full_hvx = {
            b.spec.name for op in dictionary.ops for b in op.bindings_for("hvx")
        }
        rake_hvx = {
            b.spec.name for op in restricted.ops for b in op.bindings_for("hvx")
        }
        assert rake_hvx < full_hvx
        assert "V6_vrmpyubub" not in rake_hvx
        assert "V6_vshuffvdd_h" not in rake_hvx

    def test_supported_count(self):
        count = rake_supported_count()
        from repro.isa.registry import load_isa

        assert count < len(load_isa("hvx"))

    def test_wide_reduction_rejected(self, dictionary):
        from repro.workloads.dnn import _conv_nn

        func, extents = _conv_nn(64)
        kernel = lower_func(func, extents)
        rake = RakeCompiler(dictionary=dictionary)
        with pytest.raises(CompileError):
            rake.compile(kernel, "hvx")

    def test_buggy_interpreter_diverges_on_shifts(self):
        """The Table 2 mechanism: Rake's unmasked shift amounts."""
        from repro.bitvector import bv
        from repro.isa.registry import load_isa

        loaded = load_isa("hvx")
        spec = loaded.spec("V6_vaslh")
        env = {
            "Vu": bv((0x0101 << 16) | 0x0101, 1024).zext(1024),
            "Rt": bv(100, 32),  # amount >= element width
        }
        buggy = RakeHvxInterpreter(buggy=True).execute(spec, env)
        fixed = RakeHvxInterpreter(buggy=False).execute(spec, env)
        assert buggy.value != fixed.value

    def test_fixed_interpreter_masks_amounts(self):
        from repro.bitvector import bv
        from repro.isa.registry import load_isa

        loaded = load_isa("hvx")
        spec = loaded.spec("V6_vaslh")
        env = {"Vu": bv(0x0101, 1024), "Rt": bv(100, 32)}
        fixed = RakeHvxInterpreter(buggy=False).execute(spec, env)
        # Masked amount: 100 & 15 == 4.
        assert fixed.extract(15, 0).value == (0x0101 << 4) & 0xFFFF
