"""Tests for the abstract-interpretation engine (repro.analysis.absint).

The centerpiece is the soundness property: for well over a thousand
seeded random (expression, input) pairs drawn from the shipped spec
corpora, the abstract result must contain the concrete interpreter's
output — under top inputs, under the hull of the sampled inputs, and
under singleton (constant) inputs.  A companion bug-injection suite
mutates individual transfer functions and requires the same property to
catch every mutation, which is what makes the soundness test a real
tripwire rather than a tautology.
"""

import random

import pytest

from repro.analysis import absint
from repro.analysis.absint import (
    abstract_semantics,
    const,
    from_ints,
    lane_values,
    make,
    pack_lanes,
    provably_disagrees,
    screen_cached_program,
    top,
)
from repro.autollvm import build_dictionary
from repro.halide import ir as hir
from repro.hydride_ir.ast import BvBinOp, BvCast, BvCmp, BvUnOp
from repro.hydride_ir.interp import (
    SemanticsError,
    interpret,
    resolved_input_widths,
)
from repro.isa.fuzz import _random_inputs, derive_seed
from repro.isa.registry import load_isa
from repro.synthesis import CegisOptions, build_grammar, synthesize
from repro.synthesis.cache import CacheEntry, canonical_key
from repro.synthesis.program import SConstant, SInput

SEED = 20240809
PAIR_TARGET = 1000


@pytest.fixture(scope="module")
def dictionary():
    return build_dictionary(("x86", "hvx", "arm"))


@pytest.fixture(scope="module")
def corpus():
    """Every parsed semantics function across the shipped ISA corpora."""
    specs = []
    for isa in ("x86", "hvx", "arm"):
        loaded = load_isa(isa)
        for name in sorted(loaded.semantics):
            specs.append((isa, name, loaded.semantics[name]))
    return specs


# ----------------------------------------------------------------------
# Lattice unit tests
# ----------------------------------------------------------------------


class TestLattice:
    def test_const_is_fully_known(self):
        v = const(0b1010, 8)
        assert v.is_const() and v.const_value() == 0b1010
        assert v.ones == 0b1010
        assert v.zeros == 0xFF ^ 0b1010
        assert v.contains(0b1010) and not v.contains(0b1011)

    def test_top_contains_everything(self):
        v = top(8)
        assert all(v.contains(x) for x in range(256))

    def test_make_normalises_known_bits_into_ranges(self):
        # Sign bit known one => unsigned range starts at 128 and the
        # signed range is negative.
        v = make(8, ones=0x80)
        assert v.umin >= 0x80
        assert v.smax < 0

    def test_join_covers_both_sides(self):
        a, b = const(3, 8), const(12, 8)
        j = a.join(b)
        assert j.contains(3) and j.contains(12)
        # Common known bits survive: both are < 16.
        assert j.zeros & 0xF0 == 0xF0

    def test_join_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            const(1, 8).join(const(1, 16))

    def test_widen_terminates_ascending_chain(self):
        # An ascending chain must reach a fixpoint quickly: unstable
        # bounds are thrown to the extremes rather than nudged, and the
        # known-bit masks only ever shrink.
        v = const(0, 16)
        states = [v]
        for i in range(1, 200):
            v = v.widen(const(i, 16))
            states.append(v)
        distinct = len(set(states))
        assert distinct <= 20, distinct
        assert all(v.contains(i) for i in range(200))

    def test_widen_covers_join(self):
        a = from_ints([5, 9], 8)
        b = from_ints([2, 30], 8)
        w = a.widen(b)
        j = a.join(b)
        for x in range(256):
            if j.contains(x):
                assert w.contains(x)

    def test_from_ints_is_a_hull(self):
        values = [7, 12, 200]
        hull = from_ints(values, 8)
        assert all(hull.contains(v) for v in values)

    def test_provably_disagrees_on_disjoint_ranges(self):
        assert provably_disagrees(from_ints([0, 10], 8), from_ints([20, 30], 8))
        assert provably_disagrees(from_ints([20, 30], 8), from_ints([0, 10], 8))

    def test_provably_disagrees_on_bit_conflict(self):
        a = make(8, ones=0x01)
        b = make(8, zeros=0x01)
        assert provably_disagrees(a, b)

    def test_no_disagreement_when_overlapping(self):
        # 8 is representable by both hulls, so no proof of disagreement.
        assert not provably_disagrees(from_ints([0, 10], 8), const(8, 8))
        assert not provably_disagrees(from_ints([8, 30], 8), from_ints([0, 10], 8))
        assert not provably_disagrees(top(8), const(3, 8))

    def test_lane_round_trip(self):
        lanes = [const(1, 8), const(2, 8), const(255, 8), top(8)]
        packed = pack_lanes(lanes)
        assert packed.width == 32
        back = lane_values(packed, 8)
        assert [v.const_value() for v in back[:3]] == [1, 2, 255]
        assert all(back[3].contains(x) for x in range(256))


# ----------------------------------------------------------------------
# The soundness property (>= 1000 seeded (expression, input) pairs)
# ----------------------------------------------------------------------


def _abstract_regimes(func, envs):
    """Abstract results for top, hull and singleton input regimes.

    Immediates are held at their ``envs[0]`` values in every regime (and
    in the concrete runs) so index/width expressions agree between the
    abstract and concrete evaluations.
    """
    widths = resolved_input_widths(func, dict(func.params))
    imm_names = {inp.name for inp in func.inputs if inp.is_immediate}
    imm_params = dict(func.params)
    imm_inputs = {}
    for name in imm_names & set(widths):
        value = envs[0][name].value
        imm_params[name] = value
        if widths[name] > 0:
            imm_inputs[name] = const(value, widths[name])
    variable = {
        name: width
        for name, width in widths.items()
        if width > 0 and name not in imm_names
    }

    regimes = []
    regimes.append(
        ("top", abstract_semantics(func, inputs=imm_inputs, params=imm_params))
    )
    hull = dict(imm_inputs)
    for name, width in variable.items():
        hull[name] = from_ints([env[name].value for env in envs], width)
    regimes.append(
        ("hull", abstract_semantics(func, inputs=hull, params=imm_params))
    )
    for index, env in enumerate(envs):
        point = dict(imm_inputs)
        for name, width in variable.items():
            point[name] = const(env[name].value, width)
        regimes.append(
            (
                f"point{index}",
                abstract_semantics(func, inputs=point, params=imm_params),
            )
        )
    return regimes


def _sample_envs(func, rng, trials=2):
    widths = resolved_input_widths(func, dict(func.params))
    envs = [_random_inputs(widths, rng) for _ in range(trials)]
    imm_names = {inp.name for inp in func.inputs if inp.is_immediate}
    # Immediates are pinned to the first sample across all trials.
    for env in envs[1:]:
        for name in imm_names & set(env):
            env[name] = envs[0][name]
    return envs


class TestSoundnessProperty:
    def test_abstract_over_approximates_concrete(self, corpus):
        pairs = 0
        skipped = 0
        violations = []
        for isa, name, func in corpus:
            rng = random.Random(derive_seed(SEED, name))
            try:
                envs = _sample_envs(func, rng)
                outs = [interpret(func, env) for env in envs]
                regimes = _abstract_regimes(func, envs)
            except (SemanticsError, KeyError, ZeroDivisionError):
                skipped += 1
                continue
            for regime, abstract in regimes:
                point_index = (
                    int(regime[5:]) if regime.startswith("point") else None
                )
                for index, out in enumerate(outs):
                    if point_index is not None and index != point_index:
                        continue
                    pairs += 1
                    if abstract.width != out.width or not abstract.contains(
                        out.value
                    ):
                        violations.append((isa, name, regime))
        assert pairs >= PAIR_TARGET, (pairs, skipped)
        # A few corpus stragglers may use shapes the interpreter itself
        # rejects; anything beyond that means lost coverage.
        assert skipped <= len(corpus) // 10, skipped
        assert violations == [], violations[:20]


# ----------------------------------------------------------------------
# Bug injection: mutated transfers must be caught by the property
# ----------------------------------------------------------------------


def _specs_using(corpus, node_type, op_name, limit=12):
    found = []
    for _isa, _name, func in corpus:
        for node in func.body.walk():
            if isinstance(node, node_type) and node.op == op_name:
                found.append(func)
                break
        if len(found) >= limit:
            break
    return found


def _property_catches(corpus, node_type, op_name):
    """True when the singleton-input soundness check flags a violation."""
    specs = _specs_using(corpus, node_type, op_name)
    assert specs, f"no corpus spec exercises {op_name!r}"
    for func in specs:
        rng = random.Random(derive_seed(SEED + 1, func.name))
        for _ in range(4):
            try:
                envs = _sample_envs(func, rng, trials=1)
                out = interpret(func, envs[0])
                regimes = _abstract_regimes(func, envs)
            except (SemanticsError, KeyError, ZeroDivisionError):
                continue
            for _regime, abstract in regimes:
                if abstract.width != out.width or not abstract.contains(
                    out.value
                ):
                    return True
    return False


MUTATIONS = [
    # (table, key, node type, mutant) — each claims precision the real
    # operation does not have, or silently computes the wrong function.
    ("BINARY_TRANSFERS", "bvadd", BvBinOp, lambda a, b: const(0, a.width)),
    (
        "BINARY_TRANSFERS",
        "bvand",
        BvBinOp,
        # 'and' using 'or's known-ones: claims bits set that and clears.
        lambda a, b: make(a.width, zeros=a.zeros & b.zeros, ones=a.ones | b.ones),
    ),
    ("BINARY_TRANSFERS", "bvshl", BvBinOp, lambda a, b: a),
    ("UNARY_TRANSFERS", "bvnot", BvUnOp, lambda a: a),
    ("CMP_TRANSFERS", "bveq", BvCmp, lambda a, b: const(1, 1)),
    ("CAST_TRANSFERS", "zext", BvCast, lambda a, w: const(0, w)),
]


class TestMutationInjection:
    @pytest.mark.parametrize(
        "table,key,node_type,mutant",
        MUTATIONS,
        ids=[f"{t}:{k}" for t, k, _n, _m in MUTATIONS],
    )
    def test_soundness_check_catches_mutation(
        self, corpus, monkeypatch, table, key, node_type, mutant
    ):
        transfers = getattr(absint, table)
        assert key in transfers
        monkeypatch.setitem(transfers, key, mutant)
        assert _property_catches(corpus, node_type, key), (
            f"mutated {table}[{key!r}] survived the soundness property"
        )

    def test_unmutated_baseline_is_clean(self, corpus):
        # The detector itself must not fire on the real transfers for the
        # same specs it uses to catch mutations.
        for _table, key, node_type, _mutant in MUTATIONS:
            assert not _property_catches(corpus, node_type, key), key


# ----------------------------------------------------------------------
# Cache screening
# ----------------------------------------------------------------------


class TestScreenCachedProgram:
    def test_identity_program_passes(self):
        spec = hir.HLoad("ld0", 8, 16)
        assert screen_cached_program(spec, SInput("ld0", 8, 16)) == []

    def test_unknown_input_flagged(self):
        spec = hir.HLoad("ld0", 8, 16)
        problems = screen_cached_program(spec, SInput("ghost", 8, 16))
        assert any("unknown input" in p for p in problems)

    def test_width_mismatch_flagged(self):
        spec = hir.HLoad("ld0", 8, 16)
        problems = screen_cached_program(spec, SInput("ld0", 4, 16))
        assert any("width" in p for p in problems)

    def test_output_width_mismatch_flagged(self):
        spec = hir.HLoad("ld0", 8, 16)
        problems = screen_cached_program(spec, SConstant(0, 4, 16))
        assert any("output width" in p for p in problems)

    def test_provably_wrong_constant_flagged(self):
        spec = hir.HConst(3, 8, 16)
        problems = screen_cached_program(spec, SConstant(5, 8, 16))
        assert any("provably disagrees" in p for p in problems)

    def test_matching_constant_passes(self):
        spec = hir.HConst(3, 8, 16)
        assert screen_cached_program(spec, SConstant(3, 8, 16)) == []


class TestPersistentCacheScreen:
    def _window(self):
        return hir.HBin(
            "add", hir.HLoad("ld0", 8, 16), hir.HLoad("ld1", 8, 16)
        )

    def test_corrupt_entry_evicted_on_lookup(self, tmp_path, dictionary):
        from repro.service.store import PersistentCache, _key_hash

        spec = self._window()
        key = canonical_key(spec, "x86")
        cache = PersistentCache(tmp_path, "x86", dictionary)
        # A program whose input width contradicts the specification —
        # the shape a bit-rotted entry file takes after deserialization.
        cache.put_entry(
            key, CacheEntry(SInput("ld0", 4, 16), 1.0, ["ld0", "ld1"])
        )
        entry_file = cache.dir / f"e-{_key_hash(key)}.json"
        assert entry_file.exists()

        assert cache.lookup(spec, "x86") is None
        counters = cache.counters()
        assert counters["screened"] == 1
        assert counters["screen_failures"] == 1
        assert counters["hits"] == 0 and counters["misses"] == 1
        assert not entry_file.exists()
        assert key not in cache._entries

    def test_plausible_entry_survives_screen(self, tmp_path, dictionary):
        from repro.service.store import PersistentCache

        spec = self._window()
        key = canonical_key(spec, "x86")
        cache = PersistentCache(tmp_path, "x86", dictionary)
        # Not equal to the spec, but not provably wrong either — the
        # screen is a tripwire, not a verifier, so this must survive.
        cache.put_entry(
            key, CacheEntry(SInput("ld0", 8, 16), 1.0, ["ld0", "ld1"])
        )
        entry = cache.lookup(spec, "x86")
        assert entry is not None
        counters = cache.counters()
        assert counters["screened"] == 1
        assert counters["screen_failures"] == 0
        assert counters["hits"] == 1


# ----------------------------------------------------------------------
# CEGIS A/B: pruning must be invisible in the synthesized program
# ----------------------------------------------------------------------


class TestCegisAbsint:
    def test_prune_arm_synthesizes_identical_program(self, dictionary):
        from repro.perf import snapshot, snapshot_delta

        window = hir.HBin(
            "adds", hir.HLoad("ld0", 16, 16), hir.HLoad("ld1", 16, 16)
        )
        base = synthesize(
            window,
            build_grammar(window, "x86", dictionary),
            CegisOptions(timeout_seconds=30),
        )
        before = snapshot()
        pruned = synthesize(
            window,
            build_grammar(window, "x86", dictionary),
            CegisOptions(timeout_seconds=30, absint_prune=True),
        )
        delta = snapshot_delta(before)
        assert pruned.program.describe() == base.program.describe()
        assert delta["absint_checked"] > 0
        # Nonzero *pruning* on a real workload is enforced by
        # scripts/bench_synthesis.py (the A/B determinism gate).
