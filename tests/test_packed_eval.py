"""Packed integer evaluation vs the lane-structured reference path.

The batched enumerator evaluates candidates on plain Python integers
(:mod:`repro.bitvector.packed` + :func:`make_packed_applier`); the
legacy path evaluates per-lane :class:`BitVector` objects through
:func:`apply_node`.  These tests pin the two paths to each other — on
values, on rejection behaviour, and end-to-end on a synthesized window
with ``legacy_eval`` toggled.
"""

import random

import pytest

from repro.autollvm import build_dictionary
from repro.bitvector import (
    BitVector,
    Vector,
    concat_pair,
    gather_lanes,
    slice_half,
    splat,
    swizzle_order,
    vector_from_elems,
)
from repro.halide import ir as hir
from repro.synthesis import CegisOptions, build_grammar, synthesize
from repro.synthesis.program import (
    SConcat,
    SConstant,
    SInput,
    SSlice,
    SSwizzle,
    apply_node,
    make_packed_applier,
    swizzle_elements,
)

PATTERNS_TWO_SOURCE = ("interleave_full", "interleave_lo", "interleave_hi",
                       "concat_lo", "concat_hi")
PATTERNS_ONE_SOURCE = ("interleave_single", "deinterleave_single",
                       "rotate_right")


@pytest.fixture(scope="module")
def dictionary():
    return build_dictionary(("x86", "hvx", "arm"))


def rand_reg(rng: random.Random, width: int) -> int:
    return rng.getrandbits(width)


class TestPackedPrimitives:
    def test_splat_matches_vector_from_elems(self):
        for value in (-1, 0, 1, 0x7F, 0x80, 0xAB):
            expected = vector_from_elems([BitVector(value, 8)] * 4).bits
            assert splat(value, 4, 8) == expected.value

    def test_slice_half_matches_extract(self):
        rng = random.Random(5)
        for _ in range(50):
            width = rng.choice((16, 32, 64, 128))
            reg = rand_reg(rng, width)
            bv = BitVector(reg, width)
            assert slice_half(reg, width, high=False) == bv.extract(
                width // 2 - 1, 0
            ).value
            assert slice_half(reg, width, high=True) == bv.extract(
                width - 1, width // 2
            ).value

    def test_concat_pair_matches_concat(self):
        rng = random.Random(6)
        for _ in range(50):
            hw, lw = rng.choice(((8, 8), (16, 16), (32, 16), (64, 64)))
            high, low = rand_reg(rng, hw), rand_reg(rng, lw)
            expected = BitVector(high, hw).concat(BitVector(low, lw))
            assert concat_pair(high, low, hw, lw) == expected.value

    @pytest.mark.parametrize("pattern", PATTERNS_TWO_SOURCE + PATTERNS_ONE_SOURCE)
    def test_gather_matches_swizzle_elements(self, pattern):
        rng = random.Random(hash(pattern) & 0xFFFF)
        lanes, ew = 8, 8
        width = lanes * ew
        nargs = 2 if pattern in PATTERNS_TWO_SOURCE else 1
        for amount in (0, 1, 3):
            regs = [rand_reg(rng, width) for _ in range(nargs)]
            vectors = [Vector(BitVector(r, width), ew) for r in regs]
            expected = vector_from_elems(
                swizzle_elements(pattern, vectors, amount)
            ).bits
            order = swizzle_order(pattern, lanes, amount)
            packed = gather_lanes(order, regs, [width] * nargs, ew)
            assert packed == expected.value
            if pattern != "rotate_right":
                break  # amount only matters for rotate_right

    def test_gather_rejects_out_of_range_lane(self):
        with pytest.raises(IndexError):
            gather_lanes(((0, 4),), [0], [32], 8)

    def test_gather_rejects_empty_order(self):
        with pytest.raises(ValueError):
            gather_lanes((), [0], [32], 8)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            swizzle_order("shuffle_mystery", 8)


class TestPackedAppliers:
    """make_packed_applier vs apply_node on every structural node kind."""

    def test_constant(self):
        node = SConstant(value=-3, lanes=8, elem_width=16)
        applier = make_packed_applier(node, ())
        assert applier([]) == apply_node(node, []).value

    def test_slice(self):
        rng = random.Random(11)
        src = SInput("ld0", lanes=8, elem_width=16)
        for high in (False, True):
            node = SSlice(src=src, high=high)
            applier = make_packed_applier(node, (src.bits,))
            for _ in range(20):
                reg = rand_reg(rng, src.bits)
                expected = apply_node(node, [BitVector(reg, src.bits)])
                assert applier([reg]) == expected.value

    def test_concat(self):
        rng = random.Random(12)
        a = SInput("ld0", lanes=4, elem_width=16)
        b = SInput("ld1", lanes=4, elem_width=16)
        node = SConcat(high_part=a, low_part=b)
        applier = make_packed_applier(node, (a.bits, b.bits))
        for _ in range(20):
            ra, rb = rand_reg(rng, a.bits), rand_reg(rng, b.bits)
            expected = apply_node(
                node, [BitVector(ra, a.bits), BitVector(rb, b.bits)]
            )
            assert applier([ra, rb]) == expected.value

    @pytest.mark.parametrize("pattern", PATTERNS_TWO_SOURCE + PATTERNS_ONE_SOURCE)
    def test_swizzle(self, pattern):
        rng = random.Random(13)
        lanes, ew = 8, 8
        nargs = 2 if pattern in PATTERNS_TWO_SOURCE else 1
        inputs = [SInput(f"ld{i}", lanes, ew) for i in range(nargs)]
        amount = 2 if pattern == "rotate_right" else 0
        order = swizzle_order(pattern, lanes, amount)
        node = SSwizzle(
            pattern=pattern,
            args=tuple(inputs),
            elem_width=ew,
            out_bits=len(order) * ew,
            amount=amount,
        )
        applier = make_packed_applier(node, tuple(i.bits for i in inputs))
        for _ in range(20):
            regs = [rand_reg(rng, i.bits) for i in inputs]
            expected = apply_node(
                node, [BitVector(r, i.bits) for r, i in zip(regs, inputs)]
            )
            assert applier(regs) == expected.value

    def test_input_has_no_applier(self):
        with pytest.raises(ValueError):
            make_packed_applier(SInput("ld0", 4, 8), ())


class TestDeterminismAB:
    """The batched path and the legacy path must synthesize identical
    programs for a fixed CEGIS seed (the A/B audit the benchmark harness
    enforces suite-wide)."""

    @pytest.mark.parametrize("incremental", (False, True))
    def test_add_window_same_program(self, dictionary, incremental):
        window = hir.HBin(
            "add", hir.HLoad("ld0", 16, 16), hir.HLoad("ld1", 16, 16)
        )
        grammar = build_grammar(window, "x86", dictionary)
        described = []
        for legacy in (True, False):
            options = CegisOptions(
                timeout_seconds=30,
                legacy_eval=legacy,
                incremental_smt=incremental,
            )
            result = synthesize(window, grammar, options)
            described.append(result.program.describe())
        assert described[0] == described[1]
