"""Tests for the code synthesizer: grammar, scaling, CEGIS, cache."""

import pytest

from repro.autollvm import build_dictionary
from repro.bitvector.lanes import vector_from_ints
from repro.halide import ir as hir
from repro.synthesis import (
    CegisOptions,
    GrammarOptions,
    MemoCache,
    SInput,
    SynthesisFailure,
    build_grammar,
    synthesize,
)
from repro.synthesis.cache import canonical_key
from repro.synthesis.cost import CostModel
from repro.synthesis.program import (
    SSlice,
    SSwizzle,
    evaluate_program,
    program_to_term,
    swizzle_elements,
)
from repro.synthesis.scale import scale_spec, scaled_member_values
from repro.synthesis.translate import translate_program
from repro.smt.eval import evaluate


@pytest.fixture(scope="module")
def dictionary():
    return build_dictionary(("x86", "hvx", "arm"))


def _add_window(lanes=16, ew=16):
    return hir.HBin(
        "add", hir.HLoad("ld0", lanes, ew), hir.HLoad("ld1", lanes, ew)
    )


def _dot_window(lanes_out=16):
    a = hir.HLoad("ld0", lanes_out * 2, 16)
    b = hir.HLoad("ld1", lanes_out * 2, 16)
    acc = hir.HLoad("ld2", lanes_out, 32)
    return hir.HBin(
        "add",
        hir.HReduceAdd(
            hir.HBin("mul", hir.HCast("sext", a, 32), hir.HCast("sext", b, 32)), 2
        ),
        acc,
    )


class TestGrammar:
    def test_bvs_prunes(self, dictionary):
        window = _add_window()
        pruned = build_grammar(window, "x86", dictionary)
        unpruned = build_grammar(
            window, "x86", dictionary, GrammarOptions(include_all=True, bvs=False, sbos=False)
        )
        assert pruned.size() < unpruned.size() / 3

    def test_bvs_keeps_relevant_ops(self, dictionary):
        grammar = build_grammar(_dot_window(), "x86", dictionary)
        names = {e.name for e in grammar.entries}
        assert any("dpwssd" in n for n in names)
        assert any("madd" in n for n in names)
        assert not any("sad" in n for n in names)

    def test_sbos_reduces_further(self, dictionary):
        window = _dot_window()
        with_sbos = build_grammar(window, "x86", dictionary, GrammarOptions(k=3))
        without = build_grammar(window, "x86", dictionary, GrammarOptions(sbos=False))
        assert with_sbos.size() <= without.size()

    def test_min_elem_screen(self, dictionary):
        # A 32-bit window should not pull in 8-bit-element instructions.
        window = _add_window(lanes=16, ew=32)
        grammar = build_grammar(window, "x86", dictionary)
        for entry in grammar.entries:
            elem_width = entry.binding.spec.attributes.get("elem_width", 64)
            assert not (isinstance(elem_width, int) and 1 < elem_width < 32)

    def test_swizzles_always_included(self, dictionary):
        grammar = build_grammar(_add_window(), "hvx", dictionary)
        assert len(grammar.swizzle_patterns) == 8


class TestScaling:
    def test_scale_spec(self):
        scaled = scale_spec(_dot_window(16), 4)
        assert scaled is not None
        assert scaled.type.lanes == 4

    def test_scale_preserves_reduce_factor(self):
        scaled = scale_spec(_dot_window(16), 4)
        reduces = [n for n in scaled.walk() if isinstance(n, hir.HReduceAdd)]
        assert reduces[0].factor == 2

    def test_scale_rejects_indivisible(self):
        window = _add_window(lanes=6)
        assert scale_spec(window, 4) is None

    def test_scale_concat_of_tiles(self):
        small = hir.HLoad("w", 2, 16)
        tiled = hir.HConcat(tuple([small] * 8))
        scaled = scale_spec(tiled, 4)
        assert scaled is not None
        assert scaled.type.lanes == 4  # 2 tiles of 2 lanes

    def test_member_scaling(self, dictionary):
        op = dictionary.by_target_instruction["_mm512_add_epi16"]
        binding = next(
            b for b in op.bindings if b.spec.name == "_mm512_add_epi16"
        )
        scaled = scaled_member_values(binding, 4)
        assert scaled is not None
        assert 128 in scaled  # 512-bit register scaled to 128

    def test_member_scaling_keeps_elem_width(self, dictionary):
        op = dictionary.by_target_instruction["_mm512_add_epi16"]
        binding = next(
            b for b in op.bindings if b.spec.name == "_mm512_add_epi16"
        )
        scaled = scaled_member_values(binding, 4)
        assert 16 in scaled  # element width untouched

    def test_broadcast_input_not_scaled(self, dictionary):
        """Scalar-chunk inputs of broadcasts stay fixed under scaling."""
        op = dictionary.by_target_instruction.get("_mm512_broadcastd_epi32")
        if op is None:
            pytest.skip("broadcast not in catalog")
        binding = next(
            b for b in op.bindings if b.spec.name == "_mm512_broadcastd_epi32"
        )
        scaled = scaled_member_values(binding, 4)
        assert scaled is not None
        assert 32 in scaled  # the 32-bit source chunk is intensive


class TestPrograms:
    def test_swizzle_semantics(self):
        vec = vector_from_ints([0, 1, 2, 3], 8)
        out = swizzle_elements("interleave_single", [vec])
        assert [e.value for e in out] == [0, 2, 1, 3]
        out = swizzle_elements("deinterleave_single", [vec])
        assert [e.value for e in out] == [0, 2, 1, 3]
        out = swizzle_elements("rotate_right", [vec], amount=1)
        assert [e.value for e in out] == [1, 2, 3, 0]

    def test_interleave_full(self):
        a = vector_from_ints([1, 2], 8)
        b = vector_from_ints([9, 8], 8)
        out = swizzle_elements("interleave_full", [a, b])
        assert [e.value for e in out] == [1, 9, 2, 8]

    def test_program_term_matches_eval(self):
        node = SSwizzle(
            "interleave_full",
            (SInput("a", 4, 8), SInput("b", 4, 8)),
            8,
            64,
        )
        env = {
            "a": vector_from_ints([1, 2, 3, 4], 8).bits,
            "b": vector_from_ints([5, 6, 7, 8], 8).bits,
        }
        term = program_to_term(node)
        assert evaluate(term, env).value == evaluate_program(node, env).value

    def test_slice_semantics(self):
        node = SSlice(SInput("a", 4, 8), high=True)
        env = {"a": vector_from_ints([1, 2, 3, 4], 8).bits}
        assert evaluate_program(node, env).value == vector_from_ints([3, 4], 8).bits.value


class TestCegis:
    def test_simple_add_synthesizes(self, dictionary):
        window = _add_window()
        grammar = build_grammar(window, "x86", dictionary)
        result = synthesize(window, grammar, CegisOptions(timeout_seconds=30))
        assert result.program.op_count() == 1
        assert "add" in result.program.describe()

    def test_solution_is_correct(self, dictionary):
        window = _add_window(lanes=8)
        grammar = build_grammar(window, "x86", dictionary)
        result = synthesize(window, grammar, CegisOptions(timeout_seconds=30))
        env = {
            "ld0": vector_from_ints(list(range(8)), 16).bits,
            "ld1": vector_from_ints([100] * 8, 16).bits,
        }
        assert (
            evaluate_program(result.program, env).value
            == hir.interpret(window, env).value
        )

    def test_saturating_add_finds_native_op(self, dictionary):
        a = hir.HLoad("ld0", 16, 16)
        b = hir.HLoad("ld1", 16, 16)
        window = hir.HBin("adds", a, b)
        grammar = build_grammar(window, "x86", dictionary)
        result = synthesize(window, grammar, CegisOptions(timeout_seconds=30))
        assert "adds" in result.program.describe()
        assert result.cost <= 1.5

    def test_empty_grammar_fails(self, dictionary):
        window = _add_window()
        grammar = build_grammar(window, "x86", dictionary)
        grammar.entries = []
        with pytest.raises(SynthesisFailure):
            synthesize(window, grammar, CegisOptions(timeout_seconds=5, max_depth=1))

    def test_timeout_respected(self, dictionary):
        import time

        window = _dot_window(16)
        grammar = build_grammar(
            window, "x86", dictionary, GrammarOptions(bvs=False, sbos=False, top_n_by_score=50)
        )
        start = time.time()
        with pytest.raises(SynthesisFailure):
            synthesize(window, grammar, CegisOptions(timeout_seconds=3))
        assert time.time() - start < 30


class TestCache:
    def test_canonical_key_renames_loads(self):
        a = _add_window()
        b = hir.HBin(
            "add", hir.HLoad("other0", 16, 16), hir.HLoad("other1", 16, 16)
        )
        assert canonical_key(a, "x86") == canonical_key(b, "x86")

    def test_key_distinguishes_ops(self):
        a = _add_window()
        b = hir.HBin("sub", hir.HLoad("ld0", 16, 16), hir.HLoad("ld1", 16, 16))
        assert canonical_key(a, "x86") != canonical_key(b, "x86")

    def test_key_distinguishes_isa(self):
        a = _add_window()
        assert canonical_key(a, "x86") != canonical_key(a, "hvx")

    def test_cache_hit_remaps_inputs(self, dictionary):
        cache = MemoCache()
        window = _add_window()
        grammar = build_grammar(window, "x86", dictionary)
        synthesize(window, grammar, CegisOptions(timeout_seconds=30), cache)
        assert len(cache) == 1
        renamed = hir.HBin(
            "add", hir.HLoad("p", 16, 16), hir.HLoad("q", 16, 16)
        )
        hit = cache.lookup(renamed, "x86")
        assert hit is not None
        names = {
            n.name for n in hit.program.walk() if isinstance(n, SInput)
        }
        assert names == {"p", "q"}

    def test_negative_cache(self):
        cache = MemoCache()
        window = _add_window()
        assert not cache.lookup_failure(window, "x86")
        cache.store_failure(window, "x86")
        assert cache.lookup_failure(window, "x86")


class TestTranslate:
    def test_translation_emits_autollvm_calls(self, dictionary):
        window = _add_window()
        grammar = build_grammar(window, "x86", dictionary)
        result = synthesize(window, grammar, CegisOptions(timeout_seconds=30))
        translated = translate_program(result.program, "w0", 16)
        text = translated.function.render()
        assert "@autollvm." in text
        assert translated.op_count == 1

    def test_translated_function_verifies(self, dictionary):
        from repro.autollvm.llvmir import verify_function

        window = _add_window()
        grammar = build_grammar(window, "x86", dictionary)
        result = synthesize(window, grammar, CegisOptions(timeout_seconds=30))
        translated = translate_program(result.program, "w0", 16)
        verify_function(translated.function)

    def test_cost_model_counts_all_ops(self):
        model = CostModel({"interleave_full"})
        node = SSwizzle(
            "interleave_full",
            (SInput("a", 4, 8), SInput("b", 4, 8)),
            8,
            64,
        )
        assert model.cost(node) == 1.0
        alien = SSwizzle("rotate_right", (SInput("a", 4, 8),), 8, 32, 1)
        assert model.cost(alien) == 3.0
