"""Additional similarity-engine coverage: extensibility and statistics."""


from repro.hydride_ir.transforms import canonicalize
from repro.isa.registry import load_isa
from repro.isa.spec import InstructionSpec, OperandSpec
from repro.isa.x86.parser import x86_semantics
from repro.similarity.constants import extract_constants
from repro.similarity.engine import SimilarityEngine
from repro.smt.solver import EquivalenceChecker


def _custom_x86(name: str, pseudocode: str, operands, out_width: int):
    spec = InstructionSpec(
        name=name, isa="x86", asm=name, operands=tuple(operands),
        output_width=out_width, pseudocode=pseudocode,
        extension="CUSTOM", family="custom", latency=1.0, throughput=1.0,
    )
    return extract_constants(canonicalize(x86_semantics(spec)), "x86")


class TestExtensibility:
    """The paper's ARM case study in miniature: new instructions join
    existing classes without any engine changes."""

    def test_new_width_joins_existing_class(self):
        loaded = load_isa("x86")
        existing = [
            extract_constants(loaded.semantics[n], "x86")
            for n in ("_mm_add_epi8", "_mm_add_epi16", "_mm256_add_epi32")
        ]
        # A hypothetical 1024-bit add — a "future ISA extension".
        new = _custom_x86(
            "_mm1024_add_epi32",
            "FOR j := 0 to 31\n"
            "    i := j*32\n"
            "    dst[i+31:i] := a[i+31:i] + b[i+31:i]\n"
            "ENDFOR\n",
            [OperandSpec("a", 1024), OperandSpec("b", 1024)],
            1024,
        )
        engine = SimilarityEngine(EquivalenceChecker(seed=2))
        classes = engine.run(existing + [new])
        assert len(classes) == 1
        assert len(classes[0].members) == 4

    def test_novel_semantics_founds_new_class(self):
        loaded = load_isa("x86")
        existing = [
            extract_constants(loaded.semantics["_mm_add_epi16"], "x86")
        ]
        new = _custom_x86(
            "_mm_addsub_epi16",  # alternating add/sub: genuinely new
            "FOR j := 0 to 3\n"
            "    i := j*32\n"
            "    dst[i+15:i] := a[i+15:i] - b[i+15:i]\n"
            "    dst[i+31:i+16] := a[i+31:i+16] + b[i+31:i+16]\n"
            "ENDFOR\n",
            [OperandSpec("a", 128), OperandSpec("b", 128)],
            128,
        )
        engine = SimilarityEngine(EquivalenceChecker(seed=2))
        classes = engine.run(existing + [new])
        assert len(classes) == 2


class TestEngineStatistics:
    def test_stats_populated(self):
        loaded = load_isa("hvx")
        names = ["V6_vaddb", "V6_vaddh", "V6_vsubb"]
        symbolics = [
            extract_constants(loaded.semantics[n], "hvx") for n in names
        ]
        engine = SimilarityEngine(EquivalenceChecker(seed=2))
        engine.run(symbolics)
        assert engine.stats.instructions == 3
        assert engine.stats.classes == 2
        assert engine.stats.checks >= 1
        assert engine.stats.seconds > 0

    def test_signature_prefilter_blocks_mismatched_arity(self):
        loaded = load_isa("hvx")
        unary = extract_constants(loaded.semantics["V6_vabsh"], "hvx")
        binary = extract_constants(loaded.semantics["V6_vaddh"], "hvx")
        assert unary.signature() != binary.signature()

    def test_member_argument_order_identity_by_default(self):
        loaded = load_isa("x86")
        symbolics = [
            extract_constants(loaded.semantics[n], "x86")
            for n in ("_mm_add_epi16", "_mm256_add_epi16")
        ]
        engine = SimilarityEngine(EquivalenceChecker(seed=2))
        (cls,) = engine.run(symbolics)
        for member in cls.members:
            assert member.arg_order == (0, 1)
