"""Unit and property tests for the bitvector substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitvector import BitVector, bv, concat_many
from repro.bitvector.lanes import Vector, vector_from_elems, vector_from_ints

WIDTHS = st.sampled_from([1, 4, 8, 13, 16, 32, 64])


@st.composite
def bv_pairs(draw):
    width = draw(WIDTHS)
    a = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    b = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return BitVector(a, width), BitVector(b, width)


class TestConstruction:
    def test_masks_value(self):
        assert bv(0x1FF, 8).value == 0xFF

    def test_negative_wraps(self):
        assert bv(-1, 8).value == 0xFF

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            bv(0, 0)

    def test_signed_interpretation(self):
        assert bv(0x80, 8).signed == -128
        assert bv(0x7F, 8).signed == 127
        assert bv(0xFF, 8).signed == -1

    def test_bounds(self):
        x = bv(0, 16)
        assert x.smin == -(1 << 15)
        assert x.smax == (1 << 15) - 1
        assert x.umax == (1 << 16) - 1


class TestArithmetic:
    def test_add_wraps(self):
        assert bv(0xFF, 8).bvadd(bv(1, 8)).value == 0

    def test_sub_wraps(self):
        assert bv(0, 8).bvsub(bv(1, 8)).value == 0xFF

    def test_mul(self):
        assert bv(7, 8).bvmul(bv(37, 8)).value == (7 * 37) & 0xFF

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bv(1, 8).bvadd(bv(1, 16))

    def test_sdiv_truncates_toward_zero(self):
        assert bv(-7, 8).bvsdiv(bv(2, 8)).signed == -3

    def test_sdiv_by_zero_smt_semantics(self):
        assert bv(5, 8).bvsdiv(bv(0, 8)).value == 0xFF
        assert bv(-5, 8).bvsdiv(bv(0, 8)).value == 1

    def test_udiv_by_zero_all_ones(self):
        assert bv(5, 8).bvudiv(bv(0, 8)).value == 0xFF

    def test_srem_sign_of_dividend(self):
        assert bv(-7, 8).bvsrem(bv(2, 8)).signed == -1
        assert bv(7, 8).bvsrem(bv(-2, 8)).signed == 1

    @given(bv_pairs())
    def test_add_matches_integers(self, pair):
        a, b = pair
        assert a.bvadd(b).value == (a.value + b.value) % (1 << a.width)

    @given(bv_pairs())
    def test_sub_add_roundtrip(self, pair):
        a, b = pair
        assert a.bvsub(b).bvadd(b).value == a.value

    @given(bv_pairs())
    def test_neg_is_sub_from_zero(self, pair):
        a, _ = pair
        assert a.bvneg().value == BitVector(0, a.width).bvsub(a).value


class TestShifts:
    def test_shl_overflow_is_zero(self):
        assert bv(1, 8).bvshl(bv(8, 8)).value == 0

    def test_ashr_replicates_sign(self):
        assert bv(0x80, 8).bvashr(bv(7, 8)).value == 0xFF

    def test_ashr_overshift_saturates_to_sign(self):
        assert bv(0x80, 8).bvashr(bv(200, 8)).value == 0xFF
        assert bv(0x40, 8).bvashr(bv(200, 8)).value == 0

    def test_lshr(self):
        assert bv(0x80, 8).bvlshr(bv(7, 8)).value == 1

    def test_rotate_roundtrip(self):
        x = bv(0b10110100, 8)
        assert x.bvrotl(bv(3, 8)).bvrotr(bv(3, 8)).value == x.value

    @given(bv_pairs())
    def test_shl_matches_mul_by_power(self, pair):
        a, _ = pair
        shift = 1
        expected = a.bvmul(BitVector(2, a.width))
        assert a.bvshl(BitVector(shift, a.width)).value == expected.value


class TestComparisons:
    def test_signed_vs_unsigned(self):
        a, b = bv(0xFF, 8), bv(1, 8)
        assert a.bvugt(b).value == 1
        assert a.bvslt(b).value == 1

    @given(bv_pairs())
    def test_comparison_trichotomy(self, pair):
        a, b = pair
        total = a.bvslt(b).value + a.bvsgt(b).value + a.bveq(b).value
        assert total == 1

    @given(bv_pairs())
    def test_minmax_consistent(self, pair):
        a, b = pair
        assert a.bvsmin(b).signed <= a.bvsmax(b).signed
        assert a.bvumin(b).unsigned <= a.bvumax(b).unsigned
        assert {a.bvsmin(b).value, a.bvsmax(b).value} == {a.value, b.value}


class TestWidthChanges:
    def test_extract(self):
        assert bv(0xABCD, 16).extract(15, 8).value == 0xAB
        assert bv(0xABCD, 16).extract(7, 0).value == 0xCD

    def test_extract_bounds_checked(self):
        with pytest.raises(ValueError):
            bv(0, 8).extract(8, 0)

    def test_concat_order(self):
        assert bv(0xAB, 8).concat(bv(0xCD, 8)).value == 0xABCD

    def test_concat_many_msb_first(self):
        assert concat_many([bv(1, 4), bv(2, 4), bv(3, 4)]).value == 0x123

    def test_sext_zext(self):
        assert bv(0x80, 8).sext(16).value == 0xFF80
        assert bv(0x80, 8).zext(16).value == 0x0080

    def test_trunc(self):
        assert bv(0xABCD, 16).trunc(8).value == 0xCD

    @given(bv_pairs())
    def test_extract_concat_roundtrip(self, pair):
        a, b = pair
        joined = a.concat(b)
        assert joined.extract(joined.width - 1, b.width).value == a.value
        assert joined.extract(b.width - 1, 0).value == b.value

    @given(bv_pairs())
    def test_sext_preserves_signed_value(self, pair):
        a, _ = pair
        assert a.sext(a.width + 7).signed == a.signed


class TestSaturation:
    def test_saddsat_clamps_high(self):
        assert bv(127, 8).bvsaddsat(bv(1, 8)).signed == 127

    def test_saddsat_clamps_low(self):
        assert bv(-128, 8).bvsaddsat(bv(-1, 8)).signed == -128

    def test_uaddsat(self):
        assert bv(255, 8).bvuaddsat(bv(10, 8)).value == 255

    def test_usubsat_floor_zero(self):
        assert bv(3, 8).bvusubsat(bv(10, 8)).value == 0

    def test_saturate_to_signed(self):
        assert bv(1000, 16).saturate_to_signed(8).signed == 127
        assert bv(-1000, 16).saturate_to_signed(8).signed == -128
        assert bv(5, 16).saturate_to_signed(8).signed == 5

    def test_saturate_to_unsigned(self):
        assert bv(-5, 16).saturate_to_unsigned(8).value == 0
        assert bv(300, 16).saturate_to_unsigned(8).value == 255

    @given(bv_pairs())
    def test_saddsat_bounded(self, pair):
        a, b = pair
        result = a.bvsaddsat(b)
        exact = a.signed + b.signed
        assert result.signed == max(a.smin, min(a.smax, exact))

    @given(bv_pairs())
    def test_sshlsat_never_overflows_sign(self, pair):
        a, _ = pair
        shifted = a.bvsshlsat(BitVector(2, a.width))
        exact = a.signed << 2
        assert shifted.signed == max(a.smin, min(a.smax, exact))


class TestAveraging:
    def test_uavg(self):
        assert bv(3, 8).bvuavg(bv(4, 8)).value == 3
        assert bv(3, 8).bvuavg(bv(4, 8), round_up=True).value == 4

    def test_uavg_no_overflow(self):
        assert bv(255, 8).bvuavg(bv(255, 8), round_up=True).value == 255

    @given(bv_pairs())
    def test_savg_matches_wide_arith(self, pair):
        a, b = pair
        assert a.bvsavg(b).signed == (a.signed + b.signed) >> 1


class TestCounting:
    def test_popcount(self):
        assert bv(0b1011, 8).popcount().value == 3

    def test_count_leading_zeros(self):
        assert bv(1, 8).count_leading_zeros().value == 7
        assert bv(0, 8).count_leading_zeros().value == 8


class TestVector:
    def test_lane_order_little_endian(self):
        vec = vector_from_ints([1, 2, 3, 4], 8)
        assert vec.bits.value == 0x04030201
        assert vec.elem(0).value == 1
        assert vec.elem(3).value == 4

    def test_roundtrip(self):
        values = [5, 250, 17, 0]
        vec = vector_from_ints(values, 8)
        assert vec.to_ints_unsigned() == values

    def test_with_elem(self):
        vec = vector_from_ints([1, 2, 3, 4], 8).with_elem(2, bv(9, 8))
        assert vec.to_ints_unsigned() == [1, 2, 9, 4]

    def test_map_lanes(self):
        vec = vector_from_ints([1, 2, 3, 4], 8)
        doubled = vec.map_lanes(lambda x: x.bvadd(x))
        assert doubled.to_ints_unsigned() == [2, 4, 6, 8]

    def test_reinterpret(self):
        vec = vector_from_ints([0x1122, 0x3344], 16)
        as_bytes = vec.reinterpret(8)
        assert as_bytes.to_ints_unsigned() == [0x22, 0x11, 0x44, 0x33]

    def test_mixed_widths_rejected(self):
        with pytest.raises(ValueError):
            vector_from_elems([bv(1, 8), bv(2, 16)])

    def test_non_multiple_width_rejected(self):
        with pytest.raises(ValueError):
            Vector(bv(0, 12), 8)
