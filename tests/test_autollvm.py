"""Tests for AutoLLVM IR: mini-LLVM, intrinsic generation, lowering."""

import pytest

from repro.autollvm import (
    InstructionSelector,
    IntType,
    Module,
    SelectionError,
    VectorType,
    build_dictionary,
)
from repro.autollvm.llvmir import (
    Function,
    ImmOperand,
    Instruction,
    Value,
    VerificationError,
    type_for_bits,
    verify_function,
)
from repro.autollvm.tablegen import emit_tablegen


@pytest.fixture(scope="module")
def dictionary():
    return build_dictionary(("x86", "hvx", "arm"))


class TestLlvmIr:
    def test_types_render(self):
        assert str(IntType(32)) == "i32"
        assert str(VectorType(16, 16)) == "<16 x i16>"
        assert VectorType(16, 16).bits == 256

    def test_type_for_bits(self):
        assert type_for_bits(256, 16) == VectorType(16, 16)
        assert type_for_bits(32, 0) == IntType(32)

    def test_function_render(self):
        arg = Value("a", VectorType(4, 32))
        f = Function("demo", [arg])
        out = Value("r", VectorType(4, 32))
        f.add(Instruction(out, "autollvm.test", [arg, ImmOperand(3)]))
        f.ret = out
        text = f.render()
        assert "define <4 x i32> @demo" in text
        assert "call <4 x i32> @autollvm.test(<4 x i32> %a, i32 3)" in text
        assert "ret <4 x i32> %r" in text

    def test_verifier_catches_undefined_use(self):
        f = Function("bad", [])
        ghost = Value("ghost", IntType(32))
        out = Value("r", IntType(32))
        f.add(Instruction(out, "op", [ghost]))
        with pytest.raises(VerificationError):
            verify_function(f)

    def test_verifier_catches_redefinition(self):
        arg = Value("a", IntType(32))
        f = Function("bad", [arg])
        f.add(Instruction(Value("a", IntType(32)), "op", []))
        with pytest.raises(VerificationError):
            verify_function(f)

    def test_module_render(self):
        m = Module("demo")
        m.declare_intrinsic("<W x iN> @autollvm.x(<W x iN>)")
        assert "declare" in m.render()


class TestDictionary:
    def test_every_instruction_reachable(self, dictionary):
        """Every catalog instruction maps to exactly one AutoLLVM op."""
        from repro.isa.registry import load_isa

        for isa in ("x86", "hvx", "arm"):
            for spec in load_isa(isa).catalog:
                assert spec.name in dictionary.by_target_instruction

    def test_compression(self, dictionary):
        total_instructions = len(dictionary.by_target_instruction)
        assert len(dictionary.ops) < total_instructions / 3

    def test_cross_isa_op_exists(self, dictionary):
        add_op = dictionary.by_target_instruction["_mm_add_epi16"]
        assert {"x86", "hvx", "arm"} <= add_op.isas()

    def test_free_parameters_select_members(self, dictionary):
        op = dictionary.by_target_instruction["_mm_add_epi16"]
        free = op.free_positions
        values = {b.free_values(free) for b in op.bindings}
        assert len(values) >= len(op.bindings) // 2  # parameters discriminate

    def test_fixed_params_consistent(self, dictionary):
        for op in dictionary.ops[:50]:
            rep = op.eq_class.representative
            for position, value in op.eq_class.fixed_params.items():
                for member in op.eq_class.members:
                    assert member.values()[position] == value
            del rep


class TestSelector:
    def test_roundtrip_lowering(self, dictionary):
        selector = InstructionSelector(dictionary, "x86")
        op = dictionary.by_target_instruction["_mm256_adds_epi16"]
        binding = next(
            b for b in op.bindings if b.spec.name == "_mm256_adds_epi16"
        )
        imms = binding.free_values(op.free_positions)
        operands = [
            Value("a", VectorType(16, 16)),
            Value("b", VectorType(16, 16)),
        ] + [ImmOperand(v) for v in imms]
        call = Instruction(Value("r", VectorType(16, 16)), op.name, operands)
        lowered = selector.lower_call(call)
        assert "mm256_adds_epi16" in lowered.callee

    def test_selection_error_for_unknown_parameters(self, dictionary):
        selector = InstructionSelector(dictionary, "x86")
        op = dictionary.by_target_instruction["_mm_add_epi16"]
        with pytest.raises(SelectionError):
            selector.select(op, (999, 999, 999, 999, 999, 999), [])

    def test_rule_counts_cover_isa(self, dictionary):
        from repro.isa.registry import load_isa

        for isa in ("x86", "arm"):
            selector = InstructionSelector(dictionary, isa)
            # Nearly 1-1 (semantically identical duplicates may share a rule).
            assert selector.rule_count() >= len(load_isa(isa).catalog) * 0.9

    def test_wrong_isa_rejected(self, dictionary):
        with pytest.raises(ValueError):
            InstructionSelector(dictionary, "riscv")


class TestTablegen:
    def test_emits_def_per_op(self, dictionary):
        text = emit_tablegen(dictionary)
        assert text.count("AutoLLVMIntrinsic<") == len(dictionary.ops)

    def test_lowering_records_present(self, dictionary):
        text = emit_tablegen(dictionary)
        assert 'Lowering<"x86", "_mm_add_epi16"' in text
        assert 'Lowering<"hvx"' in text
