"""Tests for the parallel, persistent offline IR generator (repro.irgen).

The hvx catalog (141 instructions, ~3s per engine run) keeps every build
here cheap; full-ISA determinism is additionally audited by
``scripts/bench_irgen.py``.
"""

import json
from types import SimpleNamespace

import pytest

from repro.autollvm.intrinsics import dictionary_from_classes
from repro.hydride_ir.ast import BvBinOp, BvVar, Input
from repro.hydride_ir.indexexpr import IConst
from repro.irgen import (
    build_artifact,
    classes_and_stats,
    clear_memo,
    ensure_artifact,
    irgen_fingerprint,
    load_artifact,
    partition_digest,
    persist_artifact,
)
from repro.irgen.artifact import ARTIFACT_FILE, artifact_dir
from repro.similarity.constants import SymbolicSemantics, skeleton_key
from repro.similarity.engine import (
    EngineStats,
    SimilarityEngine,
    _symbolics_for_isa,
    shard_key,
)
from repro.synthesis.serialize import dictionary_fingerprint

ISAS = ("hvx",)


@pytest.fixture(scope="module")
def serial_reference():
    """The unsharded engine's partition — the determinism yardstick."""
    engine = SimilarityEngine()
    classes = engine.run(_symbolics_for_isa("hvx"))
    return classes, engine.stats


@pytest.fixture(scope="module")
def artifacts():
    """Sharded builds at several worker counts (built once per module)."""
    return {jobs: build_artifact(ISAS, jobs=jobs) for jobs in (1, 2, 4)}


@pytest.fixture(scope="module")
def store(tmp_path_factory, artifacts):
    """A persisted artifact store holding the jobs=2 build."""
    root = tmp_path_factory.mktemp("irgen-store")
    persist_artifact(root, artifacts[2])
    return root


class TestShardedDeterminism:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_partition_matches_serial(self, jobs, artifacts, serial_reference):
        serial_classes, serial_stats = serial_reference
        artifact = artifacts[jobs]
        assert partition_digest(artifact.classes) == partition_digest(
            serial_classes
        )
        # Same comparisons were performed, not merely the same outcome.
        assert artifact.stats.checks == serial_stats.checks
        assert artifact.stats.instructions == serial_stats.instructions
        assert artifact.stats.classes == serial_stats.classes

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_dictionary_matches_serial(self, jobs, artifacts, serial_reference):
        serial_classes, _stats = serial_reference
        reference = dictionary_from_classes(ISAS, serial_classes)
        dictionary = artifacts[jobs].dictionary
        assert [op.name for op in dictionary.ops] == [
            op.name for op in reference.ops
        ]
        assert dictionary_fingerprint(dictionary) == dictionary_fingerprint(
            reference
        )

    def test_member_orders_identical(self, artifacts, serial_reference):
        serial_classes, _stats = serial_reference
        built = artifacts[4].classes
        assert len(built) == len(serial_classes)
        for ours, theirs in zip(built, serial_classes):
            assert [(m.name, m.arg_order) for m in ours.members] == [
                (m.name, m.arg_order) for m in theirs.members
            ]

    def test_shard_key_groups_cover_catalog(self):
        symbolics = _symbolics_for_isa("hvx")
        groups = {}
        for symbolic in symbolics:
            groups.setdefault(shard_key(symbolic), []).append(symbolic)
        assert sum(len(g) for g in groups.values()) == len(symbolics)
        # Sharding is only worth anything if there is more than one shard.
        assert len(groups) > 1


class TestArtifactStore:
    def test_round_trip(self, store, artifacts):
        original = artifacts[2]
        loaded = load_artifact(store, original.fingerprint)
        assert loaded is not None
        assert loaded.loaded and loaded.loaded_from
        assert partition_digest(loaded.classes) == partition_digest(
            original.classes
        )
        assert loaded.stats.to_dict() == original.stats.to_dict()
        assert dictionary_fingerprint(loaded.dictionary) == (
            dictionary_fingerprint(original.dictionary)
        )

    def test_missing_fingerprint_is_a_miss(self, store):
        assert load_artifact(store, "0" * 64) is None

    def test_corrupt_payload_is_a_miss(self, store, artifacts, tmp_path):
        fingerprint = artifacts[2].fingerprint
        broken_root = tmp_path / "broken"
        directory = artifact_dir(broken_root, fingerprint)
        directory.mkdir(parents=True)
        (directory / ARTIFACT_FILE).write_text("{not json")
        assert load_artifact(broken_root, fingerprint) is None

    def test_warm_load_does_no_equivalence_checking(self, store, artifacts):
        from repro.perf import snapshot, snapshot_delta

        clear_memo()
        before = snapshot()
        artifact = ensure_artifact(ISAS, str(store))
        delta = snapshot_delta(before)
        assert artifact.loaded
        assert delta["seconds_irgen_check"] == 0.0
        assert delta["seconds_irgen_parse"] == 0.0
        # The build-time stats still travel with the artifact.
        assert artifact.stats.checks == artifacts[2].stats.checks

    def test_classes_and_stats_prefers_artifact(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_IRGEN_CACHE", str(store))
        clear_memo()
        _classes, stats, source = classes_and_stats(ISAS)
        assert source == "artifact"
        assert stats.checks > 0
        monkeypatch.delenv("REPRO_IRGEN_CACHE")
        _classes, _stats, source = classes_and_stats(ISAS)
        assert source == "engine"

    def test_cli_build_expect_cached(self, store, capsys):
        from repro.irgen.cli import main

        clear_memo()
        assert (
            main(
                [
                    "build", "--cache-dir", str(store),
                    "--isas", "hvx", "--expect-cached",
                ]
            )
            == 0
        )
        assert "loaded hvx" in capsys.readouterr().out

    def test_cli_stats_lists_namespace(self, store, artifacts, capsys):
        from repro.irgen.cli import main

        assert main(["stats", "--cache-dir", str(store), "--isas", "hvx"]) == 0
        out = capsys.readouterr().out
        assert artifacts[2].fingerprint[:16] in out
        assert "truncations=" in out
        assert main(
            ["stats", "--cache-dir", str(store), "--isas", "hvx", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["namespaces"][0]["complete"] is True


class TestFingerprintInvalidation:
    def test_extra_salt_changes_fingerprint(self):
        base = irgen_fingerprint(ISAS)
        assert irgen_fingerprint(ISAS, extra=("salt",)) != base
        assert irgen_fingerprint(ISAS, extra=("salt",)) == irgen_fingerprint(
            ISAS, extra=("salt",)
        )

    def test_spec_text_changes_fingerprint(self):
        spec = SimpleNamespace(
            isa="fake", name="op", family="f", extension="e",
            output_width=128, pseudocode="a + b",
            operands=[SimpleNamespace(name="a", width=128, is_immediate=False)],
        )
        catalog_a = [spec]
        edited = SimpleNamespace(**{**vars(spec), "pseudocode": "a - b"})
        assert irgen_fingerprint(
            ("fake",), catalogs={"fake": catalog_a}
        ) != irgen_fingerprint(("fake",), catalogs={"fake": [edited]})

    def test_stale_artifact_triggers_rebuild(self, store, artifacts):
        # A salted fingerprint misses the persisted namespace: ensure
        # rebuilds and persists into a new one.
        clear_memo()
        salted = ensure_artifact(
            ISAS, str(store), jobs=1, extra=("invalidate",)
        )
        assert not salted.loaded
        assert salted.fingerprint != artifacts[2].fingerprint
        assert artifact_dir(store, salted.fingerprint).exists()
        assert partition_digest(salted.classes) == partition_digest(
            artifacts[2].classes
        )


class TestEngineStats:
    def test_round_trip(self):
        stats = EngineStats(
            instructions=10, classes=4, checks=7, permute_merges=1,
            hole_merges=2, attempt_truncations=3, seconds=1.25,
            checker_stats={"structural": 5},
        )
        assert EngineStats.from_dict(stats.to_dict()).to_dict() == (
            stats.to_dict()
        )

    def test_attempt_truncations_counted(self):
        def symbolic(name, swapped):
            # Declared input order stays (a, b); swapping the *body*'s
            # operand order changes the skeleton (v1 before v0) without
            # touching the signature or the operator multiset.
            operands = ("b", "a") if swapped else ("a", "b")
            body = BvBinOp("bvadd", BvVar(operands[0]), BvVar(operands[1]))
            inputs = (
                Input("a", IConst(32), False), Input("b", IConst(32), False),
            )
            sym = SymbolicSemantics(name, "fake", inputs, body, (), {})
            sym.skeleton = skeleton_key(sym)
            return sym

        # With a zero attempt budget the candidate comparison is skipped
        # and counted instead of performed.
        first = symbolic("f", swapped=False)
        second = symbolic("g", swapped=True)
        assert first.skeleton != second.skeleton
        assert shard_key(first) == shard_key(second)
        engine = SimilarityEngine()
        engine.max_semantic_attempts = 0
        engine.insert(first)
        engine.insert(second)
        assert engine.stats.attempt_truncations == 1
        assert engine.stats.checks == 0
