"""Focused tests on the scaling rules that synthesis correctness hinges on."""

import pytest

from repro.autollvm import build_dictionary
from repro.bitvector import BitVector
from repro.hydride_ir.interp import interpret, resolved_input_widths
from repro.synthesis.scale import scaled_member_values


@pytest.fixture(scope="module")
def dictionary():
    return build_dictionary(("x86", "hvx", "arm"))


def _binding(dictionary, name):
    op = dictionary.by_target_instruction[name]
    return next(b for b in op.bindings if b.spec.name == name)


class TestExtensiveClassification:
    def test_immediate_width_never_scales(self, dictionary):
        """The bug class that silently corrupts scaled semantics: an
        8-bit shift immediate scaled to 1 bit turns 'shift by 7' into
        'shift by 1'."""
        binding = _binding(dictionary, "_mm512_srli_epi16")
        scaled = scaled_member_values(binding, 8)
        assert scaled is not None
        symbolic = binding.member.symbolic
        assignment = dict(zip(symbolic.param_names, scaled))
        widths = resolved_input_widths(symbolic.to_function(assignment), assignment)
        assert widths["imm"] == 8  # untouched

    def test_register_widths_scale(self, dictionary):
        binding = _binding(dictionary, "_mm512_add_epi16")
        scaled = scaled_member_values(binding, 4)
        symbolic = binding.member.symbolic
        assignment = dict(zip(symbolic.param_names, scaled))
        widths = resolved_input_widths(symbolic.to_function(assignment), assignment)
        assert widths["a"] == 128 and widths["b"] == 128

    def test_mask_register_scales_with_lanes(self, dictionary):
        binding = _binding(dictionary, "_mm512_mask_add_epi32")
        scaled = scaled_member_values(binding, 4)
        assert scaled is not None
        symbolic = binding.member.symbolic
        assignment = dict(zip(symbolic.param_names, scaled))
        widths = resolved_input_widths(symbolic.to_function(assignment), assignment)
        assert widths["k"] == 4  # 16 lanes -> 4 lanes

    def test_broadcast_chunk_is_intensive(self, dictionary):
        name = next(
            n for n in dictionary.by_target_instruction
            if n.startswith("_mm512_broadcast") and n.endswith("epi32")
        )
        binding = _binding(dictionary, name)
        scaled = scaled_member_values(binding, 4)
        assert scaled is not None
        symbolic = binding.member.symbolic
        assignment = dict(zip(symbolic.param_names, scaled))
        widths = resolved_input_widths(symbolic.to_function(assignment), assignment)
        assert widths["a"] == 32  # the scalar chunk stays 32 bits

    def test_scaled_semantics_behave_like_originals(self, dictionary):
        """Scaled saturating add still saturates (semantics preserved
        modulo lane count)."""
        binding = _binding(dictionary, "_mm512_adds_epi16")
        scaled = scaled_member_values(binding, 8)
        symbolic = binding.member.symbolic
        assignment = dict(zip(symbolic.param_names, scaled))
        func = symbolic.to_function(assignment)
        widths = resolved_input_widths(func, assignment)
        lanes = widths["a"] // 16
        big = BitVector(int("7FFF" * lanes, 16), widths["a"])
        out = interpret(func, {"a": big, "b": big}, assignment)
        assert out.extract(15, 0).signed == 32767  # clamped, not wrapped
