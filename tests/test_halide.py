"""Tests for the Halide frontend: DSL, lowering, and the vector IR."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitvector import BitVector
from repro.bitvector.lanes import vector_from_ints
from repro.halide import ir as hir
from repro.halide.dsl import (
    Buffer,
    Func,
    Param,
    RDom,
    Var,
    cast,
    maximum,
    sat_cast,
    summation,
)
from repro.halide.lowering import LoweringError, lower_func
from repro.smt.eval import evaluate

x, y = Var("x"), Var("y")


class TestDsl:
    def test_operator_typing(self):
        a = Buffer("a", 16)
        expr = a[x] + 3
        assert expr.elem_width == 16 and expr.signed

    def test_width_mismatch_needs_cast(self):
        a, b = Buffer("a", 8), Buffer("b", 16)
        with pytest.raises(TypeError):
            _ = a[x] + b[x]
        widened = cast(16, a[x]) + b[x]
        assert widened.elem_width == 16

    def test_unsigned_shift_is_logical(self):
        a = Buffer("a", 8, signed=False)
        assert (a[x] >> 1).op == "lshr"
        b = Buffer("b", 8)
        assert (b[x] >> 1).op == "ashr"

    def test_rdom_axes(self):
        r = RDom((0, 3), (1, 5))
        assert r.x.extent == 3
        assert r.y.min == 1


class TestLowering:
    def _simple(self, lanes=8):
        a, b = Buffer("a", 16), Buffer("b", 16)
        f = Func("f")
        f[x, y] = a[y, x] + b[y, x]
        f.vectorize(x, lanes)
        return lower_func(f, {"x": 64, "y": 4})

    def test_window_shape(self):
        kernel = self._simple()
        assert isinstance(kernel.window, hir.HBin)
        assert kernel.window.type == hir.htype(8, 16)
        assert len(kernel.loads) == 2

    def test_loop_nest(self):
        kernel = self._simple()
        loops = dict(kernel.loops)
        assert loops["x"] == 8  # 64 / 8 lanes
        assert loops["y"] == 4
        assert kernel.work_items == 32

    def test_unvectorized_rejected(self):
        f = Func("g")
        a = Buffer("a", 16)
        f[x] = a[x]
        with pytest.raises(LoweringError):
            lower_func(f, {"x": 64})

    def test_shifted_accesses_are_distinct_loads(self):
        a = Buffer("a", 8, signed=False)
        f = Func("blur")
        f[x, y] = maximum(maximum(a[y, x - 1], a[y, x]), a[y, x + 1])
        f.vectorize(x, 16)
        kernel = lower_func(f, {"x": 64, "y": 4})
        assert len(kernel.loads) == 3

    def test_scalar_access_becomes_broadcast(self):
        a, w = Buffer("a", 16), Buffer("w", 16)
        f = Func("scale")
        f[x, y] = a[y, x] * w[y]  # w[y] is invariant in x
        f.vectorize(x, 8)
        kernel = lower_func(f, {"x": 32, "y": 2})
        broadcasts = [
            n for n in kernel.window.walk() if isinstance(n, hir.HBroadcast)
        ]
        assert len(broadcasts) == 1

    def test_param_becomes_broadcast(self):
        a = Buffer("a", 16)
        scale = Param("scale", 16)
        f = Func("p")
        f[x] = a[x] * scale
        f.vectorize(x, 8)
        kernel = lower_func(f, {"x": 32})
        assert any(
            isinstance(n, hir.HBroadcast) and n.name == "scale"
            for n in kernel.window.walk()
        )

    def test_unrolled_reduction(self):
        a, b = Buffer("a", 16), Buffer("b", 16)
        r = RDom((0, 3))
        f = Func("dotish")
        f[x] = summation(r, a[x + r.x] * b[x + r.x])
        f.vectorize(x, 8)
        kernel = lower_func(f, {"x": 32})
        # Three unrolled terms summed with two adds.
        adds = [
            n for n in kernel.window.walk()
            if isinstance(n, hir.HBin) and n.op == "add"
        ]
        assert len(adds) == 2

    def test_vectorized_reduction_produces_reduce_add(self):
        a, bp = Buffer("a", 16), Buffer("bp", 16)
        r = RDom((0, 2))
        f = Func("dot")
        f[x, y] = summation(r, cast(32, a[y, r.x]) * cast(32, bp[x * 2 + r.x]))
        f.vectorize(x, 8).vectorize_reduction(r.x)
        kernel = lower_func(f, {"x": 32, "y": 2})
        reduces = [n for n in kernel.window.walk() if isinstance(n, hir.HReduceAdd)]
        assert len(reduces) == 1
        assert reduces[0].factor == 2
        # The A access is r-only: a tiled small load.
        concats = [n for n in kernel.window.walk() if isinstance(n, hir.HConcat)]
        assert len(concats) == 1

    def test_func_inlining(self):
        a = Buffer("a", 16)
        producer = Func("producer")
        producer[x] = a[x] + 1
        consumer = Func("consumer")
        consumer[x] = producer[x] * 2
        consumer.vectorize(x, 8)
        kernel = lower_func(consumer, {"x": 32})
        muls = [n for n in kernel.window.walk() if isinstance(n, hir.HBin) and n.op == "mul"]
        adds = [n for n in kernel.window.walk() if isinstance(n, hir.HBin) and n.op == "add"]
        assert muls and adds  # both stages fused into one window

    def test_saturating_cast_kind(self):
        a = Buffer("a", 16)
        f = Func("s")
        f[x] = sat_cast(8, a[x], signed=False)
        f.vectorize(x, 8)
        kernel = lower_func(f, {"x": 32})
        casts = [n for n in kernel.window.walk() if isinstance(n, hir.HCast)]
        assert casts[0].kind == "sat_u"


class TestVectorIr:
    def _env(self, **kwargs):
        return {k: v for k, v in kwargs.items()}

    def test_interpret_bin(self):
        a = hir.HLoad("a", 4, 8)
        b = hir.HLoad("b", 4, 8)
        expr = hir.HBin("add", a, b)
        env = {
            "a": vector_from_ints([1, 2, 3, 4], 8).bits,
            "b": vector_from_ints([10, 20, 30, 40], 8).bits,
        }
        out = hir.interpret(expr, env)
        assert vector_from_ints([11, 22, 33, 44], 8).bits.value == out.value

    def test_reduce_add(self):
        a = hir.HLoad("a", 4, 16)
        expr = hir.HReduceAdd(a, 2)
        env = {"a": vector_from_ints([1, 2, 3, 4], 16).bits}
        out = hir.interpret(expr, env)
        assert vector_from_ints([3, 7], 16).bits.value == out.value

    def test_cast_signedness(self):
        a = hir.HLoad("a", 2, 8)
        env = {"a": vector_from_ints([0x80, 0x7F], 8).bits}
        sext = hir.interpret(hir.HCast("sext", a, 16), env)
        zext = hir.interpret(hir.HCast("zext", a, 16), env)
        assert sext.extract(15, 0).signed == -128
        assert zext.extract(15, 0).value == 0x80

    def test_select(self):
        a = hir.HLoad("a", 2, 8)
        b = hir.HLoad("b", 2, 8)
        cond = hir.HCmp("gt_u", a, b)
        expr = hir.HSelect(cond, a, b)
        env = {
            "a": vector_from_ints([5, 1], 8).bits,
            "b": vector_from_ints([3, 9], 8).bits,
        }
        out = hir.interpret(expr, env)
        assert vector_from_ints([5, 9], 8).bits.value == out.value

    def test_slice_and_concat(self):
        a = hir.HLoad("a", 4, 8)
        env = {"a": vector_from_ints([1, 2, 3, 4], 8).bits}
        lo = hir.HSlice(a, 0, 2)
        hi = hir.HSlice(a, 2, 2)
        swapped = hir.HConcat((hi, lo))
        out = hir.interpret(swapped, env)
        assert vector_from_ints([3, 4, 1, 2], 8).bits.value == out.value

    def test_type_errors(self):
        a = hir.HLoad("a", 4, 8)
        b = hir.HLoad("b", 4, 16)
        with pytest.raises(ValueError):
            hir.HBin("add", a, b)
        with pytest.raises(ValueError):
            hir.HSlice(a, 3, 4)
        with pytest.raises(ValueError):
            hir.HReduceAdd(a, 3)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, (1 << 64) - 1), st.integers(0, (1 << 64) - 1))
    def test_to_term_matches_interpreter(self, av, bval):
        a = hir.HLoad("a", 4, 16)
        b = hir.HLoad("b", 4, 16)
        expr = hir.HBin(
            "adds",
            hir.HCast("sat_s", hir.HBin("mul", a, b), 16),
            a,
        )
        env = {"a": BitVector(av, 64), "b": BitVector(bval, 64)}
        term = hir.to_term(expr)
        assert evaluate(term, env).value == hir.interpret(expr, env).value

    def test_loads_conflicting_types_rejected(self):
        a8 = hir.HLoad("a", 4, 8)
        a16 = hir.HLoad("a", 4, 16)
        expr = hir.HConcat((hir.HCast("zext", a8, 16), a16))
        with pytest.raises(ValueError):
            expr.loads()


class TestEndToEndLowering:
    def test_window_semantics_match_scalar_reference(self):
        """Interpret the lowered window and check it against a scalar
        evaluation of the same algorithm."""
        a, b = Buffer("a", 16), Buffer("b", 16)
        f = Func("f")
        f[x] = maximum(a[x] + b[x], a[x] - b[x])
        f.vectorize(x, 4)
        kernel = lower_func(f, {"x": 4})
        a_vals = [5, -3, 100, 7]
        b_vals = [2, 9, -50, 0]
        env = {
            "ld0": vector_from_ints(a_vals, 16).bits,
            "ld1": vector_from_ints(b_vals, 16).bits,
        }
        # Load naming order follows first appearance (a then b).
        out = hir.interpret(kernel.window, env)
        from repro.bitvector.lanes import Vector

        got = Vector(out, 16).to_ints_signed()
        expected = [max(av + bv_, av - bv_) for av, bv_ in zip(a_vals, b_vals)]
        assert got == expected
