"""Tests for the 33-benchmark workload suite."""

import pytest

from repro.halide import ir as hir
from repro.workloads.registry import all_benchmarks, benchmark_named


class TestRegistry:
    def test_thirty_three_benchmarks(self):
        assert len(all_benchmarks()) == 33

    def test_categories(self):
        categories = {b.category for b in all_benchmarks()}
        assert categories == {"image", "dnn", "fused"}

    def test_unique_names(self):
        names = [b.name for b in all_benchmarks()]
        assert len(names) == len(set(names))

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            benchmark_named("nonexistent")

    def test_lanes_scale_with_target(self):
        b = benchmark_named("matmul_b1")
        assert b.lanes_for("hvx") > b.lanes_for("x86") > b.lanes_for("arm")


@pytest.mark.parametrize("isa", ["x86", "hvx", "arm"])
class TestLowering:
    def test_all_benchmarks_lower(self, isa):
        for benchmark in all_benchmarks():
            kernels = benchmark.lower(isa)
            assert kernels, benchmark.name
            for kernel in kernels:
                assert kernel.window.type.bits > 0
                assert kernel.work_items > 0

    def test_vector_width_matches_target(self, isa):
        from repro.machine.targets import TARGETS

        for benchmark in all_benchmarks():
            for kernel in benchmark.lower(isa):
                window_bits = kernel.lanes * kernel.out_elem_width
                assert window_bits in (
                    TARGETS[isa].vector_bits,
                    TARGETS[isa].vector_bits * 2,
                ), benchmark.name


class TestKernelShapes:
    def test_matmul_has_reduce_window(self):
        kernels = benchmark_named("matmul_b1").lower("x86")
        reduces = [
            n for n in kernels[0].window.walk() if isinstance(n, hir.HReduceAdd)
        ]
        assert reduces and reduces[0].factor == 2

    def test_conv_nn_is_four_way(self):
        kernels = benchmark_named("conv_nn").lower("hvx")
        reduces = [
            n for n in kernels[0].window.walk() if isinstance(n, hir.HReduceAdd)
        ]
        assert reduces and reduces[0].factor == 4

    def test_gaussian7x7_is_wide_unrolled(self):
        """The wide-window shape behind the paper's HVX regression."""
        kernels = benchmark_named("gaussian7x7").lower("hvx")
        muls = [
            n
            for n in kernels[0].window.walk()
            if isinstance(n, hir.HBin) and n.op == "mul"
        ]
        assert len(muls) == 7
        assert not any(
            isinstance(n, hir.HReduceAdd) for n in kernels[0].window.walk()
        )

    def test_pooling_uses_rounding_average(self):
        kernels = benchmark_named("average_pool").lower("x86")
        ops = kernels[0].window.ops_used()
        assert "avg_u" in ops

    def test_strided_loads_in_pooling(self):
        kernels = benchmark_named("max_pool").lower("x86")
        strides = {load.stride for load in kernels[0].loads.values()}
        assert 2 in strides

    def test_mlp_blocks_have_two_stages(self):
        assert len(benchmark_named("matmul_bias_relu_matmul").stages) == 2
        assert len(benchmark_named("matmul_bias").stages) == 1

    def test_softmax_has_param_broadcasts(self):
        kernels = benchmark_named("softmax").lower("x86")
        broadcasts = [
            n for n in kernels[0].window.walk() if isinstance(n, hir.HBroadcast)
        ]
        assert len(broadcasts) >= 2

    def test_median_is_minmax_network(self):
        kernels = benchmark_named("median3x3").lower("arm")
        ops = kernels[0].window.ops_used()
        assert ops <= {"min_u", "max_u"}

    def test_matmul_batches_scale_work(self):
        b1 = benchmark_named("matmul_b1").lower("x86")[0].work_items
        b4 = benchmark_named("matmul_b4").lower("x86")[0].work_items
        assert b4 == 4 * b1
