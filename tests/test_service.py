"""Tests for the compilation service: serialization, persistent cache,
scheduler, and the warm-cache acceptance scenario (`service-smoke`)."""

import json

import pytest

from repro.autollvm import build_dictionary
from repro.experiments.runner import ExperimentRunner
from repro.halide import ir as hir
from repro.service import (
    CompileJob,
    PersistentCache,
    Scheduler,
    ServiceOptions,
    gc_store,
    store_stats,
)
from repro.synthesis import CegisOptions, MemoCache
from repro.synthesis.program import (
    SConcat,
    SConstant,
    SInput,
    SSlice,
    SSwizzle,
    evaluate_program,
)
from repro.synthesis.serialize import (
    SerializeError,
    dictionary_fingerprint,
    entry_from_json,
    entry_to_json,
    snode_from_obj,
    snode_to_obj,
)
from repro.workloads.registry import benchmark_named


@pytest.fixture(scope="module")
def dictionary():
    return build_dictionary(("x86", "hvx", "arm"))


def _add_window(lanes=16, ew=16, names=("ld0", "ld1")):
    return hir.HBin(
        "add", hir.HLoad(names[0], lanes, ew), hir.HLoad(names[1], lanes, ew)
    )


def _structural_program():
    # Exercises every structural node kind while staying width-consistent
    # with _add_window(): PersistentCache.lookup abstractly screens hits
    # and evicts programs that contradict the window they are served for.
    return SConcat(
        SSwizzle(
            "interleave_full",
            (
                SSlice(SSlice(SInput("ld0", 16, 16), high=True), high=True),
                SConstant(3, 4, 16),
            ),
            16,
            128,
        ),
        SSlice(SInput("ld1", 16, 16), high=True),
    )


def _op_program(dictionary):
    """A real instruction application (for binding re-resolution)."""
    spec_name = "_mm512_add_epi16"
    op = dictionary.by_target_instruction[spec_name]
    binding = next(b for b in op.bindings if b.spec.name == spec_name)
    from repro.synthesis.program import SOp

    return SOp(
        op,
        binding,
        (SInput("ld0", 32, 16), SInput("ld1", 32, 16)),
        (),
        None,
        512,
    )


class TestSerialize:
    def test_structural_round_trip(self, dictionary):
        node = _structural_program()
        restored = snode_from_obj(snode_to_obj(node), dictionary)
        assert restored == node

    def test_op_round_trip_evaluates_identically(self, dictionary):
        from repro.bitvector.lanes import vector_from_ints

        node = _op_program(dictionary)
        restored = snode_from_obj(snode_to_obj(node), dictionary)
        env = {
            "ld0": vector_from_ints(list(range(32)), 16).bits,
            "ld1": vector_from_ints([7] * 32, 16).bits,
        }
        assert (
            evaluate_program(restored, env).value
            == evaluate_program(node, env).value
        )
        # The binding was re-resolved, not pickled along.
        assert restored.binding.spec.name == "_mm512_add_epi16"

    def test_entry_json_round_trip(self, dictionary):
        from repro.synthesis.cache import CacheEntry

        entry = CacheEntry(_structural_program(), 2.5, ["ld0", "ld1"])
        key, restored = entry_from_json(
            entry_to_json("x86:(k)", entry), dictionary
        )
        assert key == "x86:(k)"
        assert restored.program == entry.program
        assert restored.cost == 2.5
        assert restored.input_order == ["ld0", "ld1"]

    def test_unknown_instruction_rejected(self, dictionary):
        obj = {
            "kind": "op",
            "spec": "no_such_instruction",
            "args": [],
            "imm_values": [],
            "scaled_values": None,
            "out_bits": 128,
        }
        with pytest.raises(SerializeError):
            snode_from_obj(obj, dictionary)

    def test_fingerprint_stable_and_sensitive(self, dictionary):
        a = dictionary_fingerprint(dictionary)
        assert a == dictionary_fingerprint(dictionary)
        assert a != dictionary_fingerprint(dictionary, extra=("v2",))


class TestMemoCacheAccounting:
    def test_failure_hits_counted(self):
        cache = MemoCache()
        window = _add_window()
        assert not cache.lookup_failure(window, "x86")
        assert cache.failure_hits == 0
        cache.store_failure(window, "x86")
        assert cache.lookup_failure(window, "x86")
        assert cache.lookup_failure(window, "x86")
        assert cache.failure_hits == 2
        cache.clear()
        assert cache.failure_hits == 0

    def test_counters_snapshot(self):
        cache = MemoCache()
        cache.lookup(_add_window(), "x86")
        snap = cache.counters()
        assert snap == {
            "hits": 0, "misses": 1, "failure_hits": 0,
            "entries": 0, "failures": 0, "evictions": 0,
        }


class TestPersistentCache:
    def test_persists_across_restart_with_rename(self, tmp_path, dictionary):
        window = _add_window()
        first = PersistentCache(tmp_path, "x86", dictionary)
        first.store(window, "x86", _structural_program(), 4.0)

        # A fresh instance over the same directory models a restart.
        second = PersistentCache(tmp_path, "x86", dictionary)
        assert len(second) == 1
        renamed = _add_window(names=("p", "q"))
        hit = second.lookup(renamed, "x86")
        assert hit is not None
        names = {n.name for n in hit.program.walk() if isinstance(n, SInput)}
        assert names == {"p", "q"}
        assert second.hits == 1

    def test_negative_entries_persist(self, tmp_path, dictionary):
        window = _add_window()
        first = PersistentCache(tmp_path, "x86", dictionary)
        first.store_failure(window, "x86")
        second = PersistentCache(tmp_path, "x86", dictionary)
        assert second.lookup_failure(window, "x86")
        assert second.failure_hits == 1

    def test_fingerprint_mismatch_invalidates(self, tmp_path, dictionary):
        window = _add_window()
        old = PersistentCache(tmp_path, "x86", dictionary, fingerprint="a" * 64)
        old.store(window, "x86", _structural_program(), 4.0)
        # A different fingerprint namespaces to a different directory:
        # nothing from the old dictionary is replayed.
        new = PersistentCache(tmp_path, "x86", dictionary, fingerprint="b" * 64)
        assert len(new) == 0
        assert new.lookup(window, "x86") is None
        # gc keeps only the live namespace.
        outcome = gc_store(tmp_path, "b" * 64)
        assert outcome["removed_namespaces"] == 1
        stats = store_stats(tmp_path)
        assert [ns["fingerprint"][:1] for ns in stats["namespaces"]] == ["b"]

    def test_corrupt_entries_skipped(self, tmp_path, dictionary):
        cache = PersistentCache(tmp_path, "x86", dictionary)
        (cache.dir / "e-0000.json").write_text("{not json")
        (cache.dir / "f-0000.json").write_text("[]")
        reopened = PersistentCache(tmp_path, "x86", dictionary)
        assert len(reopened) == 0
        assert reopened.load_errors == 2

    def test_zero_length_entries_skipped(self, tmp_path, dictionary):
        cache = PersistentCache(tmp_path, "x86", dictionary)
        (cache.dir / "e-0000.json").write_text("")
        (cache.dir / "f-0000.json").write_text("")
        reopened = PersistentCache(tmp_path, "x86", dictionary)
        assert len(reopened) == 0
        assert reopened.load_errors == 2

    def test_refresh_adopts_foreign_writes(self, tmp_path, dictionary):
        window = _add_window()
        reader = PersistentCache(tmp_path, "x86", dictionary)
        writer = PersistentCache(tmp_path, "x86", dictionary)
        writer.store(window, "x86", _structural_program(), 4.0)
        assert reader.lookup(window, "x86") is None
        assert reader.refresh() == 1
        assert reader.lookup(window, "x86") is not None

    def test_refresh_is_idempotent(self, tmp_path, dictionary):
        # Pre-faults refresh() re-parsed every file on every call and
        # re-charged load_errors for the same corrupt file each time.
        reader = PersistentCache(tmp_path, "x86", dictionary)
        writer = PersistentCache(tmp_path, "x86", dictionary)
        writer.store(_add_window(), "x86", _structural_program(), 4.0)
        (reader.dir / "e-bad.json").write_text("{not json")
        assert reader.refresh() == 1
        assert reader.load_errors == 1
        assert reader.refresh() == 0
        assert reader.load_errors == 1
        # Overwriting the corrupt file changes its signature: re-read.
        writer.store(
            _add_window(names=("p", "q")), "x86", _structural_program(), 4.0
        )
        assert reader.refresh() == 1

    def test_store_stats_excludes_tmp_litter(self, tmp_path, dictionary):
        cache = PersistentCache(tmp_path, "x86", dictionary)
        cache.store(_add_window(), "x86", _structural_program(), 4.0)
        clean = store_stats(tmp_path)
        (cache.dir / ".tmp-orphan.json").write_text("x" * 4096)
        littered = store_stats(tmp_path)
        assert littered["total_tmp_litter"] == 1
        assert littered["namespaces"][0]["tmp_litter"] == 1
        assert littered["total_bytes"] == clean["total_bytes"]
        assert littered["total_entries"] == clean["total_entries"]

    def test_store_stats_inventory(self, tmp_path, dictionary):
        cache = PersistentCache(tmp_path, "x86", dictionary)
        cache.store(_add_window(), "x86", _structural_program(), 4.0)
        cache.store_failure(_add_window(names=("a", "b"), ew=8), "x86")
        stats = store_stats(tmp_path)
        assert stats["total_entries"] == 1
        assert stats["total_failures"] == 1
        assert stats["total_bytes"] > 0
        assert stats["namespaces"][0]["isa"] == "x86"


@pytest.mark.service_smoke
class TestServiceSmoke:
    """The ISSUE's acceptance scenario: warm a 2-benchmark cache with
    ``--jobs 2``; the second run must be served entirely from disk (zero
    CEGIS synthesis calls) and parallel results must equal serial ones."""

    BENCHMARKS = ("add", "mul")
    CEGIS = CegisOptions(timeout_seconds=6.0, scale_factor=8)

    @pytest.fixture(scope="class")
    def cache_dir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("service-cache")

    def _jobs(self):
        return [CompileJob(name, "x86") for name in self.BENCHMARKS]

    @pytest.fixture(scope="class")
    def warm_run(self, cache_dir):
        scheduler = Scheduler(
            ServiceOptions(jobs=2, cache_dir=str(cache_dir), cegis=self.CEGIS)
        )
        results = scheduler.run(
            [CompileJob(name, "x86") for name in self.BENCHMARKS]
        )
        return scheduler.last_stats, results

    def test_cold_run_synthesizes_and_populates(self, warm_run, cache_dir):
        stats, results = warm_run
        assert all(r.ok for r in results)
        assert stats.synth_calls > 0
        assert store_stats(cache_dir)["total_entries"] > 0

    def test_second_run_zero_synthesis(self, warm_run, cache_dir):
        _, cold_results = warm_run
        scheduler = Scheduler(
            ServiceOptions(jobs=2, cache_dir=str(cache_dir), cegis=self.CEGIS)
        )
        results = scheduler.run(self._jobs())
        stats = scheduler.last_stats
        assert stats.synth_calls == 0
        assert stats.cache_hits >= 1
        assert stats.hit_rate == 1.0
        # Parallel warm results are identical to the parallel cold run.
        for cold, warm in zip(cold_results, results):
            assert warm.result.runtime_us == cold.result.runtime_us

    def test_parallel_matches_serial(self, warm_run, cache_dir):
        _, cold_results = warm_run
        runner = ExperimentRunner(self.CEGIS, cache_dir=str(cache_dir))
        for outcome in cold_results:
            serial = runner.run_one(
                benchmark_named(outcome.result.benchmark), "x86", "hydride"
            )
            assert serial.runtime_us == outcome.result.runtime_us

    def test_identical_jobs_deduplicated(self, warm_run, cache_dir):
        scheduler = Scheduler(
            ServiceOptions(jobs=2, cache_dir=str(cache_dir), cegis=self.CEGIS)
        )
        results = scheduler.run([CompileJob("add", "x86")] * 2)
        assert scheduler.last_stats.deferred >= 1
        assert results[0].result.runtime_us == results[1].result.runtime_us

    def test_stats_report_hit_rate(self, warm_run, cache_dir):
        from repro.service import read_run_telemetry

        # warm_run (and the tests above) recorded telemetry; `stats` must
        # report a hit rate.
        last = read_run_telemetry(cache_dir)
        assert last is not None
        assert "hit_rate" in last

    def test_perf_counters_surface_in_telemetry(self, warm_run):
        stats, results = warm_run
        # The cold run synthesized, so at least one job carries a
        # synthesis hot-path snapshot delta (counters are process-global;
        # forked workers attribute them cleanly to their one job).
        synth = [r for r in results if r.telemetry.synth_calls > 0]
        assert synth
        assert any(
            r.telemetry.perf.get("candidates_evaluated", 0) > 0 for r in synth
        )
        metrics = synth[0].telemetry.perf_metrics()
        assert "candidates_per_sec" in metrics
        # The scheduler sums per-job deltas into the run aggregate and
        # exports derived rates for `repro.service stats`.
        assert stats.perf.get("candidates_evaluated", 0) > 0
        exported = stats.to_dict()
        assert "blast_cache_hit_rate" in exported["perf_metrics"]


class TestSchedulerSerialPath:
    def test_serial_run_matches_runner(self, dictionary):
        scheduler = Scheduler(
            ServiceOptions(jobs=1, cegis=CegisOptions(timeout_seconds=6.0))
        )
        outcome = scheduler.run([CompileJob("add", "x86", "llvm")])[0]
        assert outcome.ok
        runner = ExperimentRunner(CegisOptions(timeout_seconds=6.0))
        serial = runner.run_one(benchmark_named("add"), "x86", "llvm")
        assert outcome.result.runtime_us == serial.runtime_us

    def test_fallback_on_rake_failure(self):
        # Rake raises CompileError on kernels it cannot handle; the job
        # API degrades to the llvm baseline and records the substitution.
        scheduler = Scheduler(
            ServiceOptions(jobs=1, cegis=CegisOptions(timeout_seconds=6.0))
        )
        outcome = scheduler.run(
            [CompileJob("conv_nn", "hvx", "rake", fallback="llvm")]
        )[0]
        assert outcome.ok
        assert outcome.telemetry.fallback == "llvm"
        assert outcome.result.error.startswith("fallback=llvm:")
        assert outcome.result.compiler == "rake"


class TestCliStats:
    def test_stats_json(self, tmp_path, dictionary, capsys):
        from repro.service.cli import main

        cache = PersistentCache(tmp_path, "x86", dictionary)
        cache.store(_add_window(), "x86", _structural_program(), 4.0)
        assert main(["stats", "--cache-dir", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_entries"] == 1
