"""Tests for repro.daemon: protocol, admission, packs, and the live
daemon (dedup, L1, quotas, drain) via a real subprocess."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.daemon.admission import (
    AdmissionController,
    AdmissionLimits,
    Rejection,
    TokenBucket,
)
from repro.daemon.client import DaemonClient, DaemonError, http_get, parse_addr
from repro.daemon.proc import DaemonProcess
from repro.daemon import protocol
from repro.halide import ir as hir
from repro.service.store import PackError, export_pack, import_pack
from repro.synthesis.cache import MemoCache
from repro.synthesis.program import SInput, SSlice


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_frame_round_trip(self):
        frame = {"id": "r1", "op": "submit", "benchmark": "add"}
        assert protocol.decode_frame(protocol.encode_frame(frame)) == frame

    def test_decode_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(b"not json")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(b"[1, 2, 3]")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_frame(b"x" * (protocol.MAX_FRAME_BYTES + 1))

    def test_job_from_request_defaults(self):
        job = protocol.job_from_request(
            {"id": "r9", "benchmark": "add", "isa": "x86"}
        )
        assert job.benchmark == "add"
        assert job.isa == "x86"
        assert job.compiler == "hydride"
        assert job.tenant == "default"
        assert job.request_id == "r9"
        assert job.retries == 1
        assert job.fallback == "llvm"

    def test_job_from_request_validates(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.job_from_request({"id": "r1", "isa": "x86"})
        with pytest.raises(protocol.ProtocolError):
            protocol.job_from_request(
                {"benchmark": "add", "isa": "x86", "timeout_seconds": "soon"}
            )
        with pytest.raises(protocol.ProtocolError):
            protocol.job_from_request(
                {"benchmark": "add", "isa": "x86", "retries": "many"}
            )

    def test_signature_excludes_tenant(self):
        a = protocol.job_from_request(
            {"id": "1", "benchmark": "add", "isa": "x86", "tenant": "a"}
        )
        b = protocol.job_from_request(
            {"id": "2", "benchmark": "add", "isa": "x86", "tenant": "b"}
        )
        assert a.signature() == b.signature()

    def test_error_response_typed(self):
        frame = protocol.error_response(
            "r1", "quota_exceeded", "slow down", retry_after=0.12345
        )
        assert frame["ok"] is False
        assert frame["error"]["type"] == "quota_exceeded"
        assert frame["error"]["retry_after"] == 0.123
        assert protocol.ERROR_TYPES["quota_exceeded"] is True
        plain = protocol.error_response("r2", "bad_request", "nope")
        assert "retry_after" not in plain["error"]

    def test_http_sniffing_and_response(self):
        assert protocol.looks_like_http(b"GET /stats HTTP/1.1\r\n")
        assert not protocol.looks_like_http(b'{"op": "ping"}\n')
        blob = protocol.http_response(200, {"ok": True})
        head, _, body = blob.partition(b"\r\n\r\n")
        assert b"200 OK" in head
        assert json.loads(body) == {"ok": True}
        assert f"Content-Length: {len(body)}".encode() in head

    def test_parse_addr(self):
        assert parse_addr("1.2.3.4:99") == ("1.2.3.4", 99)
        assert parse_addr(":99") == ("127.0.0.1", 99)
        assert parse_addr("99") == ("127.0.0.1", 99)
        with pytest.raises(DaemonError):
            parse_addr("nope")


# ----------------------------------------------------------------------
# Admission
# ----------------------------------------------------------------------


class TestAdmission:
    def test_token_bucket_burst_then_rate(self):
        bucket = TokenBucket(rate=2.0, burst=3)
        now = 100.0
        assert bucket.take(now) is None
        assert bucket.take(now) is None
        assert bucket.take(now) is None
        wait = bucket.take(now)
        assert wait == pytest.approx(0.5)
        # Half a second later one token has accrued.
        assert bucket.take(now + 0.5) is None

    def test_inflight_cap_rejects_with_retry_after(self):
        controller = AdmissionController(
            AdmissionLimits(tenant_rate=1000.0, tenant_burst=1000,
                            tenant_max_inflight=2)
        )
        controller.admit("t", queue_depth=0)
        controller.admit("t", queue_depth=0)
        with pytest.raises(Rejection) as exc_info:
            controller.admit("t", queue_depth=0)
        assert exc_info.value.error_type == "quota_exceeded"
        assert exc_info.value.retry_after is not None
        controller.release("t")
        controller.admit("t", queue_depth=0)  # slot freed

    def test_queue_bound_rejects_globally(self):
        controller = AdmissionController(
            AdmissionLimits(tenant_rate=1000.0, tenant_burst=1000,
                            max_queue=1)
        )
        with pytest.raises(Rejection) as exc_info:
            controller.admit("t", queue_depth=1)
        assert exc_info.value.error_type == "queue_full"
        assert controller.rejected_queue == 1

    def test_tenants_accounted_separately(self):
        controller = AdmissionController(
            AdmissionLimits(tenant_rate=1000.0, tenant_burst=1000,
                            tenant_max_inflight=1)
        )
        controller.admit("a", queue_depth=0)
        controller.admit("b", queue_depth=0)  # b has its own cap
        snapshot = controller.to_dict()
        assert snapshot["tenants"]["a"]["inflight"] == 1
        assert snapshot["tenants"]["b"]["inflight"] == 1


# ----------------------------------------------------------------------
# MemoCache LRU bound (satellite)
# ----------------------------------------------------------------------


def _window(op: str, lanes=16, ew=16):
    return hir.HBin(
        op, hir.HLoad("ld0", lanes, ew), hir.HLoad("ld1", lanes, ew)
    )


def _program():
    return SSlice(SInput("ld0", 16, 16), high=True)


class TestMemoCacheLRU:
    def test_unbounded_by_default(self):
        cache = MemoCache()
        for op in ("add", "sub", "mul", "and", "or"):
            cache.store(_window(op), "x86", _program(), 1.0)
        assert len(cache) == 5
        assert cache.counters()["evictions"] == 0

    def test_bounded_evicts_least_recently_used(self):
        cache = MemoCache(max_entries=2)
        cache.store(_window("add"), "x86", _program(), 1.0)
        cache.store(_window("sub"), "x86", _program(), 1.0)
        # Touch "add" so "sub" is now the LRU entry.
        assert cache.lookup(_window("add"), "x86") is not None
        cache.store(_window("mul"), "x86", _program(), 1.0)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.counters()["evictions"] == 1
        assert cache.lookup(_window("sub"), "x86") is None  # evicted
        assert cache.lookup(_window("add"), "x86") is not None
        assert cache.lookup(_window("mul"), "x86") is not None

    def test_restore_refreshes_recency(self):
        cache = MemoCache(max_entries=2)
        cache.store(_window("add"), "x86", _program(), 1.0)
        cache.store(_window("sub"), "x86", _program(), 1.0)
        cache.store(_window("add"), "x86", _program(), 2.0)  # re-store
        cache.store(_window("mul"), "x86", _program(), 1.0)
        assert cache.lookup(_window("sub"), "x86") is None  # was LRU
        assert cache.lookup(_window("add"), "x86") is not None

    def test_clear_resets_evictions(self):
        cache = MemoCache(max_entries=1)
        cache.store(_window("add"), "x86", _program(), 1.0)
        cache.store(_window("sub"), "x86", _program(), 1.0)
        assert cache.evictions == 1
        cache.clear()
        assert cache.evictions == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            MemoCache(max_entries=0)


# ----------------------------------------------------------------------
# Cache packs on plain files (no compiler stack involved)
# ----------------------------------------------------------------------


def _fake_namespace(root, isa="x86", fingerprint="fp00", entries=2):
    namespace = root / isa / fingerprint
    namespace.mkdir(parents=True)
    (namespace / "meta.json").write_text(
        json.dumps({"fingerprint": fingerprint})
    )
    for index in range(entries):
        (namespace / f"e-{index:04d}.json").write_text(
            json.dumps({"program": index})
        )
    (namespace / "f-0000.json").write_text(json.dumps({"failed": True}))
    return namespace


class TestCachePacks:
    def test_export_import_round_trip(self, tmp_path):
        source = tmp_path / "src-cache"
        source.mkdir()
        _fake_namespace(source)
        pack = tmp_path / "warm.pack"
        summary = export_pack(source, pack)
        assert summary["namespaces"] == 1
        assert summary["entries"] == 2
        assert summary["failures"] == 1

        target = tmp_path / "dst-cache"
        result = import_pack(target, pack)
        assert result["imported"] == 3
        namespace = target / "x86" / "fp00"
        assert json.loads((namespace / "meta.json").read_text()) == {
            "fingerprint": "fp00"
        }
        assert json.loads((namespace / "e-0001.json").read_text()) == {
            "program": 1
        }

    def test_import_is_idempotent(self, tmp_path):
        source = tmp_path / "src-cache"
        source.mkdir()
        _fake_namespace(source)
        pack = tmp_path / "warm.pack"
        export_pack(source, pack)
        import_pack(tmp_path / "dst", pack)
        again = import_pack(tmp_path / "dst", pack)
        assert again["imported"] == 0
        assert again["skipped"] == 3

    def test_export_skips_tmp_litter(self, tmp_path):
        source = tmp_path / "src-cache"
        source.mkdir()
        namespace = _fake_namespace(source)
        (namespace / ".tmp-torn.json").write_text("garbage")
        summary = export_pack(source, tmp_path / "warm.pack")
        assert summary["entries"] == 2

    def test_import_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.pack"
        bad.write_text("not json")
        with pytest.raises(PackError):
            import_pack(tmp_path / "dst", bad)
        bad.write_text(json.dumps({"version": 99, "namespaces": []}))
        with pytest.raises(PackError):
            import_pack(tmp_path / "dst", bad)
        with pytest.raises(PackError):
            import_pack(tmp_path / "dst", tmp_path / "missing.pack")


# ----------------------------------------------------------------------
# Live daemon (subprocess) — the serving acceptance scenario
# ----------------------------------------------------------------------


@pytest.mark.daemon_smoke
class TestDaemonSmoke:
    """Dedup, tiers, quotas, and drain against a real daemon process."""

    BENCHMARKS = ("add", "mul")
    EXTRA = ["--synth-timeout", "6"]

    @pytest.fixture(scope="class")
    def work(self, tmp_path_factory):
        return tmp_path_factory.mktemp("daemon-smoke")

    @pytest.fixture(scope="class")
    def cold(self, work):
        """One daemon lifetime: concurrent duplicate clients, an L1
        repass, a stats scrape, then SIGTERM drain and pack export."""
        requests = [
            {"benchmark": name, "isa": "x86"} for name in self.BENCHMARKS
        ]
        batches: dict = {}

        def submit(tenant: str) -> None:
            with DaemonClient.connect(daemon.addr, timeout=600.0) as client:
                batches[tenant] = client.submit_many(requests, tenant=tenant)

        with DaemonProcess(
            cache_dir=str(work / "cache"), jobs=2, extra_args=self.EXTRA
        ) as daemon:
            threads = [
                threading.Thread(target=submit, args=(tenant,))
                for tenant in ("tenant-a", "tenant-b")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with DaemonClient.connect(daemon.addr, timeout=120.0) as client:
                repass = client.submit_many(requests, tenant="tenant-a")
            stats = http_get(daemon.addr, "/stats")
            health = http_get(daemon.addr, "/healthz")
            daemon.send_sigterm()
            exit_code = daemon.wait(timeout=60.0)
        pack = work / "warm.pack"
        export_pack(work / "cache", pack)
        return {
            "batches": batches,
            "repass": repass,
            "stats": stats,
            "health": health,
            "exit_code": exit_code,
            "pack": pack,
        }

    def test_every_client_answered_ok(self, cold):
        for tenant in ("tenant-a", "tenant-b"):
            frames = cold["batches"][tenant]
            assert len(frames) == len(self.BENCHMARKS)
            assert all(frame.get("ok") for frame in frames)
            assert all(
                (frame.get("result") or {}).get("runtime_us") is not None
                for frame in frames
            )

    def test_identical_submits_synthesize_exactly_once(self, cold):
        stats = cold["stats"]
        # 2 clients x 2 benchmarks = 4 submits + 2 repass = 6, but only
        # one synthesis per unique job ever ran.
        assert stats["runs"]["jobs"] == len(self.BENCHMARKS)
        daemon = stats["daemon"]
        absorbed = daemon["coalesced"] + daemon["l1_hits"]
        assert absorbed >= len(self.BENCHMARKS)

    def test_l1_repass_runs_zero_synthesis(self, cold):
        assert all(f["served_by"] == "l1" for f in cold["repass"])
        assert (
            sum(f["telemetry"]["synth_calls"] for f in cold["repass"]) == 0
        )
        tiers = cold["stats"]["tiers"]
        assert tiers["l1"]["hits"] >= len(self.BENCHMARKS)
        assert tiers["l1"]["capacity"] > 0

    def test_healthy_and_clean_drain(self, cold):
        assert cold["health"]["ok"] is True
        assert cold["exit_code"] == 0

    def test_stats_expose_portfolio_and_reuse_counters(self, cold):
        """/stats carries the stable portfolio/reuse section (satellite
        of the portfolio CEGIS work): all fields present, never
        negative.  This daemon ran without --portfolio, so no windows
        were raced, but the reuse store is always live for hydride
        jobs."""
        portfolio = cold["stats"]["portfolio"]
        for key in (
            "windows", "arms_launched", "cancels", "cex_broadcast",
            "inline_fallbacks", "reuse_cex_hits", "reuse_cex_preloaded",
            "reuse_clause_hits", "reuse_clauses_preloaded",
        ):
            assert key in portfolio
            assert portfolio[key] >= 0
        assert portfolio["windows"] == 0
        assert portfolio["cancels"] <= portfolio["arms_launched"]

    def test_pack_warmed_fresh_daemon_zero_synthesis(self, cold, work):
        requests = [
            {"benchmark": name, "isa": "x86"} for name in self.BENCHMARKS
        ]
        with DaemonProcess(
            cache_dir=str(work / "cache-fresh"),
            jobs=2,
            extra_args=self.EXTRA + ["--warm-pack", str(cold["pack"])],
        ) as daemon:
            with DaemonClient.connect(daemon.addr, timeout=600.0) as client:
                frames = client.submit_many(requests, tenant="fleet")
            stats = http_get(daemon.addr, "/stats")
        assert all(frame.get("ok") for frame in frames)
        assert stats["runs"]["synth_calls"] == 0
        assert stats["daemon"]["pack_imported_entries"] > 0

    def test_quota_rejections_carry_retry_after(self, cold, work):
        # Tight quotas + duplicate submits: the first is admitted, the
        # rest must bounce with typed, retryable rejections.
        with DaemonProcess(
            cache_dir=str(work / "cache-quota"),
            jobs=1,
            extra_args=self.EXTRA + [
                "--warm-pack", str(cold["pack"]),
                "--tenant-rate", "0.001",
                "--tenant-burst", "2",
                "--tenant-max-inflight", "1",
            ],
        ) as daemon:
            with DaemonClient.connect(daemon.addr, timeout=600.0) as client:
                frames = client.submit_many(
                    [{"benchmark": "add", "isa": "x86"}] * 4,
                    tenant="greedy",
                )
        assert frames[0].get("ok")
        rejected = [frame for frame in frames if not frame.get("ok")]
        assert rejected, "tight quotas produced no rejections"
        for frame in rejected:
            error = frame["error"]
            assert error["type"] in ("quota_exceeded", "queue_full")
            assert error.get("retry_after") is not None

    def test_sigterm_drain_completes_inflight_work(self, work):
        # SIGTERM lands while a cold synthesis is in flight; the drain
        # must still deliver that client its real result, then exit 0.
        result: dict = {}

        def submit() -> None:
            with DaemonClient.connect(daemon.addr, timeout=600.0) as client:
                result["frame"] = client.submit("add", "x86")

        with DaemonProcess(
            cache_dir=str(work / "cache-drain"), jobs=1,
            extra_args=self.EXTRA,
        ) as daemon:
            thread = threading.Thread(target=submit)
            thread.start()
            time.sleep(1.0)  # let the job launch
            daemon.send_sigterm()
            thread.join(timeout=120.0)
            assert not thread.is_alive(), "client hung through the drain"
            exit_code = daemon.wait(timeout=120.0)
        frame = result["frame"]
        assert frame.get("ok"), frame
        assert frame["result"]["runtime_us"] is not None
        assert exit_code == 0
