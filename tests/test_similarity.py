"""Tests for the Similarity Checking Engine (the paper's core offline phase)."""

import pytest

from repro.isa.registry import load_isa
from repro.similarity.constants import extract_constants
from repro.similarity.engine import SimilarityEngine, build_equivalence_classes
from repro.similarity.eqclass import restrict_classes
from repro.similarity.equivalence import (
    check_similar,
    find_similar_permutation,
    instantiate_term,
)
from repro.similarity.holes import insert_offset_holes, synthesize_offset_hole
from repro.smt.solver import EquivalenceChecker


def _sym(isa: str, name: str):
    loaded = load_isa(isa)
    return extract_constants(loaded.semantics[name], isa)


@pytest.fixture(scope="module")
def checker():
    return EquivalenceChecker(seed=11)


class TestExtractConstants:
    def test_add_family_shares_skeleton(self):
        a = _sym("x86", "_mm512_add_epi16")
        b = _sym("x86", "_mm256_add_epi8")
        assert a.skeleton == b.skeleton
        assert len(a.param_names) == len(b.param_names)

    def test_parameters_capture_widths(self):
        a = _sym("x86", "_mm512_add_epi16")
        values = set(a.param_values.values())
        assert 512 in values  # vector width
        assert 16 in values  # element width

    def test_different_ops_different_skeletons(self):
        add = _sym("x86", "_mm_add_epi16")
        sub = _sym("x86", "_mm_sub_epi16")
        assert add.skeleton != sub.skeleton

    def test_bitwidth_unification_shares_width_param(self):
        """Both operands of the lane add must share one width parameter
        (the paper's bitwidth analysis over use-def legality)."""
        a = _sym("x86", "_mm_add_epi16")
        # Count parameters whose value is the element width 16: the two
        # extract widths unify; the lane stride stays separate.
        width_like = [v for v in a.values_vector() if v == 16]
        assert len(width_like) <= 3

    def test_instantiation_roundtrip(self):
        a = _sym("x86", "_mm_add_epi16")
        term = instantiate_term(a, a.values_vector())
        assert term.width == 128


class TestSimilarity:
    def test_paper_example_add_widths(self, checker):
        """_mm512_add_epi16 ~ _mm256_add_epi8 (Section 3.1's example)."""
        a = _sym("x86", "_mm512_add_epi16")
        b = _sym("x86", "_mm256_add_epi8")
        assert check_similar(a, b, checker)

    def test_cross_isa_add(self, checker):
        a = _sym("x86", "_mm_add_epi16")
        b = _sym("arm", "vaddq_s16")
        assert check_similar(a, b, checker)

    def test_add_not_similar_to_sub(self, checker):
        a = _sym("x86", "_mm_add_epi16")
        b = _sym("x86", "_mm_sub_epi16")
        assert not check_similar(a, b, checker)

    def test_saturating_cross_formulation(self, checker):
        """x86 writes saturating add via AddSatS, ARM via SatS(SExt+SExt):
        different dialect formulations, semantically one operation."""
        a = _sym("x86", "_mm_adds_epi8")
        b = _sym("arm", "vqadd_s8")
        assert a.signature() == b.signature() or True
        if a.signature() == b.signature():
            assert check_similar(a, b, checker)

    def test_signed_unsigned_duplicates_merge(self, checker):
        """ARM names sign-agnostic adds twice (vadd_s8 / vadd_u8)."""
        a = _sym("arm", "vadd_s8")
        b = _sym("arm", "vadd_u8")
        assert check_similar(a, b, checker)


class TestPermutation:
    def test_andnot_vs_bic(self, checker):
        """x86 andnot = (~a) & b; ARM bic = a & (~b): similar only after
        permuting arguments (the PermuteArgs step)."""
        a = _sym("x86", "_mm_andnot_si128")
        b = _sym("arm", "vbicq_u32")
        if a.signature() != b.signature():
            pytest.skip("parameter signatures differ; permutation not applicable")
        assert not check_similar(a, b, checker)
        order = find_similar_permutation(a, b, checker)
        assert order is not None


class TestHoles:
    def test_unpacklo_gets_hole(self):
        lo = _sym("x86", "_mm512_unpacklo_epi8")
        refined = insert_offset_holes(lo)
        assert refined is not None
        assert len(refined.param_names) > len(lo.param_names)

    def test_unpackhi_has_no_missing_offset(self):
        hi = _sym("x86", "_mm512_unpackhi_epi8")
        lo = _sym("x86", "_mm512_unpacklo_epi8")
        # hi carries the +offset constant in each of its two input slices;
        # lo lacks both, so similarity needs the hole refinement.
        assert len(hi.param_names) == len(lo.param_names) + 2

    def test_hole_synthesis_preserves_semantics(self, checker):
        lo = _sym("x86", "_mm512_unpacklo_epi8")
        refined = synthesize_offset_hole(lo, checker)
        assert refined is not None
        original = instantiate_term(lo, lo.values_vector())
        new = instantiate_term(refined, refined.values_vector())
        assert checker.check_equivalence(original, new).equivalent

    def test_paper_figure2_pair_merges(self, checker):
        """_mm256_unpackhi_epi16 ~ _mm512_unpacklo_epi8 after refinement
        (the paper's Figure 2 / Figure 3 example)."""
        hi = _sym("x86", "_mm256_unpackhi_epi16")
        lo = _sym("x86", "_mm512_unpacklo_epi8")
        refined_lo = synthesize_offset_hole(lo, checker)
        assert refined_lo is not None
        assert check_similar(hi, refined_lo, checker)


class TestEngine:
    def test_small_engine_run(self, checker):
        loaded = load_isa("hvx")
        names = [
            "V6_vaddb", "V6_vaddh", "V6_vaddw", "V6_vsubb", "V6_vsubh",
            "V6_vaddbsat", "V6_vaddhsat", "V6_vmaxb", "V6_vminb",
        ]
        symbolics = [
            extract_constants(loaded.semantics[n], "hvx") for n in names
        ]
        engine = SimilarityEngine(EquivalenceChecker(seed=3))
        classes = engine.run(symbolics)
        by_member = {m.name: c.class_id for c in classes for m in c.members}
        # The three plain adds merge; subs merge; sat adds merge; min/max apart.
        assert by_member["V6_vaddb"] == by_member["V6_vaddh"] == by_member["V6_vaddw"]
        assert by_member["V6_vsubb"] == by_member["V6_vsubh"]
        assert by_member["V6_vaddb"] != by_member["V6_vsubb"]
        assert by_member["V6_vmaxb"] != by_member["V6_vminb"]

    def test_fixed_params_eliminated(self, checker):
        loaded = load_isa("hvx")
        names = ["V6_vaddb", "V6_vaddh", "V6_vaddw"]
        symbolics = [extract_constants(loaded.semantics[n], "hvx") for n in names]
        engine = SimilarityEngine(EquivalenceChecker(seed=3))
        (cls,) = engine.run(symbolics)
        # All members share the 1024-bit register width: eliminated.
        rep_values = cls.representative.values_vector()
        for position, value in cls.fixed_params.items():
            assert rep_values[position] == value
        assert any(v == 1024 for v in (rep_values[p] for p in cls.fixed_params))

    def test_full_engine_cached(self):
        classes, stats = build_equivalence_classes(("x86", "hvx", "arm"))
        assert stats.instructions > 1000
        assert 100 < stats.classes < stats.instructions // 2
        # Cross-ISA merges exist (the retargetability claim).
        assert any(len(c.isas()) == 3 for c in classes)

    def test_restriction_counts_subadditive(self):
        """Combined ISAs need fewer classes than the sum of individuals —
        the Table 1 sharing effect."""
        classes, _ = build_equivalence_classes(("x86", "hvx", "arm"))
        individual = sum(
            len(restrict_classes(classes, {isa})) for isa in ("x86", "hvx", "arm")
        )
        assert len(classes) < individual

    def test_compression_ratios_match_paper_shape(self):
        """Each ISA compresses to a small fraction of its size, with the
        DSP ISA (HVX) compressing least — the Table 1 ordering."""
        classes, _ = build_equivalence_classes(("x86", "hvx", "arm"))
        ratios = {}
        for isa in ("x86", "hvx", "arm"):
            sub = restrict_classes(classes, {isa})
            instrs = sum(len(c.members) for c in sub)
            ratios[isa] = len(sub) / instrs
        assert ratios["x86"] < ratios["arm"] < ratios["hvx"]
        assert all(r < 0.5 for r in ratios.values())
