"""Tests for the solver substrate: terms, simplifier, SAT, bit-blasting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitvector import BitVector
from repro.smt.bitblast import BitBlaster, NotBitblastable
from repro.smt.eval import evaluate
from repro.smt.sat import CdclSolver, solve_cnf
from repro.smt.simplify import simplify, structurally_equal, substitute
from repro.smt.solver import EquivalenceChecker
from repro.smt.terms import apply_op, const, var


class TestTerms:
    def test_width_inference_binary(self):
        t = apply_op("bvadd", [var("x", 8), var("y", 8)])
        assert t.width == 8

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            apply_op("bvadd", [var("x", 8), var("y", 16)])

    def test_comparison_is_one_bit(self):
        assert apply_op("bvslt", [var("x", 8), var("y", 8)]).width == 1

    def test_concat_width(self):
        assert apply_op("concat", [var("x", 8), var("y", 4)]).width == 12

    def test_extract_bounds(self):
        with pytest.raises(ValueError):
            apply_op("extract", [var("x", 8)], (8, 0))

    def test_variables_collects_all(self):
        t = apply_op("bvadd", [var("x", 8), apply_op("bvnot", [var("y", 8)])])
        assert t.variables() == {"x": 8, "y": 8}

    def test_ite_condition_must_be_bool(self):
        with pytest.raises(ValueError):
            apply_op("ite", [var("c", 8), var("a", 8), var("b", 8)])


class TestEval:
    def test_unbound_variable(self):
        with pytest.raises(KeyError):
            evaluate(var("x", 8), {})

    def test_nested(self):
        t = apply_op(
            "bvmul", [apply_op("bvadd", [var("x", 8), const(1, 8)]), const(3, 8)]
        )
        assert evaluate(t, {"x": BitVector(4, 8)}).value == 15

    def test_saturating(self):
        t = apply_op("bvsaddsat", [var("x", 8), const(100, 8)])
        assert evaluate(t, {"x": BitVector(100, 8)}).signed == 127


class TestSimplify:
    def test_constant_folding(self):
        t = apply_op("bvadd", [const(3, 8), const(4, 8)])
        assert simplify(t) == const(7, 8)

    def test_add_zero_identity(self):
        assert simplify(apply_op("bvadd", [var("x", 8), const(0, 8)])) == var("x", 8)

    def test_mul_one_identity(self):
        assert simplify(apply_op("bvmul", [const(1, 8), var("x", 8)])) == var("x", 8)

    def test_and_self(self):
        x = var("x", 8)
        assert simplify(apply_op("bvand", [x, x])) == x

    def test_xor_self_is_zero(self):
        x = var("x", 8)
        assert simplify(apply_op("bvxor", [x, x])) == const(0, 8)

    def test_commutative_canonical_order(self):
        x, y = var("x", 8), var("y", 8)
        assert structurally_equal(
            apply_op("bvadd", [x, y]), apply_op("bvadd", [y, x])
        )

    def test_extract_of_extract(self):
        x = var("x", 32)
        outer = apply_op(
            "extract", [apply_op("extract", [x], (23, 8))], (11, 4)
        )
        assert simplify(outer) == apply_op("extract", [x], (19, 12))

    def test_extract_of_concat_low_side(self):
        x, y = var("x", 8), var("y", 8)
        joined = apply_op("concat", [x, y])
        assert simplify(apply_op("extract", [joined], (7, 0))) == y
        assert simplify(apply_op("extract", [joined], (15, 8))) == x

    def test_full_extract_is_identity(self):
        x = var("x", 8)
        assert simplify(apply_op("extract", [x], (7, 0))) == x

    def test_ite_constant_condition(self):
        t = apply_op("ite", [const(1, 1), var("a", 8), var("b", 8)])
        assert simplify(t) == var("a", 8)

    def test_substitute(self):
        t = apply_op("bvadd", [var("x", 8), var("y", 8)])
        replaced = substitute(t, {"x": const(5, 8)})
        assert evaluate(replaced, {"y": BitVector(2, 8)}).value == 7

    def test_substitute_width_mismatch(self):
        with pytest.raises(ValueError):
            substitute(var("x", 8), {"x": const(0, 16)})

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_simplify_preserves_semantics(self, a, b):
        x, y = var("x", 8), var("y", 8)
        t = apply_op(
            "bvadd",
            [apply_op("bvmul", [x, const(1, 8)]), apply_op("bvxor", [y, const(0, 8)])],
        )
        env = {"x": BitVector(a, 8), "y": BitVector(b, 8)}
        assert evaluate(simplify(t), env).value == evaluate(t, env).value


class TestSat:
    def test_trivial_sat(self):
        result = solve_cnf(2, [(1, 2), (-1, 2)])
        assert result.satisfiable
        assert result.model[2] is True

    def test_trivial_unsat(self):
        result = solve_cnf(1, [(1,), (-1,)])
        assert not result.satisfiable

    def test_empty_clause_unsat(self):
        result = solve_cnf(1, [()])
        assert not result.satisfiable

    def test_pigeonhole_3_into_2_unsat(self):
        # Variables p[i][j]: pigeon i in hole j (i in 0..2, j in 0..1).
        def v(i, j):
            return i * 2 + j + 1

        clauses = []
        for i in range(3):
            clauses.append((v(i, 0), v(i, 1)))
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    clauses.append((-v(i1, j), -v(i2, j)))
        assert not solve_cnf(6, clauses).satisfiable

    def test_chain_implications(self):
        # x1 -> x2 -> ... -> x20, x1 asserted, all must be true.
        clauses = [(1,)]
        for i in range(1, 20):
            clauses.append((-i, i + 1))
        result = solve_cnf(20, clauses)
        assert result.satisfiable
        assert all(result.model[i] for i in range(1, 21))


def _blast_eval(term, env):
    """Evaluate a term through the bit-blaster + SAT (unit assumptions)."""
    blaster = BitBlaster()
    bits = blaster.blast(term)
    # Pin inputs with unit clauses.
    for name, value in env.items():
        for i, lit in enumerate(blaster.var_bits.get(name, [])):
            bit = (value.value >> i) & 1
            blaster.cnf.assert_lit(lit if bit else -lit)
    result = CdclSolver(blaster.cnf.num_vars, blaster.cnf.clauses).solve()
    assert result.satisfiable
    out = 0
    for i, lit in enumerate(bits):
        assigned = result.model.get(abs(lit), False)
        if (assigned if lit > 0 else not assigned):
            out |= 1 << i
    return out


_BLASTABLE_BINOPS = [
    "bvadd", "bvsub", "bvmul", "bvand", "bvor", "bvxor",
    "bvshl", "bvlshr", "bvashr",
    "bvsmin", "bvsmax", "bvumin", "bvumax",
    "bvsaddsat", "bvuaddsat", "bvssubsat", "bvusubsat",
    "bvuavg", "bvsavg", "bvuavg_round", "bvsavg_round",
]


class TestBitblast:
    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from(_BLASTABLE_BINOPS),
        st.integers(0, 63),
        st.integers(0, 63),
    )
    def test_binop_circuits_match_evaluator(self, op, a, b):
        x, y = var("x", 6), var("y", 6)
        term = apply_op(op, [x, y])
        env = {"x": BitVector(a, 6), "y": BitVector(b, 6)}
        assert _blast_eval(term, env) == evaluate(term, env).value

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(["bveq", "bvult", "bvslt", "bvsle", "bvuge"]),
           st.integers(0, 255), st.integers(0, 255))
    def test_comparison_circuits(self, op, a, b):
        x, y = var("x", 8), var("y", 8)
        term = apply_op(op, [x, y])
        env = {"x": BitVector(a, 8), "y": BitVector(b, 8)}
        assert _blast_eval(term, env) == evaluate(term, env).value

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 255))
    def test_saturate_to_unsigned_circuit(self, a):
        x = var("x", 8)
        term = apply_op("saturate_to_unsigned", [x], (4,))
        env = {"x": BitVector(a, 8)}
        assert _blast_eval(term, env) == evaluate(term, env).value

    def test_division_not_blastable(self):
        term = apply_op("bvudiv", [var("x", 4), var("y", 4)])
        with pytest.raises(NotBitblastable):
            BitBlaster().blast(term)


class TestEquivalenceChecker:
    def test_structural_path(self):
        checker = EquivalenceChecker()
        x, y = var("x", 8), var("y", 8)
        result = checker.check_equivalence(
            apply_op("bvadd", [x, y]), apply_op("bvadd", [y, x])
        )
        assert result.equivalent and result.method == "structural"

    def test_fuzz_finds_difference(self):
        checker = EquivalenceChecker()
        x, y = var("x", 8), var("y", 8)
        result = checker.check_equivalence(
            apply_op("bvadd", [x, y]), apply_op("bvsub", [x, y])
        )
        assert not result.equivalent
        assert result.counterexample is not None
        env = result.counterexample
        lhs = evaluate(apply_op("bvadd", [x, y]), env)
        rhs = evaluate(apply_op("bvsub", [x, y]), env)
        assert lhs.value != rhs.value

    def test_exhaustive_small_space(self):
        checker = EquivalenceChecker()
        x = var("x", 4)
        double = apply_op("bvadd", [x, x])
        shifted = apply_op("bvshl", [x, const(1, 4)])
        result = checker.check_equivalence(double, shifted)
        assert result.equivalent

    def test_sat_proves_mul_by_two(self):
        # Width 12 keeps the multiplier inside the SAT gate
        # (wider multipliers go to the randomized battery by design).
        checker = EquivalenceChecker()
        x, y = var("x", 12), var("y", 12)
        lhs = apply_op("bvadd", [apply_op("bvmul", [x, const(2, 12)]), y])
        rhs = apply_op("bvadd", [apply_op("bvadd", [x, x]), y])
        result = checker.check_equivalence(lhs, rhs)
        assert result.equivalent
        assert result.method in ("sat", "structural")

    def test_sat_counterexample_is_real(self):
        checker = EquivalenceChecker()
        x = var("x", 24)
        lhs = apply_op("bvshl", [x, const(2, 24)])
        rhs = apply_op("bvadd", [x, x])
        result = checker.check_equivalence(lhs, rhs)
        assert not result.equivalent
        env = result.counterexample
        assert evaluate(lhs, env).value != evaluate(rhs, env).value

    def test_find_model(self):
        checker = EquivalenceChecker()
        x = var("x", 8)
        constraint = apply_op("bveq", [apply_op("bvmul", [x, x]), const(49, 8)])
        model = checker.find_model(constraint)
        assert model is not None
        assert (model["x"].value * model["x"].value) & 0xFF == 49

    def test_find_model_unsat(self):
        checker = EquivalenceChecker()
        x = var("x", 4)
        constraint = apply_op(
            "bveq", [apply_op("bvand", [x, const(0, 4)]), const(1, 4)]
        )
        assert checker.find_model(constraint) is None

    def test_saturating_formulations_equivalent(self):
        """sat_add(x, y) == saturate(sext(x) + sext(y)) — the similarity
        engine depends on cross-formulation equivalences like this."""
        checker = EquivalenceChecker()
        x, y = var("x", 8), var("y", 8)
        direct = apply_op("bvsaddsat", [x, y])
        wide = apply_op(
            "saturate_to_signed",
            [apply_op("bvadd", [apply_op("sext", [x], (16,)),
                                apply_op("sext", [y], (16,))])],
            (8,),
        )
        assert checker.check_equivalence(direct, wide).equivalent
