"""Tests for the distilled rewrite-rule engine (repro.synthesis.rules):
distiller soundness, the ≥200-instantiation property check, the online
matcher's bit-identity guarantee, rulebook persistence, cache-pack v2,
gc reaping, and the rule_hits telemetry flow."""

import json
import random

import pytest

from repro.autollvm import build_dictionary
from repro.halide import ir as hir
from repro.perf import global_counters
from repro.service.jobs import JobResult, JobTelemetry
from repro.service.scheduler import ServiceStats
from repro.service.store import (
    RULEBOOK_FILENAME,
    export_pack,
    gc_store,
    import_pack,
    store_stats,
)
from repro.service.telemetry import fold_outcome
from repro.experiments.runner import BenchmarkResult
from repro.synthesis import (
    CegisOptions,
    GrammarOptions,
    MemoCache,
    build_grammar,
    dictionary_fingerprint,
    synthesize,
)
from repro.synthesis.program import SInput, evaluate_program
from repro.synthesis.rules import (
    Rule,
    RuleBook,
    distill_rules,
    instantiate,
    program_signature,
    rule_window,
    verify_rule,
    window_env,
)

OPTIONS = CegisOptions(timeout_seconds=30)


@pytest.fixture(scope="module")
def dictionary():
    return build_dictionary(("x86", "hvx", "arm"))


def _const_window(op: str, const: int, lanes: int = 8, ew: int = 16):
    return hir.HBin(
        op, hir.HLoad("a", lanes, ew), hir.HConst(const, lanes, ew)
    )


def _synth(window, dictionary, cache, rules=None):
    grammar = build_grammar(window, "x86", dictionary, GrammarOptions())
    return synthesize(
        window, grammar, OPTIONS, cache, dictionary=dictionary, rules=rules
    )


@pytest.fixture(scope="module")
def distilled(dictionary):
    """A small seed family synthesized cold, then distilled."""
    cache = MemoCache()
    for op in ("add", "mul"):
        for const in (3, 5, 9):
            _synth(_const_window(op, const), dictionary, cache)
    fingerprint = dictionary_fingerprint(dictionary)
    book, report = distill_rules(
        cache._entries.items(), "x86", fingerprint=fingerprint, seed=7
    )
    return book, report


class TestDistiller:
    def test_distills_parameterized_rules(self, distilled):
        book, report = distilled
        assert report.scanned == 6
        assert len(book) >= 1
        # Constants became holes: at least one rule is parameterized
        # and covers several cache entries.
        assert any(rule.holes for rule in book.rules)
        assert any(rule.members >= 3 for rule in book.rules)
        # Every admitted rule passed a verifier and says which one.
        assert all(rule.verified for rule in book.rules)

    def test_every_rule_survives_200_random_instantiations(self, distilled):
        """Property check: 200 seeded random hole assignments per rule,
        each instantiation's concrete evaluation must equal the window
        semantics on random inputs."""
        book, _report = distilled
        rng = random.Random(0xC0FFEE)
        for rule in book.rules:
            for _ in range(200):
                values = {
                    name: rng.getrandbits(ew) for name, ew in rule.holes
                }
                program = instantiate(rule.template, values)
                window = rule_window(
                    rule,
                    lambda name, lanes, ew: hir.HConst(
                        values[name], lanes, ew
                    ),
                )
                env = window_env(window, rng)
                got = evaluate_program(program, env).value
                want = hir.interpret(window, env).value
                assert got == want, (
                    f"rule {rule.key} wrong at holes={values}"
                )

    def test_unsound_injected_rule_is_rejected(self, distilled):
        """A tampered rule whose template just forwards the input must
        not survive verification (it is wrong for any nonzero hole)."""
        book, _report = distilled
        victim = next(rule for rule in book.rules if rule.holes)
        leaf = next(
            n for n in victim.template.walk() if isinstance(n, SInput)
        )
        bogus = Rule(
            key=victim.key,
            isa=victim.isa,
            slots=victim.slots,
            holes=victim.holes,
            template=leaf,
            cost=0.0,
        )
        ok, reason = verify_rule(bogus, seed=1)
        assert not ok
        assert reason

    def test_counters_track_distillation(self, dictionary):
        cache = MemoCache()
        for const in (3, 5, 9):
            _synth(_const_window("add", const), dictionary, cache)
        counters = global_counters()
        distilled_before = counters.rule_distilled
        book, _report = distill_rules(cache._entries.items(), "x86", seed=7)
        assert counters.rule_distilled - distilled_before == len(book)


class TestMatcher:
    def test_unseen_constant_is_bit_identical(self, dictionary, distilled):
        book, _report = distilled
        window = _const_window("add", 121)
        served = book.match(window, "x86")
        assert served is not None
        fresh = _synth(window, dictionary, MemoCache())
        assert program_signature(served) == program_signature(fresh.program)

    def test_lane_scaled_match_is_bit_identical(self, dictionary, distilled):
        """Doubled lanes force equivalence-class re-binding to the wider
        sibling instruction; the result must still match fresh CEGIS."""
        book, _report = distilled
        window = _const_window("mul", 13, lanes=16)
        served = book.match(window, "x86")
        assert served is not None
        fresh = _synth(window, dictionary, MemoCache())
        assert program_signature(served) == program_signature(fresh.program)

    def test_unknown_shape_misses(self, distilled):
        book, _report = distilled
        counters = global_counters()
        misses_before = counters.rule_misses
        window = hir.HBin(
            "sub", hir.HLoad("a", 8, 16), hir.HLoad("b", 8, 16)
        )
        assert book.match(window, "x86") is None
        assert counters.rule_misses == misses_before + 1

    def test_synthesize_serves_from_rules_on_miss(self, dictionary, distilled):
        book, _report = distilled
        counters = global_counters()
        matches_before = counters.rule_matches
        result = _synth(
            _const_window("add", 77), dictionary, MemoCache(), rules=book
        )
        assert result.stats.verified == "rule"
        assert counters.rule_matches == matches_before + 1


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, dictionary, distilled):
        book, _report = distilled
        path = book.save(tmp_path)
        assert path.name == RULEBOOK_FILENAME
        loaded = RuleBook.load(
            tmp_path, dictionary, expect_fingerprint=book.fingerprint
        )
        assert loaded is not None
        assert loaded.stats() == book.stats()
        # The reloaded book still matches.
        assert loaded.match(_const_window("add", 55), "x86") is not None

    def test_stale_fingerprint_refused(self, tmp_path, dictionary, distilled):
        book, _report = distilled
        book.save(tmp_path)
        assert (
            RuleBook.load(tmp_path, dictionary, expect_fingerprint="deadbeef")
            is None
        )


def _fake_namespace(root, isa="x86", fingerprint="fp00", rules=True):
    namespace = root / isa / fingerprint
    namespace.mkdir(parents=True)
    (namespace / "meta.json").write_text(
        json.dumps({"fingerprint": fingerprint})
    )
    (namespace / "e-0000.json").write_text(json.dumps({"program": 0}))
    if rules:
        (namespace / RULEBOOK_FILENAME).write_text(
            json.dumps(
                {"version": 1, "isa": isa, "fingerprint": fingerprint,
                 "rules": [{"fake": True}]}
            )
        )
    return namespace


class TestCachePackRules:
    def test_pack_v2_carries_rulebook(self, tmp_path):
        source = tmp_path / "src"
        source.mkdir()
        _fake_namespace(source)
        pack = tmp_path / "warm.pack"
        summary = export_pack(source, pack)
        assert summary["rulebooks"] == 1
        assert json.loads(pack.read_text())["version"] == 2

        target = tmp_path / "dst"
        result = import_pack(target, pack)
        assert result["rulebooks"] == 1
        shipped = target / "x86" / "fp00" / RULEBOOK_FILENAME
        assert json.loads(shipped.read_text())["fingerprint"] == "fp00"

    def test_pack_v1_still_imports(self, tmp_path):
        """Backward compat: a version-1 pack (no rules payload) loads."""
        pack = tmp_path / "old.pack"
        pack.write_text(json.dumps({
            "version": 1,
            "namespaces": [{
                "isa": "x86",
                "dir": "fp00",
                "meta": {"fingerprint": "fp00"},
                "files": {"e-0000.json": {"program": 0}},
            }],
        }))
        result = import_pack(tmp_path / "dst", pack)
        assert result["imported"] >= 1
        assert result["rulebooks"] == 0

    def test_import_keeps_local_rulebook(self, tmp_path):
        source = tmp_path / "src"
        source.mkdir()
        _fake_namespace(source)
        pack = tmp_path / "warm.pack"
        export_pack(source, pack)

        target = tmp_path / "dst"
        local = _fake_namespace(target, rules=False) / RULEBOOK_FILENAME
        local.write_text(json.dumps({"version": 1, "rules": [], "local": 1}))
        import_pack(target, pack)
        assert json.loads(local.read_text()).get("local") == 1

    def test_store_stats_counts_rules(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        _fake_namespace(root)
        stats = store_stats(root)
        assert stats["total_rules"] == 1
        assert stats["namespaces"][0]["rules"] == 1


class TestGcRulebooks:
    def test_gc_reaps_stale_rulebook_in_kept_namespace(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        namespace = _fake_namespace(root, fingerprint="a" * 16, rules=False)
        # The namespace is current, but its rulebook was distilled
        # against a different dictionary generation.
        rules = namespace / RULEBOOK_FILENAME
        rules.write_text(json.dumps(
            {"version": 1, "isa": "x86", "fingerprint": "old" * 8,
             "rules": []}
        ))
        outcome = gc_store(root, "a" * 64)
        assert outcome["removed_namespaces"] == 0
        assert outcome["removed_rulebooks"] == 1
        assert not rules.exists()
        # Cache entries in the kept namespace are untouched.
        assert (namespace / "e-0000.json").exists()

    def test_gc_reaps_corrupt_rulebook(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        namespace = _fake_namespace(root, fingerprint="a" * 16, rules=False)
        rules = namespace / RULEBOOK_FILENAME
        rules.write_text("{torn write")
        outcome = gc_store(root, "a" * 64)
        assert outcome["removed_rulebooks"] == 1
        assert not rules.exists()

    def test_gc_keeps_fresh_rulebook(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        fingerprint = "a" * 64
        namespace = _fake_namespace(
            root, fingerprint=fingerprint[:16], rules=False
        )
        rules = namespace / RULEBOOK_FILENAME
        rules.write_text(json.dumps(
            {"version": 1, "isa": "x86", "fingerprint": fingerprint,
             "rules": []}
        ))
        outcome = gc_store(root, fingerprint)
        assert outcome["removed_rulebooks"] == 0
        assert rules.exists()


class TestTelemetryFlow:
    def test_rule_hits_fold_into_service_stats(self):
        outcome = JobResult(
            job=None,
            result=BenchmarkResult("add", "x86", "hydride", 1.0),
            telemetry=JobTelemetry(rule_hits=3, synth_calls=1),
        )
        stats = ServiceStats()
        fold_outcome(stats, outcome)
        assert stats.rule_hits == 3
        # Rule-served windows count as cache activity, not misses.
        assert stats.lookups == 4
        assert stats.to_dict()["rule_hits"] == 3
