"""Integration tests for the experiment harnesses (small configurations).

The full table/figure regeneration lives under ``benchmarks/``; these
tests exercise each harness end-to-end on reduced inputs and assert the
paper's qualitative shapes.
"""

import pytest

from repro.experiments import table1, table2
from repro.experiments.runner import ExperimentRunner, format_table
from repro.synthesis import CegisOptions
from repro.workloads.registry import benchmark_named


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(CegisOptions(timeout_seconds=8.0, scale_factor=8))


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run()

    def test_seven_rows(self, result):
        assert len(result.rows) == 7

    def test_each_isa_compresses(self, result):
        for row in result.rows:
            assert row.autollvm_size < row.isa_size / 2

    def test_combination_subadditive(self, result):
        combined = result.row(("x86", "hvx", "arm")).autollvm_size
        total = sum(result.row((isa,)).autollvm_size for isa in ("x86", "hvx", "arm"))
        assert combined < total

    def test_hvx_least_compressible(self, result):
        """HVX is 'a much smaller, and more specialized, instruction set';
        its ratio is the largest, as in the paper's Table 1."""
        ratios = {
            isa: result.row((isa,)).percent for isa in ("x86", "hvx", "arm")
        }
        assert ratios["hvx"] > ratios["arm"] > ratios["x86"]

    def test_render(self, result):
        text = table1.render(result)
        assert "x86 + hvx + arm" in text
        assert "paper" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(trials=32)

    def test_buggy_interpreter_diverges(self, result):
        assert result.buggy_families()

    def test_only_shift_families_diverge(self, result):
        for family in result.buggy_families():
            assert family.startswith("shift"), family

    def test_fixed_interpreter_clean(self, result):
        assert result.fixed_families() == set()

    def test_five_known_bugs_documented(self, result):
        assert len(result.known_bugs) == 5


class TestFigure6Shapes:
    """Key qualitative shapes on a reduced benchmark set."""

    def test_hydride_wins_dot_products_on_hvx(self, runner):
        b = benchmark_named("l2norm")
        hydride = runner.run_one(b, "hvx", "hydride")
        llvm = runner.run_one(b, "hvx", "llvm")
        assert hydride.ok and llvm.ok
        assert hydride.runtime_us < llvm.runtime_us

    def test_llvm_loses_on_hvx_saturation(self, runner):
        b = benchmark_named("average_pool")
        halide = runner.run_one(b, "hvx", "halide")
        llvm = runner.run_one(b, "hvx", "llvm")
        assert llvm.runtime_us > 1.3 * halide.runtime_us

    def test_gaussian7x7_native_wins_on_hvx(self, runner):
        """The paper's one big HVX regression: the wide vrmpy window."""
        b = benchmark_named("gaussian7x7")
        halide = runner.run_one(b, "hvx", "halide")
        hydride = runner.run_one(b, "hvx", "hydride")
        assert hydride.runtime_us > 1.2 * halide.runtime_us

    def test_parity_on_simple_kernels(self, runner):
        b = benchmark_named("dilate3x3")
        halide = runner.run_one(b, "x86", "halide")
        hydride = runner.run_one(b, "x86", "hydride")
        ratio = halide.runtime_us / hydride.runtime_us
        assert 0.8 <= ratio <= 1.25

    def test_rake_fails_widely(self, runner):
        failures = 0
        for name in ("conv_nn", "gaussian7x7", "median3x3"):
            outcome = runner.run_one(benchmark_named(name), "hvx", "rake")
            if not outcome.ok:
                failures += 1
        assert failures >= 2


class TestRunnerInfra:
    def test_format_table(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "333" in lines[3]

    def test_suite_geomean(self, runner):
        suite = runner.run_suite(
            "x86", ("halide", "llvm"), [benchmark_named("dilate3x3")]
        )
        assert suite.geomean_speedup("llvm", "halide") == pytest.approx(1.0, rel=0.3)
