"""End-to-end integration: DSL program -> synthesized target code that
computes the right answer, verified against the DSL semantics."""

import random

import pytest

from repro.autollvm import InstructionSelector, build_dictionary
from repro.autollvm.llvmir import verify_function
from repro.backend import HydrideCompiler
from repro.backend.hydride import rewrite_broadcasts
from repro.bitvector import BitVector
from repro.halide import ir as hir
from repro.halide.dsl import Buffer, Func, Var, maximum, saturating_add
from repro.halide.lowering import lower_func
from repro.synthesis import CegisOptions, MemoCache, build_grammar, synthesize
from repro.synthesis.program import evaluate_program
from repro.synthesis.translate import translate_program

x, y = Var("x"), Var("y")


@pytest.fixture(scope="module")
def dictionary():
    return build_dictionary(("x86", "hvx", "arm"))


def _verify_program_against_window(program, window, trials=60, seed=3):
    rng = random.Random(seed)
    loads = sorted(window.loads().items())
    for _ in range(trials):
        env = {
            name: BitVector(rng.getrandbits(t.bits), t.bits) for name, t in loads
        }
        assert (
            evaluate_program(program, env).value
            == hir.interpret(window, env).value
        )


@pytest.mark.parametrize("isa,lanes", [("x86", 32), ("hvx", 64), ("arm", 8)])
def test_saturating_pipeline(dictionary, isa, lanes):
    """max(a +sat b, c) written in the DSL compiles to correct target code
    on every architecture from the same source — retargetability."""
    a, b, c = Buffer("a", 16), Buffer("b", 16), Buffer("c", 16)
    f = Func("satmax")
    f[x, y] = maximum(saturating_add(a[y, x], b[y, x]), c[y, x])
    f.vectorize(x, lanes)
    kernel = lower_func(f, {"x": lanes * 4, "y": 2})
    window = rewrite_broadcasts(kernel.window)

    grammar = build_grammar(window, isa, dictionary)
    result = synthesize(
        window, grammar, CegisOptions(timeout_seconds=45, scale_factor=8)
    )
    _verify_program_against_window(result.program, window)

    translated = translate_program(result.program, f"satmax_{isa}", 16)
    verify_function(translated.function)
    lowered = InstructionSelector(dictionary, isa).lower_function(
        translated.function
    )
    verify_function(lowered)
    text = lowered.render()
    assert "@autollvm." not in text  # fully lowered to target intrinsics
    assert f"@llvm.{isa}." in text


def test_cross_benchmark_cache_sharing(dictionary):
    """matmul variants share synthesis results through the memo cache."""
    from repro.workloads.registry import benchmark_named

    cache = MemoCache()
    compiler = HydrideCompiler(
        dictionary=dictionary,
        cache=cache,
        cegis=CegisOptions(timeout_seconds=25, scale_factor=8),
    )
    kernel_b1 = benchmark_named("matmul_b1").lower("hvx")[0]
    kernel_b4 = benchmark_named("matmul_b4").lower("hvx")[0]
    compiler.compile(kernel_b1, "hvx")
    hits_before = cache.hits
    second = compiler.compile(kernel_b4, "hvx")
    assert cache.hits > hits_before  # same window, different batch size
    assert second.compile_seconds < 2.0


def test_full_hydride_compile_is_correct_per_window(dictionary):
    """Every window the Hydride backend synthesizes for a real benchmark
    computes exactly what its specification computes."""
    from repro.workloads.registry import benchmark_named

    compiler = HydrideCompiler(
        dictionary=dictionary,
        cache=MemoCache(),
        cegis=CegisOptions(timeout_seconds=25, scale_factor=8),
    )
    kernel = benchmark_named("l2norm").lower("hvx")[0]
    compiled = compiler.compile(kernel, "hvx")
    window = rewrite_broadcasts(kernel.window)
    programs = compiled.programs
    if len(programs) == 1:
        _verify_program_against_window(programs[0], window)
    else:
        # Split windows: each synthesized piece verifies against the
        # corresponding sub-expression during synthesis itself; at least
        # one piece must exist.
        assert programs
