"""Incremental SAT solving, hash-consing and the blast cache.

Property tests check that the incremental solver (persistent clause
database, learned-clause retention, assumption-based queries) agrees
with one-shot solving on random CNFs, and that the hash-consed term
layer keys the :class:`BitBlaster` cache structurally rather than by
``id()`` (which could alias after garbage collection).
"""

import gc
import random

from repro.perf import global_counters
from repro.smt.bitblast import BitBlaster
from repro.smt.sat import CdclSolver, solve_cnf
from repro.smt.solver import IncrementalSatContext
from repro.smt.terms import apply_op, const, term_uid, var


def random_cnf(rng: random.Random, num_vars: int, num_clauses: int):
    """A random 3-ish-SAT instance without tautology clauses.

    Tautologies are dropped by ``add_clause`` before the variable space
    grows, so a variable appearing only in tautologies would be missing
    from the model — skip them so model checks can be exact.
    """
    clauses = []
    while len(clauses) < num_clauses:
        width = rng.randint(1, 3)
        chosen = rng.sample(range(1, num_vars + 1), width)
        clause = [v if rng.random() < 0.5 else -v for v in chosen]
        if any(-lit in clause for lit in clause):
            continue
        clauses.append(clause)
    return clauses


def check_model(clauses, model):
    for clause in clauses:
        assert any(
            model[abs(lit)] == (lit > 0) for lit in clause
        ), f"model does not satisfy {clause}"


class TestIncrementalAgreesWithFresh:
    def test_batched_clause_addition(self):
        """Adding clauses in batches with solves in between matches a
        fresh one-shot solve of everything seen so far."""
        rng = random.Random(1234)
        for _ in range(25):
            num_vars = rng.randint(4, 12)
            clauses = random_cnf(rng, num_vars, rng.randint(6, 40))
            incremental = CdclSolver()
            fed = 0
            while fed < len(clauses):
                batch = rng.randint(1, 8)
                for clause in clauses[fed : fed + batch]:
                    incremental.add_clause(clause)
                fed += batch
                result = incremental.solve()
                fresh = solve_cnf(num_vars, clauses[:fed])
                assert result.satisfiable == fresh.satisfiable
                if result.satisfiable:
                    check_model(clauses[:fed], result.model)

    def test_assumptions_match_unit_clauses(self):
        """solve(assumptions=...) matches a fresh solver with the
        assumptions added as unit clauses."""
        rng = random.Random(99)
        for _ in range(40):
            num_vars = rng.randint(4, 10)
            clauses = random_cnf(rng, num_vars, rng.randint(5, 30))
            assumed = [
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, num_vars + 1), rng.randint(1, 3))
            ]
            solver = CdclSolver(num_vars, clauses)
            result = solver.solve(assumptions=assumed)
            fresh = solve_cnf(
                num_vars, clauses + [[lit] for lit in assumed]
            )
            assert result.satisfiable == fresh.satisfiable
            if result.satisfiable:
                check_model(clauses, result.model)
                for lit in assumed:
                    assert result.model[abs(lit)] == (lit > 0)

    def test_assumption_queries_repeatable(self):
        """The same assumption query gives the same answer when
        repeated, regardless of queries in between."""
        rng = random.Random(7)
        for _ in range(15):
            num_vars = rng.randint(4, 10)
            clauses = random_cnf(rng, num_vars, rng.randint(5, 25))
            solver = CdclSolver(num_vars, clauses)
            queries = [
                [v if rng.random() < 0.5 else -v
                 for v in rng.sample(range(1, num_vars + 1), 2)]
                for _ in range(4)
            ]
            first = [solver.solve(assumptions=q).satisfiable for q in queries]
            second = [solver.solve(assumptions=q).satisfiable for q in queries]
            assert first == second

    def test_solver_usable_after_unsat_assumptions(self):
        """An UNSAT-under-assumptions answer must not poison the solver:
        the clause database alone is still satisfiable afterwards."""
        solver = CdclSolver(2, [[1, 2]])
        refused = solver.solve(assumptions=[-1, -2])
        assert not refused.satisfiable
        retry = solver.solve()
        assert retry.satisfiable
        check_model([[1, 2]], retry.model)


class TestLearnedClauseRetention:
    def _conflict_rich_cnf(self):
        # Pigeonhole PHP(4,3): 4 pigeons, 3 holes — UNSAT, needs real
        # conflict analysis rather than pure propagation.
        def hole_var(p, h):
            return p * 3 + h + 1

        clauses = [[hole_var(p, h) for h in range(3)] for p in range(4)]
        for h in range(3):
            for p1 in range(4):
                for p2 in range(p1 + 1, 4):
                    clauses.append([-hole_var(p1, h), -hole_var(p2, h)])
        return 12, clauses

    def test_learning_accumulates_across_solves(self):
        num_vars, clauses = self._conflict_rich_cnf()
        solver = CdclSolver(num_vars, clauses)
        result = solver.solve()
        assert not result.satisfiable
        assert solver.total_conflicts > 0

        # A second solver under assumptions hits conflicts on the first
        # query; the learned clauses stay in the database so total
        # learning only ever grows, never resets between solve() calls.
        probing = CdclSolver(num_vars, clauses[:-1])
        probing.solve(assumptions=[1])
        learned_after_first = probing.learned_count
        conflicts_after_first = probing.total_conflicts
        assert learned_after_first > 0
        probing.solve(assumptions=[1])
        assert probing.learned_count >= learned_after_first
        assert probing.total_conflicts >= conflicts_after_first

    def test_repeat_query_cheaper_with_retained_clauses(self):
        """Re-asking the exact same assumption query reuses retained
        learned clauses: the repeat costs no more conflicts than the
        first ask."""
        num_vars, clauses = self._conflict_rich_cnf()
        solver = CdclSolver(num_vars, clauses[:-1])
        first = solver.solve(assumptions=[1])
        repeat = solver.solve(assumptions=[1])
        assert repeat.satisfiable == first.satisfiable
        assert repeat.conflicts <= first.conflicts

    def test_clauses_added_after_solve_take_effect(self):
        solver = CdclSolver(2, [[1, 2]])
        assert solver.solve().satisfiable
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert not solver.solve().satisfiable
        # UNSAT without assumptions is final: it sticks.
        assert not solver.solve().satisfiable


class TestIncrementalSatContext:
    def test_query_sequence_reuses_one_solver(self):
        x = var("x", 8)
        one = const(1, 8)
        ctx = IncrementalSatContext()

        # (x + 1) vs (1 + x): equal for all x -> no difference (UNSAT).
        a = apply_op("bvadd", [x, one])
        b = apply_op("bvadd", [one, x])
        assert not ctx.check_not_equal(a, b).satisfiable

        # x vs x + 1: always different (SAT) with a witness.
        witness = ctx.check_not_equal(x, apply_op("bvadd", [x, one]))
        assert witness.satisfiable

        # Back to an UNSAT query after a SAT one: the retired activation
        # literal must not leak the old difference constraint.
        assert not ctx.check_not_equal(a, b).satisfiable
        assert ctx.queries == 3

    def test_model_decodes_through_shared_blaster(self):
        x = var("x", 4)
        ctx = IncrementalSatContext()
        result = ctx.check_not_equal(x, const(5, 4))
        assert result.satisfiable
        bits = ctx.blaster.blast(x)
        value = sum(
            (1 << i) if result.model.get(abs(lit), False) == (lit > 0) else 0
            for i, lit in enumerate(bits)
        )
        assert value != 5


class TestHashConsing:
    def test_structural_identity_interns(self):
        a = apply_op("bvadd", [var("x", 8), const(3, 8)])
        b = apply_op("bvadd", [var("x", 8), const(3, 8)])
        assert a is b
        assert term_uid(a) == term_uid(b)
        assert hash(a) == hash(b)

    def test_distinct_terms_distinct_uids(self):
        a = apply_op("bvadd", [var("x", 8), const(3, 8)])
        b = apply_op("bvadd", [var("x", 8), const(4, 8)])
        assert a is not b
        assert term_uid(a) != term_uid(b)
        assert a != b

    def test_blast_cache_keys_survive_term_churn(self):
        """Regression: the blast cache used to key on ``id(term)``, so a
        garbage-collected term could alias a new term at the same
        address.  Structural uids are never reused: churning through
        fresh structurally-distinct terms must never produce a stale
        cache hit, and rebuilding an old structure must hit."""
        blaster = BitBlaster()
        x = var("x", 8)
        blaster.blast(apply_op("bvnot", [x]))
        baseline_bits = {}
        for i in range(50):
            term = apply_op("bvadd", [x, const(i, 8)])
            baseline_bits[i] = tuple(blaster.blast(term))
            del term
            gc.collect()
        misses = blaster.cache_misses
        hits = blaster.cache_hits
        for i in range(50):
            term = apply_op("bvadd", [x, const(i, 8)])
            assert tuple(blaster.blast(term)) == baseline_bits[i]
        # All 50 re-blasts are structural re-requests: pure cache hits.
        assert blaster.cache_misses == misses
        assert blaster.cache_hits == hits + 50

    def test_global_counters_track_intern_hits(self):
        perf = global_counters()
        before = perf.term_intern_hits
        first = apply_op("bvxor", [var("q", 16), var("r", 16)])
        again = apply_op("bvxor", [var("q", 16), var("r", 16)])
        assert first is again
        assert perf.term_intern_hits > before
