"""Cross-cutting property-based tests on the core invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitvector import BitVector
from repro.hydride_ir.interp import interpret, resolved_input_widths, to_term
from repro.isa.registry import load_isa
from repro.smt.eval import evaluate
from repro.smt.simplify import simplify


@pytest.fixture(scope="module")
def x86():
    return load_isa("x86")


@pytest.fixture(scope="module")
def hvx():
    return load_isa("hvx")


class TestSemanticsInvariants:
    """Invariants that must hold for every parsed instruction."""

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_interpretation_is_deterministic(self, x86, data):
        spec = data.draw(st.sampled_from([s.name for s in x86.catalog.specs[:80]]))
        semantics = x86.semantics[spec]
        widths = resolved_input_widths(semantics, {})
        env = {
            name: BitVector(data.draw(st.integers(0, (1 << w) - 1)), w)
            for name, w in widths.items()
        }
        assert interpret(semantics, env).value == interpret(semantics, env).value

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_term_lowering_agrees_with_interpreter(self, x86, data):
        names = [
            s.name for s in x86.catalog.specs if s.output_width <= 128
        ][:60]
        spec = data.draw(st.sampled_from(names))
        semantics = x86.semantics[spec]
        widths = resolved_input_widths(semantics, {})
        env = {
            name: BitVector(data.draw(st.integers(0, (1 << w) - 1)), w)
            for name, w in widths.items()
        }
        term = to_term(semantics)
        assert evaluate(term, env).value == interpret(semantics, env).value

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_simplified_term_preserves_semantics(self, hvx, data):
        names = [s.name for s in hvx.catalog.specs if s.output_width <= 1024][:40]
        spec = data.draw(st.sampled_from(names))
        semantics = hvx.semantics[spec]
        widths = resolved_input_widths(semantics, {})
        env = {
            name: BitVector(data.draw(st.integers(0, (1 << w) - 1)), w)
            for name, w in widths.items()
        }
        term = to_term(semantics)
        assert evaluate(simplify(term), env).value == evaluate(term, env).value


class TestClassInvariants:
    """Invariants over the generated equivalence classes."""

    @pytest.fixture(scope="class")
    def classes(self):
        from repro.similarity.engine import build_equivalence_classes

        classes, _ = build_equivalence_classes(("x86", "hvx", "arm"))
        return classes

    def test_partition(self, classes):
        seen = set()
        for cls in classes:
            for member in cls.members:
                assert member.name not in seen, member.name
                seen.add(member.name)

    def test_members_share_parameter_count(self, classes):
        for cls in classes:
            counts = {len(m.symbolic.param_names) for m in cls.members}
            assert len(counts) == 1, cls.member_names()[:4]

    def test_random_members_semantically_equal(self, classes):
        """Spot-check: two members of one class, instantiated at the same
        parameter values, compute the same function."""
        from repro.similarity.equivalence import instantiate_term

        rng = random.Random(9)
        multi = [c for c in classes if len(c.members) >= 2]
        for cls in rng.sample(multi, min(8, len(multi))):
            a, b = rng.sample(cls.members, 2)
            values = a.values()
            try:
                term_a = instantiate_term(a.symbolic, values)
                term_b = instantiate_term(b.symbolic, values, b.arg_order)
            except Exception:
                continue  # b cannot be instantiated at a's values
            variables = term_a.variables()
            for _ in range(12):
                env = {
                    name: BitVector(rng.getrandbits(w), w)
                    for name, w in variables.items()
                }
                assert evaluate(term_a, env).value == evaluate(term_b, env).value

    def test_fixed_parameters_fixed(self, classes):
        for cls in classes:
            for position, value in cls.fixed_params.items():
                for member in cls.members:
                    assert member.values()[position] == value
