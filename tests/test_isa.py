"""Tests for the ISA substrate: dialect parsers, spec generators, fuzzing."""


import pytest

from repro.bitvector import bv
from repro.hydride_ir.interp import interpret
from repro.isa.fuzz import derive_seed, fuzz_catalog, fuzz_semantics
from repro.isa.pseudo_core import Lexer, PseudocodeError, TokenStream
from repro.isa.registry import load_isa
from repro.isa.spec import InstructionSpec, OperandSpec, validate_catalog
from repro.isa.arm.parser import arm_semantics
from repro.isa.hvx.parser import parse_hvx_pseudocode, hvx_semantics
from repro.isa.x86.parser import x86_semantics


class TestLexer:
    def test_tokenizes_symbols_longest_first(self):
        lexer = Lexer([":=", ":", "<", "<="])
        tokens = lexer.tokenize("a := b <= c")
        assert [t.text for t in tokens[:5]] == ["a", ":=", "b", "<=", "c"]

    def test_hex_literals(self):
        lexer = Lexer(["+"])
        tokens = lexer.tokenize("0xFF + 2")
        assert tokens[0].text == "255"

    def test_comments_configurable(self):
        lexer = Lexer(["+"], line_comments=("//",))
        tokens = lexer.tokenize("a // trailing\nb")
        assert [t.text for t in tokens[:2]] == ["a", "b"]

    def test_line_tracking(self):
        lexer = Lexer(["+"])
        tokens = lexer.tokenize("a\nb\nc")
        assert tokens[2].line == 3

    def test_unknown_character_rejected(self):
        lexer = Lexer(["+"])
        with pytest.raises(PseudocodeError):
            lexer.tokenize("a @ b")

    def test_token_stream_expect(self):
        lexer = Lexer(["+"])
        stream = TokenStream(lexer.tokenize("a + b"))
        assert stream.expect_kind("ident").text == "a"
        stream.expect("+")
        with pytest.raises(PseudocodeError):
            stream.expect("+")


def _x86_spec(pseudocode: str, operands, out_width: int) -> InstructionSpec:
    return InstructionSpec(
        name="test", isa="x86", asm="t", operands=tuple(operands),
        output_width=out_width, pseudocode=pseudocode, extension="T",
        family="test", latency=1.0, throughput=1.0,
    )


class TestX86Parser:
    def test_simple_loop(self):
        spec = _x86_spec(
            "FOR j := 0 to 3\n"
            "    i := j*8\n"
            "    dst[i+7:i] := a[i+7:i] + b[i+7:i]\n"
            "ENDFOR\n",
            [OperandSpec("a", 32), OperandSpec("b", 32)],
            32,
        )
        sem = x86_semantics(spec)
        out = interpret(sem, {"a": bv(0x01010101, 32), "b": bv(0x02020202, 32)})
        assert out.value == 0x03030303

    def test_define_inlining(self):
        spec = _x86_spec(
            "DEFINE Double(v)\n"
            "RETURN v + v\n"
            "ENDDEF\n"
            "dst[7:0] := Double(a[7:0])\n",
            [OperandSpec("a", 8)],
            8,
        )
        sem = x86_semantics(spec)
        assert interpret(sem, {"a": bv(21, 8)}).value == 42

    def test_width_suffix_builtins(self):
        spec = _x86_spec(
            "dst[15:0] := SignExtend16(a[7:0])\n", [OperandSpec("a", 8)], 16
        )
        sem = x86_semantics(spec)
        assert interpret(sem, {"a": bv(0x80, 8)}).value == 0xFF80

    def test_saturate_builtin(self):
        spec = _x86_spec(
            "dst[7:0] := Saturate8(a[15:0])\n", [OperandSpec("a", 16)], 8
        )
        sem = x86_semantics(spec)
        assert interpret(sem, {"a": bv(1000, 16)}).signed == 127

    def test_masked_if_becomes_ite(self):
        spec = _x86_spec(
            "FOR j := 0 to 1\n"
            "    i := j*8\n"
            "    IF k[j:j] == 1 THEN\n"
            "        dst[i+7:i] := a[i+7:i]\n"
            "    ELSE\n"
            "        dst[i+7:i] := 0\n"
            "    FI\n"
            "ENDFOR\n",
            [OperandSpec("k", 2), OperandSpec("a", 16)],
            16,
        )
        sem = x86_semantics(spec)
        out = interpret(sem, {"k": bv(0b01, 2), "a": bv(0xABCD, 16)})
        assert out.value == 0x00CD

    def test_ternary(self):
        spec = _x86_spec(
            "dst[7:0] := (a[7:0] >s b[7:0]) ? a[7:0] : b[7:0]\n",
            [OperandSpec("a", 8), OperandSpec("b", 8)],
            8,
        )
        sem = x86_semantics(spec)
        assert interpret(sem, {"a": bv(200, 8), "b": bv(5, 8)}).value == 5

    def test_gap_in_destination_rejected(self):
        spec = _x86_spec("dst[7:4] := a[7:4]\n", [OperandSpec("a", 8)], 8)
        with pytest.raises(PseudocodeError):
            x86_semantics(spec)

    def test_width_mismatch_rejected(self):
        spec = _x86_spec(
            "dst[15:0] := a[7:0] + b[15:0]\n",
            [OperandSpec("a", 8), OperandSpec("b", 16)],
            16,
        )
        with pytest.raises(PseudocodeError):
            x86_semantics(spec)


def _hvx_spec(pseudocode, operands, out_width):
    return InstructionSpec(
        name="test", isa="hvx", asm="t", operands=tuple(operands),
        output_width=out_width, pseudocode=pseudocode, extension="HVX",
        family="test", latency=1.0, throughput=1.0,
    )


class TestHvxParser:
    def test_element_accessors(self):
        spec = _hvx_spec(
            "for (i = 0; i < 4; i++) {\n"
            "    Vd.b[i] = Vu.b[i] - Vv.b[i];\n"
            "}\n",
            [OperandSpec("Vu", 32), OperandSpec("Vv", 32)],
            32,
        )
        sem = hvx_semantics(spec)
        out = interpret(sem, {"Vu": bv(0x05050505, 32), "Vv": bv(0x01020304, 32)})
        assert out.value == 0x04030201

    def test_sat_builtin(self):
        spec = _hvx_spec(
            "for (i = 0; i < 2; i++) {\n"
            "    Vd.h[i] = sat16(sxt32(Vu.h[i]) + sxt32(Vv.h[i]));\n"
            "}\n",
            [OperandSpec("Vu", 32), OperandSpec("Vv", 32)],
            32,
        )
        sem = hvx_semantics(spec)
        big = bv(0x7FFF7FFF, 32)
        assert interpret(sem, {"Vu": big, "Vv": big}).value == 0x7FFF7FFF

    def test_slice_of_scalar_register(self):
        spec = _hvx_spec(
            "for (i = 0; i < 2; i++) {\n"
            "    Vd.h[i] = Vu.h[i] << zxt16(Rt[3:0]);\n"
            "}\n",
            [OperandSpec("Vu", 32), OperandSpec("Rt", 32)],
            32,
        )
        sem = hvx_semantics(spec)
        out = interpret(sem, {"Vu": bv(0x00010001, 32), "Rt": bv(4, 32)})
        assert out.value == 0x00100010

    def test_for_condition_must_match_variable(self):
        with pytest.raises(PseudocodeError):
            parse_hvx_pseudocode("for (i = 0; j < 2; i++) { Vd.b[i] = Vu.b[i]; }")


def _arm_spec(pseudocode, operands, out_width):
    return InstructionSpec(
        name="test", isa="arm", asm="t", operands=tuple(operands),
        output_width=out_width, pseudocode=pseudocode, extension="NEON",
        family="test", latency=1.0, throughput=1.0,
    )


class TestArmParser:
    def test_elem_access(self):
        spec = _arm_spec(
            "for e = 0 to 3\n"
            "    Elem[result, e, 16] = Elem[operand1, e, 16] + Elem[operand2, e, 16]\n"
            "endfor\n",
            [OperandSpec("operand1", 64), OperandSpec("operand2", 64)],
            64,
        )
        sem = arm_semantics(spec)
        out = interpret(
            sem,
            {"operand1": bv(0x0001000200030004, 64), "operand2": bv(0x0001000100010001, 64)},
        )
        assert out.value == 0x0002000300040005

    def test_two_arg_casts(self):
        spec = _arm_spec(
            "for e = 0 to 1\n"
            "    Elem[result, e, 32] = SExt(Elem[operand1, e, 16], 32) * "
            "SExt(Elem[operand2, e, 16], 32)\n"
            "endfor\n",
            [OperandSpec("operand1", 32), OperandSpec("operand2", 32)],
            64,
        )
        sem = arm_semantics(spec)
        out = interpret(sem, {"operand1": bv(0xFFFF0002, 32), "operand2": bv(0x00030003, 32)})
        # lane0: 2*3 = 6; lane1: -1*3 = -3.
        assert out.extract(31, 0).value == 6
        assert out.extract(63, 32).signed == -3

    def test_satq(self):
        spec = _arm_spec(
            "for e = 0 to 0\n"
            "    Elem[result, e, 8] = SatS(SExt(Elem[operand1, e, 8], 16) + "
            "SExt(Elem[operand2, e, 8], 16), 8)\n"
            "endfor\n",
            [OperandSpec("operand1", 8), OperandSpec("operand2", 8)],
            8,
        )
        sem = arm_semantics(spec)
        assert interpret(sem, {"operand1": bv(100, 8), "operand2": bv(100, 8)}).signed == 127


class TestCatalogs:
    @pytest.mark.parametrize("isa,expected_min", [("x86", 500), ("hvx", 120), ("arm", 400)])
    def test_catalog_sizes(self, isa, expected_min):
        loaded = load_isa(isa)
        assert len(loaded) >= expected_min

    @pytest.mark.parametrize("isa", ["x86", "hvx", "arm"])
    def test_catalog_valid(self, isa):
        assert validate_catalog(load_isa(isa).catalog) == []

    @pytest.mark.parametrize("isa", ["x86", "hvx", "arm"])
    def test_all_semantics_parse_and_canonicalize(self, isa):
        loaded = load_isa(isa)
        assert set(loaded.semantics) == {s.name for s in loaded.catalog}

    @pytest.mark.parametrize("isa", ["x86", "hvx", "arm"])
    def test_differential_fuzz_clean(self, isa):
        """Every parsed semantics matches its reference executable."""
        loaded = load_isa(isa)
        failures = fuzz_catalog(loaded.catalog, loaded.semantics, trials=4)
        assert failures == [], [f.instruction for f in failures[:5]]

    def test_fuzz_catches_injected_bug(self):
        loaded = load_isa("x86")
        spec = loaded.spec("_mm_add_epi16")
        wrong = loaded.semantics["_mm_sub_epi16"]  # deliberately mismatched
        report = fuzz_semantics(spec, wrong, trials=16)
        assert not report.passed
        assert report.first_counterexample is not None

    def test_fuzz_is_deterministic(self):
        """Same seed => identical trials, including the counterexample."""
        loaded = load_isa("x86")
        spec = loaded.spec("_mm_add_epi16")
        wrong = loaded.semantics["_mm_sub_epi16"]
        first = fuzz_semantics(spec, wrong, trials=16, seed=7)
        second = fuzz_semantics(spec, wrong, trials=16, seed=7)
        assert first.mismatches == second.mismatches
        assert first.first_counterexample == second.first_counterexample
        other = fuzz_semantics(spec, wrong, trials=16, seed=8)
        assert other.first_counterexample != first.first_counterexample

    def test_fuzz_seed_stable_across_processes(self):
        """The per-spec seed derivation must not involve the salted
        builtin ``hash``; CRC32 of the name is pinned here so a future
        regression to ``hash(name)`` fails loudly."""
        assert derive_seed(0, "_mm_add_epi16") == 2914524301
        assert derive_seed(5, "_mm_add_epi16") == 2914524301 ^ 5

    def test_interleave_canonical_form(self):
        """Unpack semantics canonicalise to the two-level lane/elem nest
        of the paper's Figure 3(b)."""
        from repro.hydride_ir.ast import ForConcat

        loaded = load_isa("x86")
        sem = loaded.semantics["_mm256_unpackhi_epi16"]
        assert isinstance(sem.body, ForConcat)
        assert isinstance(sem.body.body, ForConcat)

    def test_vendor_manual_regenerates_deterministically(self):
        from repro.isa.x86 import generate_x86_catalog

        first = generate_x86_catalog()
        second = generate_x86_catalog()
        assert [s.name for s in first] == [s.name for s in second]
        assert [s.pseudocode for s in first] == [s.pseudocode for s in second]
