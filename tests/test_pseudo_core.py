"""Unit tests for the shared pseudocode lowering core."""

import pytest

from repro.bitvector import bv
from repro.hydride_ir.ast import Input, SemanticsFunction
from repro.hydride_ir.indexexpr import IConst
from repro.hydride_ir.interp import interpret
from repro.isa.pseudo_core import (
    CORE_BUILTINS,
    PAssign,
    PBin,
    PCall,
    PCond,
    PDefine,
    PFor,
    PIf,
    PInt,
    PSlice,
    PVar,
    Program,
    PseudocodeError,
    lower_program,
)


def _lower(statements, inputs, out_width, builtins=None):
    body = lower_program(
        Program(tuple(statements)),
        inputs,
        "dst",
        out_width,
        builtins or dict(CORE_BUILTINS),
    )
    func = SemanticsFunction(
        "t",
        tuple(Input(n, IConst(w)) for n, w in inputs.items()),
        {},
        body,
    )
    return func


class TestLowering:
    def test_full_register_assignment(self):
        func = _lower(
            [PAssign(PSlice("dst", PInt(7), PInt(0)),
                     PBin("+", PSlice("a", PInt(7), PInt(0)),
                          PSlice("b", PInt(7), PInt(0))))],
            {"a": 8, "b": 8},
            8,
        )
        assert interpret(func, {"a": bv(3, 8), "b": bv(4, 8)}).value == 7

    def test_loop_variable_scoping(self):
        # The loop var must not leak a stale binding outward.
        statements = [
            PFor("j", PInt(0), PInt(1), (
                PAssign(PSlice("dst", PBin("+", PBin("*", PVar("j"), PInt(8)), PInt(7)),
                               PBin("*", PVar("j"), PInt(8))),
                        PSlice("a", PBin("+", PBin("*", PVar("j"), PInt(8)), PInt(7)),
                               PBin("*", PVar("j"), PInt(8)))),
            )),
        ]
        func = _lower(statements, {"a": 16}, 16)
        assert interpret(func, {"a": bv(0xBEEF, 16)}).value == 0xBEEF

    def test_integer_temps(self):
        statements = [
            PAssign(PVar("i"), PBin("*", PInt(2), PInt(4))),
            PAssign(PSlice("dst", PBin("-", PVar("i"), PInt(1)), PInt(0)),
                    PSlice("a", PInt(7), PInt(0))),
        ]
        func = _lower(statements, {"a": 8}, 8)
        assert interpret(func, {"a": bv(0x5A, 8)}).value == 0x5A

    def test_bv_temps_sliceable(self):
        statements = [
            PAssign(PVar("t"), PSlice("a", PInt(15), PInt(0))),
            PAssign(PSlice("dst", PInt(7), PInt(0)),
                    PSlice("t", PInt(15), PInt(8))),
        ]
        func = _lower(statements, {"a": 16}, 8)
        assert interpret(func, {"a": bv(0xAB12, 16)}).value == 0xAB

    def test_define_saves_and_restores_scope(self):
        define = PDefine(
            "Helper", ("v",), (),
            PBin("+", PVar("v"), PVar("v")),
        )
        statements = [
            define,
            PAssign(PVar("v"), PInt(99)),  # an outer int temp named v
            PAssign(PSlice("dst", PInt(7), PInt(0)),
                    PCall("Helper", (PSlice("a", PInt(7), PInt(0)),))),
        ]
        func = _lower(statements, {"a": 8}, 8)
        assert interpret(func, {"a": bv(5, 8)}).value == 10

    def test_overlapping_assignment_rejected(self):
        statements = [
            PAssign(PSlice("dst", PInt(7), PInt(0)), PSlice("a", PInt(7), PInt(0))),
            PAssign(PSlice("dst", PInt(7), PInt(4)), PSlice("a", PInt(3), PInt(0))),
        ]
        with pytest.raises(PseudocodeError):
            _lower(statements, {"a": 8}, 8)

    def test_incomplete_coverage_rejected(self):
        statements = [
            PAssign(PSlice("dst", PInt(3), PInt(0)), PSlice("a", PInt(3), PInt(0))),
        ]
        with pytest.raises(PseudocodeError):
            _lower(statements, {"a": 8}, 8)

    def test_static_if_executes_one_branch(self):
        statements = [
            PIf(PBin(">", PInt(3), PInt(2)),
                (PAssign(PSlice("dst", PInt(7), PInt(0)),
                         PSlice("a", PInt(7), PInt(0))),),
                (PAssign(PSlice("dst", PInt(7), PInt(0)), PInt(0)),)),
        ]
        func = _lower(statements, {"a": 8}, 8)
        assert interpret(func, {"a": bv(0x42, 8)}).value == 0x42

    def test_dynamic_if_branches_must_align(self):
        cond = PBin("==", PSlice("k", PInt(0), PInt(0)), PInt(1))
        statements = [
            PIf(cond,
                (PAssign(PSlice("dst", PInt(7), PInt(0)),
                         PSlice("a", PInt(7), PInt(0))),),
                (PAssign(PSlice("dst", PInt(3), PInt(0)),
                         PSlice("a", PInt(3), PInt(0))),)),
        ]
        with pytest.raises(PseudocodeError):
            _lower(statements, {"a": 8, "k": 1}, 8)

    def test_ternary_with_int_branch_coerces(self):
        cond = PBin(">u", PSlice("a", PInt(7), PInt(0)), PInt(10))
        statements = [
            PAssign(
                PSlice("dst", PInt(7), PInt(0)),
                PCond(cond, PSlice("a", PInt(7), PInt(0)), PInt(0)),
            ),
        ]
        func = _lower(statements, {"a": 8}, 8)
        assert interpret(func, {"a": bv(50, 8)}).value == 50
        assert interpret(func, {"a": bv(5, 8)}).value == 0

    def test_unknown_function_rejected(self):
        statements = [
            PAssign(PSlice("dst", PInt(7), PInt(0)),
                    PCall("Mystery", (PSlice("a", PInt(7), PInt(0)),))),
        ]
        with pytest.raises(PseudocodeError):
            _lower(statements, {"a": 8}, 8)

    def test_cast_builtin_coerces_int_argument(self):
        builtins = dict(CORE_BUILTINS)
        statements = [
            PAssign(PSlice("dst", PInt(7), PInt(0)),
                    PBin("+", PCall("zero_extend", (PInt(3), PInt(8))),
                         PSlice("a", PInt(7), PInt(0)))),
        ]
        func = _lower(statements, {"a": 8}, 8, builtins)
        assert interpret(func, {"a": bv(4, 8)}).value == 7
