"""Smoke tests ensuring the example scripts import and their helpers work.

Full example runs are exercised manually (they print extensively); here
we verify each example's building blocks execute, which catches import
rot and API drift.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    ["quickstart", "matmul_codegen", "extend_isa", "image_pipeline", "sensitivity_study"],
)
def test_example_imports(name):
    module = _load(name)
    assert hasattr(module, "main")


def test_extend_isa_specs_parse():
    module = _load("extend_isa")
    from repro.hydride_ir.transforms import canonicalize
    from repro.isa.x86.parser import x86_semantics

    for spec in module.NEW_SPECS:
        semantics = canonicalize(x86_semantics(spec))
        assert semantics.body is not None


def test_image_pipeline_stages_lower():
    module = _load("image_pipeline")
    from repro.halide.lowering import lower_func

    kernel = lower_func(module.gaussian_stage(32), {"x": 256, "y": 64})
    assert kernel.window.type.lanes == 32
    kernel = lower_func(module.sobel_stage(16), {"x": 256, "y": 64})
    assert len(kernel.loads) >= 6
