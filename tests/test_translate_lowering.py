"""End-of-pipeline tests: translation + 1-1 lowering of synthesized code."""

import pytest

from repro.autollvm import InstructionSelector, build_dictionary
from repro.autollvm.llvmir import ImmOperand, verify_function
from repro.synthesis.program import SConcat, SInput, SOp, SSlice, SSwizzle
from repro.synthesis.translate import translate_program


@pytest.fixture(scope="module")
def dictionary():
    return build_dictionary(("x86", "hvx", "arm"))


def _sop_for(dictionary, instr_name, args, out_bits):
    op = dictionary.by_target_instruction[instr_name]
    binding = next(b for b in op.bindings if b.spec.name == instr_name)
    return SOp(op, binding, tuple(args), (), None, out_bits)


class TestTranslate:
    def test_views_and_swizzles_emit_helpers(self, dictionary):
        a = SInput("a", 16, 16)
        b = SInput("b", 16, 16)
        swizzled = SSwizzle("interleave_lo", (a, b), 16, 256)
        program = SConcat(SSlice(swizzled, True), SSlice(swizzled, False))
        result = translate_program(program, "w", 16)
        text = result.function.render()
        assert "autollvm.swizzle.interleave_lo" in text
        assert "autollvm.view.slice" in text
        assert "autollvm.view.concat" in text
        assert result.swizzle_count == 1
        assert result.view_count == 3
        verify_function(result.function)

    def test_shared_subexpression_emitted_once(self, dictionary):
        a = SInput("a", 16, 16)
        b = SInput("b", 16, 16)
        add = _sop_for(dictionary, "_mm256_add_epi16", [a, b], 256)
        # The same add feeds both concat halves.
        program = SConcat(add, add)
        result = translate_program(program, "w", 16)
        assert result.op_count == 1

    def test_class_parameters_become_immediates(self, dictionary):
        a = SInput("a", 16, 16)
        b = SInput("b", 16, 16)
        add = _sop_for(dictionary, "_mm256_add_epi16", [a, b], 256)
        result = translate_program(add, "w", 16)
        call = result.function.body[-1]
        imms = [op for op in call.operands if isinstance(op, ImmOperand)]
        op = dictionary.by_target_instruction["_mm256_add_epi16"]
        assert len(imms) == len(op.free_positions)

    def test_lowering_recovers_target_instruction(self, dictionary):
        a = SInput("a", 16, 16)
        b = SInput("b", 16, 16)
        add = _sop_for(dictionary, "_mm256_adds_epi16", [a, b], 256)
        translated = translate_program(add, "w", 16)
        lowered = InstructionSelector(dictionary, "x86").lower_function(
            translated.function
        )
        assert any("adds_epi16" in i.callee for i in lowered.body)
        verify_function(lowered)

    def test_cross_isa_lowering_from_same_autollvm(self, dictionary):
        """One AutoLLVM op lowers to different targets' instructions —
        the retargetability pitch, at the IR level."""
        op = dictionary.by_target_instruction["_mm_add_epi16"]
        x86_names = {b.spec.name for b in op.bindings_for("x86")}
        arm_names = {b.spec.name for b in op.bindings_for("arm")}
        hvx_names = {b.spec.name for b in op.bindings_for("hvx")}
        assert x86_names and arm_names and hvx_names
