"""Portfolio CEGIS, counterexample broadcast, and cross-window reuse.

The race must be an accelerator only: a forced portfolio run returns a
program bit-identical to the inline path, the strict broadcast protocol
fast-forwards canonical arms without reordering their counterexample
streams, and the reuse store round-trips counterexample suites and
spec-cone clauses across renames, processes, and corrupt files.
"""

import json
import multiprocessing

import pytest

from repro.autollvm import build_dictionary
from repro.bitvector.bv import BitVector
from repro.halide import ir as hir
from repro.perf import global_counters
from repro.smt.solver import IncrementalSatContext
from repro.smt.terms import apply_op, var
from repro.synthesis import CegisOptions, ReuseStore, build_grammar
from repro.synthesis import portfolio as portfolio_mod
from repro.synthesis.cegis import _synthesize_uncached
from repro.synthesis.portfolio import (
    BroadcastClient,
    PortfolioArm,
    _relay_targets,
    default_arms,
    run_portfolio,
)
from repro.synthesis.serialize import snode_to_obj


@pytest.fixture(scope="module")
def dictionary():
    return build_dictionary(("x86", "hvx", "arm"))


def _add_window(lanes=16, ew=16):
    return hir.HBin(
        "add", hir.HLoad("ld0", lanes, ew), hir.HLoad("ld1", lanes, ew)
    )


def _env_obj(value=5, width=8):
    return {"x": (value, width)}


class TestRoster:
    def test_deterministic_trio_first(self):
        arms = default_arms(CegisOptions(portfolio_arms=3))
        assert [a.name for a in arms] == ["optimised", "absint", "legacy-eval"]
        assert arms[0].trajectory == "canonical"
        assert arms[1].trajectory == "absint"
        assert arms[2].trajectory == "canonical"

    def test_small_portfolio_keeps_two_arms(self):
        arms = default_arms(CegisOptions(portfolio_arms=2))
        assert len(arms) == 2

    def test_diverse_arms_opt_in(self):
        options = CegisOptions(portfolio_arms=6, portfolio_diverse=True)
        arms = default_arms(options)
        assert len(arms) == 6
        diverse = [a for a in arms if a.trajectory == "diverse"]
        assert {a.name for a in diverse} == {
            "solver-perturbed", "grammar-reversed", "solver-geometric",
        }
        assert not default_arms(CegisOptions(portfolio_arms=6))[3:]

    def test_relay_topology(self):
        arms = [
            PortfolioArm("a"),
            PortfolioArm("b", trajectory="absint"),
            PortfolioArm("c"),
            PortfolioArm("d", trajectory="diverse"),
            PortfolioArm("e", trajectory="diverse"),
        ]
        # Canonical discoveries reach canonical + diverse, never absint.
        assert _relay_targets(arms, 0) == [2, 3, 4]
        # Diverse discoveries stay between diverse arms.
        assert _relay_targets(arms, 3) == [4]
        # The absint arm neither sends nor receives.
        assert _relay_targets(arms, 1) == []


class TestBroadcastClient:
    def test_strict_adopts_only_consecutive_indices(self):
        parent, child = multiprocessing.Pipe()
        client = BroadcastClient(child, "strict")
        parent.send(("cex", 3, _env_obj(7), 1))
        assert client.drain(2) == []  # index 3 buffered, 2 not seen yet
        parent.send(("cex", 2, _env_obj(5), 0))
        adopted = client.drain(2)
        assert [(env["x"].value, lane) for env, lane in adopted] == [
            (5, 0), (7, 1),
        ]
        assert client.drain(4) == []

    def test_loose_adopts_everything_immediately(self):
        parent, child = multiprocessing.Pipe()
        client = BroadcastClient(child, "loose")
        parent.send(("cex", 9, _env_obj(1), 0))
        parent.send(("cex", 4, _env_obj(2), 1))
        adopted = client.drain(0)
        assert [env["x"].value for env, _ in adopted] == [1, 2]

    def test_off_mode_is_inert(self):
        parent, child = multiprocessing.Pipe()
        client = BroadcastClient(child, "off")
        assert not client.publish(0, {"x": BitVector(1, 8)}, 0)
        parent.send(("cex", 0, _env_obj(), 0))
        assert client.drain(0) == []

    def test_publish_round_trips_bitvectors(self):
        parent, child = multiprocessing.Pipe()
        sender = BroadcastClient(child, "strict")
        assert sender.publish(0, {"x": BitVector(0xAB, 8)}, 2)
        kind, index, env_obj, lane = parent.recv()
        assert (kind, index, lane) == ("cex", 0, 2)
        assert env_obj == {"x": (0xAB, 8)}

    def test_dead_pipe_disables_client(self):
        parent, child = multiprocessing.Pipe()
        parent.close()
        client = BroadcastClient(child, "strict")
        assert not client.publish(0, {"x": BitVector(1, 8)}, 0)
        assert client.conn is None
        assert client.drain(0) == []  # stays disabled, never raises


class TestInlineFallback:
    def test_single_core_runs_inline(self, dictionary, monkeypatch):
        monkeypatch.setattr(portfolio_mod, "_usable_cores", lambda: 1)
        window = _add_window()
        grammar = build_grammar(window, "x86", dictionary)
        perf = global_counters()
        fallbacks = perf.portfolio_inline_fallbacks
        windows = perf.portfolio_windows
        result = run_portfolio(
            window, grammar, CegisOptions(timeout_seconds=30, portfolio_arms=3)
        )
        assert perf.portfolio_inline_fallbacks == fallbacks + 1
        assert perf.portfolio_windows == windows  # no race was held
        inline = _synthesize_uncached(
            window, grammar, CegisOptions(timeout_seconds=30)
        )
        assert snode_to_obj(result.program) == snode_to_obj(inline.program)


class TestForcedRace:
    def test_race_matches_inline_and_accounts_cancels(self, dictionary):
        window = _add_window()
        grammar = build_grammar(window, "x86", dictionary)
        inline = _synthesize_uncached(
            window, grammar, CegisOptions(timeout_seconds=60)
        )
        perf = global_counters()
        before = {
            "windows": perf.portfolio_windows,
            "arms": perf.portfolio_arms_launched,
            "cancels": perf.portfolio_cancels,
        }
        result = run_portfolio(
            window,
            grammar,
            CegisOptions(timeout_seconds=60, portfolio_arms=3),
            dictionary=dictionary,
            force=True,
        )
        assert snode_to_obj(result.program) == snode_to_obj(inline.program)
        assert result.cost == inline.cost
        assert result.stats.arm in {"optimised", "absint", "legacy-eval"}
        assert perf.portfolio_windows == before["windows"] + 1
        assert perf.portfolio_arms_launched == before["arms"] + 3
        cancels = perf.portfolio_cancels - before["cancels"]
        assert 0 <= cancels <= 2  # the winner is never its own cancel


class TestReuseStore:
    ISA = "x86"

    def _record_two_envs(self, store, spec):
        width = spec.type.lanes * spec.type.elem_width
        store.record_env(
            spec, self.ISA,
            {"ld0": BitVector(7, width), "ld1": BitVector(9, width)},
        )
        store.record_env(
            spec, self.ISA,
            {"ld0": BitVector(1, width), "ld1": BitVector(2, width)},
        )
        return width

    def test_envs_round_trip_across_renamed_loads(self):
        store = ReuseStore()
        spec = _add_window()
        width = self._record_two_envs(store, spec)
        renamed = hir.HBin(
            "add", hir.HLoad("p", 16, 16), hir.HLoad("q", 16, 16)
        )
        envs = store.lookup_envs(renamed, self.ISA)
        assert len(envs) == 2
        assert envs[0] == {
            "p": BitVector(7, width), "q": BitVector(9, width),
        }

    def test_duplicate_envs_not_stored_twice(self):
        store = ReuseStore()
        spec = _add_window()
        self._record_two_envs(store, spec)
        self._record_two_envs(store, spec)
        assert store.counters()["envs"] == 2

    def test_max_envs_cap(self):
        store = ReuseStore(max_envs=3)
        spec = _add_window()
        for i in range(6):
            store.record_env(
                spec, self.ISA,
                {"ld0": BitVector(i, 256), "ld1": BitVector(i + 1, 256)},
            )
        assert store.counters()["envs"] == 3

    def test_width_mismatch_filtered_on_lookup(self):
        store = ReuseStore()
        self._record_two_envs(store, _add_window())
        narrower = _add_window(lanes=8)
        # Different spec -> different key -> clean miss, not a bad remap.
        assert store.lookup_envs(narrower, self.ISA) == []

    def test_persistence_round_trip(self, tmp_path):
        store = ReuseStore(tmp_path)
        spec = _add_window()
        self._record_two_envs(store, spec)
        store.record_clauses(spec, self.ISA, 40, [(1, -2), (3, 4, -5)])
        store.flush()
        fresh = ReuseStore(tmp_path)
        assert len(fresh.lookup_envs(spec, self.ISA)) == 2
        cone, clauses = fresh.lookup_clauses(spec, self.ISA)
        assert cone == 40
        assert clauses == [(1, -2), (3, 4, -5)]

    def test_corrupt_file_ignored(self, tmp_path):
        store = ReuseStore(tmp_path)
        spec = _add_window()
        self._record_two_envs(store, spec)
        store.flush()
        path = store._path_for(store.key_for(spec, self.ISA))
        path.write_text("{ torn json")
        fresh = ReuseStore(tmp_path)
        assert fresh.lookup_envs(spec, self.ISA) == []

    def test_key_collision_detected(self, tmp_path):
        store = ReuseStore(tmp_path)
        spec = _add_window()
        self._record_two_envs(store, spec)
        store.flush()
        path = store._path_for(store.key_for(spec, self.ISA))
        obj = json.loads(path.read_text())
        obj["key"] = "some-other-spec"
        path.write_text(json.dumps(obj))
        fresh = ReuseStore(tmp_path)
        assert fresh.lookup_envs(spec, self.ISA) == []

    def test_clause_cone_mismatch_invalidates(self):
        store = ReuseStore()
        spec = _add_window()
        store.record_clauses(spec, self.ISA, 40, [(1, -2)])
        # A different blast layout: the stored suite must not be mixed in.
        store.record_clauses(spec, self.ISA, 44, [(3,)])
        cone, clauses = store.lookup_clauses(spec, self.ISA)
        assert cone == 44
        assert clauses == [(3,)]

    def test_payload_merge_carries_child_discoveries(self):
        child = ReuseStore()
        spec = _add_window()
        self._record_two_envs(child, spec)
        child.record_clauses(spec, self.ISA, 40, [(1, -2)])
        parent = ReuseStore()
        parent.merge(child.payload())
        assert len(parent.lookup_envs(spec, self.ISA)) == 2
        assert parent.lookup_clauses(spec, self.ISA) == (40, [(1, -2)])


class TestClauseTransfer:
    def test_export_confined_to_spec_cone_and_reimportable(self):
        x, y = var("x", 8), var("y", 8)
        spec = apply_op("bvadd", [x, y])
        ctx = IncrementalSatContext()
        cone = ctx.prime(spec)
        assert cone > 0
        # Burn some conflicts: commuted addition is UNSAT-different.
        other = apply_op("bvadd", [y, x])
        assert not ctx.check_not_equal(spec, other).satisfiable
        exported = ctx.export_learned()
        for clause in exported:
            assert all(abs(lit) <= cone for lit in clause)

        sibling = IncrementalSatContext()
        assert sibling.prime(spec) == cone  # deterministic blast layout
        assert sibling.import_clauses(exported) == len(exported)
        assert not sibling.check_not_equal(spec, other).satisfiable

    def test_import_filters_out_of_cone_clauses(self):
        x, y = var("x", 4), var("y", 4)
        ctx = IncrementalSatContext()
        cone = ctx.prime(apply_op("bvadd", [x, y]))
        added = ctx.import_clauses([(1, -2), (cone + 1,), ()])
        assert added == 1  # stale layout + empty clauses dropped

    def test_import_requires_primed_context(self):
        with pytest.raises(RuntimeError):
            IncrementalSatContext().import_clauses([(1,)])

    def test_prime_must_precede_queries(self):
        x = var("x", 4)
        ctx = IncrementalSatContext()
        ctx.check_not_equal(x, apply_op("bvnot", [x]))
        with pytest.raises(RuntimeError):
            ctx.prime(x)
