"""Property tests: IR transforms preserve well-typedness and semantics.

For a corpus sample of every ISA, each transform's output must (1) still
pass the repro.analysis type-and-width checker and (2) agree with the
untransformed semantics on random concrete inputs.  This is the dynamic
counterpart of the REPRO_VERIFY_IR pipeline hooks.
"""

import random

import pytest

from repro.analysis import Severity, check_semantics
from repro.analysis.hooks import verification
from repro.bitvector.bv import BitVector
from repro.hydride_ir.interp import interpret, resolved_input_widths
from repro.hydride_ir.transforms import canonicalize
from repro.hydride_ir.transforms.constprop import propagate_constants
from repro.hydride_ir.transforms.reroll import reroll
from repro.hydride_ir.transforms.rewrite import rewrite_bottom_up
from repro.isa.registry import load_isa

SAMPLE_STRIDE = 53  # every 53rd instruction: broad but cheap
TRIALS = 4


def _raw_parse(isa):
    """Parsed-but-not-canonicalised semantics for a sample of the catalog."""
    if isa == "x86":
        from repro.isa.x86 import generate_x86_catalog, x86_semantics

        catalog, parse = generate_x86_catalog(), x86_semantics
    elif isa == "hvx":
        from repro.isa.hvx import generate_hvx_catalog, hvx_semantics

        catalog, parse = generate_hvx_catalog(), hvx_semantics
    else:
        from repro.isa.arm import generate_arm_catalog, arm_semantics

        catalog, parse = generate_arm_catalog(), arm_semantics
    specs = sorted(catalog, key=lambda s: s.name)[::SAMPLE_STRIDE]
    return [(spec, parse(spec)) for spec in specs]


def _assert_clean(func, isa, stage):
    errors = [
        d
        for d in check_semantics(func, isa=isa, stage=stage)
        if d.severity is Severity.ERROR
    ]
    assert errors == [], [d.format() for d in errors]


def _random_env(func, rng):
    widths = resolved_input_widths(func, func.params)
    return {
        name: BitVector(rng.getrandbits(width), width)
        for name, width in widths.items()
    }


def _assert_same_semantics(before, after, name):
    rng = random.Random(sum(map(ord, name)))  # stable across processes
    for _ in range(TRIALS):
        env = _random_env(before, rng)
        got_before = interpret(before, env)
        got_after = interpret(after, env)
        assert got_before.value == got_after.value, name
        assert got_before.width == got_after.width, name


@pytest.mark.parametrize("isa", ["x86", "hvx", "arm"])
class TestTransformProperties:
    def test_reroll_preserves(self, isa):
        for spec, func in _raw_parse(isa):
            after = func.with_body(reroll(func.body))
            _assert_clean(after, isa, "reroll")
            _assert_same_semantics(func, after, spec.name)

    def test_constprop_preserves(self, isa):
        for spec, func in _raw_parse(isa):
            after = func.with_body(propagate_constants(func.body))
            _assert_clean(after, isa, "constprop")
            _assert_same_semantics(func, after, spec.name)

    def test_canonicalize_preserves(self, isa):
        for spec, func in _raw_parse(isa):
            after = canonicalize(func)
            _assert_clean(after, isa, "canonicalize")
            _assert_same_semantics(func, after, spec.name)

    def test_identity_rewrite_preserves(self, isa):
        for spec, func in _raw_parse(isa):
            after = func.with_body(rewrite_bottom_up(func.body, lambda e: e))
            _assert_clean(after, isa, "rewrite")
            _assert_same_semantics(func, after, spec.name)


def test_canonicalize_hook_catches_broken_pass(monkeypatch):
    """If a constituent pass corrupts the IR, the in-pass hook reports it
    at that pass — the tentpole's raison d'etre."""
    import importlib

    from repro.analysis.diagnostics import IRVerificationError
    from repro.hydride_ir.ast import BvConst
    from repro.hydride_ir.indexexpr import IConst

    canon_mod = importlib.import_module(
        "repro.hydride_ir.transforms.canonicalize"
    )
    loaded = load_isa("x86")
    func = loaded.semantics["_mm_add_epi16"]

    def broken_reroll(body):
        return BvConst(IConst(0), IConst(-4))  # nonsense replacement

    monkeypatch.setattr(canon_mod, "reroll", broken_reroll)
    with verification():
        with pytest.raises(IRVerificationError) as info:
            canon_mod.canonicalize(func)
    assert any(d.rule == "hydride/nonpositive-width" for d in info.value.diagnostics)
