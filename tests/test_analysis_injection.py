"""Seeded-defect tests: each known bug class must trip its exact rule.

Every test corrupts a well-formed artifact in one specific way and
asserts the checker reports exactly the matching rule ID, covering the
defect classes of ISSUE.md: wrong width, lane inconsistency, out-of-range
shift, slice out of bounds, malformed intrinsic calls — plus the synth-
and Halide-layer variants of each.
"""

import pytest

from repro.analysis import (
    Severity,
    check_llvm_function,
    check_program,
    check_semantics,
    check_window,
)
from repro.autollvm import build_dictionary
from repro.autollvm.llvmir import (
    Function,
    ImmOperand,
    Instruction,
    IntType,
    Value,
    VectorType,
    VerificationError,
    verify_function,
)
from repro.halide import ir as hir
from repro.hydride_ir.ast import (
    BvBinOp,
    BvCast,
    BvConst,
    BvExtract,
    BvVar,
    ForConcat,
    Input,
    SemanticsFunction,
)
from repro.hydride_ir.indexexpr import IBin, IConst, IVar
from repro.synthesis.program import SInput, SOp, SSwizzle


def _func(body, inputs=(("a", 16), ("b", 16)), out=None):
    decls = tuple(Input(n, IConst(w)) for n, w in inputs)
    return SemanticsFunction("t", decls, {}, body, out or IConst(0))


def _rules(diagnostics, severity=Severity.ERROR):
    return {d.rule for d in diagnostics if d.severity is severity}


class TestHydrideInjection:
    def test_wrong_width_binop(self):
        body = BvBinOp("bvadd", BvVar("a"), BvConst(IConst(1), IConst(8)))
        assert "hydride/binop-width" in _rules(check_semantics(_func(body)))

    def test_lane_inconsistency(self):
        # Body width grows with the iterator: 1, 2, 3, ... bits per lane.
        body = ForConcat(
            "i",
            IConst(4),
            BvExtract(BvVar("a"), IConst(0), IBin("+", IVar("i"), IConst(1))),
        )
        assert "hydride/lane-width" in _rules(check_semantics(_func(body)))

    def test_out_of_range_shift(self):
        body = BvBinOp(
            "bvshl", BvVar("a"), BvConst(IConst(20), IConst(16))
        )
        assert "hydride/shift-range" in _rules(check_semantics(_func(body)))

    def test_slice_out_of_bounds(self):
        body = BvExtract(BvVar("a"), IConst(12), IConst(8))
        assert "hydride/extract-bounds" in _rules(check_semantics(_func(body)))

    def test_undeclared_input(self):
        assert "hydride/unknown-input" in _rules(
            check_semantics(_func(BvVar("ghost")))
        )

    def test_unbound_symbol(self):
        body = BvExtract(BvVar("a"), IVar("nowhere"), IConst(8))
        assert "hydride/unbound-symbol" in _rules(check_semantics(_func(body)))

    def test_bad_op_name(self):
        body = BvBinOp("bvfrobnicate", BvVar("a"), BvVar("b"))
        assert "hydride/op-name" in _rules(check_semantics(_func(body)))

    def test_backwards_cast(self):
        body = BvCast("zext", BvVar("a"), IConst(8))
        assert "hydride/cast-width" in _rules(check_semantics(_func(body)))

    def test_output_width_mismatch(self):
        diagnostics = check_semantics(
            _func(BvVar("a")), declared_output_width=128
        )
        assert "hydride/output-width" in _rules(diagnostics)

    def test_nonpositive_loop_count(self):
        body = ForConcat("i", IConst(0), BvVar("a"))
        assert "hydride/loop-count" in _rules(check_semantics(_func(body)))


class TestHalideInjection:
    """Halide nodes validate partially at construction, so defects are
    planted with object.__setattr__ on the frozen dataclasses — modelling
    a transform that rebuilt a node wrongly."""

    def test_swapped_lanes_slice(self):
        load = hir.HLoad("a", 32, 16)
        node = hir.HSlice(load, 0, 16)
        object.__setattr__(node, "start", 24)  # [24, 40) of 32 lanes
        assert "halide/slice-bounds" in _rules(check_window(node))

    def test_binop_type_mismatch(self):
        a = hir.HLoad("a", 32, 16)
        b = hir.HLoad("b", 32, 16)
        node = hir.HBin("add", a, b)
        object.__setattr__(node, "right", hir.HLoad("b", 16, 32))
        assert "halide/binop-type" in _rules(check_window(node))

    def test_load_type_conflict(self):
        a16 = hir.HLoad("a", 32, 16)
        a32 = hir.HLoad("a", 16, 32)  # same name, different type
        node = hir.HConcat((a16, a16))
        object.__setattr__(node, "parts", (a16, a32))
        rules = _rules(check_window(node))
        assert "halide/load-conflict" in rules
        assert "halide/concat-elem" in rules

    def test_reduce_factor(self):
        node = hir.HReduceAdd(hir.HLoad("a", 32, 16), 4)
        object.__setattr__(node, "factor", 5)
        assert "halide/reduce-factor" in _rules(check_window(node))

    def test_shuffle_index_out_of_range(self):
        node = hir.HShuffle(hir.HLoad("a", 8, 16), (0, 1, 99))
        assert "halide/shuffle-index" in _rules(check_window(node))


@pytest.fixture(scope="module")
def dictionary():
    return build_dictionary(("x86",))


def _sop(dictionary, name, args, out_bits, imm_values=()):
    op = dictionary.by_target_instruction[name]
    binding = next(b for b in op.bindings if b.spec.name == name)
    return SOp(op, binding, tuple(args), imm_values, None, out_bits)


class TestSynthInjection:
    def test_swizzle_wrong_arity(self):
        a = SInput("a", 8, 16)
        node = SSwizzle("interleave_lo", (a,), 16, 128)
        assert "synth/swizzle-arity" in _rules(check_program(node))

    def test_swizzle_unequal_widths(self):
        node = SSwizzle(
            "interleave_lo", (SInput("a", 8, 16), SInput("b", 4, 16)), 16, 128
        )
        assert "synth/swizzle-width" in _rules(check_program(node))

    def test_swizzle_wrong_out_bits(self):
        node = SSwizzle(
            "interleave_full", (SInput("a", 8, 16), SInput("b", 8, 16)), 16, 128
        )
        # interleave_full doubles the width: 128 in -> 256 out, not 128.
        assert "synth/swizzle-width" in _rules(check_program(node))

    def test_op_wrong_arity(self, dictionary):
        node = _sop(dictionary, "_mm_add_epi16", [SInput("a", 8, 16)], 128)
        assert "synth/op-arity" in _rules(check_program(node))

    def test_op_wrong_arg_width(self, dictionary):
        args = [SInput("a", 8, 16), SInput("b", 4, 16)]
        node = _sop(dictionary, "_mm_add_epi16", args, 128)
        assert "synth/arg-width" in _rules(check_program(node))

    def test_op_wrong_out_bits(self, dictionary):
        args = [SInput("a", 8, 16), SInput("b", 8, 16)]
        node = _sop(dictionary, "_mm_add_epi16", args, 999)
        assert "synth/out-width" in _rules(check_program(node))


class TestLlvmInjection:
    def test_bad_intrinsic_arity(self):
        ty = VectorType(8, 16)
        a = Value("a", ty)
        f = Function("w", [a])
        out = Value("r", VectorType(16, 16))
        f.add(Instruction(out, "autollvm.view.concat", [a]))  # needs 2 regs
        f.ret = out
        assert "llvm/op-arity" in _rules(check_llvm_function(f))

    def test_register_after_immediate(self):
        ty = VectorType(8, 16)
        a = Value("a", ty)
        f = Function("w", [a])
        out = Value("r", ty)
        f.add(
            Instruction(
                out, "autollvm.swizzle.interleave_single", [ImmOperand(16), a]
            )
        )
        f.ret = out
        assert "llvm/imm-position" in _rules(check_llvm_function(f))

    def test_immediate_not_i32(self):
        ty = VectorType(8, 16)
        a = Value("a", ty)
        f = Function("w", [a])
        out = Value("r", VectorType(8, 16))
        f.add(
            Instruction(
                out,
                "autollvm.swizzle.interleave_single",
                [a, ImmOperand(16, IntType(8))],
            )
        )
        f.ret = out
        assert "llvm/imm-type" in _rules(check_llvm_function(f))

    def test_slice_result_width(self):
        src = Value("a", VectorType(16, 16))
        f = Function("w", [src])
        out = Value("r", VectorType(16, 16))  # should be half the source
        f.add(Instruction(out, "autollvm.view.slice", [src, ImmOperand(0)]))
        f.ret = out
        assert "llvm/result-type" in _rules(check_llvm_function(f))

    def test_compute_arity_against_dictionary(self, dictionary):
        op = dictionary.by_target_instruction["_mm_add_epi16"]
        ty = VectorType(8, 16)
        a = Value("a", ty)
        f = Function("w", [a])
        out = Value("r", ty)
        f.add(Instruction(out, op.name, [a]))  # binary op called unary
        f.ret = out
        assert "llvm/op-arity" in _rules(check_llvm_function(f, dictionary))

    def test_verify_function_raises_with_diagnostics(self):
        f = Function("bad", [])
        ghost = Value("ghost", IntType(32))
        f.add(Instruction(Value("r", IntType(32)), "op", [ghost]))
        with pytest.raises(VerificationError) as info:
            verify_function(f)
        assert info.value.diagnostics
        assert info.value.diagnostics[0].rule == "llvm/undef-value"
