"""Table 4: compilation times under the four cache scenarios.

* **Column I** — cold cache: every benchmark synthesized from scratch;
* **Column II** — n-th benchmark: cache warmed by all *other* benchmarks;
* **Column III** — full cache: recompiling an already-compiled benchmark;
* **Column IV** — schedule change: loop tiling/unroll factors modified,
  vectorisation factor unchanged — windows are identical, so compilation
  reuses the cache exactly as in column III.

The paper also quantifies Racket's per-invocation overhead (its
synthesizer restarts Racket per expression); our cache is a Python dict,
so that overhead is modelled as a per-expression constant for the
overhead rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentRunner, format_table
from repro.workloads.registry import Benchmark, all_benchmarks

# Modeled Racket startup cost per compiled expression (seconds); the
# paper measures 1.5-4s per invocation on their machines.
RACKET_OVERHEAD_PER_EXPRESSION = 2.0


@dataclass
class Table4Row:
    benchmark: str
    expressions: int
    cold_seconds: float  # I
    nth_seconds: float  # II
    warm_seconds: float  # III
    retuned_seconds: float  # IV


@dataclass
class Table4Result:
    target: str
    rows: list[Table4Row] = field(default_factory=list)
    overhead_model: float = RACKET_OVERHEAD_PER_EXPRESSION

    def geomean(self, column: str) -> float:
        import math

        values = [max(getattr(r, column), 1e-6) for r in self.rows]
        return math.exp(sum(math.log(v) for v in values) / len(values))


def run(
    isa: str = "x86",
    benchmarks: list[Benchmark] | None = None,
    runner: ExperimentRunner | None = None,
) -> Table4Result:
    benchmarks = benchmarks or all_benchmarks()
    runner = runner or ExperimentRunner()
    result = Table4Result(isa)

    # Column I: cold cache per benchmark.
    cold: dict[str, tuple[float, int]] = {}
    for benchmark in benchmarks:
        runner.caches[isa].clear()
        outcome = runner.run_one(benchmark, isa, "hydride")
        cold[benchmark.name] = (outcome.compile_seconds, outcome.expression_count)

    # Column II: cache warmed by all the other benchmarks.
    nth: dict[str, float] = {}
    for benchmark in benchmarks:
        runner.caches[isa].clear()
        for other in benchmarks:
            if other.name != benchmark.name:
                runner.run_one(other, isa, "hydride")
        outcome = runner.run_one(benchmark, isa, "hydride")
        nth[benchmark.name] = outcome.compile_seconds

    # Columns III and IV: fully warmed cache; IV recompiles after a
    # schedule change (tiling/unroll tweaks leave windows identical).
    runner.caches[isa].clear()
    for benchmark in benchmarks:
        runner.run_one(benchmark, isa, "hydride")
    warm: dict[str, float] = {}
    retuned: dict[str, float] = {}
    for benchmark in benchmarks:
        outcome = runner.run_one(benchmark, isa, "hydride")
        warm[benchmark.name] = outcome.compile_seconds
        retuned_benchmark = _with_retuned_schedule(benchmark)
        outcome = runner.run_one(retuned_benchmark, isa, "hydride")
        retuned[benchmark.name] = outcome.compile_seconds

    for benchmark in benchmarks:
        name = benchmark.name
        seconds, expressions = cold[name]
        result.rows.append(
            Table4Row(name, expressions, seconds, nth[name], warm[name], retuned[name])
        )
    return result


def _with_retuned_schedule(benchmark: Benchmark) -> Benchmark:
    """The benchmark with tiling/unroll factors changed (same vector
    factor), modelling the paper's column IV scenario."""

    def retune(stage):
        def build(lanes: int):
            func, extents = stage(lanes)
            # Tiling and unrolling change; the vectorisation factor and
            # the vectorised loop stay fixed, so windows are unchanged.
            for var in list(extents):
                func.schedule.tile.setdefault(var, 4)
                func.schedule.unroll.setdefault(var, 2)
            return func, extents

        return build

    return Benchmark(
        benchmark.name,
        benchmark.category,
        [retune(stage) for stage in benchmark.stages],
        benchmark.vector_elem_width,
        dict(benchmark.attributes),
    )


def render(result: Table4Result) -> str:
    headers = [
        "Benchmark", "# Expr",
        "I cold (s)", "II nth (s)", "III warm (s)", "IV retuned (s)",
        "I + racket model (s)",
    ]
    rows = []
    for row in result.rows:
        overhead = row.cold_seconds + row.expressions * result.overhead_model
        rows.append([
            row.benchmark,
            str(row.expressions),
            f"{row.cold_seconds:.2f}",
            f"{row.nth_seconds:.2f}",
            f"{row.warm_seconds:.3f}",
            f"{row.retuned_seconds:.3f}",
            f"{overhead:.1f}",
        ])
    rows.append([
        "geomean", "",
        f"{result.geomean('cold_seconds'):.2f}",
        f"{result.geomean('nth_seconds'):.2f}",
        f"{result.geomean('warm_seconds'):.3f}",
        f"{result.geomean('retuned_seconds'):.3f}",
        "",
    ])
    return (
        f"Table 4: compilation times on {result.target}\n"
        + format_table(headers, rows)
    )
