"""Table 2: bugs found in Rake's hand-written HVX semantics.

The paper found five masking bugs in Rake's interpreters by comparing
against Hydride's generated semantics.  Here the differential fuzzer runs
Rake's modelled interpreter (with and without the bug) against the
reference executables: the buggy families — and only those — must
diverge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.rake import RakeHvxInterpreter
from repro.experiments.runner import format_table
from repro.isa.fuzz import DifferentialReport, fuzz_interpreter
from repro.isa.registry import load_isa


@dataclass
class Table2Result:
    buggy_reports: list[DifferentialReport]
    fixed_reports: list[DifferentialReport]
    known_bugs: list[tuple[str, int, str]]

    def buggy_families(self) -> set[str]:
        return {r.family for r in self.buggy_reports if r.is_bug}

    def fixed_families(self) -> set[str]:
        return {r.family for r in self.fixed_reports if r.is_bug}


def _shift_specs():
    catalog = load_isa("hvx").catalog
    return [
        spec
        for spec in catalog
        if spec.family.startswith(("shift_scalar", "shift_var"))
    ]


def run(trials: int = 48) -> Table2Result:
    specs = _shift_specs()
    buggy = fuzz_interpreter(
        specs, RakeHvxInterpreter(buggy=True).execute, trials=trials
    )
    fixed = fuzz_interpreter(
        specs, RakeHvxInterpreter(buggy=False).execute, trials=trials
    )
    return Table2Result(buggy, fixed, RakeHvxInterpreter.KNOWN_BUGS)


def render(result: Table2Result) -> str:
    headers = ["Instruction", "Family", "Mismatches", "Trials"]
    rows = [
        [r.instruction, r.family, str(r.mismatches), str(r.trials)]
        for r in result.buggy_reports
        if r.is_bug
    ]
    table = format_table(headers, rows)
    paper = "\n".join(
        f"  {file}:{line}  {desc}" for file, line, desc in result.known_bugs
    )
    return (
        "Table 2: divergences of Rake's hand-written HVX semantics\n"
        f"{table}\n\nPaper's reported bugs (all unmasked-shift species):\n{paper}"
    )
