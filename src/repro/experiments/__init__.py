"""Experiment harnesses: one module per paper table/figure.

* :mod:`repro.experiments.table1` — AutoLLVM IR sizes per ISA combination
* :mod:`repro.experiments.table2` — bugs found in Rake's HVX semantics
* :mod:`repro.experiments.table3` — complex non-SIMD codegen comparison
* :mod:`repro.experiments.table4` — compile times (cache columns I–IV)
* :mod:`repro.experiments.table5` — synthesis sensitivity analysis
* :mod:`repro.experiments.figure6` — runtime performance vs baselines
* :mod:`repro.experiments.figure7` — heuristic speedups (from table5)

Each module exposes ``run(...)`` returning a structured result plus a
``render(result)`` producing the table in text form; the benchmark
harness under ``benchmarks/`` invokes these and asserts the paper's
qualitative shapes.
"""
