"""Figure 6: runtime performance of Hydride against the baselines.

For each target, every benchmark is compiled by Hydride, the
production-Halide-style backend, the LLVM-generic backend (and, on HVX,
Rake), then costed by the machine model.  Reported numbers are speedups
of Hydride over each baseline per benchmark plus geomeans — the exact
quantities plotted in the paper's Figures 6a-6c.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import (
    ExperimentRunner,
    SuiteResult,
    format_table,
)
from repro.workloads.registry import Benchmark

# Paper geomeans for orientation (speedup of Hydride over each baseline).
PAPER_GEOMEANS = {
    ("x86", "halide"): 1.08,
    ("x86", "llvm"): 1.12,
    ("hvx", "halide"): 1.00,
    ("hvx", "llvm"): 2.00,
    ("hvx", "rake"): 1.25,
    ("arm", "halide"): 1.03,
    ("arm", "llvm"): 1.26,
}


@dataclass
class Figure6Result:
    suites: dict[str, SuiteResult] = field(default_factory=dict)

    def geomean(self, isa: str, baseline: str) -> float | None:
        return self.suites[isa].geomean_speedup("hydride", baseline)

    def rake_failures(self) -> list[str]:
        suite = self.suites.get("hvx")
        if suite is None:
            return []
        return [
            result.benchmark
            for result in suite.results.values()
            if result.compiler == "rake" and not result.ok
        ]


def compilers_for(isa: str) -> tuple[str, ...]:
    if isa == "hvx":
        return ("hydride", "halide", "llvm", "rake")
    return ("hydride", "halide", "llvm")


def run(
    isas: tuple[str, ...] = ("x86", "hvx", "arm"),
    benchmarks: list[Benchmark] | None = None,
    runner: ExperimentRunner | None = None,
) -> Figure6Result:
    runner = runner or ExperimentRunner()
    result = Figure6Result()
    for isa in isas:
        result.suites[isa] = runner.run_suite(
            isa, compilers_for(isa), benchmarks
        )
    return result


def render(result: Figure6Result) -> str:
    chunks = []
    for isa, suite in result.suites.items():
        names = sorted({b for b, _ in suite.results})
        baselines = [c for c in compilers_for(isa) if c != "hydride"]
        headers = ["Benchmark"] + [f"vs {b}" for b in baselines]
        rows = []
        for name in names:
            row = [name]
            for baseline in baselines:
                speedup = suite.speedup(name, "hydride", baseline)
                row.append(f"{speedup:.2f}x" if speedup else "-")
            rows.append(row)
        geo = ["geomean"]
        for baseline in baselines:
            value = suite.geomean_speedup("hydride", baseline)
            paper = PAPER_GEOMEANS.get((isa, baseline))
            text = f"{value:.2f}x" if value else "-"
            if paper:
                text += f" (paper {paper:.2f}x)"
            geo.append(text)
        rows.append(geo)
        chunks.append(f"Figure 6 [{isa}]: Hydride speedups\n" + format_table(headers, rows))
    failures = result.rake_failures()
    if failures:
        chunks.append(
            f"Rake failed to compile {len(failures)} benchmarks: "
            + ", ".join(sorted(failures)[:10])
            + (" ..." if len(failures) > 10 else "")
        )
    return "\n\n".join(chunks)
