"""Shared experiment infrastructure: compile + simulate a benchmark suite."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.autollvm import build_dictionary
from repro.backend import (
    CompileError,
    HalideNativeCompiler,
    HydrideCompiler,
    LlvmGenericCompiler,
    RakeCompiler,
)
from repro.synthesis import CegisOptions, MemoCache
from repro.workloads.registry import Benchmark, all_benchmarks


@dataclass
class BenchmarkResult:
    benchmark: str
    target: str
    compiler: str
    runtime_us: float | None
    compile_seconds: float = 0.0
    expression_count: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.runtime_us is not None


@dataclass
class SuiteResult:
    target: str
    results: dict[tuple[str, str], BenchmarkResult] = field(default_factory=dict)

    def runtime(self, benchmark: str, compiler: str) -> float | None:
        result = self.results.get((benchmark, compiler))
        return result.runtime_us if result and result.ok else None

    def speedup(self, benchmark: str, compiler: str, baseline: str) -> float | None:
        ours = self.runtime(benchmark, compiler)
        base = self.runtime(benchmark, baseline)
        if ours is None or base is None or ours == 0:
            return None
        return base / ours

    def geomean_speedup(self, compiler: str, baseline: str) -> float | None:
        ratios = []
        for (benchmark, comp) in list(self.results):
            if comp != compiler:
                continue
            ratio = self.speedup(benchmark, compiler, baseline)
            if ratio is not None:
                ratios.append(ratio)
        if not ratios:
            return None
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def fast_hydride_options() -> CegisOptions:
    """A synthesis budget suited to running the full suite."""
    return CegisOptions(timeout_seconds=25.0, scale_factor=8)


class ExperimentRunner:
    """Compiles and simulates benchmarks across compilers and targets.

    One Hydride compiler (and memo cache) is shared per target, so
    synthesis results accumulate across benchmarks as in the paper's
    Table 4 column II scenario.  With ``cache_dir`` set the per-target
    caches are persistent (:class:`repro.service.store.PersistentCache`),
    so the warm-cache scenario survives process restarts; with ``jobs``
    > 1, ``run_suite`` fans compilations out through the service
    scheduler instead of the in-process serial loop.  With
    ``daemon_addr`` set, ``run_suite`` submits to a running
    :mod:`repro.daemon` instead — sharing that daemon's warm pool and
    tiered cache with every other client of the fleet.
    """

    def __init__(
        self,
        cegis: CegisOptions | None = None,
        cache_dir: str | None = None,
        jobs: int = 1,
        daemon_addr: str | None = None,
    ) -> None:
        self.dictionary = build_dictionary(("x86", "hvx", "arm"))
        self.cegis = cegis or fast_hydride_options()
        self.cache_dir = cache_dir
        self.jobs = max(1, jobs)
        self.daemon_addr = daemon_addr
        self.last_service_stats = None
        self.caches: dict[str, MemoCache] = {}
        self.hydride: dict[str, HydrideCompiler] = {}
        for isa in ("x86", "hvx", "arm"):
            self.caches[isa] = self._make_cache(isa)
            self.hydride[isa] = HydrideCompiler(
                dictionary=self.dictionary,
                cache=self.caches[isa],
                cegis=self.cegis,
            )
        self.halide = HalideNativeCompiler()
        self.llvm = LlvmGenericCompiler()
        self.rake = RakeCompiler(dictionary=self.dictionary)

    def _make_cache(self, isa: str) -> MemoCache:
        if self.cache_dir is None:
            return MemoCache()
        from repro.service.store import PersistentCache

        return PersistentCache(self.cache_dir, isa, self.dictionary)

    def compiler_named(self, name: str, isa: str):
        if name == "hydride":
            return self.hydride[isa]
        return {"halide": self.halide, "llvm": self.llvm, "rake": self.rake}[name]

    def run_one(
        self, benchmark: Benchmark, isa: str, compiler_name: str
    ) -> BenchmarkResult:
        compiler = self.compiler_named(compiler_name, isa)
        start = time.time()
        try:
            kernels = benchmark.lower(isa)
            total_us = 0.0
            expressions = 0
            for kernel in kernels:
                compiled = compiler.compile(kernel, isa)
                total_us += compiled.simulate().runtime_us
                accounting = getattr(compiled, "accounting", None)
                if accounting is not None:
                    expressions += accounting.expression_count
            return BenchmarkResult(
                benchmark.name,
                isa,
                compiler_name,
                total_us,
                compile_seconds=time.time() - start,
                expression_count=expressions,
            )
        except CompileError as exc:
            return BenchmarkResult(
                benchmark.name, isa, compiler_name, None,
                compile_seconds=time.time() - start, error=str(exc),
            )
        except Exception as exc:  # noqa: BLE001
            # Unexpected errors should be visible during development but
            # recorded rather than fatal during sweeps.
            return BenchmarkResult(
                benchmark.name, isa, compiler_name, None,
                compile_seconds=time.time() - start,
                error=f"{type(exc).__name__}: {exc}",
            )

    def run_suite(
        self,
        isa: str,
        compilers: tuple[str, ...],
        benchmarks: list[Benchmark] | None = None,
        jobs: int | None = None,
    ) -> SuiteResult:
        jobs = self.jobs if jobs is None else max(1, jobs)
        benchmarks = benchmarks or all_benchmarks()
        if self.daemon_addr:
            return self._run_suite_daemon(isa, compilers, benchmarks)
        if jobs > 1:
            return self._run_suite_service(isa, compilers, benchmarks, jobs)
        suite = SuiteResult(isa)
        for benchmark in benchmarks:
            for compiler_name in compilers:
                result = self.run_one(benchmark, isa, compiler_name)
                suite.results[(benchmark.name, compiler_name)] = result
        return suite

    def _run_suite_service(
        self,
        isa: str,
        compilers: tuple[str, ...],
        benchmarks: list[Benchmark],
        jobs: int,
    ) -> SuiteResult:
        """Fan the suite out through the compilation service."""
        from repro.service import CompileJob, Scheduler, ServiceOptions

        requests = [
            CompileJob(benchmark.name, isa, compiler_name)
            for benchmark in benchmarks
            for compiler_name in compilers
        ]
        scheduler = Scheduler(
            ServiceOptions(jobs=jobs, cache_dir=self.cache_dir, cegis=self.cegis)
        )
        suite = SuiteResult(isa)
        for outcome in scheduler.run(requests):
            result = outcome.result
            suite.results[(result.benchmark, result.compiler)] = result
        self.last_service_stats = scheduler.last_stats
        return suite

    def _run_suite_daemon(
        self,
        isa: str,
        compilers: tuple[str, ...],
        benchmarks: list[Benchmark],
    ) -> SuiteResult:
        """Fan the suite out to a running compilation daemon."""
        from repro.daemon.client import DaemonClient

        pairs = [
            (benchmark.name, compiler_name)
            for benchmark in benchmarks
            for compiler_name in compilers
        ]
        requests = [
            {"benchmark": name, "isa": isa, "compiler": compiler_name}
            for name, compiler_name in pairs
        ]
        with DaemonClient.connect(self.daemon_addr, timeout=None) as client:
            frames = client.submit_many(requests)
            self.last_service_stats = client.stats()
        suite = SuiteResult(isa)
        for (name, compiler_name), frame in zip(pairs, frames):
            if frame.get("ok"):
                result = frame.get("result") or {}
                suite.results[(name, compiler_name)] = BenchmarkResult(
                    name,
                    isa,
                    compiler_name,
                    result.get("runtime_us"),
                    compile_seconds=result.get("compile_seconds", 0.0),
                    expression_count=result.get("expression_count", 0),
                    error=result.get("error", ""),
                )
            else:
                error = frame.get("error") or {}
                suite.results[(name, compiler_name)] = BenchmarkResult(
                    name, isa, compiler_name, None,
                    error=(
                        f"daemon {error.get('type', 'error')}: "
                        f"{error.get('message', '')}"
                    ),
                )
        return suite


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
