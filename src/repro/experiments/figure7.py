"""Figure 7: speedup of synthesis heuristics over the BVS baseline.

Derived directly from the Table 5 measurements, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import table5
from repro.experiments.runner import format_table

SERIES = [
    "BVS + lane-wise",
    "BVS + scaling",
    "BVS + scaling + lane-wise",
    "BVS + scaling + lane-wise + SBOS",
]

# The paper's reported speedups for orientation.
PAPER_SPEEDUPS = {
    ("x86", "BVS + lane-wise"): 2.0,
    ("hvx", "BVS + lane-wise"): 2.8,
    ("arm", "BVS + lane-wise"): 1.4,
    ("x86", "BVS + scaling + lane-wise"): 2.0,
    ("hvx", "BVS + scaling + lane-wise"): 12.8,
    ("arm", "BVS + scaling + lane-wise"): 3.6,
    ("x86", "BVS + scaling + lane-wise + SBOS"): 2.7,
    ("hvx", "BVS + scaling + lane-wise + SBOS"): 20.8,
    ("arm", "BVS + scaling + lane-wise + SBOS"): 6.0,
}


@dataclass
class Figure7Result:
    speedups: dict[tuple[str, str], float | None] = field(default_factory=dict)
    table5_result: table5.Table5Result | None = None


def run(
    isas: tuple[str, ...] = ("x86", "hvx", "arm"),
    budget: float = 120.0,
    from_table5: table5.Table5Result | None = None,
) -> Figure7Result:
    base = from_table5 or table5.run(isas, budget)
    result = Figure7Result(table5_result=base)
    for isa in base.per_isa:
        for series in SERIES:
            result.speedups[(isa, series)] = base.speedup_over_bvs(isa, series)
    return result


def render(result: Figure7Result) -> str:
    isas = sorted({isa for isa, _ in result.speedups})
    headers = ["Heuristic"] + [f"{isa} (ours)" for isa in isas] + [
        f"{isa} (paper)" for isa in isas
    ]
    rows = []
    for series in SERIES:
        row = [series]
        for isa in isas:
            speedup = result.speedups.get((isa, series))
            row.append(f"{speedup:.1f}x" if speedup else "-")
        for isa in isas:
            paper = PAPER_SPEEDUPS.get((isa, series))
            row.append(f"{paper:.1f}x" if paper else "-")
        rows.append(row)
    return "Figure 7: synthesis heuristic speedups over BVS\n" + format_table(
        headers, rows
    )
