"""Table 1: AutoLLVM IR results for each architecture.

For every ISA subset the paper reports ISA size, AutoLLVM size (number of
equivalence classes), and the ratio.  One combined engine run provides
all seven rows by restricting the equivalence relation to each subset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import format_table
from repro.irgen import classes_and_stats
from repro.similarity.eqclass import restrict_classes

SUBSETS: list[tuple[str, ...]] = [
    ("x86",),
    ("hvx",),
    ("arm",),
    ("x86", "hvx"),
    ("x86", "arm"),
    ("hvx", "arm"),
    ("x86", "hvx", "arm"),
]

# The paper's Table 1, for side-by-side reporting.
PAPER_ROWS = {
    ("x86",): (2029, 136, 6.7),
    ("hvx",): (307, 115, 37.5),
    ("arm",): (1221, 177, 14.5),
    ("x86", "hvx"): (2336, 232, 9.9),
    ("x86", "arm"): (3250, 302, 9.3),
    ("hvx", "arm"): (1528, 286, 18.7),
    ("x86", "hvx", "arm"): (3557, 397, 11.2),
}


@dataclass
class Table1Row:
    isas: tuple[str, ...]
    isa_size: int
    autollvm_size: int

    @property
    def percent(self) -> float:
        return 100.0 * self.autollvm_size / self.isa_size


@dataclass
class Table1Result:
    rows: list[Table1Row]
    engine_seconds: float
    checks: int
    # Where the class partition came from: "engine" (in-memory serial run)
    # or "artifact" (warm-loaded from the REPRO_IRGEN_CACHE store).
    source: str = "engine"

    def row(self, isas: tuple[str, ...]) -> Table1Row:
        for candidate in self.rows:
            if candidate.isas == isas:
                return candidate
        raise KeyError(isas)


def subsets_for(isas: tuple[str, ...]) -> list[tuple[str, ...]]:
    """Row subsets for an ISA tuple.

    The canonical 3-ISA run keeps the paper's seven rows; any other
    tuple (e.g. one extended with rvv) reports each ISA alone plus the
    full combination.
    """
    if tuple(isas) == ("x86", "hvx", "arm"):
        return list(SUBSETS)
    return [(isa,) for isa in isas] + [tuple(isas)]


def run(isas: tuple[str, ...] = ("x86", "hvx", "arm")) -> Table1Result:
    classes, stats, source = classes_and_stats(tuple(isas))
    rows = []
    for subset in subsets_for(tuple(isas)):
        restricted = restrict_classes(classes, set(subset))
        instructions = sum(len(c.members) for c in restricted)
        rows.append(Table1Row(subset, instructions, len(restricted)))
    return Table1Result(rows, stats.seconds, stats.checks, source)


def render(result: Table1Result) -> str:
    headers = [
        "Architecture", "ISA Size", "AutoLLVM Size", "% of ISA",
        "paper ISA", "paper AutoLLVM", "paper %",
    ]
    body = []
    for row in result.rows:
        # Subsets the paper didn't measure (e.g. rvv rows) have no
        # side-by-side column.
        paper = PAPER_ROWS.get(row.isas)
        body.append([
            " + ".join(row.isas),
            str(row.isa_size),
            str(row.autollvm_size),
            f"{row.percent:.1f}%",
            str(paper[0]) if paper else "—",
            str(paper[1]) if paper else "—",
            f"{paper[2]:.1f}%" if paper else "—",
        ])
    return "Table 1: AutoLLVM IR results\n" + format_table(headers, body)
