"""Table 5: synthesis sensitivity analysis.

Synthesizing the dot-product operation for each target under different
heuristic settings: all instructions / top-50-by-score / BVS /
BVS+lane-wise / BVS+scaling / BVS+scaling+lane-wise / everything+SBOS.
Grammar sizes and wall-clock synthesis times are measured for real; the
"all instructions" and "top 50" settings are run under a small timeout
and reported as intractable when they exceed it, as in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.autollvm import build_dictionary
from repro.experiments.runner import format_table
from repro.halide import ir as hir
from repro.synthesis import (
    CegisOptions,
    GrammarOptions,
    SynthesisFailure,
    build_grammar,
    synthesize,
)


def dot_product_window(lanes_out: int) -> hir.HExpr:
    """The dot-product expression of the paper's sensitivity study."""
    a = hir.HLoad("ld0", lanes_out * 2, 16)
    b = hir.HLoad("ld1", lanes_out * 2, 16)
    acc = hir.HLoad("ld2", lanes_out, 32)
    return hir.HBin(
        "add",
        hir.HReduceAdd(
            hir.HBin("mul", hir.HCast("sext", a, 32), hir.HCast("sext", b, 32)), 2
        ),
        acc,
    )


LANES_OUT = {"x86": 16, "hvx": 32, "arm": 4}


@dataclass
class Setting:
    name: str
    grammar: GrammarOptions
    lanewise: bool
    scaling: bool
    # Settings expected to blow up get a short leash.
    timeout: float


def settings(budget: float) -> list[Setting]:
    return [
        Setting("all instructions", GrammarOptions(include_all=True, bvs=False, sbos=False),
                True, True, min(budget, 20.0)),
        Setting("top 50 by score", GrammarOptions(bvs=False, sbos=False, top_n_by_score=50),
                True, True, min(budget, 30.0)),
        Setting("BVS", GrammarOptions(bvs=True, sbos=False), False, False, budget),
        Setting("BVS + lane-wise", GrammarOptions(bvs=True, sbos=False), True, False, budget),
        Setting("BVS + scaling", GrammarOptions(bvs=True, sbos=False), False, True, budget),
        Setting("BVS + scaling + lane-wise", GrammarOptions(bvs=True, sbos=False), True, True, budget),
        Setting("BVS + scaling + lane-wise + SBOS", GrammarOptions(bvs=True, sbos=True, k=3),
                True, True, budget),
    ]


@dataclass
class SettingResult:
    setting: str
    grammar_size: int
    seconds: float | None  # None == intractable/timeout
    found: str = ""


@dataclass
class Table5Result:
    per_isa: dict[str, list[SettingResult]] = field(default_factory=dict)

    def baseline_seconds(self, isa: str) -> float | None:
        for row in self.per_isa[isa]:
            if row.setting == "BVS":
                return row.seconds
        return None

    def speedup_over_bvs(self, isa: str, setting: str) -> float | None:
        base = self.baseline_seconds(isa)
        for row in self.per_isa[isa]:
            if row.setting == setting and row.seconds and base:
                return base / row.seconds
        return None


import functools


@functools.lru_cache(maxsize=4)
def run(
    isas: tuple[str, ...] = ("x86", "hvx", "arm"), budget: float = 120.0
) -> Table5Result:
    """Cached: Figure 7 derives from the same measurements."""
    return _run(isas, budget)


def _run(
    isas: tuple[str, ...] = ("x86", "hvx", "arm"), budget: float = 120.0
) -> Table5Result:
    dictionary = build_dictionary(("x86", "hvx", "arm"))
    result = Table5Result()
    for isa in isas:
        spec = dot_product_window(LANES_OUT[isa])
        rows: list[SettingResult] = []
        for setting in settings(budget):
            grammar = build_grammar(spec, isa, dictionary, setting.grammar)
            options = CegisOptions(
                timeout_seconds=setting.timeout,
                lanewise=setting.lanewise,
                scaling=setting.scaling,
                scale_factor=8 if setting.scaling else 1,
            )
            start = time.time()
            try:
                synth = synthesize(spec, grammar, options)
                rows.append(
                    SettingResult(
                        setting.name,
                        grammar.size(),
                        time.time() - start,
                        synth.program.describe()[:60],
                    )
                )
            except SynthesisFailure:
                rows.append(SettingResult(setting.name, grammar.size(), None))
        result.per_isa[isa] = rows
    return result


def render(result: Table5Result) -> str:
    chunks = ["Table 5: synthesis sensitivity (dot product)"]
    for isa, rows in result.per_isa.items():
        headers = ["Setting", "Grammar Ops", "Time (s)", "Synthesized"]
        body = [
            [
                r.setting,
                str(r.grammar_size),
                f"{r.seconds:.1f}" if r.seconds is not None else "timeout/intractable",
                r.found,
            ]
            for r in rows
        ]
        chunks.append(f"\n[{isa}]\n" + format_table(headers, body))
    return "\n".join(chunks)
