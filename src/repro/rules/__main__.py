import sys

from repro.rules.cli import main

sys.exit(main())
