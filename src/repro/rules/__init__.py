"""CLI surface for the distilled rewrite-rule engine.

The engine itself lives in :mod:`repro.synthesis.rules`; this package
only carries the ``python -m repro.rules`` entry point (distill / stats
/ verify over a persistent cache directory).
"""

from repro.rules.cli import main

__all__ = ["main"]
