"""The rewrite-rule distiller CLI.

``python -m repro.rules <subcommand>``:

* ``distill`` — anti-unify the cached programs of each ISA namespace
  into parameterized rules, verify each candidate once via SMT over its
  symbolic hole domain, and persist the surviving rules as ``rules.json``
  beside the cache entries they came from;
* ``stats``   — show each namespace's rulebook (rule count, holes,
  member coverage, verification methods);
* ``verify``  — re-run the verifier over every persisted rule and exit
  nonzero if any rule no longer proves out (a corrupt or tampered book).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.autollvm import build_dictionary
from repro.isa.registry import CORE_ISAS
from repro.synthesis.serialize import dictionary_fingerprint

DEFAULT_ISAS = CORE_ISAS


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.rules", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--cache-dir",
            required=True,
            help="persistent synthesis-cache directory",
        )
        p.add_argument(
            "--isa",
            default=",".join(DEFAULT_ISAS),
            help="comma-separated ISAs (default: all)",
        )
        p.add_argument("--json", action="store_true")

    distill = sub.add_parser(
        "distill", help="distill cached programs into verified rules"
    )
    common(distill)
    distill.add_argument("--seed", type=int, default=7)

    stats = sub.add_parser("stats", help="per-namespace rulebook inventory")
    common(stats)

    verify = sub.add_parser(
        "verify", help="re-verify every persisted rule against its spec"
    )
    common(verify)
    verify.add_argument(
        "--samples",
        type=int,
        default=16,
        help="random hole assignments fuzzed per rule (plus boundaries)",
    )

    return parser.parse_args(argv)


def _isas(args: argparse.Namespace) -> list[str]:
    return [s for s in args.isa.split(",") if s]


def _dictionary_for(isa: str):
    """Per-ISA dictionary + fingerprint, matching what jobs compile with."""
    from repro.autollvm.intrinsics import dictionary_isas

    dictionary = build_dictionary(dictionary_isas(isa))
    return dictionary, dictionary_fingerprint(dictionary)


def _open_cache(cache_dir: str, isa: str, dictionary):
    from repro.service.store import PersistentCache

    return PersistentCache(cache_dir, isa, dictionary)


def _cmd_distill(args: argparse.Namespace) -> int:
    from repro.synthesis.rules import clear_preloaded, distill_rules

    payload = []
    for isa in _isas(args):
        dictionary, fingerprint = _dictionary_for(isa)
        cache = _open_cache(args.cache_dir, isa, dictionary)
        book, report = distill_rules(
            cache._entries.items(), isa, fingerprint=fingerprint,
            seed=args.seed,
        )
        saved = None
        if len(book):
            saved = str(book.save(cache.dir))
        payload.append({
            "isa": isa,
            "report": report.to_dict(),
            "book": book.stats(),
            "saved": saved,
        })
    # New books supersede whatever this process had memoized.
    clear_preloaded()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for item in payload:
        report, book = item["report"], item["book"]
        print(
            f"{item['isa']}: {report['scanned']} entries scanned, "
            f"{report['eligible']} eligible, "
            f"{report['candidates']} candidate rules, "
            f"{report['verified']} verified, {report['rejected']} rejected"
        )
        if report["skipped"]:
            detail = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(report["skipped"].items())
            )
            print(f"  skipped: {detail}")
        if item["saved"]:
            print(
                f"  saved {book['rules']} rules "
                f"({book['holes']} holes, covering {book['members']} "
                f"entries) to {item['saved']}"
            )
        else:
            print("  nothing to save")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.service.store import FINGERPRINT_DIR_CHARS
    from repro.synthesis.rules import load_rulebook

    from pathlib import Path

    root = Path(args.cache_dir)
    payload = []
    for isa in _isas(args):
        dictionary, fingerprint = _dictionary_for(isa)
        directory = root / isa / fingerprint[:FINGERPRINT_DIR_CHARS]
        book = load_rulebook(
            directory, dictionary, expect_fingerprint=fingerprint,
            use_cache=False,
        )
        payload.append(
            {"isa": isa, "book": None if book is None else book.stats()}
        )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for item in payload:
        book = item["book"]
        if book is None:
            print(f"{item['isa']}: no rulebook")
            continue
        methods = ", ".join(
            f"{name}={count}"
            for name, count in sorted(book["verified_methods"].items())
        )
        print(
            f"{item['isa']}: {book['rules']} rules over {book['shapes']} "
            f"shapes, {book['holes']} holes, distilled from "
            f"{book['members']} entries (verified: {methods})"
        )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.service.store import FINGERPRINT_DIR_CHARS
    from repro.synthesis.rules import load_rulebook, verify_rule

    from pathlib import Path

    root = Path(args.cache_dir)
    payload = []
    failures = 0
    for isa in _isas(args):
        dictionary, fingerprint = _dictionary_for(isa)
        directory = root / isa / fingerprint[:FINGERPRINT_DIR_CHARS]
        book = load_rulebook(
            directory, dictionary, expect_fingerprint=fingerprint,
            use_cache=False,
        )
        if book is None:
            payload.append({"isa": isa, "rules": 0, "failed": []})
            continue
        failed = []
        for rule in book.rules:
            ok, reason = verify_rule(rule, samples=args.samples)
            if not ok:
                failed.append({"key": rule.key, "reason": reason})
        failures += len(failed)
        payload.append(
            {"isa": isa, "rules": len(book), "failed": failed}
        )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for item in payload:
            if not item["rules"]:
                print(f"{item['isa']}: no rulebook")
                continue
            print(
                f"{item['isa']}: {item['rules']} rules re-verified, "
                f"{len(item['failed'])} failed"
            )
            for bad in item["failed"]:
                print(f"  FAIL {bad['key']}: {bad['reason']}")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)
    handlers = {
        "distill": _cmd_distill,
        "stats": _cmd_stats,
        "verify": _cmd_verify,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
