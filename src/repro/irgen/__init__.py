"""Parallel, persistent offline IR generation.

The paper's Automatic IR Generator runs once, offline, per ISA set; this
package makes that run *parallel* (sharded similarity checking, pooled
spec parsing — :mod:`repro.irgen.pipeline`) and *persistent* (a
fingerprinted on-disk artifact holding the equivalence classes and, by
extension, the AutoLLVM dictionary — :mod:`repro.irgen.artifact`).

Consumers opt in through the environment::

    REPRO_IRGEN_CACHE=/path/to/cache   # artifact root directory
    REPRO_IRGEN_JOBS=8                 # worker processes for cold builds

With the cache set, :func:`repro.autollvm.intrinsics.build_dictionary`,
the compilation service and the experiment runners all load the artifact
(sub-second warm start) instead of re-parsing vendor specs and re-running
~1.2k equivalence checks; a missing or stale artifact is rebuilt in place.
``python -m repro.irgen build|stats`` manages the store directly.
"""

from __future__ import annotations

import os
import time

from repro.irgen.artifact import (
    IrgenArtifact,
    irgen_fingerprint,
    load_artifact,
    partition_digest,
    persist_artifact,
    store_inventory,
)
from repro.irgen.pipeline import build_artifact

__all__ = [
    "IrgenArtifact",
    "artifact_classes_and_stats",
    "build_artifact",
    "cache_root_from_env",
    "classes_and_stats",
    "default_jobs",
    "ensure_artifact",
    "irgen_fingerprint",
    "load_artifact",
    "partition_digest",
    "persist_artifact",
    "store_inventory",
]

ENV_CACHE = "REPRO_IRGEN_CACHE"
ENV_JOBS = "REPRO_IRGEN_JOBS"

# In-process memo: (root, isas, fingerprint, extra) -> IrgenArtifact.
# Sits in front of the disk store exactly like the lru_cache on
# build_equivalence_classes sits in front of the serial engine.
_MEMO: dict[tuple, IrgenArtifact] = {}


def cache_root_from_env() -> str | None:
    root = os.environ.get(ENV_CACHE, "").strip()
    return root or None


def default_jobs() -> int:
    value = os.environ.get(ENV_JOBS, "").strip()
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            pass
    return os.cpu_count() or 1


def ensure_artifact(
    isas: tuple[str, ...],
    root: str,
    jobs: int | None = None,
    force: bool = False,
    extra: tuple[str, ...] = (),
) -> IrgenArtifact:
    """The artifact for ``isas`` under ``root``: loaded warm when the
    fingerprint matches, rebuilt (and persisted) otherwise.

    ``force`` rebuilds even on a fingerprint hit.  ``extra`` salts the
    fingerprint (test hook).  Results are memoised per process.
    """
    isas = tuple(isas)
    fingerprint = irgen_fingerprint(isas, extra)
    key = (str(root), isas, fingerprint, extra)
    if not force and key in _MEMO:
        return _MEMO[key]
    artifact = None
    if not force:
        from repro.perf import phase_timer

        with phase_timer("irgen_load"):
            began = time.monotonic()
            artifact = load_artifact(root, fingerprint)
            if artifact is not None:
                artifact.phase_seconds["load"] = time.monotonic() - began
    if artifact is None:
        artifact = build_artifact(isas, jobs or default_jobs(), extra)
        persist_artifact(root, artifact)
    _MEMO[key] = artifact
    return artifact


def clear_memo() -> None:
    """Drop the in-process artifact memo (test hook)."""
    _MEMO.clear()


def artifact_classes_and_stats(isas: tuple[str, ...]):
    """(classes, stats) from the env-configured artifact store, or None.

    Any failure — unwritable root, corrupt payload, unknown ISA — falls
    back to None so callers degrade to the in-memory serial path instead
    of crashing an otherwise healthy run.
    """
    root = cache_root_from_env()
    if root is None:
        return None
    try:
        artifact = ensure_artifact(tuple(isas), root)
    except Exception:
        return None
    return artifact.classes, artifact.stats


def classes_and_stats(isas: tuple[str, ...] = ("x86", "hvx", "arm")):
    """(classes, stats, source): artifact-backed when the env opts in,
    otherwise the serial in-memory engine."""
    result = artifact_classes_and_stats(tuple(isas))
    if result is not None:
        classes, stats = result
        return classes, stats, "artifact"
    from repro.similarity.engine import build_equivalence_classes

    classes, stats = build_equivalence_classes(tuple(isas))
    return classes, stats, "engine"
