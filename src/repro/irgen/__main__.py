from repro.irgen.cli import main

raise SystemExit(main())
