"""``python -m repro.irgen`` — manage the offline IR-generation artifact.

Subcommands::

    build   Build (or warm-load) the artifact for an ISA set.
            --expect-cached exits non-zero if a rebuild was needed — the
            CI smoke job uses it to prove the second build is a pure
            cache hit.
    stats   Inventory of a cache root: per-namespace class counts, build
            stats (including attempt_truncations, the engine's precision
            -loss counter), disk usage, and which namespace is current.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.irgen import (
    ENV_CACHE,
    cache_root_from_env,
    default_jobs,
    ensure_artifact,
    irgen_fingerprint,
    store_inventory,
)
from repro.isa.registry import supported_isas

DEFAULT_ISAS = "x86,hvx,arm"


def _parse_isas(text: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _resolve_isas(args) -> tuple[str, ...]:
    """ISA set from ``--isa`` flags (if any) or the ``--isas`` list."""
    isas = tuple(args.isa) if getattr(args, "isa", None) else _parse_isas(args.isas)
    known = supported_isas()
    unknown = [isa for isa in isas if isa not in known]
    if unknown:
        print(
            f"error: unknown ISA(s) {', '.join(unknown)}; supported: "
            f"{', '.join(known)}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return isas


def _resolve_root(args) -> str:
    root = args.cache_dir or cache_root_from_env()
    if not root:
        print(
            f"error: no cache root; pass --cache-dir or set {ENV_CACHE}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return root


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"artifact root directory (default: ${ENV_CACHE})",
    )
    parser.add_argument(
        "--isas",
        default=DEFAULT_ISAS,
        help=f"comma-separated ISA set (default: {DEFAULT_ISAS})",
    )
    parser.add_argument(
        "--isa",
        action="append",
        metavar="ISA",
        help="single ISA to target; repeatable, overrides --isas",
    )


def cmd_build(args) -> int:
    root = _resolve_root(args)
    isas = _resolve_isas(args)
    began = time.monotonic()
    artifact = ensure_artifact(
        isas, root, jobs=args.jobs, force=args.force
    )
    elapsed = time.monotonic() - began
    action = "loaded" if artifact.loaded else "built"
    print(
        f"[irgen] {action} {'+'.join(isas)}: {len(artifact.classes)} classes"
        f" from {artifact.stats.instructions} instructions in {elapsed:.2f}s"
        f" (checks={artifact.stats.checks},"
        f" truncations={artifact.stats.attempt_truncations},"
        f" fingerprint={artifact.fingerprint[:16]})"
    )
    if args.expect_cached and not artifact.loaded:
        print(
            "[irgen] error: --expect-cached but the artifact was rebuilt",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_stats(args) -> int:
    root = _resolve_root(args)
    isas = _resolve_isas(args)
    current = irgen_fingerprint(isas)
    namespaces = store_inventory(root)
    for entry in namespaces:
        entry["current"] = entry.get("fingerprint") == current
    if args.json:
        print(
            json.dumps(
                {
                    "root": root,
                    "current_fingerprint": current,
                    "namespaces": namespaces,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"[irgen] store {root}: {len(namespaces)} namespace(s)")
    print(f"[irgen] current fingerprint ({'+'.join(isas)}): {current[:16]}")
    for entry in namespaces:
        stats = entry.get("stats", {})
        marker = "*" if entry.get("current") else " "
        state = "complete" if entry.get("complete") else "INCOMPLETE"
        litter = entry.get("tmp_litter", 0)
        print(
            f"  {marker} {entry['dir']}  {state}"
            f"  classes={entry.get('classes', '?')}"
            f"  instructions={entry.get('instructions', '?')}"
            f"  checks={stats.get('checks', '?')}"
            f"  truncations={stats.get('attempt_truncations', '?')}"
            f"  build_s={stats.get('seconds', '?')}"
            f"  KiB={entry['bytes'] // 1024}"
            + (f"  tmp_litter={litter}" if litter else "")
        )
    if not namespaces:
        print("  (empty)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.irgen",
        description="Offline IR-generation artifact store",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="build or warm-load the artifact")
    _add_common(build)
    build.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: $REPRO_IRGEN_JOBS or cpu count)",
    )
    build.add_argument(
        "--force", action="store_true", help="rebuild even on a cache hit"
    )
    build.add_argument(
        "--expect-cached",
        action="store_true",
        help="fail unless the artifact loaded without a rebuild",
    )
    build.set_defaults(func=cmd_build)

    stats = sub.add_parser("stats", help="inspect a cache root")
    _add_common(stats)
    stats.add_argument("--json", action="store_true", help="machine output")
    stats.set_defaults(func=cmd_stats)

    args = parser.parse_args(argv)
    if args.func is cmd_build and args.jobs is None:
        args.jobs = default_jobs()
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
