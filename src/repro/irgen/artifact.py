"""The on-disk IR-generation artifact: equivalence classes + dictionary.

The paper runs the Automatic IR Generator once offline per ISA set; this
module makes that phase a cacheable artifact.  Layout under a cache root
directory (mirroring :mod:`repro.service.store`'s conventions)::

    <root>/
      <fingerprint16>/
        meta.json        # fingerprint, versions, isas, build stats
        artifact.json    # equivalence classes with full symbolic semantics

The fingerprint (:func:`irgen_fingerprint`) hashes every spec's text and
structure (name, operands, output width, pseudocode, family, extension)
together with the engine/grammar/format versions, so any change to a
vendor spec or to the similarity algorithm lands in a fresh namespace and
stale artifacts are never replayed.  Writes are atomic and idempotent;
racing builders produce byte-identical files.

Class members persist with their *full* parameterized semantics (via
:mod:`repro.hydride_ir.serialize`), so a warm load reconstructs the
AutoLLVM dictionary without parsing a single line of vendor pseudocode —
target :class:`InstructionSpec` objects are re-resolved from the cheap,
freshly generated catalogs (their fuzzer reference callables cannot be
serialized, and re-resolving keeps them live).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import faults
from repro.hydride_ir.serialize import (
    IrSerializeError,
    expr_from_obj,
    expr_to_obj,
    input_from_obj,
    input_to_obj,
)
from repro.isa.registry import load_catalog
from repro.similarity.constants import SymbolicSemantics
from repro.similarity.engine import ENGINE_VERSION, EngineStats
from repro.similarity.eqclass import ClassMember, EquivalenceClass

# Bump when the artifact encoding changes shape.
IRGEN_FORMAT_VERSION = 1

META_FILE = "meta.json"
ARTIFACT_FILE = "artifact.json"
FINGERPRINT_DIR_CHARS = 16


class ArtifactError(ValueError):
    """An artifact cannot be encoded, decoded, or trusted."""


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------


def irgen_fingerprint(
    isas: tuple[str, ...],
    extra: tuple[str, ...] = (),
    catalogs: dict[str, Any] | None = None,
) -> str:
    """A stable hash of everything the generated IR depends on.

    Covers the artifact format, the similarity-engine version, the
    synthesis grammar version, and the full spec text of every ISA in the
    set.  ``catalogs`` is injectable for tests; by default the (cheap)
    generated catalogs are used.
    """
    from repro.synthesis.grammar import GRAMMAR_VERSION

    digest = hashlib.sha256()
    digest.update(f"irgen:{IRGEN_FORMAT_VERSION}\n".encode())
    digest.update(f"engine:{ENGINE_VERSION}\n".encode())
    digest.update(f"grammar:{GRAMMAR_VERSION}\n".encode())
    digest.update(f"isas:{','.join(isas)}\n".encode())
    for isa in isas:
        catalog = (catalogs or {}).get(isa) or load_catalog(isa)
        for spec in catalog:
            operands = ",".join(
                f"{op.name}:{op.width}:{int(op.is_immediate)}"
                for op in spec.operands
            )
            digest.update(
                f"spec:{spec.isa}:{spec.name}:{spec.family}:{spec.extension}"
                f":{spec.output_width}:[{operands}]\n".encode()
            )
            digest.update(spec.pseudocode.encode())
            digest.update(b"\n")
    for item in extra:
        digest.update(f"extra:{item}\n".encode())
    return digest.hexdigest()


def partition_digest(classes: list[EquivalenceClass]) -> str:
    """A hash of the class partition: member names, orders, parameter
    vectors and fixed parameters.  Serial, sharded and artifact-loaded
    runs must agree on this digest bit-for-bit — the determinism gate the
    tests and ``scripts/bench_irgen.py`` enforce."""
    digest = hashlib.sha256()
    for cls in classes:
        digest.update(f"class:{cls.class_id}\n".encode())
        for member in cls.members:
            values = ",".join(str(v) for v in member.values())
            order = ",".join(str(i) for i in member.arg_order)
            digest.update(
                f"  member:{member.isa}:{member.name}:[{order}]:[{values}]"
                f":{len(member.symbolic.param_names)}\n".encode()
            )
        fixed = ",".join(
            f"{k}={v}" for k, v in sorted(cls.fixed_params.items())
        )
        digest.update(f"  fixed:[{fixed}]\n".encode())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# The artifact object
# ----------------------------------------------------------------------


@dataclass
class IrgenArtifact:
    """Everything the offline phase produces, plus build provenance."""

    isas: tuple[str, ...]
    fingerprint: str
    classes: list[EquivalenceClass]
    stats: EngineStats
    phase_seconds: dict[str, float] = field(default_factory=dict)
    jobs: int = 1
    built_at: str = ""
    # Path the artifact was loaded from; None for freshly built ones.
    loaded_from: str | None = None
    _dictionary: Any = field(default=None, repr=False, compare=False)

    @property
    def dictionary(self):
        """The AutoLLVM dictionary over this artifact's classes (lazy)."""
        if self._dictionary is None:
            from repro.autollvm.intrinsics import dictionary_from_classes

            self._dictionary = dictionary_from_classes(self.isas, self.classes)
        return self._dictionary

    @property
    def loaded(self) -> bool:
        return self.loaded_from is not None

    def digest(self) -> str:
        return partition_digest(self.classes)

    def summary(self) -> dict:
        return {
            "isas": list(self.isas),
            "fingerprint": self.fingerprint,
            "classes": len(self.classes),
            "instructions": self.stats.instructions,
            "jobs": self.jobs,
            "built_at": self.built_at,
            "loaded_from": self.loaded_from,
            "stats": self.stats.to_dict(),
            "phase_seconds": {
                k: round(v, 4) for k, v in sorted(self.phase_seconds.items())
            },
        }


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _symbolic_to_obj(symbolic: SymbolicSemantics) -> dict[str, Any]:
    return {
        "name": symbolic.name,
        "isa": symbolic.isa,
        "inputs": [input_to_obj(i) for i in symbolic.inputs],
        "body": expr_to_obj(symbolic.body),
        # Ordered pairs preserve the canonical alpha_1..alpha_r order.
        "params": [
            [name, symbolic.param_values[name]] for name in symbolic.param_names
        ],
        "skeleton": symbolic.skeleton,
    }


def _symbolic_from_obj(obj: dict[str, Any]) -> SymbolicSemantics:
    params = obj["params"]
    return SymbolicSemantics(
        obj["name"],
        obj["isa"],
        tuple(input_from_obj(i) for i in obj["inputs"]),
        expr_from_obj(obj["body"]),
        tuple(name for name, _value in params),
        {name: value for name, value in params},
        obj.get("skeleton", ""),
    )


def artifact_to_obj(artifact: IrgenArtifact) -> dict[str, Any]:
    return {
        "version": IRGEN_FORMAT_VERSION,
        "fingerprint": artifact.fingerprint,
        "isas": list(artifact.isas),
        "jobs": artifact.jobs,
        "built_at": artifact.built_at,
        "stats": artifact.stats.to_dict(),
        "phase_seconds": artifact.phase_seconds,
        "classes": [
            {
                "id": cls.class_id,
                "members": [
                    {
                        "order": list(m.arg_order),
                        "sym": _symbolic_to_obj(m.symbolic),
                    }
                    for m in cls.members
                ],
            }
            for cls in artifact.classes
        ],
    }


def artifact_from_obj(obj: dict[str, Any]) -> IrgenArtifact:
    if obj.get("version") != IRGEN_FORMAT_VERSION:
        raise ArtifactError(
            f"unsupported artifact version {obj.get('version')!r}"
        )
    try:
        classes: list[EquivalenceClass] = []
        for cls_obj in obj["classes"]:
            cls = EquivalenceClass(int(cls_obj["id"]))
            for member in cls_obj["members"]:
                cls.members.append(
                    ClassMember(
                        _symbolic_from_obj(member["sym"]),
                        tuple(member["order"]),
                    )
                )
            # Cheaper to recompute than to trust: fixed parameters are a
            # pure function of the member parameter vectors.
            cls.compute_fixed_params()
            classes.append(cls)
    except (KeyError, TypeError, IndexError, IrSerializeError) as exc:
        raise ArtifactError(f"corrupt artifact payload: {exc}") from exc
    return IrgenArtifact(
        isas=tuple(obj["isas"]),
        fingerprint=obj["fingerprint"],
        classes=classes,
        stats=EngineStats.from_dict(obj.get("stats", {})),
        phase_seconds=dict(obj.get("phase_seconds", {})),
        jobs=int(obj.get("jobs", 1)),
        built_at=obj.get("built_at", ""),
    )


# ----------------------------------------------------------------------
# Store I/O
# ----------------------------------------------------------------------


def artifact_dir(root: str | Path, fingerprint: str) -> Path:
    return Path(root) / fingerprint[:FINGERPRINT_DIR_CHARS]


def persist_artifact(root: str | Path, artifact: IrgenArtifact) -> Path:
    """Atomically write ``meta.json`` + ``artifact.json``; returns the
    namespace directory."""
    from repro.service.store import atomic_write

    faults.trip("irgen.save", detail=artifact.fingerprint[:FINGERPRINT_DIR_CHARS])
    directory = artifact_dir(root, artifact.fingerprint)
    directory.mkdir(parents=True, exist_ok=True)
    atomic_write(
        directory / META_FILE,
        json.dumps(artifact.summary(), sort_keys=True, indent=2),
    )
    atomic_write(
        directory / ARTIFACT_FILE,
        json.dumps(artifact_to_obj(artifact), sort_keys=True),
    )
    return directory


def load_artifact(
    root: str | Path, fingerprint: str
) -> IrgenArtifact | None:
    """Load the artifact for ``fingerprint``; None when absent/corrupt/stale.

    A payload whose recorded fingerprint disagrees with the requested one
    (e.g. a truncated-directory-name collision) is treated as a miss, so
    the caller rebuilds rather than trusting a mismatched artifact.
    Every miss on an *existing* file — torn write, corrupt JSON, stale
    schema — counts as a recovery: the caller rebuilds and overwrites
    instead of crashing.
    """
    path = artifact_dir(root, fingerprint) / ARTIFACT_FILE
    if not path.exists():
        return None
    try:
        faults.trip("irgen.load", detail=path.name)
        obj = json.loads(path.read_text())
        artifact = artifact_from_obj(obj)
    except (json.JSONDecodeError, OSError, ArtifactError):
        faults.recovered()
        return None
    if artifact.fingerprint != fingerprint:
        faults.recovered()
        return None
    artifact.loaded_from = str(path)
    return artifact


def store_inventory(root: str | Path) -> list[dict]:
    """Every persisted artifact namespace under ``root`` (CLI ``stats``).

    ``.tmp-*`` litter from killed writers is reported per namespace and
    excluded from the byte counts; files vanishing mid-scan are skipped.
    """
    root = Path(root)
    namespaces: list[dict] = []
    if not root.is_dir():
        return namespaces
    for directory in sorted(p for p in root.iterdir() if p.is_dir()):
        meta_path = directory / META_FILE
        payload = directory / ARTIFACT_FILE
        size = 0
        tmp_litter = 0
        for path in directory.glob("*.json"):
            if path.name.startswith(".tmp-"):
                tmp_litter += 1
                continue
            try:
                size += path.stat().st_size
            except OSError:
                continue
        entry: dict = {
            "dir": directory.name,
            "bytes": size,
            "tmp_litter": tmp_litter,
            "complete": payload.exists(),
        }
        try:
            entry.update(json.loads(meta_path.read_text()))
        except (json.JSONDecodeError, OSError):
            if meta_path.exists():
                entry["complete"] = False
        namespaces.append(entry)
    return namespaces


def timestamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%S")
