"""The parallel offline IR-generation pipeline.

Four phases, each timed into :mod:`repro.perf` (``irgen_*`` counters):

``parse``
    Per-ISA spec parsing + canonicalisation + constant extraction, fanned
    across a process pool in contiguous catalog slices.  Workers
    regenerate the (millisecond-cheap) catalogs themselves — spec
    ``reference`` callables don't pickle — and return picklable
    :class:`SymbolicSemantics`.

``bucket``
    Group the symbolics by :func:`repro.similarity.engine.shard_key`.
    ``insert`` and the permutation pass only ever compare instructions
    whose signature *and* operator multiset agree, so these groups are
    *exactly* the units of independent pass-1/2 work: sharding cannot add
    or drop a single comparison relative to the serial engine.

``check``
    One pool task per group runs :meth:`SimilarityEngine.run_pass12` on a
    private engine and returns its classes as ``(global_index,
    arg_order)`` member lists.  The parent rebuilds the classes over its
    own symbolic objects and sorts them by the global index of each
    class's first member — pass-1 creation order is first-member order and
    pass-2 merges always fold the later class into the earlier one, so
    this reproduces the serial engine's class ordering bit-for-bit.

``merge``
    Pass 3 (offset-hole refinement) merges *across* the original groups —
    hole insertion changes signatures — so it runs in the parent over the
    combined classes.  The per-class hole synthesis is precomputed in the
    pool; only the cross-class merge loop is serial.
"""

from __future__ import annotations

import multiprocessing
import time

from repro import faults
from repro.isa.registry import load_catalog, parse_slice
from repro.perf import global_counters, phase_timer
from repro.similarity.constants import SymbolicSemantics, extract_constants
from repro.similarity.engine import SimilarityEngine, shard_key
from repro.similarity.eqclass import ClassMember, EquivalenceClass
from repro.similarity.holes import synthesize_offset_hole
from repro.smt.solver import EquivalenceChecker

from repro.irgen.artifact import (
    IrgenArtifact,
    irgen_fingerprint,
    timestamp,
)

# Below this many specs an ISA is parsed as a single slice: the pickle +
# fork overhead of extra tasks costs more than the parse itself.
MIN_PARSE_SLICE = 32


def _fresh_checker() -> EquivalenceChecker:
    # Same seed as the serial engine's default checker: worker verdicts
    # must reproduce the serial run's.
    return EquivalenceChecker(seed=1)


# ----------------------------------------------------------------------
# Worker entry points (module-level: Pool pickles the callable)
# ----------------------------------------------------------------------


def _parse_task(task: tuple[str, int, int]):
    """Parse + canonicalise + extract one catalog slice.

    Returns ``(symbolics, parse_seconds, extract_seconds)`` so the parent
    can aggregate worker-side phase time into its own counters.
    """
    isa, start, stop = task
    began = time.monotonic()
    parsed = parse_slice(isa, start, stop)
    mid = time.monotonic()
    symbolics = [extract_constants(func, isa) for _name, func in parsed]
    return symbolics, mid - began, time.monotonic() - mid


def _check_task(task: tuple[list[int], list[SymbolicSemantics]]):
    """Run passes 1–2 over one shard group.

    Returns ``(classes, stats)`` where each class is a list of
    ``(global_index, arg_order)`` members in engine order, and ``stats``
    carries this worker's check/merge/truncation counts.
    """
    indices, symbolics = task
    began = time.monotonic()
    engine = SimilarityEngine(_fresh_checker())
    classes = engine.run_pass12(symbolics)
    index_of = {id(s): g for g, s in zip(indices, symbolics)}
    encoded = [
        [(index_of[id(m.symbolic)], list(m.arg_order)) for m in cls.members]
        for cls in classes
    ]
    stats = {
        "checks": engine.stats.checks,
        "permute_merges": engine.stats.permute_merges,
        "attempt_truncations": engine.stats.attempt_truncations,
        "checker_stats": dict(engine.checker.stats),
        "seconds": time.monotonic() - began,
    }
    return encoded, stats


def _refine_task(task: tuple[int, SymbolicSemantics]):
    """Precompute one class representative's offset-hole refinement."""
    position, representative = task
    return position, synthesize_offset_hole(representative, _fresh_checker())


# ----------------------------------------------------------------------
# Pool plumbing
# ----------------------------------------------------------------------


def _pool_map(func, tasks, jobs: int):
    """``map`` over a fork pool, or inline when one job (or one task)."""
    if jobs <= 1 or len(tasks) <= 1:
        return [func(task) for task in tasks]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context("spawn")
    with context.Pool(processes=min(jobs, len(tasks))) as pool:
        return pool.map(func, tasks)


def _parse_tasks(isas: tuple[str, ...], jobs: int) -> list[tuple[str, int, int]]:
    tasks: list[tuple[str, int, int]] = []
    for isa in isas:
        count = len(load_catalog(isa))
        width = max(MIN_PARSE_SLICE, -(-count // max(1, jobs)))
        tasks.extend(
            (isa, start, min(start + width, count))
            for start in range(0, count, width)
        )
    return tasks


# ----------------------------------------------------------------------
# The pipeline driver
# ----------------------------------------------------------------------


def build_artifact(
    isas: tuple[str, ...],
    jobs: int = 1,
    extra: tuple[str, ...] = (),
) -> IrgenArtifact:
    """Run the full sharded pipeline; returns a freshly built artifact.

    With ``jobs <= 1`` the identical phase structure runs inline — the
    partition it produces is the determinism reference the tests compare
    against :func:`repro.similarity.engine.build_equivalence_classes`.
    """
    faults.trip("irgen.build", detail="+".join(isas))
    perf = global_counters()
    began = time.monotonic()
    phases: dict[str, float] = {}

    # -- parse + extract ----------------------------------------------
    parse_began = time.monotonic()
    results = _pool_map(_parse_task, _parse_tasks(isas, jobs), jobs)
    symbolics: list[SymbolicSemantics] = []
    parse_seconds = extract_seconds = 0.0
    for chunk, parsed, extracted in results:
        symbolics.extend(chunk)
        parse_seconds += parsed
        extract_seconds += extracted
    perf.add_phase("irgen_parse", parse_seconds)
    perf.add_phase("irgen_extract", extract_seconds)
    phases["parse"] = parse_seconds
    phases["extract"] = extract_seconds
    phases["parse_wall"] = time.monotonic() - parse_began

    # -- bucket --------------------------------------------------------
    with phase_timer("irgen_bucket"):
        bucket_began = time.monotonic()
        groups: dict[tuple, tuple[list[int], list[SymbolicSemantics]]] = {}
        for index, symbolic in enumerate(symbolics):
            indices, members = groups.setdefault(
                shard_key(symbolic), ([], [])
            )
            indices.append(index)
            members.append(symbolic)
        phases["bucket"] = time.monotonic() - bucket_began

    # -- check (passes 1–2, sharded) ----------------------------------
    check_began = time.monotonic()
    # Largest groups first: better tail latency when one group dominates.
    tasks = sorted(groups.values(), key=lambda g: -len(g[0]))
    outcomes = _pool_map(_check_task, tasks, jobs)
    combined: list[tuple[int, EquivalenceClass]] = []
    worker_stats = {
        "checks": 0, "permute_merges": 0, "attempt_truncations": 0,
        "checker_stats": {}, "seconds": 0.0,
    }
    for encoded, stats in outcomes:
        for members in encoded:
            cls = EquivalenceClass(-1)
            cls.members = [
                ClassMember(symbolics[gidx], tuple(order))
                for gidx, order in members
            ]
            combined.append((members[0][0], cls))
        for name in ("checks", "permute_merges", "attempt_truncations"):
            worker_stats[name] += stats[name]
        worker_stats["seconds"] += stats["seconds"]
        for key, value in stats["checker_stats"].items():
            worker_stats["checker_stats"][key] = (
                worker_stats["checker_stats"].get(key, 0) + value
            )
    # Serial creation order: first-member global index (see module doc).
    combined.sort(key=lambda pair: pair[0])
    classes = [cls for _first, cls in combined]
    perf.add_phase("irgen_check", worker_stats["seconds"])
    phases["check"] = worker_stats["seconds"]
    phases["check_wall"] = time.monotonic() - check_began

    # -- merge (pass 3 + finalisation, centralised) -------------------
    with phase_timer("irgen_merge"):
        merge_began = time.monotonic()
        refined_pairs = _pool_map(
            _refine_task,
            [(pos, cls.representative) for pos, cls in enumerate(classes)],
            jobs,
        )
        refined = {
            pos: symbolic for pos, symbolic in refined_pairs
            if symbolic is not None
        }
        engine = SimilarityEngine(_fresh_checker())
        engine.stats.instructions = len(symbolics)
        engine.stats.checks = worker_stats["checks"]
        engine.stats.permute_merges = worker_stats["permute_merges"]
        engine.stats.attempt_truncations = worker_stats["attempt_truncations"]
        final = engine.finish(classes, refined)
        # finish() recorded the parent checker's ladder stats; fold the
        # workers' in so the totals match a serial run's accounting.
        for key, value in worker_stats["checker_stats"].items():
            engine.stats.checker_stats[key] = (
                engine.stats.checker_stats.get(key, 0) + value
            )
        phases["merge"] = time.monotonic() - merge_began

    engine.stats.seconds = time.monotonic() - began
    return IrgenArtifact(
        isas=tuple(isas),
        fingerprint=irgen_fingerprint(tuple(isas), extra),
        classes=final,
        stats=engine.stats,
        phase_seconds=phases,
        jobs=jobs,
        built_at=timestamp(),
    )
