"""Instruction specification records — the "vendor manual entry" type."""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.bitvector.bv import BitVector


@dataclass(frozen=True)
class OperandSpec:
    """One operand of an instruction as documented by the vendor."""

    name: str
    width: int
    is_immediate: bool = False


# A reference executable: concrete input registers -> output register.
Reference = Callable[[Mapping[str, BitVector]], BitVector]


@dataclass
class InstructionSpec:
    """One manual entry: name, operands, pseudocode text, and metadata.

    ``pseudocode`` is text in the owning ISA's dialect — the parser input.
    ``reference`` is an independent executable implementation (stand-in for
    the target C builtin) used only by the differential fuzzer; the
    compiler pipeline never reads it.
    """

    name: str
    isa: str
    asm: str
    operands: tuple[OperandSpec, ...]
    output_width: int
    pseudocode: str
    extension: str
    family: str
    latency: float
    throughput: float
    reference: Reference | None = None
    attributes: dict[str, object] = field(default_factory=dict)

    @property
    def vector_width(self) -> int:
        return self.output_width

    def register_operands(self) -> list[OperandSpec]:
        return [op for op in self.operands if not op.is_immediate]

    def immediate_operands(self) -> list[OperandSpec]:
        return [op for op in self.operands if op.is_immediate]


@dataclass
class IsaCatalog:
    """All instruction specs of one ISA — the "programmer's manual"."""

    isa: str
    specs: list[InstructionSpec]

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def by_name(self, name: str) -> InstructionSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(f"no instruction named {name!r} in {self.isa}")

    def families(self) -> dict[str, list[InstructionSpec]]:
        grouped: dict[str, list[InstructionSpec]] = {}
        for spec in self.specs:
            grouped.setdefault(spec.family, []).append(spec)
        return grouped

    def filter(self, predicate: Callable[[InstructionSpec], bool]) -> "IsaCatalog":
        return IsaCatalog(self.isa, [s for s in self.specs if predicate(s)])


def validate_catalog(catalog: IsaCatalog) -> list[str]:
    """Sanity checks a spec generator's output; returns problem strings."""
    problems: list[str] = []
    seen: set[str] = set()
    for spec in catalog:
        if spec.name in seen:
            problems.append(f"duplicate instruction name {spec.name}")
        seen.add(spec.name)
        if spec.output_width <= 0:
            problems.append(f"{spec.name}: non-positive output width")
        if not spec.pseudocode.strip():
            problems.append(f"{spec.name}: empty pseudocode")
        if spec.latency <= 0 or spec.throughput <= 0:
            problems.append(f"{spec.name}: non-positive latency/throughput")
    return problems
