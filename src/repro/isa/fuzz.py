"""Differential fuzzing of instruction semantics.

"To increase confidence in the generated ISA semantics, we use random
fuzz testing for individual instructions and compare the results of
machine-executable semantics in HYDRIDE IR against target-specific C
builtins on randomly-generated inputs."  Here the role of the C builtins
is played by each spec's independent ``reference`` callable, and the same
machinery fuzzes *third-party* semantics (Rake's hand-written HVX
interpreter) for the Table 2 experiment.
"""

from __future__ import annotations

import random
import zlib
from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.bitvector.bv import BitVector
from repro.hydride_ir.ast import SemanticsFunction
from repro.hydride_ir.interp import interpret, resolved_input_widths
from repro.isa.spec import InstructionSpec


@dataclass
class FuzzReport:
    instruction: str
    trials: int
    mismatches: int = 0
    first_counterexample: dict[str, int] | None = None

    @property
    def passed(self) -> bool:
        return self.mismatches == 0


def derive_seed(seed: int, name: str) -> int:
    """Per-instruction RNG seed, stable across processes and spec order.

    The builtin ``hash()`` of a string is salted per interpreter process
    (PYTHONHASHSEED), so it must not feed an RNG whose outputs are meant
    to be reproducible; CRC32 of the instruction name is stable.
    """
    return seed ^ zlib.crc32(name.encode("utf-8"))


def _random_inputs(
    widths: Mapping[str, int], rng: random.Random
) -> dict[str, BitVector]:
    env = {}
    for name, width in widths.items():
        choice = rng.randrange(5)
        if choice == 0:
            value = 0
        elif choice == 1:
            value = (1 << width) - 1
        else:
            value = rng.getrandbits(width)
        env[name] = BitVector(value, width)
    return env


def fuzz_semantics(
    spec: InstructionSpec,
    semantics: SemanticsFunction,
    trials: int = 16,
    seed: int = 0,
) -> FuzzReport:
    """Compare parsed semantics against the spec's reference executable.

    Runs are fully deterministic: the same ``seed`` produces the same
    trial inputs for a given instruction in any process.
    """
    rng = random.Random(derive_seed(seed, spec.name))
    widths = resolved_input_widths(semantics, {})
    report = FuzzReport(spec.name, trials)
    for _ in range(trials):
        env = _random_inputs(widths, rng)
        got = interpret(semantics, env)
        want = spec.reference(env)
        if got.value != want.value or got.width != want.width:
            report.mismatches += 1
            if report.first_counterexample is None:
                report.first_counterexample = {k: v.value for k, v in env.items()}
    return report


def fuzz_catalog(
    specs,
    semantics_by_name: Mapping[str, SemanticsFunction],
    trials: int = 8,
    seed: int = 0,
) -> list[FuzzReport]:
    """Fuzz every instruction of a catalog; returns failing reports only."""
    failures = []
    for spec in specs:
        report = fuzz_semantics(spec, semantics_by_name[spec.name], trials, seed)
        if not report.passed:
            failures.append(report)
    return failures


@dataclass
class DifferentialReport:
    """Outcome of fuzzing a third-party interpreter against references."""

    instruction: str
    family: str
    mismatches: int
    trials: int
    first_counterexample: dict[str, int] | None = None

    @property
    def is_bug(self) -> bool:
        return self.mismatches > 0


def fuzz_interpreter(
    specs,
    execute: Callable[[InstructionSpec, dict[str, BitVector]], BitVector],
    trials: int = 32,
    seed: int = 1,
) -> list[DifferentialReport]:
    """Fuzz an alternative interpreter (e.g. Rake's) against references.

    Each spec draws from its own seeded RNG, so per-instruction results
    do not depend on the order or subset of ``specs`` being fuzzed.
    """
    reports = []
    for spec in specs:
        rng = random.Random(derive_seed(seed, spec.name))
        widths = {op.name: op.width for op in spec.operands}
        mismatches = 0
        first = None
        for _ in range(trials):
            env = _random_inputs(widths, rng)
            got = execute(spec, env)
            want = spec.reference(env)
            if got.value != want.value:
                mismatches += 1
                if first is None:
                    first = {k: v.value for k, v in env.items()}
        reports.append(
            DifferentialReport(spec.name, spec.family, mismatches, trials, first)
        )
    return reports
