"""Shared machinery for the three vendor pseudocode dialects.

Each ISA parser (x86, HVX, ARM) has its own surface grammar, keywords and
builtin names — as the vendors' manuals do — but they all parse into the
small statement/expression AST defined here, which is then *lowered* to
Hydride IR by symbolic unrolling:

* ``FOR`` loops run with concrete bounds (vendor pseudocode always has
  literal trip counts), producing one slice assignment per element;
* helper ``DEFINE`` functions are inlined at call sites;
* data-dependent ``IF`` (AVX-512 masking) merges branch assignments into
  ``BvIte`` nodes;
* the resulting slice assignments must tile the destination register
  exactly and become a ``BvConcat`` — which loop rerolling in
  :mod:`repro.hydride_ir.transforms` subsequently re-rolls.

This mirrors the paper's flow where parsed semantics are canonicalised by
"function inlining, loop rerolling, etc." before similarity checking.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.hydride_ir.ast import (
    BvBinOp,
    BvCast,
    BvCmp,
    BvConcat,
    BvConst,
    BvExpr,
    BvExtract,
    BvIte,
    BvUnOp,
    BvVar,
)
from repro.hydride_ir.indexexpr import IConst


class PseudocodeError(Exception):
    """Raised on malformed pseudocode or an ill-typed lowering."""


# ----------------------------------------------------------------------
# Lexer toolkit
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'int' | 'sym' | 'eof'
    text: str
    line: int


class Lexer:
    """Regex tokenizer configurable with a dialect's symbol set."""

    def __init__(
        self, symbols: list[str], line_comments: tuple[str, ...] = ("//",)
    ) -> None:
        # Longest symbols first so '>=' wins over '>'.
        ordered = sorted(symbols, key=len, reverse=True)
        sym_pattern = "|".join(re.escape(s) for s in ordered)
        comment_pattern = "|".join(
            re.escape(c) + "[^\\n]*" for c in line_comments
        )
        self._regex = re.compile(
            rf"(?P<ws>[ \t]+)"
            rf"|(?P<comment>{comment_pattern})"
            rf"|(?P<newline>\n)"
            rf"|(?P<hex>0[xX][0-9a-fA-F]+)"
            rf"|(?P<int>\d+)"
            rf"|(?P<ident>[A-Za-z_][A-Za-z_0-9.]*)"
            rf"|(?P<sym>{sym_pattern})"
        )

    def tokenize(self, text: str) -> list[Token]:
        tokens: list[Token] = []
        line = 1
        pos = 0
        while pos < len(text):
            match = self._regex.match(text, pos)
            if match is None:
                raise PseudocodeError(
                    f"line {line}: cannot tokenize {text[pos:pos + 12]!r}"
                )
            pos = match.end()
            kind = match.lastgroup
            if kind == "ws" or kind == "comment":
                continue
            if kind == "newline":
                line += 1
                continue
            if kind == "hex":
                tokens.append(Token("int", str(int(match.group(), 16)), line))
            elif kind == "int":
                tokens.append(Token("int", match.group(), line))
            elif kind == "ident":
                tokens.append(Token("ident", match.group(), line))
            else:
                tokens.append(Token("sym", match.group(), line))
        tokens.append(Token("eof", "", line))
        return tokens


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self._pos += 1
        return token

    def accept(self, text: str) -> bool:
        if self.peek().text == text and self.peek().kind != "eof":
            self.next()
            return True
        return False

    def expect(self, text: str) -> Token:
        token = self.next()
        if token.text != text:
            raise PseudocodeError(
                f"line {token.line}: expected {text!r}, found {token.text!r}"
            )
        return token

    def expect_kind(self, kind: str) -> Token:
        token = self.next()
        if token.kind != kind:
            raise PseudocodeError(
                f"line {token.line}: expected {kind}, found {token.text!r}"
            )
        return token

    def at_end(self) -> bool:
        return self.peek().kind == "eof"


# ----------------------------------------------------------------------
# Dialect-independent pseudocode AST
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PExpr:
    pass


@dataclass(frozen=True)
class PInt(PExpr):
    value: int


@dataclass(frozen=True)
class PVar(PExpr):
    name: str


@dataclass(frozen=True)
class PSlice(PExpr):
    """``base[high:low]`` — a bit slice of a register or temp."""

    base: str
    high: PExpr
    low: PExpr


@dataclass(frozen=True)
class PElem(PExpr):
    """``base.<width>[index]`` — an element access (HVX/ARM styles)."""

    base: str
    elem_width: int
    index: PExpr


@dataclass(frozen=True)
class PBin(PExpr):
    op: str
    left: PExpr
    right: PExpr


@dataclass(frozen=True)
class PUn(PExpr):
    op: str
    operand: PExpr


@dataclass(frozen=True)
class PCall(PExpr):
    name: str
    args: tuple[PExpr, ...]


@dataclass(frozen=True)
class PCond(PExpr):
    """Ternary ``cond ? a : b``."""

    cond: PExpr
    then_expr: PExpr
    else_expr: PExpr


@dataclass(frozen=True)
class PStmt:
    pass


@dataclass(frozen=True)
class PAssign(PStmt):
    """Assignment to a slice/element of the destination or to a temp."""

    target: PExpr  # PVar | PSlice | PElem
    value: PExpr


@dataclass(frozen=True)
class PFor(PStmt):
    var: str
    start: PExpr
    end: PExpr  # inclusive
    body: tuple[PStmt, ...]


@dataclass(frozen=True)
class PIf(PStmt):
    cond: PExpr
    then_body: tuple[PStmt, ...]
    else_body: tuple[PStmt, ...]


@dataclass(frozen=True)
class PDefine(PStmt):
    """Helper function definition — inlined at call sites during lowering."""

    name: str
    params: tuple[str, ...]
    body: tuple[PStmt, ...]
    result: PExpr


@dataclass(frozen=True)
class Program:
    statements: tuple[PStmt, ...]


# ----------------------------------------------------------------------
# Builtins: the dialect maps its function names onto these constructors
# ----------------------------------------------------------------------


def _bv_width(expr: BvExpr, widths: dict[str, int]) -> int:
    """Width of a lowered expression (inputs have concrete widths here)."""
    from repro.hydride_ir.interp import compute_width

    return compute_width(expr, {}, widths)


@dataclass
class Builtin:
    """A pseudocode function: arity and a constructor over lowered args.

    ``constructor(args, widths)`` receives lowered arguments — each either
    a ``BvExpr`` or an ``int`` — and returns the lowered result.
    """

    arity: int
    constructor: object  # Callable[[list, dict[str, int]], BvExpr | int]


def _need_bv(value, what: str) -> BvExpr:
    if isinstance(value, int):
        raise PseudocodeError(f"{what} expects a bitvector, got integer {value}")
    return value


def _need_int(value, what: str) -> int:
    if not isinstance(value, int):
        raise PseudocodeError(f"{what} expects an integer literal argument")
    return value


def make_cast_builtin(op: str) -> Builtin:
    def build(args, widths):
        width = _need_int(args[1], op)
        operand = args[0]
        # Integer literals coerce: UExt(1, 17) is the constant 1 at 17 bits.
        if isinstance(operand, int):
            return BvConst(IConst(operand), IConst(width))
        return BvCast(op, operand, IConst(width))

    return Builtin(2, build)


def make_binop_builtin(op: str) -> Builtin:
    def build(args, widths):
        return BvBinOp(op, _need_bv(args[0], op), _need_bv(args[1], op))

    return Builtin(2, build)


def make_unop_builtin(op: str) -> Builtin:
    def build(args, widths):
        return BvUnOp(op, _need_bv(args[0], op))

    return Builtin(1, build)


# The semantic core every dialect draws from; dialects rename these.
CORE_BUILTINS: dict[str, Builtin] = {
    "sign_extend": make_cast_builtin("sext"),
    "zero_extend": make_cast_builtin("zext"),
    "truncate": make_cast_builtin("trunc"),
    "saturate_signed": make_cast_builtin("saturate_to_signed"),
    "saturate_unsigned": make_cast_builtin("saturate_to_unsigned"),
    "min_signed": make_binop_builtin("bvsmin"),
    "max_signed": make_binop_builtin("bvsmax"),
    "min_unsigned": make_binop_builtin("bvumin"),
    "max_unsigned": make_binop_builtin("bvumax"),
    "abs": make_unop_builtin("bvabs"),
    "avg_unsigned_round": make_binop_builtin("bvuavg_round"),
    "avg_signed_round": make_binop_builtin("bvsavg_round"),
    "avg_unsigned": make_binop_builtin("bvuavg"),
    "avg_signed": make_binop_builtin("bvsavg"),
    "sat_add_signed": make_binop_builtin("bvsaddsat"),
    "sat_add_unsigned": make_binop_builtin("bvuaddsat"),
    "sat_sub_signed": make_binop_builtin("bvssubsat"),
    "sat_sub_unsigned": make_binop_builtin("bvusubsat"),
    "rotate_right": make_binop_builtin("bvrotr"),
    "rotate_left": make_binop_builtin("bvrotl"),
    "popcount": make_unop_builtin("popcount"),
}


# ----------------------------------------------------------------------
# Lowering: unrolling evaluator
# ----------------------------------------------------------------------

# Map from dialect operator text to Hydride binop/cmp names.  Right shifts
# are dialect-sensitive (the paper notes vendors conflate logical and
# arithmetic right shift); dialects pass their own table.
DEFAULT_BIN_OPS = {
    "+": "bvadd",
    "-": "bvsub",
    "*": "bvmul",
    "&": "bvand",
    "|": "bvor",
    "^": "bvxor",
    "<<": "bvshl",
    ">>": "bvlshr",
    ">>>": "bvashr",
}

DEFAULT_CMP_OPS = {
    "==": "bveq",
    "!=": "bvne",
    "<s": "bvslt",
    ">s": "bvsgt",
    "<=s": "bvsle",
    ">=s": "bvsge",
    "<u": "bvult",
    ">u": "bvugt",
    "<=u": "bvule",
    ">=u": "bvuge",
}

_INT_BIN = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b),
    ">=": lambda a, b: int(a >= b),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}


@dataclass
class _SliceAssign:
    low: int
    width: int
    value: BvExpr


class LoweringContext:
    """Evaluates a pseudocode :class:`Program` into slice assignments."""

    def __init__(
        self,
        input_widths: dict[str, int],
        output_name: str,
        output_width: int,
        builtins: dict[str, Builtin],
        bin_ops: dict[str, str] | None = None,
        cmp_ops: dict[str, str] | None = None,
    ) -> None:
        self.input_widths = dict(input_widths)
        self.output_name = output_name
        self.output_width = output_width
        self.builtins = builtins
        self.bin_ops = bin_ops or DEFAULT_BIN_OPS
        self.cmp_ops = cmp_ops or DEFAULT_CMP_OPS
        self.int_env: dict[str, int] = {}
        self.bv_temps: dict[str, BvExpr] = {}
        self.defines: dict[str, PDefine] = {}
        self.assigns: list[_SliceAssign] = []

    # -- expression lowering -------------------------------------------

    def width_of(self, expr: BvExpr) -> int:
        return _bv_width(expr, self.input_widths)

    def eval_expr(self, expr: PExpr):
        """Lower an expression to ``int`` (index sort) or ``BvExpr``."""
        if isinstance(expr, PInt):
            return expr.value
        if isinstance(expr, PVar):
            if expr.name in self.int_env:
                return self.int_env[expr.name]
            if expr.name in self.bv_temps:
                return self.bv_temps[expr.name]
            if expr.name in self.input_widths:
                return BvVar(expr.name)
            raise PseudocodeError(f"unknown name {expr.name!r}")
        if isinstance(expr, PSlice):
            return self._eval_slice(expr)
        if isinstance(expr, PElem):
            low = self._eval_int(expr.index) * expr.elem_width
            return self._slice_of(expr.base, low, expr.elem_width)
        if isinstance(expr, PBin):
            return self._eval_bin(expr)
        if isinstance(expr, PUn):
            operand = self.eval_expr(expr.operand)
            if isinstance(operand, int):
                if expr.op == "-":
                    return -operand
                raise PseudocodeError(f"integer unary {expr.op!r} unsupported")
            if expr.op == "~":
                return BvUnOp("bvnot", operand)
            if expr.op == "-":
                return BvUnOp("bvneg", operand)
            raise PseudocodeError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, PCall):
            return self._eval_call(expr)
        if isinstance(expr, PCond):
            cond = self.eval_expr(expr.cond)
            if isinstance(cond, int):
                return self.eval_expr(expr.then_expr if cond else expr.else_expr)
            then_value = self.eval_expr(expr.then_expr)
            else_value = self.eval_expr(expr.else_expr)
            # ``cond ? 1 : 0`` materialises the predicate as a bit.
            if (
                isinstance(then_value, int)
                and isinstance(else_value, int)
                and 0 <= then_value <= 1
                and 0 <= else_value <= 1
            ):
                then_value = BvConst(IConst(then_value), IConst(1))
                else_value = BvConst(IConst(else_value), IConst(1))
            # Integer literals coerce to the other branch's width.
            if isinstance(then_value, int) and not isinstance(else_value, int):
                then_value = BvConst(
                    IConst(then_value), IConst(self.width_of(else_value))
                )
            elif isinstance(else_value, int) and not isinstance(then_value, int):
                else_value = BvConst(
                    IConst(else_value), IConst(self.width_of(then_value))
                )
            return BvIte(
                cond,
                _need_bv(then_value, "ternary"),
                _need_bv(else_value, "ternary"),
            )
        raise PseudocodeError(f"unknown expression node {type(expr).__name__}")

    def _eval_int(self, expr: PExpr) -> int:
        value = self.eval_expr(expr)
        if not isinstance(value, int):
            raise PseudocodeError("expected a static integer expression")
        return value

    def _slice_of(self, base: str, low: int, width: int) -> BvExpr:
        if base in self.bv_temps:
            source: BvExpr = self.bv_temps[base]
            total = self.width_of(source)
        elif base in self.input_widths:
            source = BvVar(base)
            total = self.input_widths[base]
        else:
            raise PseudocodeError(f"unknown register {base!r}")
        if low < 0 or low + width > total:
            raise PseudocodeError(
                f"slice [{low}, {low + width}) out of range for {base!r} "
                f"of width {total}"
            )
        if low == 0 and width == total:
            return source
        return BvExtract(source, IConst(low), IConst(width))

    def _eval_slice(self, expr: PSlice) -> BvExpr:
        high = self._eval_int(expr.high)
        low = self._eval_int(expr.low)
        if high < low:
            raise PseudocodeError(f"slice [{high}:{low}] has negative width")
        return self._slice_of(expr.base, low, high - low + 1)

    def _eval_bin(self, expr: PBin):
        left = self.eval_expr(expr.left)
        right = self.eval_expr(expr.right)
        if isinstance(left, int) and isinstance(right, int):
            fn = _INT_BIN.get(expr.op)
            if fn is None:
                raise PseudocodeError(f"integer operator {expr.op!r} unsupported")
            return fn(left, right)
        # Integer literals mixed with bitvectors coerce to same-width consts.
        if isinstance(left, int):
            left = BvConst(IConst(left), IConst(self.width_of(right)))
        left_bv = _need_bv(left, f"operator {expr.op}")
        if isinstance(right, int):
            right = BvConst(IConst(right), IConst(self.width_of(left_bv)))
        if expr.op in self.cmp_ops:
            return BvCmp(self.cmp_ops[expr.op], left_bv, right)
        op_name = self.bin_ops.get(expr.op)
        if op_name is None:
            raise PseudocodeError(f"bitvector operator {expr.op!r} unsupported")
        if self.width_of(left_bv) != self.width_of(right):
            raise PseudocodeError(
                f"operator {expr.op!r}: operand widths "
                f"{self.width_of(left_bv)} and {self.width_of(right)} differ"
            )
        return BvBinOp(op_name, left_bv, right)

    def _eval_call(self, expr: PCall):
        define = self.defines.get(expr.name)
        if define is not None:
            return self._inline_define(define, expr)
        builtin = self.builtins.get(expr.name)
        if builtin is None:
            raise PseudocodeError(f"unknown function {expr.name!r}")
        if len(expr.args) != builtin.arity:
            raise PseudocodeError(
                f"{expr.name} expects {builtin.arity} args, got {len(expr.args)}"
            )
        args = [self.eval_expr(a) for a in expr.args]
        return builtin.constructor(args, self.input_widths)

    def _inline_define(self, define: PDefine, call: PCall):
        """Function inlining: bind args as temps, run body, return result."""
        if len(call.args) != len(define.params):
            raise PseudocodeError(
                f"{define.name} expects {len(define.params)} args, "
                f"got {len(call.args)}"
            )
        saved_int = dict(self.int_env)
        saved_bv = dict(self.bv_temps)
        for param, arg in zip(define.params, call.args):
            value = self.eval_expr(arg)
            if isinstance(value, int):
                self.int_env[param] = value
                self.bv_temps.pop(param, None)
            else:
                self.bv_temps[param] = value
                self.int_env.pop(param, None)
        try:
            for stmt in define.body:
                self.exec_stmt(stmt)
            return self.eval_expr(define.result)
        finally:
            self.int_env = saved_int
            self.bv_temps = saved_bv

    # -- statement execution -------------------------------------------

    def exec_stmt(self, stmt: PStmt) -> None:
        if isinstance(stmt, PDefine):
            self.defines[stmt.name] = stmt
            return
        if isinstance(stmt, PAssign):
            self._exec_assign(stmt)
            return
        if isinstance(stmt, PFor):
            start = self._eval_int(stmt.start)
            end = self._eval_int(stmt.end)
            saved = self.int_env.get(stmt.var)
            for i in range(start, end + 1):
                self.int_env[stmt.var] = i
                for inner in stmt.body:
                    self.exec_stmt(inner)
            if saved is None:
                self.int_env.pop(stmt.var, None)
            else:
                self.int_env[stmt.var] = saved
            return
        if isinstance(stmt, PIf):
            self._exec_if(stmt)
            return
        raise PseudocodeError(f"unknown statement {type(stmt).__name__}")

    def _exec_assign(self, stmt: PAssign) -> None:
        target = stmt.target
        if isinstance(target, PVar):
            value = self.eval_expr(stmt.value)
            if isinstance(value, int):
                self.int_env[target.name] = value
            else:
                self.bv_temps[target.name] = value
            return
        if isinstance(target, PElem):
            if target.base != self.output_name:
                raise PseudocodeError(
                    f"element assignment to non-output {target.base!r}"
                )
            low = self._eval_int(target.index) * target.elem_width
            self._record_assign(low, target.elem_width, stmt.value)
            return
        if isinstance(target, PSlice):
            if target.base != self.output_name:
                raise PseudocodeError(f"slice assignment to non-output {target.base!r}")
            high = self._eval_int(target.high)
            low = self._eval_int(target.low)
            self._record_assign(low, high - low + 1, stmt.value)
            return
        raise PseudocodeError(f"bad assignment target {type(target).__name__}")

    def _record_assign(self, low: int, width: int, value_expr: PExpr) -> None:
        value = self.eval_expr(value_expr)
        if isinstance(value, int):
            value = BvConst(IConst(value), IConst(width))
        actual = self.width_of(value)
        if actual != width:
            raise PseudocodeError(
                f"assignment to [{low + width - 1}:{low}] has width {actual}, "
                f"expected {width}"
            )
        if low < 0 or low + width > self.output_width:
            raise PseudocodeError(
                f"assignment [{low}, {low + width}) outside destination "
                f"of width {self.output_width}"
            )
        self.assigns.append(_SliceAssign(low, width, value))

    def _exec_if(self, stmt: PIf) -> None:
        cond = self.eval_expr(stmt.cond)
        if isinstance(cond, int):
            body = stmt.then_body if cond else stmt.else_body
            for inner in body:
                self.exec_stmt(inner)
            return
        # Data-dependent condition (AVX-512 masking): both branches must
        # assign the same destination slices; merge each pair with BvIte.
        if self.width_of(cond) != 1:
            raise PseudocodeError("IF condition must be 1 bit wide")
        then_assigns = self._collect_branch(stmt.then_body)
        else_assigns = self._collect_branch(stmt.else_body)
        then_keys = [(a.low, a.width) for a in then_assigns]
        else_keys = [(a.low, a.width) for a in else_assigns]
        if then_keys != else_keys:
            raise PseudocodeError(
                "data-dependent IF branches assign different slices: "
                f"{then_keys} vs {else_keys}"
            )
        for then_part, else_part in zip(then_assigns, else_assigns):
            self.assigns.append(
                _SliceAssign(
                    then_part.low,
                    then_part.width,
                    BvIte(cond, then_part.value, else_part.value),
                )
            )

    def _collect_branch(self, body: tuple[PStmt, ...]) -> list[_SliceAssign]:
        saved = self.assigns
        self.assigns = []
        try:
            for inner in body:
                self.exec_stmt(inner)
            return self.assigns
        finally:
            self.assigns = saved

    # -- result assembly -------------------------------------------------

    def finish(self) -> BvExpr:
        """Assemble the recorded slice assignments into one expression."""
        if not self.assigns:
            raise PseudocodeError("pseudocode never assigns the destination")
        ordered = sorted(self.assigns, key=lambda a: a.low)
        cursor = 0
        parts: list[BvExpr] = []
        for assign in ordered:
            if assign.low != cursor:
                raise PseudocodeError(
                    f"destination gap/overlap at bit {cursor} "
                    f"(next assignment at {assign.low})"
                )
            parts.append(assign.value)
            cursor += assign.width
        if cursor != self.output_width:
            raise PseudocodeError(
                f"assignments cover {cursor} bits of a "
                f"{self.output_width}-bit destination"
            )
        if len(parts) == 1:
            return parts[0]
        return BvConcat(tuple(parts))


def lower_program(
    program: Program,
    input_widths: dict[str, int],
    output_name: str,
    output_width: int,
    builtins: dict[str, Builtin],
    bin_ops: dict[str, str] | None = None,
    cmp_ops: dict[str, str] | None = None,
) -> BvExpr:
    """Run the unrolling evaluator over a parsed program."""
    context = LoweringContext(
        input_widths, output_name, output_width, builtins, bin_ops, cmp_ops
    )
    for stmt in program.statements:
        context.exec_stmt(stmt)
    return context.finish()
