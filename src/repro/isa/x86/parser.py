"""Parser for the Intel-intrinsics-guide pseudocode dialect.

The dialect looks like the operation sections of the Intel Intrinsics
Guide::

    FOR j := 0 to 7
        i := j*32
        dst[i+31:i] := SignExtend32(a[i+15:i]) * SignExtend32(b[i+15:i])
    ENDFOR

Supported statements: ``FOR v := e to e ... ENDFOR``, ``IF c THEN ...
[ELSE ...] FI`` (with data-dependent 1-bit conditions for AVX-512
masking), slice/temp assignment with ``:=``, and ``DEFINE name(args) ...
RETURN e ENDDEF`` helper functions which are inlined during lowering.

Width-changing helpers use Intel's suffix style (``SignExtend32``,
``ZeroExtend64``, ``Saturate16``, ``SaturateU8``); comparison operators are
explicitly signed (``<s``) or unsigned (``<u``) because the instruction —
not the operator — determines signedness in the real manuals, which is
exactly the ambiguity the paper reports having to patch by hand.
"""

from __future__ import annotations

import re

from repro.hydride_ir.ast import Input, SemanticsFunction
from repro.hydride_ir.indexexpr import IConst
from repro.isa.pseudo_core import (
    Builtin,
    CORE_BUILTINS,
    Lexer,
    PAssign,
    PBin,
    PCall,
    PCond,
    PDefine,
    PFor,
    PIf,
    PInt,
    PSlice,
    PStmt,
    PExpr,
    PUn,
    PVar,
    Program,
    PseudocodeError,
    TokenStream,
    lower_program,
    make_cast_builtin,
)
from repro.isa.spec import InstructionSpec

_SYMBOLS = [
    ":=",
    "<<",
    ">>>",
    ">>",
    "==",
    "!=",
    "<=s",
    ">=s",
    "<s",
    ">s",
    "<=u",
    ">=u",
    "<u",
    ">u",
    "<=",
    ">=",
    "<",
    ">",
    "(",
    ")",
    "[",
    "]",
    ":",
    "?",
    ",",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
]

_LEXER = Lexer(_SYMBOLS)

_KEYWORDS = {"FOR", "to", "ENDFOR", "IF", "THEN", "ELSE", "FI", "DEFINE", "RETURN", "ENDDEF"}

# Intel-style builtin names.  Width-suffixed casts are matched by regex.
_NAMED_BUILTINS: dict[str, Builtin] = {
    "MIN_S": CORE_BUILTINS["min_signed"],
    "MAX_S": CORE_BUILTINS["max_signed"],
    "MIN_U": CORE_BUILTINS["min_unsigned"],
    "MAX_U": CORE_BUILTINS["max_unsigned"],
    "ABS": CORE_BUILTINS["abs"],
    "AVG_U_RND": CORE_BUILTINS["avg_unsigned_round"],
    "AddSatS": CORE_BUILTINS["sat_add_signed"],
    "AddSatU": CORE_BUILTINS["sat_add_unsigned"],
    "SubSatS": CORE_BUILTINS["sat_sub_signed"],
    "SubSatU": CORE_BUILTINS["sat_sub_unsigned"],
    "RotR": CORE_BUILTINS["rotate_right"],
    "RotL": CORE_BUILTINS["rotate_left"],
}

_CAST_RE = re.compile(
    r"^(SignExtend|ZeroExtend|SaturateU|Saturate|Truncate|FullMask)(\d+)$"
)

_CAST_OPS = {
    "SignExtend": "sext",
    "ZeroExtend": "zext",
    "Saturate": "saturate_to_signed",
    "SaturateU": "saturate_to_unsigned",
    "Truncate": "trunc",
    # FullMaskN turns a 1-bit predicate into an all-ones/all-zeros element,
    # the idiom compare instructions use for their result lanes.
    "FullMask": "sext",
}


def _builtin_for(name: str) -> Builtin | None:
    builtin = _NAMED_BUILTINS.get(name)
    if builtin is not None:
        return builtin
    match = _CAST_RE.match(name)
    if match is None:
        return None
    cast = make_cast_builtin(_CAST_OPS[match.group(1)])
    width = int(match.group(2))

    def build(args, widths, _inner=cast.constructor, _width=width):
        return _inner([args[0], _width], widths)

    return Builtin(1, build)


class _X86Parser:
    """Recursive-descent parser for the x86 dialect."""

    def __init__(self, text: str) -> None:
        self.stream = TokenStream(_LEXER.tokenize(text))

    def parse_program(self) -> Program:
        statements: list[PStmt] = []
        while not self.stream.at_end():
            statements.append(self._statement())
        return Program(tuple(statements))

    # -- statements ------------------------------------------------------

    def _block_until(self, *terminators: str) -> tuple[PStmt, ...]:
        body: list[PStmt] = []
        while self.stream.peek().text not in terminators:
            if self.stream.at_end():
                raise PseudocodeError(
                    f"unexpected end of pseudocode, expected one of {terminators}"
                )
            body.append(self._statement())
        return tuple(body)

    def _statement(self) -> PStmt:
        token = self.stream.peek()
        if token.text == "FOR":
            return self._for_statement()
        if token.text == "IF":
            return self._if_statement()
        if token.text == "DEFINE":
            return self._define_statement()
        return self._assignment()

    def _for_statement(self) -> PFor:
        self.stream.expect("FOR")
        var = self.stream.expect_kind("ident").text
        self.stream.expect(":=")
        start = self._expression()
        self.stream.expect("to")
        end = self._expression()
        body = self._block_until("ENDFOR")
        self.stream.expect("ENDFOR")
        return PFor(var, start, end, body)

    def _if_statement(self) -> PIf:
        self.stream.expect("IF")
        cond = self._expression()
        self.stream.expect("THEN")
        then_body = self._block_until("ELSE", "FI")
        else_body: tuple[PStmt, ...] = ()
        if self.stream.accept("ELSE"):
            else_body = self._block_until("FI")
        self.stream.expect("FI")
        return PIf(cond, then_body, else_body)

    def _define_statement(self) -> PDefine:
        self.stream.expect("DEFINE")
        name = self.stream.expect_kind("ident").text
        self.stream.expect("(")
        params: list[str] = []
        if not self.stream.accept(")"):
            params.append(self.stream.expect_kind("ident").text)
            while self.stream.accept(","):
                params.append(self.stream.expect_kind("ident").text)
            self.stream.expect(")")
        body: list[PStmt] = []
        while self.stream.peek().text != "RETURN":
            body.append(self._statement())
        self.stream.expect("RETURN")
        result = self._expression()
        self.stream.expect("ENDDEF")
        return PDefine(name, tuple(params), tuple(body), result)

    def _assignment(self) -> PAssign:
        target = self._postfix()
        if not isinstance(target, (PVar, PSlice)):
            raise PseudocodeError("assignment target must be a name or slice")
        self.stream.expect(":=")
        value = self._expression()
        return PAssign(target, value)

    # -- expressions (precedence climbing) --------------------------------

    def _expression(self) -> PExpr:
        return self._ternary()

    def _ternary(self) -> PExpr:
        cond = self._comparison()
        if self.stream.accept("?"):
            then_expr = self._ternary()
            self.stream.expect(":")
            else_expr = self._ternary()
            return PCond(cond, then_expr, else_expr)
        return cond

    _CMP_TOKENS = {
        "==", "!=", "<s", ">s", "<=s", ">=s", "<u", ">u", "<=u", ">=u",
        "<", ">", "<=", ">=",
    }

    def _comparison(self) -> PExpr:
        left = self._bitor()
        token = self.stream.peek().text
        if token in self._CMP_TOKENS:
            self.stream.next()
            right = self._bitor()
            return PBin(token, left, right)
        return left

    def _bitor(self) -> PExpr:
        expr = self._bitxor()
        while self.stream.peek().text == "|":
            self.stream.next()
            expr = PBin("|", expr, self._bitxor())
        return expr

    def _bitxor(self) -> PExpr:
        expr = self._bitand()
        while self.stream.peek().text == "^":
            self.stream.next()
            expr = PBin("^", expr, self._bitand())
        return expr

    def _bitand(self) -> PExpr:
        expr = self._shift()
        while self.stream.peek().text == "&":
            self.stream.next()
            expr = PBin("&", expr, self._shift())
        return expr

    def _shift(self) -> PExpr:
        expr = self._additive()
        while self.stream.peek().text in ("<<", ">>", ">>>"):
            op = self.stream.next().text
            expr = PBin(op, expr, self._additive())
        return expr

    def _additive(self) -> PExpr:
        expr = self._multiplicative()
        while self.stream.peek().text in ("+", "-"):
            op = self.stream.next().text
            expr = PBin(op, expr, self._multiplicative())
        return expr

    def _multiplicative(self) -> PExpr:
        expr = self._unary()
        while self.stream.peek().text in ("*", "/", "%"):
            op = self.stream.next().text
            expr = PBin(op, expr, self._unary())
        return expr

    def _unary(self) -> PExpr:
        token = self.stream.peek()
        if token.text == "-":
            self.stream.next()
            return PUn("-", self._unary())
        if token.text == "~":
            self.stream.next()
            return PUn("~", self._unary())
        return self._postfix()

    def _postfix(self) -> PExpr:
        expr = self._primary()
        while self.stream.peek().text == "[":
            if not isinstance(expr, PVar):
                raise PseudocodeError("only names can be sliced")
            self.stream.expect("[")
            high = self._expression()
            self.stream.expect(":")
            low = self._expression()
            self.stream.expect("]")
            expr = PSlice(expr.name, high, low)
        return expr

    def _primary(self) -> PExpr:
        token = self.stream.next()
        if token.kind == "int":
            return PInt(int(token.text))
        if token.kind == "ident":
            if token.text in _KEYWORDS:
                raise PseudocodeError(
                    f"line {token.line}: unexpected keyword {token.text!r}"
                )
            if self.stream.peek().text == "(":
                self.stream.expect("(")
                args: list[PExpr] = []
                if not self.stream.accept(")"):
                    args.append(self._expression())
                    while self.stream.accept(","):
                        args.append(self._expression())
                    self.stream.expect(")")
                return PCall(token.text, tuple(args))
            return PVar(token.text)
        if token.text == "(":
            expr = self._expression()
            self.stream.expect(")")
            return expr
        raise PseudocodeError(f"line {token.line}: unexpected token {token.text!r}")


class _BuiltinTable(dict):
    """Builtin lookup that synthesises width-suffixed cast builtins."""

    def get(self, name: str, default=None):  # type: ignore[override]
        found = super().get(name)
        if found is not None:
            return found
        builtin = _builtin_for(name)
        if builtin is not None:
            self[name] = builtin
        return builtin if builtin is not None else default


_BUILTINS = _BuiltinTable(_NAMED_BUILTINS)


def parse_x86_pseudocode(text: str) -> Program:
    """Parse dialect text into the shared pseudocode AST."""
    return _X86Parser(text).parse_program()


def x86_semantics(spec: InstructionSpec) -> SemanticsFunction:
    """Parse and lower one instruction spec to a semantics function."""
    program = parse_x86_pseudocode(spec.pseudocode)
    input_widths = {op.name: op.width for op in spec.operands}
    body = lower_program(
        program,
        input_widths,
        output_name="dst",
        output_width=spec.output_width,
        builtins=_BUILTINS,
    )
    inputs = tuple(
        Input(op.name, IConst(op.width), op.is_immediate) for op in spec.operands
    )
    return SemanticsFunction(
        spec.name, inputs, {}, body, IConst(spec.output_width)
    )
