"""x86 ISA: Intel-style pseudocode dialect, spec generator, and parser."""

from repro.isa.x86.parser import parse_x86_pseudocode, x86_semantics
from repro.isa.x86.specgen import generate_x86_catalog

__all__ = ["parse_x86_pseudocode", "x86_semantics", "generate_x86_catalog"]
