"""Synthetic Intel-style manual: generates the x86 instruction catalog.

Real vendor manuals are themselves template-generated across element
widths, vector widths and signedness — ``_mm_add_epi8`` /
``_mm256_add_epi16`` / ``_mm512_add_epi32`` share one operation section
with different numbers plugged in.  This module plays the role of those
manual pages: each generator emits the *pseudocode text* (in the dialect
of :mod:`repro.isa.x86.parser`), the operand list, a latency/throughput
estimate, and an independent reference executable for fuzzing.

Coverage follows the families the paper's evaluation leans on: SSE2/AVX2
element-wise integer ops, AVX-512 masked and zero-masked forms, saturating
arithmetic, pack/unpack swizzles, widening conversions, the pmaddwd /
pmaddubsw / VNNI dot-product group, horizontal adds, SADs, and the scalar
integer ALU ops (the paper's 2,029 x86 instructions include scalars).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.isa import reference as ref
from repro.isa.spec import InstructionSpec, IsaCatalog, OperandSpec

VEC_WIDTHS = (128, 256, 512)

#: x86's swizzle/horizontal families operate per 128-bit SSE lane even in
#: their AVX2/AVX-512 widths; the lane width is threaded through to the
#: reference executables (and recorded on the specs) rather than assumed.
LANE_BITS = 128

_PREFIX = {128: "_mm", 256: "_mm256", 512: "_mm512"}
_EXT = {128: "SSE2", 256: "AVX2", 512: "AVX512"}


def _spec(
    name: str,
    asm: str,
    operands: list[OperandSpec],
    output_width: int,
    pseudocode: str,
    family: str,
    latency: float,
    throughput: float,
    reference,
    extension: str,
    **attributes,
) -> InstructionSpec:
    return InstructionSpec(
        name=name,
        isa="x86",
        asm=asm,
        operands=tuple(operands),
        output_width=output_width,
        pseudocode=pseudocode,
        extension=extension,
        family=family,
        latency=latency,
        throughput=throughput,
        reference=reference,
        attributes=attributes,
    )


def _two_vec(width: int) -> list[OperandSpec]:
    return [OperandSpec("a", width), OperandSpec("b", width)]


# ----------------------------------------------------------------------
# Element-wise templates
# ----------------------------------------------------------------------


def _elementwise_body(vec: int, ew: int, rhs: str) -> str:
    count = vec // ew
    return (
        f"FOR j := 0 to {count - 1}\n"
        f"    i := j*{ew}\n"
        f"    dst[i+{ew - 1}:i] := {rhs}\n"
        "ENDFOR\n"
    )


def _lane(name: str, ew: int) -> str:
    return f"{name}[i+{ew - 1}:i]"


_EW_BIN_FAMILIES: list[tuple[str, str, Callable, list[int], float, float]] = [
    # (intrinsic op name, rhs template key, reference maker, widths, lat, tpt)
    ("add", "{a} + {b}", ref.ref_add, [8, 16, 32, 64], 1.0, 0.33),
    ("sub", "{a} - {b}", ref.ref_sub, [8, 16, 32, 64], 1.0, 0.33),
    ("mullo", "Truncate{ew}(SignExtend{ew2}({a}) * SignExtend{ew2}({b}))",
     ref.ref_mullo, [16, 32, 64], 5.0, 0.5),
    ("min_s", "MIN_S({a}, {b})", ref.ref_min_s, [8, 16, 32, 64], 1.0, 0.5),
    ("max_s", "MAX_S({a}, {b})", ref.ref_max_s, [8, 16, 32, 64], 1.0, 0.5),
    ("min_u", "MIN_U({a}, {b})", ref.ref_min_u, [8, 16, 32, 64], 1.0, 0.5),
    ("max_u", "MAX_U({a}, {b})", ref.ref_max_u, [8, 16, 32, 64], 1.0, 0.5),
    ("adds", "AddSatS({a}, {b})", ref.ref_adds, [8, 16], 1.0, 0.5),
    ("addus", "AddSatU({a}, {b})", ref.ref_addus, [8, 16], 1.0, 0.5),
    ("subs", "SubSatS({a}, {b})", ref.ref_subs, [8, 16], 1.0, 0.5),
    ("subus", "SubSatU({a}, {b})", ref.ref_subus, [8, 16], 1.0, 0.5),
    ("avg", "AVG_U_RND({a}, {b})", ref.ref_avg_u_rnd, [8, 16], 1.0, 0.5),
]

_EW_SUFFIX = {8: "epi8", 16: "epi16", 32: "epi32", 64: "epi64"}
_EW_SUFFIX_U = {8: "epu8", 16: "epu16", 32: "epu32", 64: "epu64"}


def _ew_rhs(template: str, ew: int) -> str:
    return template.format(a=_lane("a", ew), b=_lane("b", ew), ew=ew, ew2=2 * ew)


def _gen_elementwise(specs: list[InstructionSpec]) -> None:
    for op, template, make_ref, widths, lat, tpt in _EW_BIN_FAMILIES:
        unsigned = op in ("min_u", "max_u", "addus", "subus", "avg")
        suffix_table = _EW_SUFFIX_U if unsigned else _EW_SUFFIX
        base_op = op.removesuffix("_s").removesuffix("_u")
        for vec in VEC_WIDTHS:
            for ew in widths:
                name = f"{_PREFIX[vec]}_{base_op}_{suffix_table[ew]}"
                body = _elementwise_body(vec, ew, _ew_rhs(template, ew))
                specs.append(
                    _spec(
                        name,
                        f"vp{base_op}",
                        _two_vec(vec),
                        vec,
                        body,
                        family=f"ew_{op}",
                        latency=lat,
                        throughput=tpt,
                        reference=make_ref(ew),
                        extension=_EXT[vec],
                        elem_width=ew,
                        simd=True,
                    )
                )


def _gen_mulhi(specs: list[InstructionSpec]) -> None:
    for vec in VEC_WIDTHS:
        for signed in (True, False):
            suffix = "epi16" if signed else "epu16"
            extend = "SignExtend32" if signed else "ZeroExtend32"
            rhs_tmp = (
                f"    t := {extend}(a[i+15:i]) * {extend}(b[i+15:i])\n"
                f"    dst[i+15:i] := t[31:16]\n"
            )
            count = vec // 16
            body = (
                f"FOR j := 0 to {count - 1}\n"
                f"    i := j*16\n"
                f"{rhs_tmp}"
                "ENDFOR\n"
            )
            specs.append(
                _spec(
                    f"{_PREFIX[vec]}_mulhi_{suffix}",
                    "vpmulh",
                    _two_vec(vec),
                    vec,
                    body,
                    family="ew_mulhi" + ("_s" if signed else "_u"),
                    latency=5.0,
                    throughput=0.5,
                    reference=ref.ref_mulhi(16, signed),
                    extension=_EXT[vec],
                    elem_width=16,
                    simd=True,
                )
            )


def _gen_widening_mul(specs: list[InstructionSpec]) -> None:
    """pmuldq / pmuludq: multiply even 32-bit elements into 64-bit lanes."""
    for vec in VEC_WIDTHS:
        for signed in (True, False):
            extend = "SignExtend64" if signed else "ZeroExtend64"
            count = vec // 64
            body = (
                f"FOR j := 0 to {count - 1}\n"
                f"    i := j*64\n"
                f"    dst[i+63:i] := {extend}(a[i+31:i]) * {extend}(b[i+31:i])\n"
                "ENDFOR\n"
            )
            name = f"{_PREFIX[vec]}_mul_{'epi32' if signed else 'epu32'}"

            def make_reference(vec=vec, signed=signed):
                def run(env):
                    from repro.bitvector.lanes import Vector, vector_from_elems

                    va, vb = Vector(env["a"], 64), Vector(env["b"], 64)
                    out = []
                    for k in range(vec // 64):
                        x = va.elem(k).trunc(32)
                        y = vb.elem(k).trunc(32)
                        if signed:
                            out.append(x.sext(64).bvmul(y.sext(64)))
                        else:
                            out.append(x.zext(64).bvmul(y.zext(64)))
                    return vector_from_elems(out).bits

                return run

            specs.append(
                _spec(
                    name,
                    "vpmuldq",
                    _two_vec(vec),
                    vec,
                    body,
                    family="widening_mul" + ("_s" if signed else "_u"),
                    latency=5.0,
                    throughput=0.5,
                    reference=make_reference(),
                    extension=_EXT[vec],
                    elem_width=32,
                    simd=True,
                )
            )


def _gen_logic(specs: list[InstructionSpec]) -> None:
    for vec in VEC_WIDTHS:
        suffix = f"si{vec}"
        for op, symbol, make_ref in (
            ("and", "&", ref.ref_and),
            ("or", "|", ref.ref_or),
            ("xor", "^", ref.ref_xor),
        ):
            body = f"dst[{vec - 1}:0] := a[{vec - 1}:0] {symbol} b[{vec - 1}:0]\n"
            specs.append(
                _spec(
                    f"{_PREFIX[vec]}_{op}_{suffix}",
                    f"vp{op}",
                    _two_vec(vec),
                    vec,
                    body,
                    family=f"logic_{op}",
                    latency=1.0,
                    throughput=0.33,
                    reference=make_ref(vec),
                    extension=_EXT[vec],
                    elem_width=vec,
                    simd=True,
                )
            )
        body = f"dst[{vec - 1}:0] := (~a[{vec - 1}:0]) & b[{vec - 1}:0]\n"
        specs.append(
            _spec(
                f"{_PREFIX[vec]}_andnot_{suffix}",
                "vpandn",
                _two_vec(vec),
                vec,
                body,
                family="logic_andnot",
                latency=1.0,
                throughput=0.33,
                reference=ref.ref_andnot(vec),
                extension=_EXT[vec],
                elem_width=vec,
                simd=True,
            )
        )


def _gen_abs(specs: list[InstructionSpec]) -> None:
    for vec in VEC_WIDTHS:
        for ew in (8, 16, 32):
            body = _elementwise_body(vec, ew, f"ABS({_lane('a', ew)})")
            specs.append(
                _spec(
                    f"{_PREFIX[vec]}_abs_{_EW_SUFFIX[ew]}",
                    "vpabs",
                    [OperandSpec("a", vec)],
                    vec,
                    body,
                    family="ew_abs",
                    latency=1.0,
                    throughput=0.5,
                    reference=ref.ref_abs(ew),
                    extension=_EXT[vec],
                    elem_width=ew,
                    simd=True,
                )
            )


def _gen_compare(specs: list[InstructionSpec]) -> None:
    for vec in VEC_WIDTHS:
        for ew in (8, 16, 32, 64):
            for kind, op_text in (("eq", "=="), ("gt", ">s")):
                rhs = (
                    f"FullMask{ew}({_lane('a', ew)} {op_text} {_lane('b', ew)})"
                )
                body = _elementwise_body(vec, ew, rhs)
                specs.append(
                    _spec(
                        f"{_PREFIX[vec]}_cmp{kind}_{_EW_SUFFIX[ew]}",
                        f"vpcmp{kind}",
                        _two_vec(vec),
                        vec,
                        body,
                        family=f"cmp_{kind}",
                        latency=1.0,
                        throughput=0.5,
                        reference=ref.ref_cmp(ew, "eq" if kind == "eq" else "gt_s"),
                        extension=_EXT[vec],
                        elem_width=ew,
                        simd=True,
                    )
                )


def _gen_shifts(specs: list[InstructionSpec]) -> None:
    imm = OperandSpec("imm", 8, is_immediate=True)
    for vec in VEC_WIDTHS:
        for ew in (16, 32, 64):
            count = vec // ew
            for op, symbol, kind, asm in (
                ("slli", "<<", "shl", "vpsll"),
                ("srli", ">>", "lshr", "vpsrl"),
                ("srai", ">>>", "ashr", "vpsra"),
            ):
                rhs = f"{_lane('a', ew)} {symbol} ZeroExtend{ew}(imm)"
                body = (
                    f"FOR j := 0 to {count - 1}\n"
                    f"    i := j*{ew}\n"
                    f"    dst[i+{ew - 1}:i] := {rhs}\n"
                    "ENDFOR\n"
                )
                specs.append(
                    _spec(
                        f"{_PREFIX[vec]}_{op}_{_EW_SUFFIX[ew]}",
                        asm,
                        [OperandSpec("a", vec), imm],
                        vec,
                        body,
                        family=f"shift_imm_{kind}",
                        latency=1.0,
                        throughput=0.5,
                        reference=ref.ref_shift_imm(ew, kind),
                        extension=_EXT[vec],
                        elem_width=ew,
                        simd=True,
                    )
                )
            # Per-element variable shifts (AVX2 sllv family).
            for op, symbol, kind, asm in (
                ("sllv", "<<", "shl", "vpsllv"),
                ("srlv", ">>", "lshr", "vpsrlv"),
                ("srav", ">>>", "ashr", "vpsrav"),
            ):
                if ew == 16 and vec != 512:
                    continue  # 16-bit variable shifts are AVX512BW-only
                rhs = f"{_lane('a', ew)} {symbol} {_lane('b', ew)}"
                body = _elementwise_body(vec, ew, rhs)
                specs.append(
                    _spec(
                        f"{_PREFIX[vec]}_{op}_{_EW_SUFFIX[ew]}",
                        asm,
                        _two_vec(vec),
                        vec,
                        body,
                        family=f"shift_var_{kind}",
                        latency=1.0,
                        throughput=0.5,
                        reference=ref.ref_shift_var(ew, kind),
                        extension=_EXT[vec] if ew != 16 else "AVX512",
                        elem_width=ew,
                        simd=True,
                    )
                )


def _gen_rotates(specs: list[InstructionSpec]) -> None:
    imm = OperandSpec("imm", 8, is_immediate=True)
    for vec in VEC_WIDTHS:
        for ew in (32, 64):
            count = vec // ew
            for op, builtin, left in (("rol", "RotL", True), ("ror", "RotR", False)):
                rhs = f"{builtin}({_lane('a', ew)}, ZeroExtend{ew}(imm))"
                body = (
                    f"FOR j := 0 to {count - 1}\n"
                    f"    i := j*{ew}\n"
                    f"    dst[i+{ew - 1}:i] := {rhs}\n"
                    "ENDFOR\n"
                )
                specs.append(
                    _spec(
                        f"{_PREFIX[vec]}_{op}_{_EW_SUFFIX[ew]}",
                        f"vp{op}",
                        [OperandSpec("a", vec), imm],
                        vec,
                        body,
                        family=f"rotate_{'l' if left else 'r'}",
                        latency=1.0,
                        throughput=0.5,
                        reference=ref.ref_rotate(ew, left),
                        extension="AVX512",
                        elem_width=ew,
                        simd=True,
                    )
                )


# ----------------------------------------------------------------------
# Swizzles
# ----------------------------------------------------------------------


def _unpack_body(vec: int, ew: int, high: bool) -> str:
    lanes = vec // 128
    half = 128 // ew // 2
    offset = 64 if high else 0
    return (
        f"FOR lane := 0 to {lanes - 1}\n"
        f"    base := lane*128\n"
        f"    FOR k := 0 to {half - 1}\n"
        f"        src := base + {offset} + k*{ew}\n"
        f"        dstpos := base + k*{2 * ew}\n"
        f"        dst[dstpos+{ew - 1}:dstpos] := a[src+{ew - 1}:src]\n"
        f"        dst[dstpos+{2 * ew - 1}:dstpos+{ew}] := b[src+{ew - 1}:src]\n"
        "    ENDFOR\n"
        "ENDFOR\n"
    )


def _gen_unpack(specs: list[InstructionSpec]) -> None:
    for vec in VEC_WIDTHS:
        for ew in (8, 16, 32, 64):
            for high in (False, True):
                pos = "hi" if high else "lo"
                specs.append(
                    _spec(
                        f"{_PREFIX[vec]}_unpack{pos}_{_EW_SUFFIX[ew]}",
                        f"vpunpck{pos}",
                        _two_vec(vec),
                        vec,
                        _unpack_body(vec, ew, high),
                        family=f"unpack_{pos}",
                        latency=1.0,
                        throughput=1.0,
                        reference=ref.ref_unpack(
                            ew, vec, high, lane_bits=LANE_BITS
                        ),
                        extension=_EXT[vec],
                        elem_width=ew,
                        lane_bits=LANE_BITS,
                        swizzle=True,
                    )
                )


def _pack_body(vec: int, src_ew: int, unsigned: bool) -> str:
    lanes = vec // 128
    per_lane = 128 // src_ew
    dst_ew = src_ew // 2
    sat = f"SaturateU{dst_ew}" if unsigned else f"Saturate{dst_ew}"
    return (
        f"FOR lane := 0 to {lanes - 1}\n"
        f"    base := lane*128\n"
        f"    FOR k := 0 to {per_lane - 1}\n"
        f"        s := base + k*{src_ew}\n"
        f"        d := base + k*{dst_ew}\n"
        f"        dst[d+{dst_ew - 1}:d] := {sat}(a[s+{src_ew - 1}:s])\n"
        f"        d2 := d + {per_lane * dst_ew}\n"
        f"        dst[d2+{dst_ew - 1}:d2] := {sat}(b[s+{src_ew - 1}:s])\n"
        "    ENDFOR\n"
        "ENDFOR\n"
    )


def _gen_pack(specs: list[InstructionSpec]) -> None:
    for vec in VEC_WIDTHS:
        for src_ew in (16, 32):
            for unsigned in (False, True):
                dst = src_ew // 2
                kind = "us" if unsigned else "s"
                suffix = _EW_SUFFIX[src_ew].replace("epi", "epi")
                specs.append(
                    _spec(
                        f"{_PREFIX[vec]}_pack{kind}_{suffix}",
                        f"vpack{'us' if unsigned else 'ss'}",
                        _two_vec(vec),
                        vec,
                        _pack_body(vec, src_ew, unsigned),
                        family=f"pack_{kind}",
                        latency=1.0,
                        throughput=1.0,
                        reference=ref.ref_pack(
                            src_ew, vec, unsigned, lane_bits=LANE_BITS
                        ),
                        extension=_EXT[vec],
                        elem_width=dst,
                        lane_bits=LANE_BITS,
                        swizzle=True,
                    )
                )


def _gen_broadcast(specs: list[InstructionSpec]) -> None:
    for vec in VEC_WIDTHS:
        for ew in (8, 16, 32, 64):
            count = vec // ew
            body = (
                f"FOR j := 0 to {count - 1}\n"
                f"    i := j*{ew}\n"
                f"    dst[i+{ew - 1}:i] := a[{ew - 1}:0]\n"
                "ENDFOR\n"
            )
            specs.append(
                _spec(
                    f"{_PREFIX[vec]}_broadcast{_EW_SUFFIX[ew][-1]}_{_EW_SUFFIX[ew]}",
                    "vpbroadcast",
                    [OperandSpec("a", ew)],
                    vec,
                    body,
                    family="broadcast",
                    latency=3.0,
                    throughput=1.0,
                    reference=ref.ref_broadcast(ew, count),
                    extension=_EXT[vec],
                    elem_width=ew,
                    swizzle=True,
                )
            )


def _gen_blendv(specs: list[InstructionSpec]) -> None:
    for vec in VEC_WIDTHS:
        count = vec // 8
        body = (
            f"FOR j := 0 to {count - 1}\n"
            f"    i := j*8\n"
            f"    dst[i+7:i] := (m[i+7:i] <s 0) ? b[i+7:i] : a[i+7:i]\n"
            "ENDFOR\n"
        )
        specs.append(
            _spec(
                f"{_PREFIX[vec]}_blendv_epi8",
                "vpblendvb",
                [OperandSpec("a", vec), OperandSpec("b", vec), OperandSpec("m", vec)],
                vec,
                body,
                family="blendv",
                latency=1.0,
                throughput=0.66,
                reference=ref.ref_blendv(8),
                extension=_EXT[vec],
                elem_width=8,
                swizzle=True,
            )
        )


def _gen_convert(specs: list[InstructionSpec]) -> None:
    pairs = [(8, 16), (8, 32), (8, 64), (16, 32), (16, 64), (32, 64)]
    for vec in VEC_WIDTHS:
        for src_ew, dst_ew in pairs:
            count = vec // dst_ew
            src_width = count * src_ew
            if src_width < 32:
                continue  # no such narrow source register form
            for signed in (True, False):
                extend = f"SignExtend{dst_ew}" if signed else f"ZeroExtend{dst_ew}"
                src_sfx = _EW_SUFFIX[src_ew] if signed else _EW_SUFFIX_U[src_ew]
                body = (
                    f"FOR j := 0 to {count - 1}\n"
                    f"    i := j*{dst_ew}\n"
                    f"    s := j*{src_ew}\n"
                    f"    dst[i+{dst_ew - 1}:i] := {extend}(a[s+{src_ew - 1}:s])\n"
                    "ENDFOR\n"
                )
                specs.append(
                    _spec(
                        f"{_PREFIX[vec]}_cvt{src_sfx}_{_EW_SUFFIX[dst_ew]}",
                        "vpmov",
                        [OperandSpec("a", src_width)],
                        vec,
                        body,
                        family="convert_s" if signed else "convert_u",
                        latency=3.0,
                        throughput=1.0,
                        reference=ref.ref_convert(src_ew, dst_ew, count, signed),
                        extension="SSE4" if vec == 128 else _EXT[vec],
                        elem_width=dst_ew,
                        swizzle=False,
                    )
                )


# ----------------------------------------------------------------------
# Dot products, horizontal ops, SAD
# ----------------------------------------------------------------------


def _gen_madd(specs: list[InstructionSpec]) -> None:
    for vec in VEC_WIDTHS:
        count = vec // 32
        body = (
            f"FOR j := 0 to {count - 1}\n"
            f"    i := j*32\n"
            f"    dst[i+31:i] := SignExtend32(a[i+15:i]) * SignExtend32(b[i+15:i])"
            f" + SignExtend32(a[i+31:i+16]) * SignExtend32(b[i+31:i+16])\n"
            "ENDFOR\n"
        )
        specs.append(
            _spec(
                f"{_PREFIX[vec]}_madd_epi16",
                "vpmaddwd",
                _two_vec(vec),
                vec,
                body,
                family="dot_madd",
                latency=5.0,
                throughput=0.5,
                reference=ref.ref_maddwd(vec),
                extension=_EXT[vec],
                elem_width=32,
                dot_product=True,
            )
        )
        body = (
            f"FOR j := 0 to {2 * count - 1}\n"
            f"    i := j*16\n"
            f"    dst[i+15:i] := AddSatS("
            f"ZeroExtend16(a[i+7:i]) * SignExtend16(b[i+7:i]), "
            f"ZeroExtend16(a[i+15:i+8]) * SignExtend16(b[i+15:i+8]))\n"
            "ENDFOR\n"
        )
        specs.append(
            _spec(
                f"{_PREFIX[vec]}_maddubs_epi16",
                "vpmaddubsw",
                _two_vec(vec),
                vec,
                body,
                family="dot_maddubs",
                latency=5.0,
                throughput=0.5,
                reference=ref.ref_maddubs(vec),
                extension=_EXT[vec],
                elem_width=16,
                dot_product=True,
            )
        )


def _gen_vnni(specs: list[InstructionSpec]) -> None:
    for vec in VEC_WIDTHS:
        count = vec // 32
        for saturating in (False, True):
            sat = "s" if saturating else ""
            plus = "AddSatS" if saturating else ""
            inner = (
                "SignExtend32(a[i+15:i]) * SignExtend32(b[i+15:i])"
                " + SignExtend32(a[i+31:i+16]) * SignExtend32(b[i+31:i+16])"
            )
            if saturating:
                rhs = f"AddSatS(src[i+31:i], {inner.replace(' + ', ' + ')})"
                rhs = f"AddSatS(src[i+31:i], {inner})"
            else:
                rhs = f"src[i+31:i] + {inner}"
            del plus
            body = (
                f"FOR j := 0 to {count - 1}\n"
                f"    i := j*32\n"
                f"    dst[i+31:i] := {rhs}\n"
                "ENDFOR\n"
            )
            specs.append(
                _spec(
                    f"{_PREFIX[vec]}_dpwssd{sat}_epi32",
                    f"vpdpwssd{sat}",
                    [OperandSpec("src", vec), OperandSpec("a", vec), OperandSpec("b", vec)],
                    vec,
                    body,
                    family=f"dot_dpwssd{sat}",
                    latency=5.0,
                    throughput=0.5,
                    reference=ref.ref_dpwssd(vec, saturating),
                    extension="AVX512",
                    elem_width=32,
                    dot_product=True,
                )
            )
            inner4 = " + ".join(
                f"ZeroExtend32(a[i+{8 * q + 7}:i+{8 * q}]) * "
                f"SignExtend32(b[i+{8 * q + 7}:i+{8 * q}])"
                for q in range(4)
            )
            if saturating:
                rhs = f"AddSatS(src[i+31:i], {inner4})"
            else:
                rhs = f"src[i+31:i] + {inner4}"
            body = (
                f"FOR j := 0 to {count - 1}\n"
                f"    i := j*32\n"
                f"    dst[i+31:i] := {rhs}\n"
                "ENDFOR\n"
            )
            specs.append(
                _spec(
                    f"{_PREFIX[vec]}_dpbusd{sat}_epi32",
                    f"vpdpbusd{sat}",
                    [OperandSpec("src", vec), OperandSpec("a", vec), OperandSpec("b", vec)],
                    vec,
                    body,
                    family=f"dot_dpbusd{sat}",
                    latency=5.0,
                    throughput=0.5,
                    reference=ref.ref_dpbusd(vec, saturating),
                    extension="AVX512",
                    elem_width=32,
                    dot_product=True,
                )
            )


def _gen_hadd(specs: list[InstructionSpec]) -> None:
    for vec in (128, 256):  # no 512-bit phadd exists
        for ew in (16, 32):
            lanes = vec // 128
            half = 128 // ew // 2
            for sub in (False, True):
                op = "-" if sub else "+"
                name = "hsub" if sub else "hadd"
                body_lines = [f"FOR lane := 0 to {lanes - 1}", "    base := lane*128"]
                body_lines.append(f"    FOR k := 0 to {half - 1}")
                body_lines.append(f"        s := base + k*{2 * ew}")
                body_lines.append(f"        d := base + k*{ew}")
                body_lines.append(
                    f"        dst[d+{ew - 1}:d] := a[s+{ew - 1}:s] {op} "
                    f"a[s+{2 * ew - 1}:s+{ew}]"
                )
                body_lines.append(f"        d2 := d + {half * ew}")
                body_lines.append(
                    f"        dst[d2+{ew - 1}:d2] := b[s+{ew - 1}:s] {op} "
                    f"b[s+{2 * ew - 1}:s+{ew}]"
                )
                body_lines.append("    ENDFOR")
                body_lines.append("ENDFOR")
                specs.append(
                    _spec(
                        f"{_PREFIX[vec]}_{name}_{_EW_SUFFIX[ew]}",
                        f"vph{name[1:]}",
                        _two_vec(vec),
                        vec,
                        "\n".join(body_lines) + "\n",
                        family=f"horizontal_{name}",
                        latency=3.0,
                        throughput=2.0,
                        reference=ref.ref_hadd(
                            ew, vec, sub, lane_bits=LANE_BITS
                        ),
                        extension="SSE4" if vec == 128 else "AVX2",
                        elem_width=ew,
                        lane_bits=LANE_BITS,
                        dot_product=True,
                    )
                )


def _gen_sad(specs: list[InstructionSpec]) -> None:
    for vec in VEC_WIDTHS:
        groups = vec // 64
        terms = " + ".join(
            f"ZeroExtend64(ABS(SignExtend16(a[i+{8 * q + 7}:i+{8 * q}]) - "
            f"SignExtend16(b[i+{8 * q + 7}:i+{8 * q}]))[7:0])"
            for q in range(8)
        )
        del terms
        # Keep widths honest: compute |a-b| in 16 bits, then widen the low 8.
        lines = [f"FOR g := 0 to {groups - 1}", "    i := g*64"]
        acc_terms = []
        for q in range(8):
            lines.append(
                f"    d{q} := ABS(ZeroExtend16(a[i+{8 * q + 7}:i+{8 * q}]) - "
                f"ZeroExtend16(b[i+{8 * q + 7}:i+{8 * q}]))"
            )
            acc_terms.append(f"ZeroExtend64(d{q})")
        lines.append(f"    dst[i+63:i] := {' + '.join(acc_terms)}")
        lines.append("ENDFOR")
        specs.append(
            _spec(
                f"{_PREFIX[vec]}_sad_epu8",
                "vpsadbw",
                _two_vec(vec),
                vec,
                "\n".join(lines) + "\n",
                family="sad",
                latency=3.0,
                throughput=1.0,
                reference=ref.ref_sad(vec),
                extension=_EXT[vec],
                elem_width=64,
                dot_product=True,
            )
        )


# ----------------------------------------------------------------------
# AVX-512 masked variants
# ----------------------------------------------------------------------

_MASKABLE_FAMILIES = {
    "ew_add": ("add", "{a} + {b}", ref.ref_add, [8, 16, 32, 64]),
    "ew_sub": ("sub", "{a} - {b}", ref.ref_sub, [8, 16, 32, 64]),
    "ew_mullo": (
        "mullo",
        "Truncate{ew}(SignExtend{ew2}({a}) * SignExtend{ew2}({b}))",
        ref.ref_mullo,
        [16, 32, 64],
    ),
    "ew_min_s": ("min", "MIN_S({a}, {b})", ref.ref_min_s, [8, 16, 32, 64]),
    "ew_max_s": ("max", "MAX_S({a}, {b})", ref.ref_max_s, [8, 16, 32, 64]),
    "ew_min_u": ("min_epu", "MIN_U({a}, {b})", ref.ref_min_u, [8, 16, 32, 64]),
    "ew_max_u": ("max_epu", "MAX_U({a}, {b})", ref.ref_max_u, [8, 16, 32, 64]),
    "ew_adds": ("adds", "AddSatS({a}, {b})", ref.ref_adds, [8, 16]),
    "ew_subs": ("subs", "SubSatS({a}, {b})", ref.ref_subs, [8, 16]),
    "ew_addus": ("addus", "AddSatU({a}, {b})", ref.ref_addus, [8, 16]),
    "ew_subus": ("subus", "SubSatU({a}, {b})", ref.ref_subus, [8, 16]),
    "ew_avg": ("avg", "AVG_U_RND({a}, {b})", ref.ref_avg_u_rnd, [8, 16]),
    "logic_and": ("and", "{a} & {b}", ref.ref_and, [32, 64]),
    "logic_or": ("or", "{a} | {b}", ref.ref_or, [32, 64]),
    "logic_xor": ("xor", "{a} ^ {b}", ref.ref_xor, [32, 64]),
}


def _gen_masked(specs: list[InstructionSpec]) -> None:
    for vec in VEC_WIDTHS:
        for family, (op, template, make_ref, widths) in _MASKABLE_FAMILIES.items():
            for ew in widths:
                count = vec // ew
                rhs = _ew_rhs(template, ew)
                for zeroing in (False, True):
                    kind = "maskz" if zeroing else "mask"
                    else_value = "0" if zeroing else "src[i+{hi}:i]".format(hi=ew - 1)
                    body = (
                        f"FOR j := 0 to {count - 1}\n"
                        f"    i := j*{ew}\n"
                        f"    IF k[j:j] == 1 THEN\n"
                        f"        dst[i+{ew - 1}:i] := {rhs}\n"
                        f"    ELSE\n"
                        f"        dst[i+{ew - 1}:i] := {else_value}\n"
                        f"    FI\n"
                        "ENDFOR\n"
                    )
                    operands = [OperandSpec("k", count)]
                    if not zeroing:
                        operands.insert(0, OperandSpec("src", vec))
                    operands += _two_vec(vec)
                    specs.append(
                        _spec(
                            f"{_PREFIX[vec]}_{kind}_{op}_{_EW_SUFFIX[ew]}",
                            f"vp{op}",
                            operands,
                            vec,
                            body,
                            family=f"{family}_{kind}",
                            latency=1.0,
                            throughput=0.5,
                            reference=ref.ref_masked(make_ref(ew), ew, count, zeroing),
                            extension="AVX512",
                            elem_width=ew,
                            simd=True,
                            masked=True,
                        )
                    )


# ----------------------------------------------------------------------
# Scalar ALU
# ----------------------------------------------------------------------


_MASK_PREDICATES = [
    ("eq", "==", lambda x, y, s: x.value == y.value),
    ("neq", "!=", lambda x, y, s: x.value != y.value),
    ("lt", "<", lambda x, y, s: (x.signed < y.signed) if s else (x.unsigned < y.unsigned)),
    ("le", "<=", lambda x, y, s: (x.signed <= y.signed) if s else (x.unsigned <= y.unsigned)),
    ("gt", ">", lambda x, y, s: (x.signed > y.signed) if s else (x.unsigned > y.unsigned)),
    ("ge", ">=", lambda x, y, s: (x.signed >= y.signed) if s else (x.unsigned >= y.unsigned)),
]


def _gen_mask_compares(specs: list[InstructionSpec]) -> None:
    """AVX-512 compares producing k-mask registers (one bit per lane)."""
    from repro.bitvector.bv import BitVector
    from repro.bitvector.lanes import Vector

    for vec in VEC_WIDTHS:
        for ew in (8, 16, 32, 64):
            count = vec // ew
            for pred, op_text, judge in _MASK_PREDICATES:
                for signed in (True, False):
                    if pred in ("eq", "neq") and not signed:
                        continue  # sign-agnostic; Intel names them once
                    suffix = _EW_SUFFIX[ew] if signed else _EW_SUFFIX_U[ew]
                    marker = "s" if signed else "u"
                    operator = op_text
                    if op_text in ("<", "<=", ">", ">="):
                        operator = op_text + marker
                    body = (
                        f"FOR j := 0 to {count - 1}\n"
                        f"    i := j*{ew}\n"
                        f"    dst[j:j] := (a[i+{ew - 1}:i] {operator} "
                        f"b[i+{ew - 1}:i]) ? 1 : 0\n"
                        "ENDFOR\n"
                    )

                    def make_ref(ew=ew, count=count, judge=judge, signed=signed):
                        def run(env):
                            va, vb = Vector(env["a"], ew), Vector(env["b"], ew)
                            value = 0
                            for i in range(count):
                                if judge(va.elem(i), vb.elem(i), signed):
                                    value |= 1 << i
                            return BitVector(value, count)

                        return run

                    specs.append(
                        _spec(
                            f"{_PREFIX[vec]}_cmp{pred}_{suffix}_mask",
                            f"vpcmp{pred}",
                            _two_vec(vec),
                            count,
                            body,
                            family=f"cmpmask_{pred}_{marker if pred not in ('eq','neq') else ''}",
                            latency=3.0,
                            throughput=1.0,
                            reference=make_ref(),
                            extension="AVX512",
                            elem_width=1,
                            mask_output=True,
                        )
                    )


def _gen_scalar(specs: list[InstructionSpec]) -> None:
    widths = (8, 16, 32, 64)
    binary = {
        "add": "a[{hi}:0] + b[{hi}:0]",
        "sub": "a[{hi}:0] - b[{hi}:0]",
        "and": "a[{hi}:0] & b[{hi}:0]",
        "or": "a[{hi}:0] | b[{hi}:0]",
        "xor": "a[{hi}:0] ^ b[{hi}:0]",
        "shl": "a[{hi}:0] << b[{hi}:0]",
        "shr": "a[{hi}:0] >> b[{hi}:0]",
        "sar": "a[{hi}:0] >>> b[{hi}:0]",
        "rol": "RotL(a[{hi}:0], b[{hi}:0])",
        "ror": "RotR(a[{hi}:0], b[{hi}:0])",
        "mul": "Truncate{w}(SignExtend{w2}(a[{hi}:0]) * SignExtend{w2}(b[{hi}:0]))",
    }
    for op, template in binary.items():
        for width in widths:
            body = (
                f"dst[{width - 1}:0] := "
                + template.format(hi=width - 1, w=width, w2=2 * width)
                + "\n"
            )
            specs.append(
                _spec(
                    f"_scalar_{op}_i{width}",
                    op,
                    [OperandSpec("a", width), OperandSpec("b", width)],
                    width,
                    body,
                    family=f"scalar_{op}",
                    latency=3.0 if op == "mul" else 1.0,
                    throughput=1.0 if op == "mul" else 0.25,
                    reference=ref.ref_scalar(op, width),
                    extension="BASE",
                    elem_width=width,
                    scalar=True,
                )
            )
    for op in ("not", "neg"):
        symbol = "~" if op == "not" else "-"
        for width in widths:
            body = f"dst[{width - 1}:0] := {symbol}a[{width - 1}:0]\n"
            specs.append(
                _spec(
                    f"_scalar_{op}_i{width}",
                    op,
                    [OperandSpec("a", width)],
                    width,
                    body,
                    family=f"scalar_{op}",
                    latency=1.0,
                    throughput=0.25,
                    reference=ref.ref_scalar(op, width),
                    extension="BASE",
                    elem_width=width,
                    scalar=True,
                )
            )


def generate_x86_catalog() -> IsaCatalog:
    """Generate the full synthetic x86 manual."""
    specs: list[InstructionSpec] = []
    _gen_elementwise(specs)
    _gen_mulhi(specs)
    _gen_widening_mul(specs)
    _gen_logic(specs)
    _gen_abs(specs)
    _gen_compare(specs)
    _gen_shifts(specs)
    _gen_rotates(specs)
    _gen_unpack(specs)
    _gen_pack(specs)
    _gen_broadcast(specs)
    _gen_blendv(specs)
    _gen_convert(specs)
    _gen_madd(specs)
    _gen_vnni(specs)
    _gen_hadd(specs)
    _gen_sad(specs)
    _gen_masked(specs)
    _gen_mask_compares(specs)
    _gen_scalar(specs)
    return IsaCatalog("x86", specs)
