"""Synthetic RVV (RISC-V vector) target: VL-agnostic specs + parser."""

from repro.isa.rvv.parser import (
    lower_with_params,
    parse_rvv_pseudocode,
    rvv_semantics,
)
from repro.isa.rvv.specgen import (
    LMULS,
    SEWS,
    VLEN_SOLVER,
    generate_rvv_catalog,
)

__all__ = [
    "LMULS",
    "SEWS",
    "VLEN_SOLVER",
    "generate_rvv_catalog",
    "lower_with_params",
    "parse_rvv_pseudocode",
    "rvv_semantics",
]
