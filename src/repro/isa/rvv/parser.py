"""Parser for the RVV-style vector-length-agnostic pseudocode dialect.

RISC-V's vector specification writes instruction behaviour against a
*symbolic* machine configuration: the hardware vector length ``VLEN``,
the register-group multiplier ``LMUL`` and the element width ``SEW``
never appear as literals.  A typical body reads::

    vl = (VLEN * LMUL) / SEW
    for i = 0 to vl - 1
        Elem[vd, i, SEW] = Elem[vs2, i, SEW] + Elem[vs1, i, SEW]
    endfor

Unlike the ARM dialect — whose ``Elem[v, e, 16]`` takes a *literal*
width — ``Elem[v, i, SEW]`` takes a full expression.  The parser
desugars it into a bit slice whose bounds are index expressions
(``v[(i+1)*SEW-1 : i*SEW]``), so the width stays symbolic until the
lowering binds ``VLEN``/``LMUL``/``SEW`` to solver-tractable concrete
values from the spec's attributes (see :func:`rvv_semantics`).  That is
the same scale-down move the synthesis layer makes when it shrinks
native-width windows: semantics are written once, agnostic of VL, and
instantiated at whatever width the solver can afford.
"""

from __future__ import annotations

from repro.hydride_ir.ast import Input, SemanticsFunction
from repro.hydride_ir.indexexpr import IConst
from repro.isa.pseudo_core import (
    Builtin,
    CORE_BUILTINS,
    Lexer,
    LoweringContext,
    PAssign,
    PBin,
    PCall,
    PCond,
    PExpr,
    PFor,
    PIf,
    PInt,
    PSlice,
    PStmt,
    PUn,
    PVar,
    Program,
    PseudocodeError,
    TokenStream,
)
from repro.isa.spec import InstructionSpec

_SYMBOLS = [
    "==", "!=", "<=s", ">=s", "<s", ">s", "<=u", ">=u", "<u", ">u",
    "<=", ">=", "<<", ">>>", ">>", "(", ")", "[", "]", ",", ":", "?",
    "=", "<", ">", "+", "-", "*", "/", "%", "&", "|", "^", "~",
]

# The RVV spec's pseudocode comments use '#'.
_LEXER = Lexer(_SYMBOLS, line_comments=("#",))

_KEYWORDS = {"for", "to", "endfor", "if", "then", "else", "endif"}

_BUILTINS: dict[str, Builtin] = {
    "sext": CORE_BUILTINS["sign_extend"],
    "zext": CORE_BUILTINS["zero_extend"],
    "trunc": CORE_BUILTINS["truncate"],
    "sat_s": CORE_BUILTINS["saturate_signed"],
    "sat_u": CORE_BUILTINS["saturate_unsigned"],
    "min_s": CORE_BUILTINS["min_signed"],
    "max_s": CORE_BUILTINS["max_signed"],
    "min_u": CORE_BUILTINS["min_unsigned"],
    "max_u": CORE_BUILTINS["max_unsigned"],
    "abs": CORE_BUILTINS["abs"],
    "sadd_sat": CORE_BUILTINS["sat_add_signed"],
    "uadd_sat": CORE_BUILTINS["sat_add_unsigned"],
    "ssub_sat": CORE_BUILTINS["sat_sub_signed"],
    "usub_sat": CORE_BUILTINS["sat_sub_unsigned"],
    "avg_s": CORE_BUILTINS["avg_signed_round"],
    "avg_u": CORE_BUILTINS["avg_unsigned_round"],
    "popcount": CORE_BUILTINS["popcount"],
}

#: The symbolic machine parameters every rvv spec binds at lowering time.
PARAM_NAMES = ("VLEN", "LMUL", "SEW")


class _RvvParser:
    def __init__(self, text: str) -> None:
        self.stream = TokenStream(_LEXER.tokenize(text))

    def parse_program(self) -> Program:
        statements: list[PStmt] = []
        while not self.stream.at_end():
            statements.append(self._statement())
        return Program(tuple(statements))

    # -- statements -----------------------------------------------------

    def _block_until(self, *terminators: str) -> tuple[PStmt, ...]:
        body: list[PStmt] = []
        while self.stream.peek().text not in terminators:
            if self.stream.at_end():
                raise PseudocodeError(
                    f"unexpected end of pseudocode, expected one of {terminators}"
                )
            body.append(self._statement())
        return tuple(body)

    def _statement(self) -> PStmt:
        token = self.stream.peek()
        if token.text == "for":
            return self._for_statement()
        if token.text == "if":
            return self._if_statement()
        return self._assignment()

    def _for_statement(self) -> PFor:
        self.stream.expect("for")
        var = self.stream.expect_kind("ident").text
        self.stream.expect("=")
        start = self._expression()
        self.stream.expect("to")
        end = self._expression()
        body = self._block_until("endfor")
        self.stream.expect("endfor")
        return PFor(var, start, end, body)

    def _if_statement(self) -> PIf:
        self.stream.expect("if")
        cond = self._expression()
        self.stream.expect("then")
        then_body = self._block_until("else", "endif")
        else_body: tuple[PStmt, ...] = ()
        if self.stream.accept("else"):
            else_body = self._block_until("endif")
        self.stream.expect("endif")
        return PIf(cond, then_body, else_body)

    def _assignment(self) -> PAssign:
        target = self._postfix()
        if not isinstance(target, (PVar, PSlice)):
            raise PseudocodeError(
                "assignment target must be a name, Elem, or slice"
            )
        self.stream.expect("=")
        value = self._expression()
        return PAssign(target, value)

    # -- expressions ------------------------------------------------------

    def _expression(self) -> PExpr:
        return self._ternary()

    def _ternary(self) -> PExpr:
        cond = self._comparison()
        if self.stream.accept("?"):
            then_expr = self._ternary()
            self.stream.expect(":")
            else_expr = self._ternary()
            return PCond(cond, then_expr, else_expr)
        return cond

    _CMP_TOKENS = {
        "==", "!=", "<s", ">s", "<=s", ">=s", "<u", ">u", "<=u", ">=u",
        "<", ">", "<=", ">=",
    }

    def _comparison(self) -> PExpr:
        left = self._bitor()
        token = self.stream.peek().text
        if token in self._CMP_TOKENS:
            self.stream.next()
            return PBin(token, left, self._bitor())
        return left

    def _bitor(self) -> PExpr:
        expr = self._bitxor()
        while self.stream.peek().text == "|":
            self.stream.next()
            expr = PBin("|", expr, self._bitxor())
        return expr

    def _bitxor(self) -> PExpr:
        expr = self._bitand()
        while self.stream.peek().text == "^":
            self.stream.next()
            expr = PBin("^", expr, self._bitand())
        return expr

    def _bitand(self) -> PExpr:
        expr = self._shift()
        while self.stream.peek().text == "&":
            self.stream.next()
            expr = PBin("&", expr, self._shift())
        return expr

    def _shift(self) -> PExpr:
        expr = self._additive()
        while self.stream.peek().text in ("<<", ">>", ">>>"):
            op = self.stream.next().text
            expr = PBin(op, expr, self._additive())
        return expr

    def _additive(self) -> PExpr:
        expr = self._multiplicative()
        while self.stream.peek().text in ("+", "-"):
            op = self.stream.next().text
            expr = PBin(op, expr, self._multiplicative())
        return expr

    def _multiplicative(self) -> PExpr:
        expr = self._unary()
        while self.stream.peek().text in ("*", "/", "%"):
            op = self.stream.next().text
            expr = PBin(op, expr, self._unary())
        return expr

    def _unary(self) -> PExpr:
        token = self.stream.peek()
        if token.text == "-":
            self.stream.next()
            return PUn("-", self._unary())
        if token.text == "~":
            self.stream.next()
            return PUn("~", self._unary())
        return self._postfix()

    def _postfix(self) -> PExpr:
        expr = self._primary()
        while self.stream.peek().text == "[" and isinstance(expr, PVar):
            self.stream.expect("[")
            high = self._expression()
            self.stream.expect(":")
            low = self._expression()
            self.stream.expect("]")
            expr = PSlice(expr.name, high, low)
        return expr

    def _elem_access(self) -> PExpr:
        """``Elem[name, index, width]`` with an *expression* width.

        Desugars to ``name[(index+1)*width - 1 : index*width]`` so a
        symbolic ``SEW`` (or ``SEW * 2`` for widening forms) survives
        until lowering, where the machine parameters are bound.
        """
        self.stream.expect("[")
        name = self.stream.expect_kind("ident").text
        self.stream.expect(",")
        index = self._expression()
        self.stream.expect(",")
        width = self._expression()
        self.stream.expect("]")
        low = PBin("*", index, width)
        high = PBin("-", PBin("*", PBin("+", index, PInt(1)), width), PInt(1))
        return PSlice(name, high, low)

    def _primary(self) -> PExpr:
        token = self.stream.next()
        if token.kind == "int":
            return PInt(int(token.text))
        if token.kind == "ident":
            if token.text == "Elem":
                return self._elem_access()
            if token.text in _KEYWORDS:
                raise PseudocodeError(
                    f"line {token.line}: unexpected keyword {token.text!r}"
                )
            if self.stream.peek().text == "(":
                self.stream.expect("(")
                args: list[PExpr] = []
                if not self.stream.accept(")"):
                    args.append(self._expression())
                    while self.stream.accept(","):
                        args.append(self._expression())
                    self.stream.expect(")")
                return PCall(token.text, tuple(args))
            return PVar(token.text)
        if token.text == "(":
            expr = self._expression()
            self.stream.expect(")")
            return expr
        raise PseudocodeError(
            f"line {token.line}: unexpected token {token.text!r}"
        )


def parse_rvv_pseudocode(text: str) -> Program:
    return _RvvParser(text).parse_program()


def lower_with_params(
    program: Program,
    input_widths: dict[str, int],
    output_width: int,
    params: dict[str, int],
) -> "object":
    """Lower a parsed rvv program with VLEN/LMUL/SEW bound to ``params``.

    The machine parameters are seeded into the unroller's integer
    environment rather than spliced into the pseudocode text — the text
    itself stays vector-length-agnostic and can be re-lowered at any
    (VLEN, LMUL, SEW) triple.
    """
    context = LoweringContext(
        input_widths, output_name="vd", output_width=output_width,
        builtins=_BUILTINS,
    )
    for name in PARAM_NAMES:
        if name not in params:
            raise PseudocodeError(f"machine parameter {name} is unbound")
        context.int_env[name] = int(params[name])
    for stmt in program.statements:
        context.exec_stmt(stmt)
    return context.finish()


def rvv_semantics(spec: InstructionSpec) -> SemanticsFunction:
    """Parse + lower one rvv spec at its recorded machine parameters."""
    program = parse_rvv_pseudocode(spec.pseudocode)
    input_widths = {op.name: op.width for op in spec.operands}
    params = {
        "VLEN": int(spec.attributes["vlen"]),
        "LMUL": int(spec.attributes["lmul"]),
        "SEW": int(spec.attributes["sew"]),
    }
    body = lower_with_params(
        program, input_widths, spec.output_width, params
    )
    inputs = tuple(
        Input(op.name, IConst(op.width), op.is_immediate)
        for op in spec.operands
    )
    return SemanticsFunction(spec.name, inputs, {}, body, IConst(spec.output_width))
