"""Synthetic RVV reference: a vector-length-agnostic scalable-vector catalog.

Models a RISC-V "V"-style target.  Every pseudocode body is written
against the *symbolic* machine parameters ``VLEN`` (hardware vector
length), ``LMUL`` (register grouping) and ``SEW`` (element width) — the
text of ``vadd_vv_i8m1`` and ``vadd_vv_i32m2`` is byte-identical; only
the attribute bindings differ.  The catalog instantiates those bindings
at a solver-tractable ``VLEN`` (default 128, against hardware VLENs of
512+), the same scale-down the synthesis layer performs when it shrinks
native-width windows to symbolic slices.  Re-generating the catalog at a
different ``vlen`` re-lowers the *same* pseudocode at the new length,
which is what makes the vector-length-agnostic claim testable (see
``tests/test_isa_rvv.py``).

Families reuse the cross-ISA vocabulary (``ew_add``, ``widen_s``,
``narrow_sat_s``, ``predicated_mux``, …) so the similarity engine,
AutoLLVM dictionary, and backend op-table treat rvv instructions as
first-class members of existing equivalence classes.  Mask-producing
instructions (compares, mask-register logic) are the genuinely new
shape: their destination is ``vl`` *bits*, not ``vl`` elements, which is
exactly the width-assumption drill the lint rules ``spec/lane-width``
and ``spec/mask-width`` police.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.bitvector.bv import BitVector
from repro.bitvector.lanes import Vector, vector_from_elems
from repro.isa.spec import InstructionSpec, IsaCatalog, OperandSpec

#: Solver-tractable vector length the default catalog is lowered at.
VLEN_SOLVER = 128

#: Element widths and register-group multipliers the catalog covers.
SEWS = (8, 16, 32)
LMULS = (1, 2)

_TYPE = {True: "i", False: "u"}

#: The shared "vsetvl" prologue of every body: VL is *computed*, never a
#: literal, so the text stays agnostic of the machine configuration.
_VSETVL = "vl = (VLEN * LMUL) / SEW\n"


def _vloop(body: str) -> str:
    return _VSETVL + f"for i = 0 to vl - 1\n    {body}\nendfor\n"


def _elem(name: str, width: str = "SEW", index: str = "i") -> str:
    return f"Elem[{name}, {index}, {width}]"


def _spec(name, asm, operands, output_width, pseudocode, family, latency,
          throughput, reference, **attributes) -> InstructionSpec:
    return InstructionSpec(
        name=name,
        isa="rvv",
        asm=asm,
        operands=tuple(operands),
        output_width=output_width,
        pseudocode=pseudocode,
        extension="V",
        family=family,
        latency=latency,
        throughput=throughput,
        reference=reference,
        attributes=attributes,
    )


def _machine(vlen: int, lmul: int, sew: int) -> dict:
    """The attribute triple ``rvv_semantics`` binds at lowering time."""
    return {"vlen": vlen, "lmul": lmul, "sew": sew}


def _two(width: int) -> list[OperandSpec]:
    return [OperandSpec("vs2", width), OperandSpec("vs1", width)]


# -- references (independent of the parser; VL derived from operand widths,
# -- so the same closure is correct at every vlen) --------------------------


def _ref_lanewise(sew: int, fn: Callable, names=("vs2", "vs1")):
    def run(env):
        vecs = [Vector(env[n], sew) for n in names]
        out = [fn(*(v.elem(i) for v in vecs)) for i in range(vecs[0].num_elems)]
        return vector_from_elems(out).bits

    return run


def _ref_shift_vv(sew: int, kind: str):
    def run(env):
        va, vb = Vector(env["vs2"], sew), Vector(env["vs1"], sew)
        out = []
        for x, y in zip(va.elems(), vb.elems()):
            amount = BitVector(y.value & (sew - 1), sew)
            if kind == "shl":
                out.append(x.bvshl(amount))
            elif kind == "lshr":
                out.append(x.bvlshr(amount))
            else:
                out.append(x.bvashr(amount))
        return vector_from_elems(out).bits

    return run


def _ref_shift_vi(sew: int, kind: str):
    def run(env):
        amount = BitVector(env["uimm"].value & (sew - 1), sew)

        def shift(x: BitVector) -> BitVector:
            if kind == "shl":
                return x.bvshl(amount)
            if kind == "lshr":
                return x.bvlshr(amount)
            return x.bvashr(amount)

        return Vector(env["vs2"], sew).map_lanes(shift).bits

    return run


def _ref_cmp_mask(sew: int, kind: str):
    def run(env):
        va, vb = Vector(env["vs2"], sew), Vector(env["vs1"], sew)
        bits = 0
        for i in range(va.num_elems):
            x, y = va.elem(i), vb.elem(i)
            hit = {
                "eq": x.value == y.value,
                "ne": x.value != y.value,
                "lt_s": x.signed < y.signed,
                "lt_u": x.unsigned < y.unsigned,
                "le_s": x.signed <= y.signed,
                "le_u": x.unsigned <= y.unsigned,
                "gt_s": x.signed > y.signed,
                "gt_u": x.unsigned > y.unsigned,
            }[kind]
            if hit:
                bits |= 1 << i
        return BitVector(bits, va.num_elems)

    return run


def _ref_mask_logic(fn: Callable[[BitVector, BitVector], BitVector]):
    def run(env):
        return fn(env["vs2"], env["vs1"])

    return run


def _ref_merge(sew: int):
    def run(env):
        va, vb = Vector(env["vs2"], sew), Vector(env["vs1"], sew)
        mask = env["vm"]
        out = [
            vb.elem(i) if (mask.value >> i) & 1 else va.elem(i)
            for i in range(va.num_elems)
        ]
        return vector_from_elems(out).bits

    return run


def _ref_widen_binop(sew: int, fn: Callable):
    wide = 2 * sew

    def run(env):
        va, vb = Vector(env["vs2"], sew), Vector(env["vs1"], sew)
        out = [fn(va.elem(i), vb.elem(i), wide) for i in range(va.num_elems)]
        return vector_from_elems(out).bits

    return run


def _ref_ext2(sew: int, signed: bool):
    wide = 2 * sew

    def run(env):
        va = Vector(env["vs2"], sew)
        out = [
            va.elem(i).sext(wide) if signed else va.elem(i).zext(wide)
            for i in range(va.num_elems)
        ]
        return vector_from_elems(out).bits

    return run


def _ref_narrow(sew: int, kind: str, shift_source: str | None):
    """vncvt/vnsrl/vnsra/vnclip(u): 2*SEW source elements down to SEW."""
    wide = 2 * sew

    def run(env):
        va = Vector(env["vs2"], wide)
        out = []
        for i in range(va.num_elems):
            x = va.elem(i)
            if shift_source == "vs1":
                raw = Vector(env["vs1"], sew).elem(i).value
                amount = BitVector(raw & (wide - 1), wide)
            elif shift_source == "uimm":
                amount = BitVector(env["uimm"].value & (wide - 1), wide)
            else:
                amount = None
            if kind == "trunc":
                out.append(x.trunc(sew))
            elif kind == "lshr":
                out.append(x.bvlshr(amount).trunc(sew))
            elif kind == "ashr":
                out.append(x.bvashr(amount).trunc(sew))
            elif kind == "clip_s":
                out.append(x.bvashr(amount).saturate_to_signed(sew))
            else:  # clip_u
                out.append(x.bvlshr(amount).saturate_to_unsigned(sew))
        return vector_from_elems(out).bits

    return run


def _ref_segload(sew: int, nf: int):
    def run(env):
        mem = Vector(env["mem"], sew)
        count = mem.num_elems // nf
        out = [
            mem.elem(i * nf + field)
            for field in range(nf)
            for i in range(count)
        ]
        return vector_from_elems(out).bits

    return run


# -- generators -------------------------------------------------------------


def _configs() -> list[tuple[int, int]]:
    return [(sew, lmul) for lmul in LMULS for sew in SEWS]


def _gen_arith(specs: list[InstructionSpec], vlen: int) -> None:
    a, b = _elem("vs2"), _elem("vs1")
    d = _elem("vd")
    for sew, lmul in _configs():
        width = vlen * lmul
        machine = _machine(vlen, lmul, sew)
        sign_agnostic = [
            ("vadd", f"{a} + {b}", lambda x, y: x.bvadd(y), "ew_add"),
            ("vsub", f"{a} - {b}", lambda x, y: x.bvsub(y), "ew_sub"),
            ("vmul", f"{a} * {b}", lambda x, y: x.bvmul(y), "ew_mullo"),
            ("vand", f"{a} & {b}", lambda x, y: x.bvand(y), "logic_and"),
            ("vor", f"{a} | {b}", lambda x, y: x.bvor(y), "logic_or"),
            ("vxor", f"{a} ^ {b}", lambda x, y: x.bvxor(y), "logic_xor"),
        ]
        for op, rhs, fn, family in sign_agnostic:
            specs.append(
                _spec(f"{op}_vv_i{sew}m{lmul}", f"{op}.vv", _two(width), width,
                      _vloop(f"{d} = {rhs}"), family, 3.0, 0.5,
                      _ref_lanewise(sew, fn), elem_width=sew, simd=True,
                      **machine))
        signed_cases = [
            ("vmin", "min_s", lambda x, y: x.bvsmin(y), "ew_min_s", True),
            ("vminu", "min_u", lambda x, y: x.bvumin(y), "ew_min_u", False),
            ("vmax", "max_s", lambda x, y: x.bvsmax(y), "ew_max_s", True),
            ("vmaxu", "max_u", lambda x, y: x.bvumax(y), "ew_max_u", False),
            ("vsadd", "sadd_sat", lambda x, y: x.bvsaddsat(y), "ew_adds", True),
            ("vsaddu", "uadd_sat", lambda x, y: x.bvuaddsat(y), "ew_addus", False),
            ("vssub", "ssub_sat", lambda x, y: x.bvssubsat(y), "ew_subs", True),
            ("vssubu", "usub_sat", lambda x, y: x.bvusubsat(y), "ew_subus", False),
            ("vaadd", "avg_s",
             lambda x, y: x.bvsavg(y, round_up=True), "ew_avg_s_rnd", True),
            ("vaaddu", "avg_u",
             lambda x, y: x.bvuavg(y, round_up=True), "ew_avg_u_rnd", False),
        ]
        for op, call, fn, family, signed in signed_cases:
            specs.append(
                _spec(f"{op}_vv_{_TYPE[signed]}{sew}m{lmul}", f"{op}.vv",
                      _two(width), width,
                      _vloop(f"{d} = {call}({a}, {b})"), family, 3.0, 0.5,
                      _ref_lanewise(sew, fn), elem_width=sew, simd=True,
                      **machine))
        # High-half multiplies via explicit widening.
        for op, signed in (("vmulh", True), ("vmulhu", False)):
            ext = "sext" if signed else "zext"
            rhs = (f"trunc(({ext}({a}, SEW * 2) * {ext}({b}, SEW * 2))"
                   f" >> SEW, SEW)")

            def fn_mulh(x, y, signed=signed, sew=sew):
                wx = x.sext(2 * sew) if signed else x.zext(2 * sew)
                wy = y.sext(2 * sew) if signed else y.zext(2 * sew)
                return wx.bvmul(wy).extract(2 * sew - 1, sew)

            specs.append(
                _spec(f"{op}_vv_{_TYPE[signed]}{sew}m{lmul}", f"{op}.vv",
                      _two(width), width, _vloop(f"{d} = {rhs}"),
                      f"ew_mulh_{'s' if signed else 'u'}", 4.0, 1.0,
                      _ref_lanewise(sew, fn_mulh), elem_width=sew, simd=True,
                      **machine))


def _gen_shifts(specs: list[InstructionSpec], vlen: int) -> None:
    a = _elem("vs2")
    d = _elem("vd")
    imm = OperandSpec("uimm", 5, is_immediate=True)
    cases = (("vsll", "<<", "shl"), ("vsrl", ">>", "lshr"),
             ("vsra", ">>>", "ashr"))
    for sew, lmul in _configs():
        width = vlen * lmul
        machine = _machine(vlen, lmul, sew)
        for op, sym, kind in cases:
            # .vv form: per-element shift amount, masked to log2(SEW) bits
            # as the RVV spec requires.
            amount = f"({_elem('vs1')} & (SEW - 1))"
            specs.append(
                _spec(f"{op}_vv_i{sew}m{lmul}", f"{op}.vv", _two(width),
                      width, _vloop(f"{d} = {a} {sym} {amount}"),
                      f"shift_var_{kind}", 3.0, 0.5, _ref_shift_vv(sew, kind),
                      elem_width=sew, simd=True, **machine))
            # .vi form: 5-bit immediate amount.
            amount = f"zext(uimm & (SEW - 1), SEW)"
            specs.append(
                _spec(f"{op}_vi_i{sew}m{lmul}", f"{op}.vi",
                      [OperandSpec("vs2", width), imm], width,
                      _vloop(f"{d} = {a} {sym} {amount}"),
                      f"shift_imm_{kind}", 3.0, 0.5, _ref_shift_vi(sew, kind),
                      elem_width=sew, simd=True, **machine))


def _gen_compare(specs: list[InstructionSpec], vlen: int) -> None:
    """Mask-producing compares: the destination is ``vl`` *bits*."""
    a, b = _elem("vs2"), _elem("vs1")
    d = _elem("vd", "1")
    cases = [
        ("vmseq", f"{a} == {b}", "eq", None),
        ("vmsne", f"{a} != {b}", "ne", None),
        ("vmslt", f"{a} <s {b}", "lt_s", True),
        ("vmsltu", f"{a} <u {b}", "lt_u", False),
        ("vmsle", f"{a} <=s {b}", "le_s", True),
        ("vmsleu", f"{a} <=u {b}", "le_u", False),
        ("vmsgt", f"{a} >s {b}", "gt_s", True),
        ("vmsgtu", f"{a} >u {b}", "gt_u", False),
    ]
    for sew, lmul in _configs():
        width = vlen * lmul
        vl = width // sew
        machine = _machine(vlen, lmul, sew)
        for op, cond, kind, signed in cases:
            t = "i" if signed is None else _TYPE[signed]
            specs.append(
                _spec(f"{op}_vv_{t}{sew}m{lmul}", f"{op}.vv", _two(width), vl,
                      _vloop(f"{d} = {cond} ? 1 : 0"), f"cmp_{kind}", 3.0,
                      0.5, _ref_cmp_mask(sew, kind), elem_width=sew,
                      simd=True, mask_output=True, mask_elems=vl, **machine))


def _gen_mask_logic(specs: list[InstructionSpec], vlen: int) -> None:
    """vmand.mm and friends: 1-bit element loops over mask registers."""
    a, b = _elem("vs2", "1"), _elem("vs1", "1")
    d = _elem("vd", "1")
    cases = [
        ("vmand", f"{a} & {b}",
         lambda x, y: x.bvand(y), "mask_and"),
        ("vmnand", f"~({a} & {b})",
         lambda x, y: x.bvand(y).bvnot(), "mask_nand"),
        ("vmandn", f"{a} & ~{b}",
         lambda x, y: x.bvand(y.bvnot()), "mask_andn"),
        ("vmor", f"{a} | {b}",
         lambda x, y: x.bvor(y), "mask_or"),
        ("vmnor", f"~({a} | {b})",
         lambda x, y: x.bvor(y).bvnot(), "mask_nor"),
        ("vmorn", f"{a} | ~{b}",
         lambda x, y: x.bvor(y.bvnot()), "mask_orn"),
        ("vmxor", f"{a} ^ {b}",
         lambda x, y: x.bvxor(y), "mask_xor"),
        ("vmxnor", f"~({a} ^ {b})",
         lambda x, y: x.bvxor(y).bvnot(), "mask_xnor"),
    ]
    # One mask shape per distinct vl; bind a representative (sew, lmul).
    shapes: dict[int, tuple[int, int]] = {}
    for sew, lmul in _configs():
        shapes.setdefault(vlen * lmul // sew, (sew, lmul))
    for vl in sorted(shapes):
        sew, lmul = shapes[vl]
        machine = _machine(vlen, lmul, sew)
        for op, rhs, fn, family in cases:
            specs.append(
                _spec(f"{op}_mm_vl{vl}", f"{op}.mm", _two(vl), vl,
                      _vloop(f"{d} = {rhs}"), family, 2.0, 0.5,
                      _ref_mask_logic(fn), elem_width=1, mask_output=True,
                      mask_elems=vl, mask_operands=("vs2", "vs1"), **machine))


def _gen_merge(specs: list[InstructionSpec], vlen: int) -> None:
    d = _elem("vd")
    rhs = (f"Elem[vm, i, 1] == 1 ? {_elem('vs1')} : {_elem('vs2')}")
    for sew, lmul in _configs():
        width = vlen * lmul
        vl = width // sew
        specs.append(
            _spec(f"vmerge_vvm_i{sew}m{lmul}", "vmerge.vvm",
                  [OperandSpec("vm", vl)] + _two(width), width,
                  _vloop(f"{d} = {rhs}"), "predicated_mux", 3.0, 0.5,
                  _ref_merge(sew), elem_width=sew, simd=True, mask_elems=vl,
                  mask_operands=("vm",), **_machine(vlen, lmul, sew)))


def _gen_widening(specs: list[InstructionSpec], vlen: int) -> None:
    """2*SEW destinations from SEW sources (LMUL=1 register groups)."""
    a, b = _elem("vs2"), _elem("vs1")
    d = _elem("vd", "SEW * 2")
    machine_for = lambda sew: _machine(vlen, 1, sew)  # noqa: E731
    for sew in SEWS:
        wide = 2 * sew
        machine = machine_for(sew)
        for op, sym, signed in (("vwadd", "+", True), ("vwaddu", "+", False),
                                ("vwsub", "-", True), ("vwsubu", "-", False)):
            ext = "sext" if signed else "zext"
            rhs = f"{ext}({a}, SEW * 2) {sym} {ext}({b}, SEW * 2)"

            def fn(x, y, w, signed=signed, sym=sym):
                wx = x.sext(w) if signed else x.zext(w)
                wy = y.sext(w) if signed else y.zext(w)
                return wx.bvadd(wy) if sym == "+" else wx.bvsub(wy)

            family = "widening_addl" if sym == "+" else "widening_subl"
            specs.append(
                _spec(f"{op}_vv_{_TYPE[signed]}{sew}m1", f"{op}.vv",
                      _two(vlen), 2 * vlen, _vloop(f"{d} = {rhs}"), family,
                      3.0, 0.5, _ref_widen_binop(sew, fn), elem_width=wide,
                      widening=True, **machine))
        mul_cases = [
            ("vwmul", "sext", "sext", True, True),
            ("vwmulu", "zext", "zext", False, False),
            ("vwmulsu", "sext", "zext", True, False),
        ]
        for op, ext_a, ext_b, sa, sb in mul_cases:
            rhs = f"{ext_a}({a}, SEW * 2) * {ext_b}({b}, SEW * 2)"

            def fn_mul(x, y, w, sa=sa, sb=sb):
                wx = x.sext(w) if sa else x.zext(w)
                wy = y.sext(w) if sb else y.zext(w)
                return wx.bvmul(wy)

            specs.append(
                _spec(f"{op}_vv_i{sew}m1", f"{op}.vv", _two(vlen), 2 * vlen,
                      _vloop(f"{d} = {rhs}"), "widening_mul", 4.0, 1.0,
                      _ref_widen_binop(sew, fn_mul), elem_width=wide,
                      widening=True, **machine))
        # Pure sign/zero extension conversions.
        for op, ext, signed in (("vsext_vf2", "sext", True),
                                ("vzext_vf2", "zext", False)):
            specs.append(
                _spec(f"{op}_i{sew}m1", op.replace("_", "."),
                      [OperandSpec("vs2", vlen)], 2 * vlen,
                      _vloop(f"{d} = {ext}({a}, SEW * 2)"),
                      f"widen_{'s' if signed else 'u'}", 3.0, 0.5,
                      _ref_ext2(sew, signed), elem_width=wide, widening=True,
                      **machine))


def _gen_narrowing(specs: list[InstructionSpec], vlen: int) -> None:
    """SEW destinations from 2*SEW sources (the .w* forms)."""
    a = _elem("vs2", "SEW * 2")
    d = _elem("vd")
    imm = OperandSpec("uimm", 5, is_immediate=True)
    # Shift amounts for narrowing shifts range over [0, 2*SEW).
    amt_v = f"(zext({_elem('vs1')}, SEW * 2) & (SEW * 2 - 1))"
    amt_i = "(zext(uimm, SEW * 2) & (SEW * 2 - 1))"
    for sew in SEWS:
        machine = _machine(vlen, 1, sew)
        wide_ops = [OperandSpec("vs2", 2 * vlen), OperandSpec("vs1", vlen)]
        specs.append(
            _spec(f"vncvt_x_x_w_i{sew}m1", "vncvt.x.x.w",
                  [OperandSpec("vs2", 2 * vlen)], vlen,
                  _vloop(f"{d} = trunc({a}, SEW)"), "narrow_trunc", 3.0, 0.5,
                  _ref_narrow(sew, "trunc", None), elem_width=sew,
                  swizzle=True, **machine))
        for op, sym, kind in (("vnsrl", ">>", "lshr"), ("vnsra", ">>>", "ashr")):
            specs.append(
                _spec(f"{op}_wv_i{sew}m1", f"{op}.wv", list(wide_ops), vlen,
                      _vloop(f"{d} = trunc({a} {sym} {amt_v}, SEW)"),
                      f"narrow_{kind}", 3.0, 0.5,
                      _ref_narrow(sew, kind, "vs1"), elem_width=sew,
                      swizzle=True, **machine))
            specs.append(
                _spec(f"{op}_wi_i{sew}m1", f"{op}.wi",
                      [OperandSpec("vs2", 2 * vlen), imm], vlen,
                      _vloop(f"{d} = trunc({a} {sym} {amt_i}, SEW)"),
                      f"narrow_{kind}", 3.0, 0.5,
                      _ref_narrow(sew, kind, "uimm"), elem_width=sew,
                      swizzle=True, **machine))
        clip_cases = [
            ("vnclip", ">>>", "clip_s", "sat_s", True),
            ("vnclipu", ">>", "clip_u", "sat_u", False),
        ]
        for op, sym, kind, sat, signed in clip_cases:
            specs.append(
                _spec(f"{op}_wv_{_TYPE[signed]}{sew}m1", f"{op}.wv",
                      list(wide_ops), vlen,
                      _vloop(f"{d} = {sat}({a} {sym} {amt_v}, SEW)"),
                      f"narrow_sat_{'s' if signed else 'u'}", 4.0, 0.5,
                      _ref_narrow(sew, kind, "vs1"), elem_width=sew,
                      swizzle=True, **machine))


def _ref_dot2(sew: int):
    half = sew // 2

    def run(env):
        va, vb = Vector(env["vs2"], half), Vector(env["vs1"], half)
        out = []
        for i in range(va.num_elems // 2):
            lo = va.elem(2 * i).sext(sew).bvmul(vb.elem(2 * i).sext(sew))
            hi = va.elem(2 * i + 1).sext(sew).bvmul(vb.elem(2 * i + 1).sext(sew))
            out.append(lo.bvadd(hi))
        return vector_from_elems(out).bits

    return run


def _ref_dot4(sew: int, sign_a: bool, sign_b: bool):
    quarter = sew // 4

    def run(env):
        acc = Vector(env["acc"], sew)
        va, vb = Vector(env["vs2"], quarter), Vector(env["vs1"], quarter)
        out = []
        for i in range(acc.num_elems):
            total = acc.elem(i)
            for q in range(4):
                x, y = va.elem(4 * i + q), vb.elem(4 * i + q)
                wx = x.sext(sew) if sign_a else x.zext(sew)
                wy = y.sext(sew) if sign_b else y.zext(sew)
                total = total.bvadd(wx.bvmul(wy))
            out.append(total)
        return vector_from_elems(out).bits

    return run


def _gen_dot(specs: list[InstructionSpec], vlen: int) -> None:
    """Zvqdotq-style dot products (SEW=32 destinations).

    ``vqdot*`` are the proposed RVV quad-widening 8-bit dot products;
    ``vqdot2`` generalises the same shape to 16-bit pairs (the pmaddwd
    idiom), which is what the matmul windows reduce to.  Sub-element
    widths are written ``SEW / 4`` / ``SEW / 2`` so the bodies stay
    VL- and SEW-symbolic.
    """
    sew = 32
    d = _elem("vd")
    for lmul in LMULS:
        width = vlen * lmul
        machine = _machine(vlen, lmul, sew)
        # 2-way 16-bit dot product (no accumulator), pmaddwd-shaped.
        pair = " + ".join(
            f"sext(Elem[vs2, 2 * i + {q}, SEW / 2], SEW) * "
            f"sext(Elem[vs1, 2 * i + {q}, SEW / 2], SEW)"
            for q in range(2)
        )
        specs.append(
            _spec(f"vqdot2_vv_i32m{lmul}", "vqdot2.vv", _two(width), width,
                  _vloop(f"{d} = {pair}"), "dot_madd", 4.0, 1.0,
                  _ref_dot2(sew), elem_width=sew, dot_product=True,
                  reduction_width=2, **machine))
        # 4-way 8-bit dot products accumulating into vd.
        quad_cases = [
            ("vqdot", "sext", "sext", True, True, "dot_4way"),
            ("vqdotu", "zext", "zext", False, False, "dot_4way"),
            ("vqdotsu", "zext", "sext", False, True, "dot_dpbusd"),
        ]
        for op, ext_a, ext_b, sa, sb, family in quad_cases:
            quad = " + ".join(
                f"{ext_a}(Elem[vs2, 4 * i + {q}, SEW / 4], SEW) * "
                f"{ext_b}(Elem[vs1, 4 * i + {q}, SEW / 4], SEW)"
                for q in range(4)
            )
            specs.append(
                _spec(f"{op}_vv_i32m{lmul}", f"{op}.vv",
                      [OperandSpec("acc", width)] + _two(width), width,
                      _vloop(f"{d} = {_elem('acc')} + {quad}"), family, 4.0,
                      1.0, _ref_dot4(sew, sa, sb), elem_width=sew,
                      dot_product=True, fused=True, reduction_width=4,
                      **machine))


def _gen_segment_loads(specs: list[InstructionSpec], vlen: int) -> None:
    """vlseg<nf>: de-interleave an nf-field structure into nf registers.

    ``nf`` is a literal in the body — it is encoded in the opcode on real
    hardware — but the per-field loop bound is still the symbolic ``vl``.
    """
    for nf in (2, 3, 4):
        for sew in SEWS:
            body = (
                _VSETVL
                + f"for f = 0 to {nf - 1}\n"
                + "    for i = 0 to vl - 1\n"
                + f"        Elem[vd, f * vl + i, SEW] = "
                + f"Elem[mem, i * {nf} + f, SEW]\n"
                + "    endfor\n"
                + "endfor\n"
            )
            specs.append(
                _spec(f"vlseg{nf}e{sew}_v_i{sew}m1", f"vlseg{nf}e{sew}.v",
                      [OperandSpec("mem", nf * vlen)], nf * vlen, body,
                      "segment_load", 6.0, 2.0, _ref_segload(sew, nf),
                      elem_width=sew, segments=nf, lane_bits=vlen,
                      swizzle=True, **_machine(vlen, 1, sew)))


def generate_rvv_catalog(vlen: int = VLEN_SOLVER) -> IsaCatalog:
    """Generate the synthetic RVV manual at one concrete ``VLEN``.

    The pseudocode produced is identical for every ``vlen``; only the
    attribute bindings (and operand/destination widths) change, which is
    the property the scale-down tests rely on.
    """
    if vlen < 64 or vlen % 64:
        raise ValueError(f"VLEN must be a positive multiple of 64, got {vlen}")
    specs: list[InstructionSpec] = []
    _gen_arith(specs, vlen)
    _gen_shifts(specs, vlen)
    _gen_compare(specs, vlen)
    _gen_mask_logic(specs, vlen)
    _gen_merge(specs, vlen)
    _gen_widening(specs, vlen)
    _gen_narrowing(specs, vlen)
    _gen_dot(specs, vlen)
    _gen_segment_loads(specs, vlen)
    return IsaCatalog("rvv", specs)
