"""Central access point for ISA catalogs and parsed semantics.

Catalog generation, pseudocode parsing and canonicalisation together take
a few seconds per ISA, so everything is cached per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.hydride_ir.ast import SemanticsFunction
from repro.hydride_ir.transforms import canonicalize
from repro.isa.spec import InstructionSpec, IsaCatalog

SUPPORTED_ISAS = ("x86", "hvx", "arm")


@dataclass
class LoadedIsa:
    """A catalog together with canonicalised semantics per instruction."""

    catalog: IsaCatalog
    semantics: dict[str, SemanticsFunction]

    @property
    def isa(self) -> str:
        return self.catalog.isa

    def spec(self, name: str) -> InstructionSpec:
        return self.catalog.by_name(name)

    def __len__(self) -> int:
        return len(self.catalog)


def _generate_and_parse(isa: str) -> LoadedIsa:
    if isa == "x86":
        from repro.isa.x86 import generate_x86_catalog, x86_semantics

        catalog = generate_x86_catalog()
        parse = x86_semantics
    elif isa == "hvx":
        from repro.isa.hvx import generate_hvx_catalog, hvx_semantics

        catalog = generate_hvx_catalog()
        parse = hvx_semantics
    elif isa == "arm":
        from repro.isa.arm import generate_arm_catalog, arm_semantics

        catalog = generate_arm_catalog()
        parse = arm_semantics
    else:
        raise ValueError(f"unknown ISA {isa!r}; supported: {SUPPORTED_ISAS}")
    from repro.analysis import hooks

    verify = hooks.verification_enabled()
    semantics: dict[str, SemanticsFunction] = {}
    for spec in catalog:
        parsed = parse(spec)
        if verify:
            hooks.verify_semantics(
                parsed,
                isa=isa,
                stage="parse",
                declared_output_width=spec.output_width,
            )
        canonical = canonicalize(parsed)
        if verify:
            hooks.verify_semantics(
                canonical,
                isa=isa,
                stage="canonicalize",
                declared_output_width=spec.output_width,
            )
        semantics[spec.name] = canonical
    return LoadedIsa(catalog, semantics)


@lru_cache(maxsize=None)
def load_isa(isa: str) -> LoadedIsa:
    """Load (generate + parse + canonicalise) one ISA, cached."""
    return _generate_and_parse(isa)


def load_isas(isas: tuple[str, ...]) -> list[LoadedIsa]:
    return [load_isa(isa) for isa in isas]
