"""Central access point for ISA catalogs and parsed semantics.

Catalog generation is cheap (milliseconds); pseudocode parsing and
canonicalisation take a few seconds per ISA, so everything is cached per
process.  The offline IR-generation pipeline (:mod:`repro.irgen`) slices
the parse work across worker processes via :func:`parse_slice` and
persists the result, so warm processes skip this module's slow path
entirely.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from functools import lru_cache

from repro.hydride_ir.ast import SemanticsFunction
from repro.hydride_ir.transforms import canonicalize
from repro.isa.spec import InstructionSpec, IsaCatalog

# -- the plug-in table ------------------------------------------------------
#
# One registration per ISA: a loader returning ``(generate_catalog,
# parse_semantics)``.  Loaders are thunks so the (comparatively heavy)
# per-ISA subpackages import lazily, exactly as the old if/elif chain did.
# ``SUPPORTED_ISAS`` is *derived* from this table — adding an ISA means
# adding one ``register_isa`` call, nothing else.

GeneratorPair = tuple[Callable[[], IsaCatalog], Callable[[InstructionSpec], SemanticsFunction]]

_REGISTRY: dict[str, Callable[[], GeneratorPair]] = {}


def register_isa(name: str, loader: Callable[[], GeneratorPair]) -> None:
    """Register an ISA plug-in: ``loader() -> (generate, parse)``."""
    if name in _REGISTRY:
        raise ValueError(f"ISA {name!r} is already registered")
    _REGISTRY[name] = loader


def _load_x86() -> GeneratorPair:
    from repro.isa.x86 import generate_x86_catalog, x86_semantics

    return generate_x86_catalog, x86_semantics


def _load_hvx() -> GeneratorPair:
    from repro.isa.hvx import generate_hvx_catalog, hvx_semantics

    return generate_hvx_catalog, hvx_semantics


def _load_arm() -> GeneratorPair:
    from repro.isa.arm import generate_arm_catalog, arm_semantics

    return generate_arm_catalog, arm_semantics


def _load_rvv() -> GeneratorPair:
    from repro.isa.rvv import generate_rvv_catalog, rvv_semantics

    return generate_rvv_catalog, rvv_semantics


register_isa("x86", _load_x86)
register_isa("hvx", _load_hvx)
register_isa("arm", _load_arm)
register_isa("rvv", _load_rvv)

#: The three fixed-width ISAs of the paper's evaluation; the default for
#: dictionary builds and experiment runs that predate the rvv target.
CORE_ISAS = ("x86", "hvx", "arm")

#: Every registered ISA, in registration order.
SUPPORTED_ISAS = tuple(_REGISTRY)


def supported_isas() -> tuple[str, ...]:
    """All registered ISAs, including plug-ins added after import."""
    return tuple(_REGISTRY)


@dataclass
class LoadedIsa:
    """A catalog together with canonicalised semantics per instruction."""

    catalog: IsaCatalog
    semantics: dict[str, SemanticsFunction]

    @property
    def isa(self) -> str:
        return self.catalog.isa

    def spec(self, name: str) -> InstructionSpec:
        return self.catalog.by_name(name)

    def __len__(self) -> int:
        return len(self.catalog)


def _generators(isa: str) -> GeneratorPair:
    """(catalog generator, pseudocode parser) for one ISA."""
    loader = _REGISTRY.get(isa)
    if loader is None:
        raise ValueError(
            f"unknown ISA {isa!r}; supported: {supported_isas()}"
        )
    return loader()


@lru_cache(maxsize=None)
def load_catalog(isa: str) -> IsaCatalog:
    """Generate one ISA's spec catalog (no parsing), cached."""
    generate, _parse = _generators(isa)
    return generate()


def parse_spec(isa: str, spec: InstructionSpec) -> SemanticsFunction:
    """Parse + canonicalise one spec's pseudocode (verification-hooked)."""
    from repro.analysis import hooks

    _generate, parse = _generators(isa)
    verify = hooks.verification_enabled()
    parsed = parse(spec)
    if verify:
        hooks.verify_semantics(
            parsed,
            isa=isa,
            stage="parse",
            declared_output_width=spec.output_width,
        )
    canonical = canonicalize(parsed)
    if verify:
        hooks.verify_semantics(
            canonical,
            isa=isa,
            stage="canonicalize",
            declared_output_width=spec.output_width,
        )
    return canonical


def parse_slice(
    isa: str, start: int, stop: int
) -> list[tuple[str, SemanticsFunction]]:
    """Parse + canonicalise one contiguous slice of an ISA's catalog.

    The worker entry point of the parallel parse phase: each worker
    regenerates the (cheap, cached) catalog itself rather than having
    spec objects — whose fuzzer ``reference`` callables don't pickle —
    shipped over the process boundary.
    """
    catalog = load_catalog(isa)
    return [
        (spec.name, parse_spec(isa, spec))
        for spec in catalog.specs[start:stop]
    ]


def _generate_and_parse(isa: str) -> LoadedIsa:
    catalog = load_catalog(isa)
    semantics = {
        name: func for name, func in parse_slice(isa, 0, len(catalog))
    }
    return LoadedIsa(catalog, semantics)


@lru_cache(maxsize=None)
def load_isa(isa: str) -> LoadedIsa:
    """Load (generate + parse + canonicalise) one ISA, cached."""
    return _generate_and_parse(isa)


def load_isas(isas: tuple[str, ...]) -> list[LoadedIsa]:
    return [load_isa(isa) for isa in isas]
