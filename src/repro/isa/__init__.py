"""ISA substrate: vendor-style pseudocode specifications and parsers.

The paper's offline phase starts from "pseudocode specifications of
instruction sets already specified by the hardware vendors in their
respective programmer's manuals", parsed by ISA-specific parsers into
Hydride IR.  The real manuals are proprietary documents; this package
substitutes faithfully-shaped synthetic equivalents:

* :mod:`repro.isa.x86` — an Intel-intrinsics-guide-style dialect
  (``FOR j := 0 to 7 ... dst[i+31:i] := ...``) covering SSE2/SSE4/AVX/
  AVX2/AVX512-class SIMD, swizzle, dot-product, mask and scalar ops,
* :mod:`repro.isa.hvx` — a Qualcomm-HVX-PRM-style C dialect
  (``for (i=0; i<32; i++) Vd.w[i] = ...``),
* :mod:`repro.isa.arm` — an ARM-ASL-style dialect
  (``for e = 0 to 7 ... Elem[result, e, 16] = ...``) covering NEON-class
  ops including the fused multiply-accumulate family.

Each ISA provides a *spec generator* (the stand-in for the vendor manual)
and a *parser* (genuine lexing/parsing/lowering of that dialect into
:class:`repro.hydride_ir.SemanticsFunction`).  Every instruction also
carries a reference executable (the stand-in for target C builtins) that
the differential fuzzer in :mod:`repro.isa.fuzz` checks parsed semantics
against.
"""

from repro.isa.spec import InstructionSpec, IsaCatalog, OperandSpec
from repro.isa.registry import load_isa, load_isas

__all__ = [
    "InstructionSpec",
    "IsaCatalog",
    "OperandSpec",
    "load_isa",
    "load_isas",
]
