"""Parser for the ARM ASL-style pseudocode dialect.

ARM's architecture specification language writes NEON behaviour with
``Elem`` accessors over typed vectors::

    for e = 0 to 7
        Elem[result, e, 16] = SatS(SExt(Elem[operand1, e, 16], 32) +
                                   SExt(Elem[operand2, e, 16], 32), 16)
    endfor

``Elem[v, e, width]`` reads (or, as an assignment target, writes) the
``e``-th ``width``-bit element of ``v``.  Width-changing functions take
the target width as an explicit second argument (``SExt(x, 32)``), unlike
the suffix-style names of the x86 dialect — each vendor's surface syntax
gets its own parser, as in the paper.
"""

from __future__ import annotations

from repro.hydride_ir.ast import Input, SemanticsFunction
from repro.hydride_ir.indexexpr import IConst
from repro.isa.pseudo_core import (
    Builtin,
    CORE_BUILTINS,
    Lexer,
    PAssign,
    PBin,
    PCall,
    PCond,
    PElem,
    PFor,
    PIf,
    PInt,
    PSlice,
    PStmt,
    PExpr,
    PUn,
    PVar,
    Program,
    PseudocodeError,
    TokenStream,
    lower_program,
)
from repro.isa.spec import InstructionSpec

_SYMBOLS = [
    "==", "!=", "<=s", ">=s", "<s", ">s", "<=u", ">=u", "<u", ">u",
    "<=", ">=", "<<", ">>>", ">>", "(", ")", "[", "]", ",", ":", "?",
    "=", "<", ">", "+", "-", "*", "/", "%", "&", "|", "^", "~",
]

_LEXER = Lexer(_SYMBOLS)

_KEYWORDS = {"for", "to", "endfor", "if", "then", "else", "endif"}

_BUILTINS: dict[str, Builtin] = {
    "SExt": CORE_BUILTINS["sign_extend"],
    "UExt": CORE_BUILTINS["zero_extend"],
    "Trunc": CORE_BUILTINS["truncate"],
    "SatS": CORE_BUILTINS["saturate_signed"],
    "SatU": CORE_BUILTINS["saturate_unsigned"],
    "MinS": CORE_BUILTINS["min_signed"],
    "MaxS": CORE_BUILTINS["max_signed"],
    "MinU": CORE_BUILTINS["min_unsigned"],
    "MaxU": CORE_BUILTINS["max_unsigned"],
    "Abs": CORE_BUILTINS["abs"],
    "SAddSat": CORE_BUILTINS["sat_add_signed"],
    "UAddSat": CORE_BUILTINS["sat_add_unsigned"],
    "SSubSat": CORE_BUILTINS["sat_sub_signed"],
    "USubSat": CORE_BUILTINS["sat_sub_unsigned"],
    "SHalvingAdd": CORE_BUILTINS["avg_signed"],
    "UHalvingAdd": CORE_BUILTINS["avg_unsigned"],
    "SRHalvingAdd": CORE_BUILTINS["avg_signed_round"],
    "URHalvingAdd": CORE_BUILTINS["avg_unsigned_round"],
    "CountBits": CORE_BUILTINS["popcount"],
}


class _ArmParser:
    def __init__(self, text: str) -> None:
        self.stream = TokenStream(_LEXER.tokenize(text))

    def parse_program(self) -> Program:
        statements: list[PStmt] = []
        while not self.stream.at_end():
            statements.append(self._statement())
        return Program(tuple(statements))

    # -- statements -----------------------------------------------------

    def _block_until(self, *terminators: str) -> tuple[PStmt, ...]:
        body: list[PStmt] = []
        while self.stream.peek().text not in terminators:
            if self.stream.at_end():
                raise PseudocodeError(
                    f"unexpected end of pseudocode, expected one of {terminators}"
                )
            body.append(self._statement())
        return tuple(body)

    def _statement(self) -> PStmt:
        token = self.stream.peek()
        if token.text == "for":
            return self._for_statement()
        if token.text == "if":
            return self._if_statement()
        return self._assignment()

    def _for_statement(self) -> PFor:
        self.stream.expect("for")
        var = self.stream.expect_kind("ident").text
        self.stream.expect("=")
        start = self._expression()
        self.stream.expect("to")
        end = self._expression()
        body = self._block_until("endfor")
        self.stream.expect("endfor")
        return PFor(var, start, end, body)

    def _if_statement(self) -> PIf:
        self.stream.expect("if")
        cond = self._expression()
        self.stream.expect("then")
        then_body = self._block_until("else", "endif")
        else_body: tuple[PStmt, ...] = ()
        if self.stream.accept("else"):
            else_body = self._block_until("endif")
        self.stream.expect("endif")
        return PIf(cond, then_body, else_body)

    def _assignment(self) -> PAssign:
        target = self._postfix()
        if not isinstance(target, (PVar, PElem, PSlice)):
            raise PseudocodeError("assignment target must be a name, Elem, or slice")
        self.stream.expect("=")
        value = self._expression()
        return PAssign(target, value)

    # -- expressions ------------------------------------------------------

    def _expression(self) -> PExpr:
        return self._ternary()

    def _ternary(self) -> PExpr:
        cond = self._comparison()
        if self.stream.accept("?"):
            then_expr = self._ternary()
            self.stream.expect(":")
            else_expr = self._ternary()
            return PCond(cond, then_expr, else_expr)
        return cond

    _CMP_TOKENS = {
        "==", "!=", "<s", ">s", "<=s", ">=s", "<u", ">u", "<=u", ">=u",
        "<", ">", "<=", ">=",
    }

    def _comparison(self) -> PExpr:
        left = self._bitor()
        token = self.stream.peek().text
        if token in self._CMP_TOKENS:
            self.stream.next()
            return PBin(token, left, self._bitor())
        return left

    def _bitor(self) -> PExpr:
        expr = self._bitxor()
        while self.stream.peek().text == "|":
            self.stream.next()
            expr = PBin("|", expr, self._bitxor())
        return expr

    def _bitxor(self) -> PExpr:
        expr = self._bitand()
        while self.stream.peek().text == "^":
            self.stream.next()
            expr = PBin("^", expr, self._bitand())
        return expr

    def _bitand(self) -> PExpr:
        expr = self._shift()
        while self.stream.peek().text == "&":
            self.stream.next()
            expr = PBin("&", expr, self._shift())
        return expr

    def _shift(self) -> PExpr:
        expr = self._additive()
        while self.stream.peek().text in ("<<", ">>", ">>>"):
            op = self.stream.next().text
            expr = PBin(op, expr, self._additive())
        return expr

    def _additive(self) -> PExpr:
        expr = self._multiplicative()
        while self.stream.peek().text in ("+", "-"):
            op = self.stream.next().text
            expr = PBin(op, expr, self._multiplicative())
        return expr

    def _multiplicative(self) -> PExpr:
        expr = self._unary()
        while self.stream.peek().text in ("*", "/", "%"):
            op = self.stream.next().text
            expr = PBin(op, expr, self._unary())
        return expr

    def _unary(self) -> PExpr:
        token = self.stream.peek()
        if token.text == "-":
            self.stream.next()
            return PUn("-", self._unary())
        if token.text == "~":
            self.stream.next()
            return PUn("~", self._unary())
        return self._postfix()

    def _postfix(self) -> PExpr:
        expr = self._primary()
        while self.stream.peek().text == "[" and isinstance(expr, PVar):
            self.stream.expect("[")
            high = self._expression()
            self.stream.expect(":")
            low = self._expression()
            self.stream.expect("]")
            expr = PSlice(expr.name, high, low)
        return expr

    def _elem_access(self) -> PExpr:
        """``Elem[name, index, width]`` with a literal width."""
        self.stream.expect("[")
        name = self.stream.expect_kind("ident").text
        self.stream.expect(",")
        index = self._expression()
        self.stream.expect(",")
        width_token = self.stream.expect_kind("int")
        self.stream.expect("]")
        return PElem(name, int(width_token.text), index)

    def _primary(self) -> PExpr:
        token = self.stream.next()
        if token.kind == "int":
            return PInt(int(token.text))
        if token.kind == "ident":
            if token.text == "Elem":
                return self._elem_access()
            if token.text in _KEYWORDS:
                raise PseudocodeError(
                    f"line {token.line}: unexpected keyword {token.text!r}"
                )
            if self.stream.peek().text == "(":
                self.stream.expect("(")
                args: list[PExpr] = []
                if not self.stream.accept(")"):
                    args.append(self._expression())
                    while self.stream.accept(","):
                        args.append(self._expression())
                    self.stream.expect(")")
                return PCall(token.text, tuple(args))
            return PVar(token.text)
        if token.text == "(":
            expr = self._expression()
            self.stream.expect(")")
            return expr
        raise PseudocodeError(f"line {token.line}: unexpected token {token.text!r}")


def parse_arm_pseudocode(text: str) -> Program:
    return _ArmParser(text).parse_program()


def arm_semantics(spec: InstructionSpec) -> SemanticsFunction:
    program = parse_arm_pseudocode(spec.pseudocode)
    input_widths = {op.name: op.width for op in spec.operands}
    body = lower_program(
        program,
        input_widths,
        output_name="result",
        output_width=spec.output_width,
        builtins=_BUILTINS,
    )
    inputs = tuple(
        Input(op.name, IConst(op.width), op.is_immediate) for op in spec.operands
    )
    return SemanticsFunction(spec.name, inputs, {}, body, IConst(spec.output_width))
