"""Synthetic ARM NEON reference: generates the ARM instruction catalog.

NEON intrinsics come in 64-bit (``vadd_s8``) and 128-bit (``vaddq_s8``)
forms, signed and unsigned, across 8/16/32(/64)-bit elements.  Beyond the
families shared with x86/HVX, this catalog includes ARM's *fused*
operations — multiply-accumulate (``vmla``), absolute-difference-
accumulate (``vaba``), shift-right-accumulate (``vsra``), pairwise
add-accumulate (``vpadal``), widening multiply-accumulate (``vmlal``) —
which the paper highlights as the reason ARM shares few equivalence
classes with the other two ISAs.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.bitvector.bv import BitVector
from repro.bitvector.lanes import Vector, vector_from_elems
from repro.isa.spec import InstructionSpec, IsaCatalog, OperandSpec

FORMS = (64, 128)  # D and Q registers
_TYPE = {True: "s", False: "u"}


def _spec(name, asm, operands, output_width, pseudocode, family, latency,
          throughput, reference, **attributes) -> InstructionSpec:
    return InstructionSpec(
        name=name,
        isa="arm",
        asm=asm,
        operands=tuple(operands),
        output_width=output_width,
        pseudocode=pseudocode,
        extension="NEON",
        family=family,
        latency=latency,
        throughput=throughput,
        reference=reference,
        attributes=attributes,
    )


def _loop(count: int, body: str) -> str:
    return f"for e = 0 to {count - 1}\n    {body}\nendfor\n"


def _elem(name: str, ew: int, index: str = "e") -> str:
    return f"Elem[{name}, {index}, {ew}]"


def _q(form: int) -> str:
    return "q" if form == 128 else ""


def _ref_lanewise(ew: int, fn: Callable, names=("operand1", "operand2")):
    def run(env):
        vecs = [Vector(env[n], ew) for n in names]
        out = [fn(*(v.elem(i) for v in vecs)) for i in range(vecs[0].num_elems)]
        return vector_from_elems(out).bits

    return run


def _two(form: int) -> list[OperandSpec]:
    return [OperandSpec("operand1", form), OperandSpec("operand2", form)]


def _three(form: int) -> list[OperandSpec]:
    return [OperandSpec("acc", form)] + _two(form)


# ----------------------------------------------------------------------
# Element-wise arithmetic (both signed and unsigned intrinsic names)
# ----------------------------------------------------------------------


def _gen_arith(specs: list[InstructionSpec]) -> None:
    for form in FORMS:
        for ew in (8, 16, 32, 64):
            count = form // ew
            a, b = _elem("operand1", ew), _elem("operand2", ew)
            d = _elem("result", ew)
            sign_agnostic = [
                ("add", f"{a} + {b}", lambda x, y: x.bvadd(y), "ew_add", 3.0),
                ("sub", f"{a} - {b}", lambda x, y: x.bvsub(y), "ew_sub", 3.0),
            ]
            for op, rhs, fn, family, lat in sign_agnostic:
                for signed in (True, False):
                    name = f"v{op}{_q(form)}_{_TYPE[signed]}{ew}"
                    specs.append(
                        _spec(name, op, _two(form), form, _loop(count, f"{d} = {rhs}"),
                              family, lat, 0.5, _ref_lanewise(ew, fn),
                              elem_width=ew, simd=True))
            signed_pairs = [
                ("qadd", "SAddSat({a}, {b})", "UAddSat({a}, {b})",
                 lambda x, y: x.bvsaddsat(y), lambda x, y: x.bvuaddsat(y), "ew_adds"),
                ("qsub", "SSubSat({a}, {b})", "USubSat({a}, {b})",
                 lambda x, y: x.bvssubsat(y), lambda x, y: x.bvusubsat(y), "ew_subs"),
            ]
            for op, rhs_s, rhs_u, fn_s, fn_u, family in signed_pairs:
                for signed in (True, False):
                    rhs = (rhs_s if signed else rhs_u).format(a=a, b=b)
                    fn = fn_s if signed else fn_u
                    fam = family if signed else family.replace("s", "us", 1) + ""
                    name = f"v{op}{_q(form)}_{_TYPE[signed]}{ew}"
                    specs.append(
                        _spec(name, op, _two(form), form, _loop(count, f"{d} = {rhs}"),
                              f"{family}_{_TYPE[signed]}", 3.0, 0.5,
                              _ref_lanewise(ew, fn), elem_width=ew, simd=True))
            if ew == 64:
                continue  # remaining families stop at 32-bit elements
            for signed in (True, False):
                t = _TYPE[signed]
                half = "SHalvingAdd" if signed else "UHalvingAdd"
                rhalf = "SRHalvingAdd" if signed else "URHalvingAdd"
                fn_h = (lambda x, y: x.bvsavg(y)) if signed else (
                    lambda x, y: x.bvuavg(y))
                fn_rh = (lambda x, y: x.bvsavg(y, round_up=True)) if signed else (
                    lambda x, y: x.bvuavg(y, round_up=True))
                specs.append(
                    _spec(f"vhadd{_q(form)}_{t}{ew}", "hadd", _two(form), form,
                          _loop(count, f"{d} = {half}({a}, {b})"),
                          f"ew_havg_{t}", 3.0, 0.5, _ref_lanewise(ew, fn_h),
                          elem_width=ew, simd=True))
                specs.append(
                    _spec(f"vrhadd{_q(form)}_{t}{ew}", "rhadd", _two(form), form,
                          _loop(count, f"{d} = {rhalf}({a}, {b})"),
                          f"ew_ravg_{t}", 3.0, 0.5, _ref_lanewise(ew, fn_rh),
                          elem_width=ew, simd=True))
                # Halving subtract via explicit widening.
                wide = ew + 1
                ext = "SExt" if signed else "UExt"
                rhs = (f"Trunc((({ext}({a}, {wide}) - {ext}({b}, {wide}))"
                       f" >>> 1), {ew})")

                def fn_hsub(x, y, signed=signed, wide=wide, ew=ew):
                    wx = x.sext(wide) if signed else x.zext(wide)
                    wy = y.sext(wide) if signed else y.zext(wide)
                    return wx.bvsub(wy).bvashr(BitVector(1, wide)).trunc(ew)

                specs.append(
                    _spec(f"vhsub{_q(form)}_{t}{ew}", "hsub", _two(form), form,
                          _loop(count, f"{d} = {rhs}"), f"ew_hsub_{t}", 3.0,
                          0.5, _ref_lanewise(ew, fn_hsub), elem_width=ew,
                          simd=True))
                # min/max
                mn = "MinS" if signed else "MinU"
                mx = "MaxS" if signed else "MaxU"
                fn_min = (lambda x, y: x.bvsmin(y)) if signed else (
                    lambda x, y: x.bvumin(y))
                fn_max = (lambda x, y: x.bvsmax(y)) if signed else (
                    lambda x, y: x.bvumax(y))
                specs.append(
                    _spec(f"vmin{_q(form)}_{t}{ew}", "min", _two(form), form,
                          _loop(count, f"{d} = {mn}({a}, {b})"),
                          f"ew_min_{t}", 3.0, 0.5, _ref_lanewise(ew, fn_min),
                          elem_width=ew, simd=True))
                specs.append(
                    _spec(f"vmax{_q(form)}_{t}{ew}", "max", _two(form), form,
                          _loop(count, f"{d} = {mx}({a}, {b})"),
                          f"ew_max_{t}", 3.0, 0.5, _ref_lanewise(ew, fn_max),
                          elem_width=ew, simd=True))
                # Absolute difference and the fused accumulate form.
                mxd = f"{mx}({a}, {b}) - {mn}({a}, {b})"

                def fn_abd(x, y, signed=signed):
                    if signed:
                        return x.bvsmax(y).bvsub(x.bvsmin(y))
                    return x.bvumax(y).bvsub(x.bvumin(y))

                specs.append(
                    _spec(f"vabd{_q(form)}_{t}{ew}", "abd", _two(form), form,
                          _loop(count, f"{d} = {mxd}"), f"ew_abd_{t}", 3.0,
                          0.5, _ref_lanewise(ew, fn_abd), elem_width=ew,
                          simd=True))

                def fn_aba(z, x, y, signed=signed):
                    if signed:
                        return z.bvadd(x.bvsmax(y).bvsub(x.bvsmin(y)))
                    return z.bvadd(x.bvumax(y).bvsub(x.bvumin(y)))

                specs.append(
                    _spec(f"vaba{_q(form)}_{t}{ew}", "aba", _three(form), form,
                          _loop(count, f"{d} = {_elem('acc', ew)} + ({mxd})"),
                          f"ew_aba_{t}", 4.0, 1.0,
                          _ref_lanewise(ew, fn_aba,
                                        names=("acc", "operand1", "operand2")),
                          elem_width=ew, simd=True, fused=True))


def _gen_mul(specs: list[InstructionSpec]) -> None:
    for form in FORMS:
        for ew in (8, 16, 32):
            count = form // ew
            a, b = _elem("operand1", ew), _elem("operand2", ew)
            d = _elem("result", ew)
            acc = _elem("acc", ew)
            mul_rhs = f"Trunc(SExt({a}, {2 * ew}) * SExt({b}, {2 * ew}), {ew})"
            for signed in (True, False):
                t = _TYPE[signed]
                specs.append(
                    _spec(f"vmul{_q(form)}_{t}{ew}", "mul", _two(form), form,
                          _loop(count, f"{d} = {mul_rhs}"), "ew_mullo", 4.0,
                          1.0, _ref_lanewise(ew, lambda x, y: x.bvmul(y)),
                          elem_width=ew, simd=True))
                # Fused multiply-accumulate / multiply-subtract.
                specs.append(
                    _spec(f"vmla{_q(form)}_{t}{ew}", "mla", _three(form), form,
                          _loop(count, f"{d} = {acc} + {mul_rhs}"),
                          "ew_mla", 4.0, 1.0,
                          _ref_lanewise(
                              ew, lambda z, x, y: z.bvadd(x.bvmul(y)),
                              names=("acc", "operand1", "operand2")),
                          elem_width=ew, simd=True, fused=True))
                specs.append(
                    _spec(f"vmls{_q(form)}_{t}{ew}", "mls", _three(form), form,
                          _loop(count, f"{d} = {acc} - {mul_rhs}"),
                          "ew_mls", 4.0, 1.0,
                          _ref_lanewise(
                              ew, lambda z, x, y: z.bvsub(x.bvmul(y)),
                              names=("acc", "operand1", "operand2")),
                          elem_width=ew, simd=True, fused=True))
    # Widening multiplies (Q output from D inputs): vmull / vmlal / vmlsl.
    for ew in (8, 16, 32):
        count = 64 // ew
        dst_ew = 2 * ew
        for signed in (True, False):
            t = _TYPE[signed]
            ext = "SExt" if signed else "UExt"
            a = _elem("operand1", ew)
            b = _elem("operand2", ew)
            d = _elem("result", dst_ew)
            acc = _elem("acc", dst_ew)
            prod = f"{ext}({a}, {dst_ew}) * {ext}({b}, {dst_ew})"

            def fn_mull(x, y, signed=signed, dst_ew=dst_ew):
                wx = x.sext(dst_ew) if signed else x.zext(dst_ew)
                wy = y.sext(dst_ew) if signed else y.zext(dst_ew)
                return wx.bvmul(wy)

            specs.append(
                _spec(f"vmull_{t}{ew}", "mull", _two(64), 128,
                      _loop(count, f"{d} = {prod}"), "widening_mul", 4.0,
                      1.0, _ref_lanewise(ew, fn_mull), elem_width=dst_ew,
                      widening=True))
            for op, sym in (("mlal", "+"), ("mlsl", "-")):
                def fn_fused(z, x, y, signed=signed, dst_ew=dst_ew, sym=sym):
                    wx = x.sext(dst_ew) if signed else x.zext(dst_ew)
                    wy = y.sext(dst_ew) if signed else y.zext(dst_ew)
                    p = wx.bvmul(wy)
                    return z.bvadd(p) if sym == "+" else z.bvsub(p)

                def ref(env, fn_fused=fn_fused, ew=ew, dst_ew=dst_ew, count=count):
                    va = Vector(env["operand1"], ew)
                    vb = Vector(env["operand2"], ew)
                    vz = Vector(env["acc"], dst_ew)
                    out = [
                        fn_fused(vz.elem(i), va.elem(i), vb.elem(i))
                        for i in range(count)
                    ]
                    return vector_from_elems(out).bits

                specs.append(
                    _spec(f"v{op}_{t}{ew}", op,
                          [OperandSpec("acc", 128)] + _two(64), 128,
                          _loop(count, f"{d} = {acc} {sym} {prod}"),
                          f"widening_{op}", 4.0, 1.0, ref,
                          elem_width=dst_ew, widening=True, fused=True))
    # Saturating doubling multiply high half.
    for form in FORMS:
        for ew in (16, 32):
            count = form // ew
            wide = 2 * ew + 2
            a, b = _elem("operand1", ew), _elem("operand2", ew)
            d = _elem("result", ew)
            rhs = (f"SatS((SExt({a}, {wide}) * SExt({b}, {wide}) * 2)"
                   f" >>> {ew}, {ew})")

            def fn_qdmulh(x, y, ew=ew, wide=wide):
                prod = x.sext(wide).bvmul(y.sext(wide))
                doubled = prod.bvmul(BitVector(2, wide))
                return doubled.bvashr(BitVector(ew, wide)).saturate_to_signed(ew)

            specs.append(
                _spec(f"vqdmulh{_q(form)}_s{ew}", "qdmulh", _two(form), form,
                      _loop(count, f"{d} = {rhs}"), "ew_qdmulh", 4.0, 1.0,
                      _ref_lanewise(ew, fn_qdmulh), elem_width=ew, simd=True))


def _gen_unary(specs: list[InstructionSpec]) -> None:
    for form in FORMS:
        for ew in (8, 16, 32):
            count = form // ew
            a = _elem("operand1", ew)
            d = _elem("result", ew)
            cases = [
                ("vabs", f"Abs({a})", lambda x: x.bvabs(), "ew_abs"),
                ("vneg", f"0 - {a}", lambda x: x.bvneg(), "ew_neg"),
                ("vqabs", f"SatS(Abs(SExt({a}, {ew + 1})), {ew})",
                 lambda x, ew=ew: x.sext(ew + 1).bvabs().saturate_to_signed(ew),
                 "ew_qabs"),
                ("vqneg", f"SatS(0 - SExt({a}, {ew + 1}), {ew})",
                 lambda x, ew=ew: x.sext(ew + 1).bvneg().saturate_to_signed(ew),
                 "ew_qneg"),
            ]
            for op, rhs, fn, family in cases:
                specs.append(
                    _spec(f"{op}{_q(form)}_s{ew}", op[1:],
                          [OperandSpec("operand1", form)], form,
                          _loop(count, f"{d} = {rhs}"), family, 3.0, 0.5,
                          _ref_lanewise(ew, fn, names=("operand1",)),
                          elem_width=ew, simd=True))
        # popcount (bytes) and clz
        count = form // 8
        specs.append(
            _spec(f"vcnt{_q(form)}_u8", "cnt", [OperandSpec("operand1", form)],
                  form, _loop(count, f"{_elem('result', 8)} = CountBits({_elem('operand1', 8)})"),
                  "count_pop", 3.0, 0.5,
                  _ref_lanewise(8, lambda x: x.popcount(), names=("operand1",)),
                  elem_width=8, simd=True))


def _gen_logic(specs: list[InstructionSpec]) -> None:
    for form in FORMS:
        hi = form - 1
        cases = [
            ("vand", f"result[{hi}:0] = operand1[{hi}:0] & operand2[{hi}:0]",
             lambda env: env["operand1"].bvand(env["operand2"]), "logic_and"),
            ("vorr", f"result[{hi}:0] = operand1[{hi}:0] | operand2[{hi}:0]",
             lambda env: env["operand1"].bvor(env["operand2"]), "logic_or"),
            ("veor", f"result[{hi}:0] = operand1[{hi}:0] ^ operand2[{hi}:0]",
             lambda env: env["operand1"].bvxor(env["operand2"]), "logic_xor"),
            ("vbic", f"result[{hi}:0] = operand1[{hi}:0] & (~operand2[{hi}:0])",
             lambda env: env["operand1"].bvand(env["operand2"].bvnot()), "logic_bic"),
            ("vorn", f"result[{hi}:0] = operand1[{hi}:0] | (~operand2[{hi}:0])",
             lambda env: env["operand1"].bvor(env["operand2"].bvnot()), "logic_orn"),
        ]
        for op, body, fn, family in cases:
            specs.append(
                _spec(f"{op}{_q(form)}_u32", op[1:], _two(form), form,
                      body + "\n", family, 3.0, 0.33, fn, elem_width=form,
                      simd=True))
        specs.append(
            _spec(f"vmvn{_q(form)}_u32", "mvn", [OperandSpec("operand1", form)],
                  form, f"result[{hi}:0] = ~operand1[{hi}:0]\n", "logic_not",
                  3.0, 0.33, lambda env: env["operand1"].bvnot(),
                  elem_width=form, simd=True))
        # Bitwise select.
        body = (f"result[{hi}:0] = (operand1[{hi}:0] & mask[{hi}:0]) | "
                f"(operand2[{hi}:0] & (~mask[{hi}:0]))\n")
        specs.append(
            _spec(f"vbsl{_q(form)}_u32", "bsl",
                  [OperandSpec("mask", form)] + _two(form), form, body,
                  "logic_bsl", 3.0, 0.5,
                  lambda env: env["operand1"].bvand(env["mask"]).bvor(
                      env["operand2"].bvand(env["mask"].bvnot())),
                  elem_width=form, simd=True))


def _gen_shifts(specs: list[InstructionSpec]) -> None:
    imm = OperandSpec("shift", 8, is_immediate=True)
    for form in FORMS:
        for ew in (8, 16, 32, 64):
            count = form // ew
            a = _elem("operand1", ew)
            d = _elem("result", ew)
            acc = _elem("acc", ew)
            shift_arg = f"UExt(shift, {ew})"
            for signed in (True, False):
                t = _TYPE[signed]
                shr = ">>>" if signed else ">>"

                def fn_shr(x, env_shift, signed=signed):
                    return x.bvashr(env_shift) if signed else x.bvlshr(env_shift)

                def ref_shr(env, ew=ew, signed=signed):
                    amount = env["shift"].resize_unsigned(ew)
                    return Vector(env["operand1"], ew).map_lanes(
                        lambda x: x.bvashr(amount) if signed else x.bvlshr(amount)
                    ).bits

                specs.append(
                    _spec(f"vshr{_q(form)}_n_{t}{ew}", "shr",
                          [OperandSpec("operand1", form), imm], form,
                          _loop(count, f"{d} = {a} {shr} {shift_arg}"),
                          f"shift_imm_{'ashr' if signed else 'lshr'}", 3.0,
                          0.5, ref_shr, elem_width=ew, simd=True))

                # Fused shift-right-accumulate.
                def ref_sra(env, ew=ew, signed=signed):
                    amount = env["shift"].resize_unsigned(ew)
                    va = Vector(env["operand1"], ew)
                    vz = Vector(env["acc"], ew)
                    out = []
                    for i in range(va.num_elems):
                        shifted = (va.elem(i).bvashr(amount) if signed
                                   else va.elem(i).bvlshr(amount))
                        out.append(vz.elem(i).bvadd(shifted))
                    return vector_from_elems(out).bits

                specs.append(
                    _spec(f"vsra{_q(form)}_n_{t}{ew}", "sra",
                          [OperandSpec("acc", form),
                           OperandSpec("operand1", form), imm], form,
                          _loop(count, f"{d} = {acc} + ({a} {shr} {shift_arg})"),
                          "shift_sra", 3.0, 1.0, ref_sra, elem_width=ew,
                          simd=True, fused=True))

            def ref_shl(env, ew=ew):
                amount = env["shift"].resize_unsigned(ew)
                return Vector(env["operand1"], ew).map_lanes(
                    lambda x: x.bvshl(amount)).bits

            specs.append(
                _spec(f"vshl{_q(form)}_n_s{ew}", "shl",
                      [OperandSpec("operand1", form), imm], form,
                      _loop(count, f"{d} = {a} << {shift_arg}"),
                      "shift_imm_shl", 3.0, 0.5, ref_shl, elem_width=ew,
                      simd=True))
    # Rounding and saturating shift variants.
    for form in FORMS:
        for ew in (8, 16, 32):
            count = form // ew
            a = _elem("operand1", ew)
            d = _elem("result", ew)
            shift_arg = f"UExt(shift, {ew})"
            wide = ew + 1
            for signed in (True, False):
                t = _TYPE[signed]
                ext = "SExt" if signed else "UExt"
                shr = ">>>" if signed else ">>"
                # vrshr: shift right with rounding (add 1 << (n-1) first).
                rhs = (f"Trunc(({ext}({a}, {wide}) + (UExt(1, {wide}) << "
                       f"(UExt(shift, {wide}) - UExt(1, {wide})))) "
                       f"{shr} {f'UExt(shift, {wide})'}, {ew})")

                def ref_rshr(env, ew=ew, wide=wide, signed=signed):
                    from repro.bitvector.bv import BitVector as BV

                    shift = env["shift"].resize_unsigned(wide)
                    one = BV(1, wide)
                    rounding = one.bvshl(shift.bvsub(one))

                    def per_lane(x):
                        wx = x.sext(wide) if signed else x.zext(wide)
                        total = wx.bvadd(rounding)
                        shifted = total.bvashr(shift) if signed else total.bvlshr(shift)
                        return shifted.trunc(ew)

                    return Vector(env["operand1"], ew).map_lanes(per_lane).bits

                specs.append(
                    _spec(f"vrshr{_q(form)}_n_{t}{ew}", "rshr",
                          [OperandSpec("operand1", form), imm], form,
                          _loop(count, f"{d} = {rhs}"), "shift_rshr", 3.0,
                          0.5, ref_rshr, elem_width=ew, simd=True))
            # vqshl_n: saturating left shift by immediate.
            rhs = f"SatS(SExt({a}, {2 * ew}) << UExt(shift, {2 * ew}), {ew})"

            def ref_qshl(env, ew=ew):
                amount = env["shift"].resize_unsigned(2 * ew)

                def per_lane(x):
                    return x.sext(2 * ew).bvshl(amount).saturate_to_signed(ew)

                return Vector(env["operand1"], ew).map_lanes(per_lane).bits

            specs.append(
                _spec(f"vqshl{_q(form)}_n_s{ew}", "qshl",
                      [OperandSpec("operand1", form), imm], form,
                      _loop(count, f"{d} = {rhs}"), "shift_qshl", 3.0, 0.5,
                      ref_qshl, elem_width=ew, simd=True))
    # Narrowing and widening moves.
    for ew in (16, 32, 64):
        narrow = ew // 2
        count = 64 // narrow
        a = _elem("operand1", ew)
        d = _elem("result", narrow)
        specs.append(
            _spec(f"vmovn_s{ew}", "movn", [OperandSpec("operand1", 128)], 64,
                  _loop(count, f"{d} = Trunc({a}, {narrow})"), "narrow_trunc",
                  3.0, 0.5,
                  _ref_lanewise(ew, lambda x, narrow=narrow: x.trunc(narrow),
                                names=("operand1",)),
                  elem_width=narrow, swizzle=True))
        for signed in (True, False):
            t = _TYPE[signed]
            sat = "SatS" if signed else "SatU"

            def fn_qmovn(x, narrow=narrow, signed=signed):
                if signed:
                    return x.saturate_to_signed(narrow)
                return x.saturate_to_unsigned(narrow)

            specs.append(
                _spec(f"vqmovn_{t}{ew}", "qmovn", [OperandSpec("operand1", 128)],
                      64, _loop(count, f"{d} = {sat}({a}, {narrow})"),
                      f"narrow_sat_{t}", 3.0, 0.5,
                      _ref_lanewise(ew, fn_qmovn, names=("operand1",)),
                      elem_width=narrow, swizzle=True))
    for ew in (8, 16, 32):
        wide = 2 * ew
        count = 64 // ew
        a = _elem("operand1", ew)
        d = _elem("result", wide)
        for signed in (True, False):
            t = _TYPE[signed]
            ext = "SExt" if signed else "UExt"

            def fn_movl(x, wide=wide, signed=signed):
                return x.sext(wide) if signed else x.zext(wide)

            specs.append(
                _spec(f"vmovl_{t}{ew}", "movl", [OperandSpec("operand1", 64)],
                      128, _loop(count, f"{d} = {ext}({a}, {wide})"),
                      f"widen_{t}", 3.0, 0.5,
                      _ref_lanewise(ew, fn_movl, names=("operand1",)),
                      elem_width=wide, swizzle=True))


def _gen_widening_add(specs: list[InstructionSpec]) -> None:
    """vaddl/vaddw/vsubl/vsubw and the narrowing vaddhn/vsubhn."""
    for ew in (8, 16, 32):
        wide = 2 * ew
        count = 64 // ew
        d = _elem("result", wide)
        for signed in (True, False):
            t = _TYPE[signed]
            ext = "SExt" if signed else "UExt"
            for op, sym in (("addl", "+"), ("subl", "-")):
                a = _elem("operand1", ew)
                b = _elem("operand2", ew)
                rhs = f"{ext}({a}, {wide}) {sym} {ext}({b}, {wide})"

                def fn_l(x, y, signed=signed, wide=wide, sym=sym):
                    wx = x.sext(wide) if signed else x.zext(wide)
                    wy = y.sext(wide) if signed else y.zext(wide)
                    return wx.bvadd(wy) if sym == "+" else wx.bvsub(wy)

                specs.append(
                    _spec(f"v{op}_{t}{ew}", op, _two(64), 128,
                          _loop(count, f"{d} = {rhs}"), f"widening_{op}",
                          3.0, 0.5, _ref_lanewise(ew, fn_l),
                          elem_width=wide, widening=True))
            for op, sym in (("addw", "+"), ("subw", "-")):
                a = _elem("operand1", wide)
                b = _elem("operand2", ew)
                rhs = f"{a} {sym} {ext}({b}, {wide})"

                def ref_w(env, signed=signed, wide=wide, ew=ew, sym=sym, count=count):
                    va = Vector(env["operand1"], wide)
                    vb = Vector(env["operand2"], ew)
                    out = []
                    for i in range(count):
                        wy = vb.elem(i).sext(wide) if signed else vb.elem(i).zext(wide)
                        out.append(va.elem(i).bvadd(wy) if sym == "+"
                                   else va.elem(i).bvsub(wy))
                    return vector_from_elems(out).bits

                specs.append(
                    _spec(f"v{op}_{t}{ew}", op,
                          [OperandSpec("operand1", 128), OperandSpec("operand2", 64)],
                          128, _loop(count, f"{d} = {rhs}"), f"widening_{op}",
                          3.0, 0.5, ref_w, elem_width=wide, widening=True))
        # vaddhn: add, keep the high half of each element (narrowing).
        a = _elem("operand1", wide)
        b = _elem("operand2", wide)
        d_n = _elem("result", ew)
        for op, sym in (("addhn", "+"), ("subhn", "-")):
            rhs = f"Trunc(({a} {sym} {b}) >> {ew}, {ew})"

            def fn_hn(x, y, ew=ew, sym=sym, wide=wide):
                total = x.bvadd(y) if sym == "+" else x.bvsub(y)
                return total.extract(wide - 1, ew)

            specs.append(
                _spec(f"v{op}_s{wide}", op, _two(128), 64,
                      _loop(count, f"{d_n} = {rhs}"), f"narrow_{op}", 3.0,
                      0.5, _ref_lanewise(wide, fn_hn), elem_width=ew,
                      swizzle=True))


def _gen_pairwise(specs: list[InstructionSpec]) -> None:
    for form in FORMS:
        for ew in (8, 16, 32):
            count = form // ew
            half = count // 2
            d = _elem("result", ew)
            # vpadd-style: pairwise add of the concatenation of the inputs.
            for op, mn_mx in (("padd", None), ("pmax", "max"), ("pmin", "min")):
                for signed in (True, False):
                    t = _TYPE[signed]
                    if op == "padd" and not signed:
                        continue  # sign-agnostic; ARM only names it by width
                    lines = []
                    for source_index, source in enumerate(("operand1", "operand2")):
                        x = _elem(source, ew, "2*e")
                        y = _elem(source, ew, "2*e+1")
                        if op == "padd":
                            rhs = f"{x} + {y}"
                        elif op == "pmax":
                            rhs = f"{'MaxS' if signed else 'MaxU'}({x}, {y})"
                        else:
                            rhs = f"{'MinS' if signed else 'MinU'}({x}, {y})"
                        target = _elem("result", ew,
                                       f"e + {half * source_index}")
                        lines.append(
                            f"for e = 0 to {half - 1}\n"
                            f"    {target} = {rhs}\nendfor"
                        )
                    body = "\n".join(lines) + "\n"

                    def ref(env, ew=ew, op=op, signed=signed, half=half):
                        va = Vector(env["operand1"], ew)
                        vb = Vector(env["operand2"], ew)
                        out = []
                        for source in (va, vb):
                            for i in range(half):
                                x, y = source.elem(2 * i), source.elem(2 * i + 1)
                                if op == "padd":
                                    out.append(x.bvadd(y))
                                elif op == "pmax":
                                    out.append(x.bvsmax(y) if signed else x.bvumax(y))
                                else:
                                    out.append(x.bvsmin(y) if signed else x.bvumin(y))
                        return vector_from_elems(out).bits

                    name = f"v{op}{_q(form)}_{t}{ew}"
                    specs.append(
                        _spec(name, op, _two(form), form, body,
                              f"pairwise_{op}", 3.0, 1.0, ref, elem_width=ew,
                              dot_product=(op == "padd")))
            # vpaddl / vpadal: pairwise long add (+ accumulate).
            wide = 2 * ew
            d_w = _elem("result", wide)
            for signed in (True, False):
                t = _TYPE[signed]
                ext = "SExt" if signed else "UExt"
                x = _elem("operand1", ew, "2*e")
                y = _elem("operand1", ew, "2*e+1")
                pair = f"{ext}({x}, {wide}) + {ext}({y}, {wide})"

                def ref_paddl(env, ew=ew, wide=wide, signed=signed, half=half):
                    va = Vector(env["operand1"], ew)
                    out = []
                    for i in range(half):
                        wx = (va.elem(2 * i).sext(wide) if signed
                              else va.elem(2 * i).zext(wide))
                        wy = (va.elem(2 * i + 1).sext(wide) if signed
                              else va.elem(2 * i + 1).zext(wide))
                        out.append(wx.bvadd(wy))
                    return vector_from_elems(out).bits

                specs.append(
                    _spec(f"vpaddl{_q(form)}_{t}{ew}", "paddl",
                          [OperandSpec("operand1", form)], form,
                          _loop(half, f"{d_w} = {pair}"), "pairwise_paddl",
                          3.0, 1.0, ref_paddl, elem_width=wide,
                          dot_product=True))

                def ref_padal(env, ew=ew, wide=wide, signed=signed, half=half):
                    va = Vector(env["operand1"], ew)
                    vz = Vector(env["acc"], wide)
                    out = []
                    for i in range(half):
                        wx = (va.elem(2 * i).sext(wide) if signed
                              else va.elem(2 * i).zext(wide))
                        wy = (va.elem(2 * i + 1).sext(wide) if signed
                              else va.elem(2 * i + 1).zext(wide))
                        out.append(vz.elem(i).bvadd(wx.bvadd(wy)))
                    return vector_from_elems(out).bits

                specs.append(
                    _spec(f"vpadal{_q(form)}_{t}{ew}", "padal",
                          [OperandSpec("acc", form), OperandSpec("operand1", form)],
                          form,
                          _loop(half, f"{d_w} = {_elem('acc', wide)} + {pair}"),
                          "pairwise_padal", 4.0, 1.0, ref_padal,
                          elem_width=wide, dot_product=True, fused=True))


def _gen_dot(specs: list[InstructionSpec]) -> None:
    """sdot/udot: 4-way 8-bit dot product accumulating into 32-bit."""
    for form in FORMS:
        count = form // 32
        for signed in (True, False):
            t = _TYPE[signed]
            ext = "SExt" if signed else "UExt"
            terms = " + ".join(
                f"{ext}({_elem('operand1', 8, f'4*e+{q}')}, 32) * "
                f"{ext}({_elem('operand2', 8, f'4*e+{q}')}, 32)"
                for q in range(4)
            )
            body = _loop(count, f"{_elem('result', 32)} = {_elem('acc', 32)} + {terms}")

            def ref(env, signed=signed, count=count):
                va = Vector(env["operand1"], 8)
                vb = Vector(env["operand2"], 8)
                vz = Vector(env["acc"], 32)
                out = []
                for i in range(count):
                    total = vz.elem(i)
                    for q in range(4):
                        x, y = va.elem(4 * i + q), vb.elem(4 * i + q)
                        wx = x.sext(32) if signed else x.zext(32)
                        wy = y.sext(32) if signed else y.zext(32)
                        total = total.bvadd(wx.bvmul(wy))
                    out.append(total)
                return vector_from_elems(out).bits

            specs.append(
                _spec(f"v{'s' if signed else 'u'}dot{_q(form)}_{t}32",
                      "dot", _three(form), form, body, "dot_4way", 4.0, 1.0,
                      ref, elem_width=32, dot_product=True, fused=True,
                      reduction_width=4))


def _gen_swizzles(specs: list[InstructionSpec]) -> None:
    for form in FORMS:
        for ew in (8, 16, 32):
            count = form // ew
            half = count // 2
            if half == 0:
                continue
            # vzip: interleave two vectors -> pair output (both halves).
            lines = [
                f"for e = 0 to {count - 1}",
                f"    {_elem('result', ew, '2*e')} = {_elem('operand1', ew)}",
                f"    {_elem('result', ew, '2*e+1')} = {_elem('operand2', ew)}",
                "endfor",
            ]

            def ref_zip(env, ew=ew, count=count):
                va = Vector(env["operand1"], ew)
                vb = Vector(env["operand2"], ew)
                out = []
                for i in range(count):
                    out.append(va.elem(i))
                    out.append(vb.elem(i))
                return vector_from_elems(out).bits

            specs.append(
                _spec(f"vzip{_q(form)}_u{ew}", "zip", _two(form), 2 * form,
                      "\n".join(lines) + "\n", "swizzle_zip", 3.0, 1.0,
                      ref_zip, elem_width=ew, swizzle=True, pair=True))
            # vuzp: de-interleave the concatenation of two vectors.
            lines = [
                f"for e = 0 to {count - 1}",
                f"    {_elem('result', ew, 'e')} = "
                f"{_elem('operand1', ew, '2*e') if False else ''}",
            ]
            # evens from the pair (operand1 low, operand2 high)
            lines = []
            for src_index, source in enumerate(("operand1", "operand2")):
                lines.append(f"for e = 0 to {half - 1}")
                lines.append(
                    f"    {_elem('result', ew, f'e + {src_index * half}')} = "
                    f"{_elem(source, ew, '2*e')}")
                lines.append("endfor")
            for src_index, source in enumerate(("operand1", "operand2")):
                lines.append(f"for e = 0 to {half - 1}")
                lines.append(
                    f"    {_elem('result', ew, f'e + {count + src_index * half}')} = "
                    f"{_elem(source, ew, '2*e+1')}")
                lines.append("endfor")

            def ref_uzp(env, ew=ew, half=half):
                va = Vector(env["operand1"], ew)
                vb = Vector(env["operand2"], ew)
                evens = [v.elem(2 * i) for v in (va, vb) for i in range(half)]
                odds = [v.elem(2 * i + 1) for v in (va, vb) for i in range(half)]
                return vector_from_elems(evens + odds).bits

            specs.append(
                _spec(f"vuzp{_q(form)}_u{ew}", "uzp", _two(form), 2 * form,
                      "\n".join(lines) + "\n", "swizzle_uzp", 3.0, 1.0,
                      ref_uzp, elem_width=ew, swizzle=True, pair=True))
            # vtrn: transpose pairs.
            lines = [
                f"for e = 0 to {half - 1}",
                f"    {_elem('result', ew, '2*e')} = {_elem('operand1', ew, '2*e')}",
                f"    {_elem('result', ew, '2*e+1')} = {_elem('operand2', ew, '2*e')}",
                "endfor",
                f"for e = 0 to {half - 1}",
                f"    {_elem('result', ew, f'2*e + {count}')} = "
                f"{_elem('operand1', ew, '2*e+1')}",
                f"    {_elem('result', ew, f'2*e+1 + {count}')} = "
                f"{_elem('operand2', ew, '2*e+1')}",
                "endfor",
            ]

            def ref_trn(env, ew=ew, half=half, count=count):
                va = Vector(env["operand1"], ew)
                vb = Vector(env["operand2"], ew)
                out = [None] * (2 * count)
                for i in range(half):
                    out[2 * i] = va.elem(2 * i)
                    out[2 * i + 1] = vb.elem(2 * i)
                    out[2 * i + count] = va.elem(2 * i + 1)
                    out[2 * i + 1 + count] = vb.elem(2 * i + 1)
                return vector_from_elems(out).bits

            specs.append(
                _spec(f"vtrn{_q(form)}_u{ew}", "trn", _two(form), 2 * form,
                      "\n".join(lines) + "\n", "swizzle_trn", 3.0, 1.0,
                      ref_trn, elem_width=ew, swizzle=True, pair=True))
        # vext with element offset half: concatenate upper/lower halves.
        for ew in (8, 16):
            count = form // ew
            half = count // 2
            lines = [
                f"for e = 0 to {half - 1}",
                f"    {_elem('result', ew)} = {_elem('operand1', ew, f'e + {half}')}",
                "endfor",
                f"for e = 0 to {half - 1}",
                f"    {_elem('result', ew, f'e + {half}')} = {_elem('operand2', ew)}",
                "endfor",
            ]

            def ref_ext(env, ew=ew, half=half):
                va = Vector(env["operand1"], ew)
                vb = Vector(env["operand2"], ew)
                out = [va.elem(i + half) for i in range(half)]
                out += [vb.elem(i) for i in range(half)]
                return vector_from_elems(out).bits

            specs.append(
                _spec(f"vext{_q(form)}_half_u{ew}", "ext", _two(form), form,
                      "\n".join(lines) + "\n", "swizzle_ext", 3.0, 1.0,
                      ref_ext, elem_width=ew, swizzle=True))
        # vrev: reverse elements within groups.
        for group_ew, ew_list in ((64, (8, 16, 32)), (32, (8, 16)), (16, (8,))):
            for ew in ew_list:
                per = group_ew // ew
                groups = form // group_ew
                lines = [f"for g = 0 to {groups - 1}"]
                lines.append(f"    for e = 0 to {per - 1}")
                lines.append(
                    f"        {_elem('result', ew, f'g*{per} + e')} = "
                    f"{_elem('operand1', ew, f'g*{per} + {per - 1} - e')}")
                lines.append("    endfor")
                lines.append("endfor")

                def ref_rev(env, ew=ew, per=per, groups=groups):
                    va = Vector(env["operand1"], ew)
                    out = []
                    for g in range(groups):
                        for e in range(per):
                            out.append(va.elem(g * per + per - 1 - e))
                    return vector_from_elems(out).bits

                specs.append(
                    _spec(f"vrev{group_ew}{_q(form)}_u{ew}", "rev",
                          [OperandSpec("operand1", form)], form,
                          "\n".join(lines) + "\n", f"swizzle_rev{group_ew}",
                          3.0, 0.5, ref_rev, elem_width=ew, swizzle=True))
        # vdup from a scalar.
        for ew in (8, 16, 32):
            count = form // ew
            body = _loop(count, f"{_elem('result', ew)} = scalar[{ew - 1}:0]")

            def ref_dup(env, ew=ew, count=count):
                elem = env["scalar"].trunc(ew)
                return vector_from_elems([elem] * count).bits

            specs.append(
                _spec(f"vdup{_q(form)}_n_u{ew}", "dup",
                      [OperandSpec("scalar", 32)], form, body, "broadcast",
                      3.0, 0.5, ref_dup, elem_width=ew, swizzle=True))


def _gen_compare(specs: list[InstructionSpec]) -> None:
    for form in FORMS:
        for ew in (8, 16, 32):
            count = form // ew
            a, b = _elem("operand1", ew), _elem("operand2", ew)
            d = _elem("result", ew)
            # FullMask idiom: sign-extend the 1-bit predicate.
            cases = [
                ("vceq", f"SExt({a} == {b}, {ew})", "eq", None),
                ("vcgt", f"SExt({a} >s {b}, {ew})", "gt_s", True),
                ("vcgt", f"SExt({a} >u {b}, {ew})", "gt_u", False),
                ("vcge", f"SExt({a} >=s {b}, {ew})", "ge_s", True),
                ("vcge", f"SExt({a} >=u {b}, {ew})", "ge_u", False),
            ]
            for op, rhs, kind, signed in cases:
                if kind == "eq":
                    t = "u"
                else:
                    t = _TYPE[signed]

                def fn_cmp(x, y, kind=kind, ew=ew):
                    table = {
                        "eq": x.value == y.value,
                        "gt_s": x.signed > y.signed,
                        "gt_u": x.unsigned > y.unsigned,
                        "ge_s": x.signed >= y.signed,
                        "ge_u": x.unsigned >= y.unsigned,
                    }
                    ones = BitVector((1 << ew) - 1, ew)
                    return ones if table[kind] else BitVector(0, ew)

                specs.append(
                    _spec(f"{op}{_q(form)}_{t}{ew}", op[1:], _two(form), form,
                          _loop(count, f"{d} = {rhs}"), f"cmp_{kind}", 3.0,
                          0.5, _ref_lanewise(ew, fn_cmp), elem_width=ew,
                          simd=True))


def generate_arm_catalog() -> IsaCatalog:
    """Generate the full synthetic ARM NEON manual."""
    specs: list[InstructionSpec] = []
    _gen_arith(specs)
    _gen_mul(specs)
    _gen_unary(specs)
    _gen_logic(specs)
    _gen_shifts(specs)
    _gen_widening_add(specs)
    _gen_pairwise(specs)
    _gen_dot(specs)
    _gen_swizzles(specs)
    _gen_compare(specs)
    return IsaCatalog("arm", specs)
