"""ARM ISA: ASL-style pseudocode dialect, spec generator, and parser."""

from repro.isa.arm.parser import parse_arm_pseudocode, arm_semantics
from repro.isa.arm.specgen import generate_arm_catalog

__all__ = ["parse_arm_pseudocode", "arm_semantics", "generate_arm_catalog"]
