"""Reference executables for instruction families.

Every generated instruction spec carries a ``reference`` callable — an
independent implementation of the instruction built directly on
:class:`repro.bitvector.Vector` — standing in for the "target-specific C
builtins" the paper fuzzes its parsed semantics against.  The reference
path deliberately shares no code with the pseudocode parser/lowerer, so a
divergence means one of the two is wrong (usually the pseudocode, as the
paper found for shifts and saturating ops in vendor manuals).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.bitvector.bv import BitVector
from repro.bitvector.lanes import Vector, vector_from_elems

Env = Mapping[str, BitVector]
Reference = Callable[[Env], BitVector]


def _vec(env: Env, name: str, elem_width: int) -> Vector:
    return Vector(env[name], elem_width)


def _lane_binop(op: Callable[[BitVector, BitVector], BitVector]) -> Callable:
    def make(elem_width: int, a: str = "a", b: str = "b") -> Reference:
        def run(env: Env) -> BitVector:
            va, vb = _vec(env, a, elem_width), _vec(env, b, elem_width)
            return vector_from_elems(
                [op(x, y) for x, y in zip(va.elems(), vb.elems())]
            ).bits

        return run

    return make


# Element-wise binary families -----------------------------------------------

ref_add = _lane_binop(lambda x, y: x.bvadd(y))
ref_sub = _lane_binop(lambda x, y: x.bvsub(y))
ref_mullo = _lane_binop(lambda x, y: x.bvmul(y))
ref_and = _lane_binop(lambda x, y: x.bvand(y))
ref_or = _lane_binop(lambda x, y: x.bvor(y))
ref_xor = _lane_binop(lambda x, y: x.bvxor(y))
ref_andnot = _lane_binop(lambda x, y: x.bvnot().bvand(y))
ref_min_s = _lane_binop(lambda x, y: x.bvsmin(y))
ref_max_s = _lane_binop(lambda x, y: x.bvsmax(y))
ref_min_u = _lane_binop(lambda x, y: x.bvumin(y))
ref_max_u = _lane_binop(lambda x, y: x.bvumax(y))
ref_adds = _lane_binop(lambda x, y: x.bvsaddsat(y))
ref_addus = _lane_binop(lambda x, y: x.bvuaddsat(y))
ref_subs = _lane_binop(lambda x, y: x.bvssubsat(y))
ref_subus = _lane_binop(lambda x, y: x.bvusubsat(y))
ref_avg_u_rnd = _lane_binop(lambda x, y: x.bvuavg(y, round_up=True))
ref_avg_s_rnd = _lane_binop(lambda x, y: x.bvsavg(y, round_up=True))
ref_havg_u = _lane_binop(lambda x, y: x.bvuavg(y))
ref_havg_s = _lane_binop(lambda x, y: x.bvsavg(y))


def ref_mulhi(elem_width: int, signed: bool) -> Reference:
    def run(env: Env) -> BitVector:
        va, vb = _vec(env, "a", elem_width), _vec(env, "b", elem_width)
        out = []
        for x, y in zip(va.elems(), vb.elems()):
            wide_x = x.sext(2 * elem_width) if signed else x.zext(2 * elem_width)
            wide_y = y.sext(2 * elem_width) if signed else y.zext(2 * elem_width)
            out.append(wide_x.bvmul(wide_y).extract(2 * elem_width - 1, elem_width))
        return vector_from_elems(out).bits

    return run


def ref_cmp(elem_width: int, kind: str) -> Reference:
    """All-ones / all-zeros comparison mask per element."""

    def run(env: Env) -> BitVector:
        va, vb = _vec(env, "a", elem_width), _vec(env, "b", elem_width)
        out = []
        ones = BitVector((1 << elem_width) - 1, elem_width)
        zero = BitVector(0, elem_width)
        for x, y in zip(va.elems(), vb.elems()):
            if kind == "eq":
                hit = x.value == y.value
            elif kind == "gt_s":
                hit = x.signed > y.signed
            elif kind == "gt_u":
                hit = x.unsigned > y.unsigned
            else:
                raise ValueError(kind)
            out.append(ones if hit else zero)
        return vector_from_elems(out).bits

    return run


def ref_abs(elem_width: int) -> Reference:
    def run(env: Env) -> BitVector:
        return _vec(env, "a", elem_width).map_lanes(lambda x: x.bvabs()).bits

    return run


def ref_neg(elem_width: int) -> Reference:
    def run(env: Env) -> BitVector:
        return _vec(env, "a", elem_width).map_lanes(lambda x: x.bvneg()).bits

    return run


def ref_not() -> Reference:
    def run(env: Env) -> BitVector:
        return env["a"].bvnot()

    return run


def ref_shift_imm(elem_width: int, kind: str) -> Reference:
    def run(env: Env) -> BitVector:
        amount = env["imm"].zext(elem_width) if env["imm"].width < elem_width else env[
            "imm"
        ].trunc(elem_width)

        def shift(x: BitVector) -> BitVector:
            if kind == "shl":
                return x.bvshl(amount)
            if kind == "lshr":
                return x.bvlshr(amount)
            return x.bvashr(amount)

        return _vec(env, "a", elem_width).map_lanes(shift).bits

    return run


def ref_shift_var(elem_width: int, kind: str) -> Reference:
    def run(env: Env) -> BitVector:
        va, vb = _vec(env, "a", elem_width), _vec(env, "b", elem_width)
        out = []
        for x, y in zip(va.elems(), vb.elems()):
            if kind == "shl":
                out.append(x.bvshl(y))
            elif kind == "lshr":
                out.append(x.bvlshr(y))
            else:
                out.append(x.bvashr(y))
        return vector_from_elems(out).bits

    return run


def ref_rotate(elem_width: int, left: bool) -> Reference:
    def run(env: Env) -> BitVector:
        amount = env["imm"].resize_unsigned(elem_width)

        def rot(x: BitVector) -> BitVector:
            return x.bvrotl(amount) if left else x.bvrotr(amount)

        return _vec(env, "a", elem_width).map_lanes(rot).bits

    return run


# Swizzle families -------------------------------------------------------------


def ref_unpack(
    elem_width: int, vector_width: int, high: bool, lane_bits: int = 128
) -> Reference:
    """Interleave elements from the low/high half of each lane.

    ``lane_bits`` is the spec's lane width (x86 passes its 128-bit SSE
    lane); it is a parameter so VLEN-parametric references don't mis-lane.
    """
    if lane_bits % elem_width or vector_width % lane_bits:
        raise ValueError(
            f"lane width {lane_bits} incompatible with element {elem_width} "
            f"/ vector {vector_width}"
        )

    def run(env: Env) -> BitVector:
        va, vb = _vec(env, "a", elem_width), _vec(env, "b", elem_width)
        lane_elems = lane_bits // elem_width
        half = lane_elems // 2
        offset = half if high else 0
        out = []
        for lane in range(vector_width // lane_bits):
            base = lane * lane_elems
            for k in range(half):
                out.append(va.elem(base + offset + k))
                out.append(vb.elem(base + offset + k))
        return vector_from_elems(out).bits

    return run


def ref_pack(
    src_width: int, vector_width: int, unsigned: bool, lane_bits: int = 128
) -> Reference:
    """Narrow two vectors with saturation, one lane at a time."""
    dst_width = src_width // 2
    if lane_bits % src_width or vector_width % lane_bits:
        raise ValueError(
            f"lane width {lane_bits} incompatible with element {src_width} "
            f"/ vector {vector_width}"
        )

    def run(env: Env) -> BitVector:
        va, vb = _vec(env, "a", src_width), _vec(env, "b", src_width)
        lane_elems = lane_bits // src_width
        out = []
        for lane in range(vector_width // lane_bits):
            base = lane * lane_elems
            for source in (va, vb):
                for k in range(lane_elems):
                    elem = source.elem(base + k)
                    if unsigned:
                        out.append(elem.saturate_to_unsigned(dst_width))
                    else:
                        out.append(elem.saturate_to_signed(dst_width))
        return vector_from_elems(out).bits

    return run


def ref_broadcast(elem_width: int, count: int) -> Reference:
    def run(env: Env) -> BitVector:
        elem = env["a"].trunc(elem_width)
        return vector_from_elems([elem] * count).bits

    return run


def ref_convert(src_width: int, dst_width: int, count: int, signed: bool) -> Reference:
    def run(env: Env) -> BitVector:
        va = _vec(env, "a", src_width)
        out = []
        for k in range(count):
            elem = va.elem(k)
            out.append(elem.sext(dst_width) if signed else elem.zext(dst_width))
        return vector_from_elems(out).bits

    return run


def ref_blendv(elem_width: int) -> Reference:
    """Select per element on the mask element's sign bit."""

    def run(env: Env) -> BitVector:
        va = _vec(env, "a", elem_width)
        vb = _vec(env, "b", elem_width)
        vm = _vec(env, "m", elem_width)
        out = [
            y if m.signed < 0 else x
            for x, y, m in zip(va.elems(), vb.elems(), vm.elems())
        ]
        return vector_from_elems(out).bits

    return run


# Reduction / dot-product families ----------------------------------------------


def ref_maddwd(vector_width: int) -> Reference:
    """pmaddwd: 16x16->32 multiply, horizontal pair add."""

    def run(env: Env) -> BitVector:
        va, vb = _vec(env, "a", 16), _vec(env, "b", 16)
        out = []
        for k in range(vector_width // 32):
            lo = va.elem(2 * k).sext(32).bvmul(vb.elem(2 * k).sext(32))
            hi = va.elem(2 * k + 1).sext(32).bvmul(vb.elem(2 * k + 1).sext(32))
            out.append(lo.bvadd(hi))
        return vector_from_elems(out).bits

    return run


def ref_maddubs(vector_width: int) -> Reference:
    """pmaddubsw: u8 x s8 pair products, saturating pair add."""

    def run(env: Env) -> BitVector:
        va, vb = _vec(env, "a", 8), _vec(env, "b", 8)
        out = []
        for k in range(vector_width // 16):
            lo = va.elem(2 * k).zext(16).bvmul(vb.elem(2 * k).sext(16))
            hi = va.elem(2 * k + 1).zext(16).bvmul(vb.elem(2 * k + 1).sext(16))
            out.append(lo.bvsaddsat(hi))
        return vector_from_elems(out).bits

    return run


def ref_dpwssd(vector_width: int, saturate: bool) -> Reference:
    """VNNI dpwssd(s): 2-way 16-bit dot product accumulating into 32-bit."""

    def run(env: Env) -> BitVector:
        acc = _vec(env, "src", 32)
        va, vb = _vec(env, "a", 16), _vec(env, "b", 16)
        out = []
        for k in range(vector_width // 32):
            lo = va.elem(2 * k).sext(32).bvmul(vb.elem(2 * k).sext(32))
            hi = va.elem(2 * k + 1).sext(32).bvmul(vb.elem(2 * k + 1).sext(32))
            total = lo.bvadd(hi)
            if saturate:
                out.append(acc.elem(k).bvsaddsat(total))
            else:
                out.append(acc.elem(k).bvadd(total))
        return vector_from_elems(out).bits

    return run


def ref_dpbusd(vector_width: int, saturate: bool) -> Reference:
    """VNNI dpbusd(s): 4-way u8 x s8 dot product accumulating into 32-bit."""

    def run(env: Env) -> BitVector:
        acc = _vec(env, "src", 32)
        va, vb = _vec(env, "a", 8), _vec(env, "b", 8)
        out = []
        for k in range(vector_width // 32):
            total = BitVector(0, 32)
            for j in range(4):
                prod = va.elem(4 * k + j).zext(32).bvmul(vb.elem(4 * k + j).sext(32))
                total = total.bvadd(prod)
            if saturate:
                out.append(acc.elem(k).bvsaddsat(total))
            else:
                out.append(acc.elem(k).bvadd(total))
        return vector_from_elems(out).bits

    return run


def ref_hadd(
    elem_width: int, vector_width: int, sub: bool, lane_bits: int = 128
) -> Reference:
    """Horizontal pairwise add/sub within each lane."""
    if lane_bits % elem_width or vector_width % lane_bits:
        raise ValueError(
            f"lane width {lane_bits} incompatible with element {elem_width} "
            f"/ vector {vector_width}"
        )

    def run(env: Env) -> BitVector:
        va, vb = _vec(env, "a", elem_width), _vec(env, "b", elem_width)
        lane_elems = lane_bits // elem_width
        out = []
        for lane in range(vector_width // lane_bits):
            base = lane * lane_elems
            for source in (va, vb):
                for k in range(lane_elems // 2):
                    x = source.elem(base + 2 * k)
                    y = source.elem(base + 2 * k + 1)
                    out.append(x.bvsub(y) if sub else x.bvadd(y))
        return vector_from_elems(out).bits

    return run


def ref_sad(vector_width: int) -> Reference:
    """psadbw: sum of absolute differences over 8-byte groups."""

    def run(env: Env) -> BitVector:
        va, vb = _vec(env, "a", 8), _vec(env, "b", 8)
        out = []
        for group in range(vector_width // 64):
            total = BitVector(0, 64)
            for j in range(8):
                x = va.elem(group * 8 + j).zext(64)
                y = vb.elem(group * 8 + j).zext(64)
                total = total.bvadd(x.bvsub(y).bvabs())
            out.append(total)
        return vector_from_elems(out).bits

    return run


# Masking ------------------------------------------------------------------------


def ref_masked(base: Reference, elem_width: int, count: int, zeroing: bool) -> Reference:
    """AVX-512 mask/maskz wrapper around an element-wise reference."""

    def run(env: Env) -> BitVector:
        raw = Vector(base(env), elem_width)
        mask = env["k"]
        out = []
        for i in range(count):
            if (mask.value >> i) & 1:
                out.append(raw.elem(i))
            elif zeroing:
                out.append(BitVector(0, elem_width))
            else:
                out.append(Vector(env["src"], elem_width).elem(i))
        return vector_from_elems(out).bits

    return run


# Scalar ops -----------------------------------------------------------------------


def ref_scalar(op: str, width: int) -> Reference:
    def run(env: Env) -> BitVector:
        a = env["a"]
        if op in ("not", "neg"):
            return a.bvnot() if op == "not" else a.bvneg()
        b = env["b"]
        table = {
            "add": a.bvadd,
            "sub": a.bvsub,
            "mul": a.bvmul,
            "and": a.bvand,
            "or": a.bvor,
            "xor": a.bvxor,
            "shl": a.bvshl,
            "shr": a.bvlshr,
            "sar": a.bvashr,
            "rol": a.bvrotl,
            "ror": a.bvrotr,
        }
        return table[op](b)

    return run
