"""Synthetic Qualcomm HVX programmer's reference manual.

HVX in 128-byte mode has 1024-bit vector registers (``Vd``) and 2048-bit
register pairs (``Vdd``); element types are bytes/halfwords/words.  The
catalog covers the families the paper's evaluation depends on: saturating
vector arithmetic, averaging, absolute difference, widening multiplies,
the ``vdmpy``/``vrmpy`` dot-product group with accumulating forms, the
shuffle/deal swizzle group including the cross-vector ``vshuffvdd`` /
``vdealvdd`` pair (Figure 5 of the paper), pack/unpack, and scalar-vector
ops.  Accumulating instructions are written with the accumulator as an
explicit ``Vx`` input operand rather than the manual's ``+=`` shorthand.
"""

from __future__ import annotations

from repro.bitvector.bv import BitVector
from repro.bitvector.lanes import Vector, vector_from_elems
from repro.isa.spec import InstructionSpec, IsaCatalog, OperandSpec

VLEN = 1024  # bits, 128-byte mode
_SUFFIX = {8: "b", 16: "h", 32: "w"}
_USUFFIX = {8: "ub", 16: "uh", 32: "uw"}


def _spec(name, asm, operands, output_width, pseudocode, family, latency,
          throughput, reference, **attributes) -> InstructionSpec:
    return InstructionSpec(
        name=name,
        isa="hvx",
        asm=asm,
        operands=tuple(operands),
        output_width=output_width,
        pseudocode=pseudocode,
        extension="HVX",
        family=family,
        latency=latency,
        throughput=throughput,
        reference=reference,
        attributes=attributes,
    )


def _two_vec() -> list[OperandSpec]:
    return [OperandSpec("Vu", VLEN), OperandSpec("Vv", VLEN)]


def _loop(count: int, body: str) -> str:
    return f"for (i = 0; i < {count}; i++) {{\n    {body}\n}}\n"


def _ref_lanewise(ew, fn, names=("Vu", "Vv"), out_ew=None):
    def run(env):
        vecs = [Vector(env[n], ew) for n in names]
        out = [fn(*(v.elem(i) for v in vecs)) for i in range(vecs[0].num_elems)]
        return vector_from_elems(out).bits

    return run


# ----------------------------------------------------------------------
# Element-wise arithmetic
# ----------------------------------------------------------------------


def _gen_arith(specs: list[InstructionSpec]) -> None:
    for ew in (8, 16, 32):
        sfx = _SUFFIX[ew]
        count = VLEN // ew
        elem = lambda n, s=sfx: f"{n}.{s}[i]"
        cases = [
            (f"vadd{sfx}", f"{elem('Vu')} + {elem('Vv')}",
             _ref_lanewise(ew, lambda x, y: x.bvadd(y)), "ew_add"),
            (f"vsub{sfx}", f"{elem('Vu')} - {elem('Vv')}",
             _ref_lanewise(ew, lambda x, y: x.bvsub(y)), "ew_sub"),
            (f"vadd{sfx}sat", f"addsat_s({elem('Vu')}, {elem('Vv')})",
             _ref_lanewise(ew, lambda x, y: x.bvsaddsat(y)), "ew_adds"),
            (f"vsub{sfx}sat", f"subsat_s({elem('Vu')}, {elem('Vv')})",
             _ref_lanewise(ew, lambda x, y: x.bvssubsat(y)), "ew_subs"),
            (f"vmax{sfx}", f"max_s({elem('Vu')}, {elem('Vv')})",
             _ref_lanewise(ew, lambda x, y: x.bvsmax(y)), "ew_max_s"),
            (f"vmin{sfx}", f"min_s({elem('Vu')}, {elem('Vv')})",
             _ref_lanewise(ew, lambda x, y: x.bvsmin(y)), "ew_min_s"),
            (f"vmax{_USUFFIX[ew]}", f"max_u({elem('Vu')}, {elem('Vv')})",
             _ref_lanewise(ew, lambda x, y: x.bvumax(y)), "ew_max_u"),
            (f"vmin{_USUFFIX[ew]}", f"min_u({elem('Vu')}, {elem('Vv')})",
             _ref_lanewise(ew, lambda x, y: x.bvumin(y)), "ew_min_u"),
            (f"vavg{sfx}", f"avg_s({elem('Vu')}, {elem('Vv')})",
             _ref_lanewise(ew, lambda x, y: x.bvsavg(y)), "ew_avg_s"),
            (f"vavg{sfx}rnd", f"avgrnd_s({elem('Vu')}, {elem('Vv')})",
             _ref_lanewise(ew, lambda x, y: x.bvsavg(y, round_up=True)), "ew_avg_s_rnd"),
            (f"vavg{_USUFFIX[ew]}", f"avg_u({elem('Vu')}, {elem('Vv')})",
             _ref_lanewise(ew, lambda x, y: x.bvuavg(y)), "ew_avg_u"),
            (f"vavg{_USUFFIX[ew]}rnd", f"avgrnd_u({elem('Vu')}, {elem('Vv')})",
             _ref_lanewise(ew, lambda x, y: x.bvuavg(y, round_up=True)), "ew_avg_u_rnd"),
            (f"vnavg{sfx}", f"avg_s({elem('Vu')}, -{elem('Vv')})",
             _ref_lanewise(ew, lambda x, y: x.bvsavg(y.bvneg())), "ew_navg"),
            (f"vabsdiff{_USUFFIX[ew]}",
             f"max_u({elem('Vu')}, {elem('Vv')}) - min_u({elem('Vu')}, {elem('Vv')})",
             _ref_lanewise(ew, lambda x, y: x.bvumax(y).bvsub(x.bvumin(y))),
             "ew_absdiff_u"),
            (f"vabs{sfx}", f"abs({elem('Vu')})",
             _ref_lanewise(ew, lambda x: x.bvabs(), names=("Vu",)), "ew_abs"),
        ]
        if ew in (8, 16):
            cases.append(
                (f"vadd{_USUFFIX[ew]}sat", f"addsat_u({elem('Vu')}, {elem('Vv')})",
                 _ref_lanewise(ew, lambda x, y: x.bvuaddsat(y)), "ew_addus"))
            cases.append(
                (f"vsub{_USUFFIX[ew]}sat", f"subsat_u({elem('Vu')}, {elem('Vv')})",
                 _ref_lanewise(ew, lambda x, y: x.bvusubsat(y)), "ew_subus"))
        for name, rhs, reference, family in cases:
            unary = "Vv" not in rhs
            operands = [OperandSpec("Vu", VLEN)] if unary else _two_vec()
            body = _loop(count, f"Vd.{sfx}[i] = {rhs};")
            specs.append(
                _spec(f"V6_{name}", name.rstrip("0123456789"), operands, VLEN,
                      body, family, 1.0, 0.5, reference, elem_width=ew, simd=True))


def _gen_logic(specs: list[InstructionSpec]) -> None:
    for name, symbol, fn in (
        ("vand", "&", lambda x, y: x.bvand(y)),
        ("vor", "|", lambda x, y: x.bvor(y)),
        ("vxor", "^", lambda x, y: x.bvxor(y)),
    ):
        body = _loop(VLEN // 32, f"Vd.w[i] = Vu.w[i] {symbol} Vv.w[i];")
        specs.append(
            _spec(f"V6_{name}", name, _two_vec(), VLEN, body,
                  f"logic_{name[1:]}", 1.0, 0.5, _ref_lanewise(32, fn),
                  elem_width=32, simd=True))
    body = _loop(VLEN // 32, "Vd.w[i] = ~Vu.w[i];")
    specs.append(
        _spec("V6_vnot", "vnot", [OperandSpec("Vu", VLEN)], VLEN, body,
              "logic_not", 1.0, 0.5,
              _ref_lanewise(32, lambda x: x.bvnot(), names=("Vu",)),
              elem_width=32, simd=True))


def _gen_shifts(specs: list[InstructionSpec]) -> None:
    """Vector shifts by per-element amounts and by a scalar register."""
    for ew in (16, 32):
        sfx = _SUFFIX[ew]
        count = VLEN // ew
        amount_mask = ew - 1
        for name, symbol, fn in (
            (f"vasl{sfx}v", "<<",
             lambda x, y, ew=ew: x.bvshl(y.bvand(BitVector(ew - 1, ew)))),
            (f"vlsr{sfx}v", ">>",
             lambda x, y, ew=ew: x.bvlshr(y.bvand(BitVector(ew - 1, ew)))),
            (f"vasr{sfx}v", ">>>",
             lambda x, y, ew=ew: x.bvashr(y.bvand(BitVector(ew - 1, ew)))),
        ):
            body = _loop(
                count,
                f"Vd.{sfx}[i] = Vu.{sfx}[i] {symbol} "
                f"(Vv.{sfx}[i] & {amount_mask});",
            )
            specs.append(
                _spec(f"V6_{name}", name, _two_vec(), VLEN, body,
                      f"shift_var_{symbol}", 1.0, 0.5, _ref_lanewise(ew, fn),
                      elem_width=ew, simd=True))
        # Hardware masks the shift amount to log2(element width) bits —
        # exactly the masking Rake's hand-written semantics forgot
        # (the paper's Table 2 bugs).
        mask_high = {16: 3, 32: 4}[ew]
        for name, symbol, kind in (
            (f"vasl{sfx}", "<<", "shl"),
            (f"vlsr{sfx}", ">>", "lshr"),
            (f"vasr{sfx}", ">>>", "ashr"),
        ):
            body = _loop(
                count,
                f"Vd.{sfx}[i] = Vu.{sfx}[i] {symbol} zxt{ew}(Rt[{mask_high}:0]);",
            )

            def make_ref(ew=ew, kind=kind, mask_high=mask_high):
                def run(env):
                    amount = env["Rt"].extract(mask_high, 0).zext(ew)
                    table = {
                        "shl": lambda x: x.bvshl(amount),
                        "lshr": lambda x: x.bvlshr(amount),
                        "ashr": lambda x: x.bvashr(amount),
                    }
                    return Vector(env["Vu"], ew).map_lanes(table[kind]).bits

                return run

            specs.append(
                _spec(f"V6_{name}", name,
                      [OperandSpec("Vu", VLEN), OperandSpec("Rt", 32)], VLEN,
                      body, f"shift_scalar_{kind}", 1.0, 0.5, make_ref(),
                      elem_width=ew, simd=True))


def _gen_multiply(specs: list[InstructionSpec]) -> None:
    # Widening multiplies producing a register pair (Vdd).
    for src_ew, signed in ((8, True), (8, False), (16, True), (16, False)):
        dst_ew = 2 * src_ew
        src_sfx = _SUFFIX[src_ew] if signed else _USUFFIX[src_ew]
        dst_sfx = _SUFFIX[dst_ew] if dst_ew in _SUFFIX else "w"
        ext = "sxt" if signed else "zxt"
        count = VLEN // src_ew
        body = _loop(
            count,
            f"Vd.{dst_sfx}[i] = {ext}{dst_ew}(Vu.{src_sfx}[i]) * "
            f"{ext}{dst_ew}(Vv.{src_sfx}[i]);",
        )

        def make_ref(src_ew=src_ew, dst_ew=dst_ew, signed=signed):
            def run(env):
                vu, vv = Vector(env["Vu"], src_ew), Vector(env["Vv"], src_ew)
                out = []
                for i in range(vu.num_elems):
                    x, y = vu.elem(i), vv.elem(i)
                    if signed:
                        out.append(x.sext(dst_ew).bvmul(y.sext(dst_ew)))
                    else:
                        out.append(x.zext(dst_ew).bvmul(y.zext(dst_ew)))
                return vector_from_elems(out).bits

            return run

        specs.append(
            _spec(f"V6_vmpy{src_sfx}v", f"vmpy{src_sfx}", _two_vec(), 2 * VLEN,
                  body, "mul_widening" + ("_s" if signed else "_u"), 4.0, 1.0,
                  make_ref(), elem_width=dst_ew, widening=True))
    # Low-half multiplies (vmpyi).
    for ew in (16, 32):
        sfx = _SUFFIX[ew]
        count = VLEN // ew
        body = _loop(
            count,
            f"Vd.{sfx}[i] = trunc{ew}(sxt{2 * ew}(Vu.{sfx}[i]) * "
            f"sxt{2 * ew}(Vv.{sfx}[i]));",
        )
        specs.append(
            _spec(f"V6_vmpyi{sfx}", f"vmpyi{sfx}", _two_vec(), VLEN, body,
                  "ew_mullo", 4.0, 1.0,
                  _ref_lanewise(ew, lambda x, y: x.bvmul(y)),
                  elem_width=ew, simd=True))
    # Even/odd halfword multiplies (vmpye/vmpyo), word results.
    for odd in (False, True):
        which = "o" if odd else "e"
        offset = 1 if odd else 0
        count = VLEN // 32
        body = _loop(
            count,
            f"Vd.w[i] = sxt32(Vu.h[2*i+{offset}]) * sxt32(Vv.h[2*i+{offset}]);",
        )

        def make_ref(offset=offset):
            def run(env):
                vu, vv = Vector(env["Vu"], 16), Vector(env["Vv"], 16)
                out = [
                    vu.elem(2 * i + offset).sext(32).bvmul(
                        vv.elem(2 * i + offset).sext(32))
                    for i in range(VLEN // 32)
                ]
                return vector_from_elems(out).bits

            return run

        specs.append(
            _spec(f"V6_vmpy{which}h", f"vmpy{which}h", _two_vec(), VLEN, body,
                  f"mul_{which}ven", 4.0, 1.0, make_ref(), elem_width=32))
    # vmpyieoh / vmpyiewuh_acc — the pair from Table 3 of the paper.
    count = VLEN // 32
    body = _loop(count, "Vd.w[i] = trunc32((sxt64(Vu.w[i]) * sxt64(Vv.w[i])) >> 16) << 16;")

    def ref_ieoh(env):
        vu, vv = Vector(env["Vu"], 32), Vector(env["Vv"], 32)
        out = []
        for i in range(VLEN // 32):
            prod = vu.elem(i).sext(64).bvmul(vv.elem(i).sext(64))
            out.append(prod.extract(47, 16).bvshl(BitVector(16, 32)))
        return vector_from_elems(out).bits

    specs.append(
        _spec("V6_vmpyieoh", "vmpyieoh", _two_vec(), VLEN, body,
              "mul_partial", 4.0, 1.0, ref_ieoh, elem_width=32))
    body = _loop(
        count,
        "Vd.w[i] = Vx.w[i] + trunc32(zxt64(Vu.w[i] & 65535) * zxt64(Vv.w[i] & 65535));",
    )

    def ref_iewuh(env):
        vx = Vector(env["Vx"], 32)
        vu, vv = Vector(env["Vu"], 32), Vector(env["Vv"], 32)
        mask = BitVector(65535, 32)
        out = []
        for i in range(VLEN // 32):
            prod = vu.elem(i).bvand(mask).zext(64).bvmul(
                vv.elem(i).bvand(mask).zext(64))
            out.append(vx.elem(i).bvadd(prod.trunc(32)))
        return vector_from_elems(out).bits

    specs.append(
        _spec("V6_vmpyiewuh_acc", "vmpyiewuh",
              [OperandSpec("Vx", VLEN)] + _two_vec(), VLEN, body,
              "mul_partial_acc", 4.0, 1.0, ref_iewuh, elem_width=32, acc=True))


def _gen_dot_products(specs: list[InstructionSpec]) -> None:
    # vdmpy: 2-way halfword dot product into words, optionally accumulating
    # and saturating (the paper's vmpyhvsat_acc in Table 3 row 1).
    count = VLEN // 32
    for acc in (False, True):
        for sat in (False, True):
            inner = ("sxt32(Vu.h[2*i]) * sxt32(Vv.h[2*i]) + "
                     "sxt32(Vu.h[2*i+1]) * sxt32(Vv.h[2*i+1])")
            if acc and sat:
                rhs = f"addsat_s(Vx.w[i], {inner})"
            elif acc:
                rhs = f"Vx.w[i] + {inner}"
            elif sat:
                rhs = f"sat32(sxt64({inner.replace('sxt32', 'sxt64')}))"
                rhs = ("sat32(sxt64(Vu.h[2*i]) * sxt64(Vv.h[2*i]) + "
                       "sxt64(Vu.h[2*i+1]) * sxt64(Vv.h[2*i+1]))")
            else:
                rhs = inner
            name = "V6_vdmpyhv" + ("sat" if sat else "") + ("_acc" if acc else "")
            operands = ([OperandSpec("Vx", VLEN)] if acc else []) + _two_vec()
            body = _loop(count, f"Vd.w[i] = {rhs};")

            def make_ref(acc=acc, sat=sat):
                def run(env):
                    vu, vv = Vector(env["Vu"], 16), Vector(env["Vv"], 16)
                    out = []
                    for i in range(VLEN // 32):
                        if sat and not acc:
                            lo = vu.elem(2 * i).sext(64).bvmul(vv.elem(2 * i).sext(64))
                            hi = vu.elem(2 * i + 1).sext(64).bvmul(
                                vv.elem(2 * i + 1).sext(64))
                            total64 = lo.bvadd(hi)
                            out.append(total64.saturate_to_signed(32))
                            continue
                        lo = vu.elem(2 * i).sext(32).bvmul(vv.elem(2 * i).sext(32))
                        hi = vu.elem(2 * i + 1).sext(32).bvmul(
                            vv.elem(2 * i + 1).sext(32))
                        total = lo.bvadd(hi)
                        if acc:
                            base = Vector(env["Vx"], 32).elem(i)
                            if sat:
                                out.append(base.bvsaddsat(total))
                            else:
                                out.append(base.bvadd(total))
                        else:
                            out.append(total)
                    return vector_from_elems(out).bits

                return run

            specs.append(
                _spec(name, "vdmpy", operands, VLEN, body,
                      "dot_dmpy" + ("_sat" if sat else "") + ("_acc" if acc else ""),
                      4.0, 1.0, make_ref(), elem_width=32, dot_product=True,
                      acc=acc))
    # vrmpy: 4-way byte dot product into words (paper: the wide-window
    # pattern production Halide exploits on gaussian7x7).
    for kinds in (("ub", "ub"), ("ub", "b"), ("b", "b")):
        for acc in (False, True):
            ext_u = "zxt32" if kinds[0] == "ub" else "sxt32"
            ext_v = "zxt32" if kinds[1] == "ub" else "sxt32"
            terms = " + ".join(
                f"{ext_u}(Vu.{kinds[0]}[4*i+{q}]) * {ext_v}(Vv.{kinds[1]}[4*i+{q}])"
                for q in range(4)
            )
            rhs = f"Vx.w[i] + {terms}" if acc else terms
            name = f"V6_vrmpy{kinds[0]}{kinds[1]}" + ("_acc" if acc else "")
            operands = ([OperandSpec("Vx", VLEN)] if acc else []) + _two_vec()
            body = _loop(count, f"Vd.w[i] = {rhs};")

            def make_ref(kinds=kinds, acc=acc):
                def run(env):
                    vu, vv = Vector(env["Vu"], 8), Vector(env["Vv"], 8)
                    out = []
                    for i in range(VLEN // 32):
                        total = BitVector(0, 32)
                        for q in range(4):
                            x = vu.elem(4 * i + q)
                            y = vv.elem(4 * i + q)
                            wide_x = x.zext(32) if kinds[0] == "ub" else x.sext(32)
                            wide_y = y.zext(32) if kinds[1] == "ub" else y.sext(32)
                            total = total.bvadd(wide_x.bvmul(wide_y))
                        if acc:
                            total = Vector(env["Vx"], 32).elem(i).bvadd(total)
                        out.append(total)
                    return vector_from_elems(out).bits

                return run

            specs.append(
                _spec(name, "vrmpy", operands, VLEN, body,
                      "dot_rmpy" + ("_acc" if acc else ""), 4.0, 1.0,
                      make_ref(), elem_width=32, dot_product=True, acc=acc,
                      reduction_width=4))


def _gen_pair_ops(specs: list[InstructionSpec]) -> None:
    """Double-vector (register pair) arithmetic, e.g. vaddw_dv_sat."""
    for ew in (16, 32):
        sfx = _SUFFIX[ew]
        count = 2 * VLEN // ew
        for sat in (False, True):
            rhs = (f"addsat_s(Vuu.{sfx}[i], Vvv.{sfx}[i])" if sat
                   else f"Vuu.{sfx}[i] + Vvv.{sfx}[i]")
            name = f"V6_vadd{sfx}_dv" + ("_sat" if sat else "")
            body = _loop(count, f"Vd.{sfx}[i] = {rhs};")

            def make_ref(ew=ew, sat=sat):
                def run(env):
                    vu, vv = Vector(env["Vuu"], ew), Vector(env["Vvv"], ew)
                    out = [
                        (x.bvsaddsat(y) if sat else x.bvadd(y))
                        for x, y in zip(vu.elems(), vv.elems())
                    ]
                    return vector_from_elems(out).bits

                return run

            specs.append(
                _spec(name, "vadd_dv",
                      [OperandSpec("Vuu", 2 * VLEN), OperandSpec("Vvv", 2 * VLEN)],
                      2 * VLEN, body, "dv_add" + ("_sat" if sat else ""),
                      1.0, 0.5, make_ref(), elem_width=ew, simd=True, pair=True))


def _gen_swizzles(specs: list[InstructionSpec]) -> None:
    # vcombine: two vectors into a pair.
    body = (
        f"for (i = 0; i < {VLEN // 32}; i++) {{\n"
        "    Vd.w[i] = Vv.w[i];\n"
        "}\n"
        f"for (i = 0; i < {VLEN // 32}; i++) {{\n"
        f"    Vd.w[i + {VLEN // 32}] = Vu.w[i];\n"
        "}\n"
    )

    def ref_combine(env):
        return env["Vv"].concat(env["Vu"]).bits if False else env["Vu"].concat(env["Vv"])

    def ref_combine(env):  # noqa: F811 - Vu becomes the high half
        return env["Vu"].concat(env["Vv"])

    specs.append(
        _spec("V6_vcombine", "vcombine", _two_vec(), 2 * VLEN, body,
              "swizzle_combine", 1.0, 0.5, ref_combine, swizzle=True))

    for ew in (8, 16, 32):
        sfx = _SUFFIX[ew]
        half = VLEN // ew // 2
        # vshuff<sfx>: interleave the two halves of one vector.
        body = (
            f"for (i = 0; i < {half}; i++) {{\n"
            f"    Vd.{sfx}[2*i] = Vu.{sfx}[i];\n"
            f"    Vd.{sfx}[2*i+1] = Vu.{sfx}[i + {half}];\n"
            "}\n"
        )

        def make_shuff_ref(ew=ew, half=half):
            def run(env):
                vu = Vector(env["Vu"], ew)
                out = []
                for i in range(half):
                    out.append(vu.elem(i))
                    out.append(vu.elem(i + half))
                return vector_from_elems(out).bits

            return run

        specs.append(
            _spec(f"V6_vshuff{sfx}", f"vshuff{sfx}", [OperandSpec("Vu", VLEN)],
                  VLEN, body, "swizzle_shuff", 1.0, 1.0, make_shuff_ref(),
                  elem_width=ew, swizzle=True))
        # vdeal<sfx>: de-interleave even/odd elements of one vector.
        body = (
            f"for (i = 0; i < {half}; i++) {{\n"
            f"    Vd.{sfx}[i] = Vu.{sfx}[2*i];\n"
            f"    Vd.{sfx}[i + {half}] = Vu.{sfx}[2*i+1];\n"
            "}\n"
        )

        def make_deal_ref(ew=ew, half=half):
            def run(env):
                vu = Vector(env["Vu"], ew)
                evens = [vu.elem(2 * i) for i in range(half)]
                odds = [vu.elem(2 * i + 1) for i in range(half)]
                return vector_from_elems(evens + odds).bits

            return run

        specs.append(
            _spec(f"V6_vdeal{sfx}", f"vdeal{sfx}", [OperandSpec("Vu", VLEN)],
                  VLEN, body, "swizzle_deal", 1.0, 1.0, make_deal_ref(),
                  elem_width=ew, swizzle=True))
        # vshuffe/vshuffo: even/odd elements of two vectors.
        for odd in (False, True):
            which = "o" if odd else "e"
            offset = 1 if odd else 0
            count = VLEN // ew
            body = (
                f"for (i = 0; i < {count // 2}; i++) {{\n"
                f"    Vd.{sfx}[2*i] = Vv.{sfx}[2*i+{offset}];\n"
                f"    Vd.{sfx}[2*i+1] = Vu.{sfx}[2*i+{offset}];\n"
                "}\n"
            )

            def make_ref(ew=ew, offset=offset):
                def run(env):
                    vu, vv = Vector(env["Vu"], ew), Vector(env["Vv"], ew)
                    out = []
                    for i in range(VLEN // ew // 2):
                        out.append(vv.elem(2 * i + offset))
                        out.append(vu.elem(2 * i + offset))
                    return vector_from_elems(out).bits

                return run

            specs.append(
                _spec(f"V6_vshuff{which}{sfx}", f"vshuff{which}", _two_vec(),
                      VLEN, body, f"swizzle_shuff{which}", 1.0, 1.0, make_ref(),
                      elem_width=ew, swizzle=True))
    # vshuffvdd / vdealvdd: cross-vector shuffles producing a pair
    # (paper Figure 5: the 2x2 block transpose workhorse).
    for ew in (16, 32):
        sfx = _SUFFIX[ew]
        count = VLEN // ew
        body = (
            f"for (i = 0; i < {count}; i++) {{\n"
            f"    Vd.{sfx}[2*i] = Vv.{sfx}[i];\n"
            f"    Vd.{sfx}[2*i+1] = Vu.{sfx}[i];\n"
            "}\n"
        )

        def make_vdd_ref(ew=ew):
            def run(env):
                vu, vv = Vector(env["Vu"], ew), Vector(env["Vv"], ew)
                out = []
                for i in range(VLEN // ew):
                    out.append(vv.elem(i))
                    out.append(vu.elem(i))
                return vector_from_elems(out).bits

            return run

        specs.append(
            _spec(f"V6_vshuffvdd_{sfx}", "vshuffvdd", _two_vec(), 2 * VLEN,
                  body, "swizzle_shuffvdd", 1.0, 1.0, make_vdd_ref(),
                  elem_width=ew, swizzle=True, pair=True))
        body = (
            f"for (i = 0; i < {count}; i++) {{\n"
            f"    Vd.{sfx}[i] = Vv.{sfx}[2*i];\n"
            f"    Vd.{sfx}[i + {count}] = Vv.{sfx}[2*i+1];\n"
            "}\n"
        ).replace("Vv.", "Vuu.")

        def make_dealvdd_ref(ew=ew):
            def run(env):
                vuu = Vector(env["Vuu"], ew)
                count = VLEN // ew
                evens = [vuu.elem(2 * i) for i in range(count)]
                odds = [vuu.elem(2 * i + 1) for i in range(count)]
                return vector_from_elems(evens + odds).bits

            return run

        specs.append(
            _spec(f"V6_vdealvdd_{sfx}", "vdealvdd",
                  [OperandSpec("Vuu", 2 * VLEN)], 2 * VLEN, body,
                  "swizzle_dealvdd", 1.0, 1.0, make_dealvdd_ref(),
                  elem_width=ew, swizzle=True, pair=True))
    # vror: rotate the whole vector right by a byte amount.
    body = (
        f"for (i = 0; i < {VLEN // 8}; i++) {{\n"
        f"    Vd.b[i] = Vu.b[(i + 1) % {VLEN // 8}];\n"
        "}\n"
    )

    def ref_ror(env):
        vu = Vector(env["Vu"], 8)
        count = VLEN // 8
        return vector_from_elems(
            [vu.elem((i + 1) % count) for i in range(count)]
        ).bits

    specs.append(
        _spec("V6_vror_1", "vror", [OperandSpec("Vu", VLEN)], VLEN, body,
              "swizzle_ror", 1.0, 1.0, ref_ror, elem_width=8, swizzle=True))


def _gen_pack_unpack(specs: list[InstructionSpec]) -> None:
    # vpacke/vpacko: keep even/odd narrow halves.
    for src_ew in (16, 32):
        dst_ew = src_ew // 2
        src_sfx, dst_sfx = _SUFFIX[src_ew], _SUFFIX[dst_ew]
        count = VLEN // src_ew
        for odd in (False, True):
            which = "o" if odd else "e"
            # Even pack keeps low halves; odd pack keeps high halves.
            shift = f" >> {dst_ew}" if odd else ""
            body = _loop(
                count * 2 // 2,
                f"Vd.{dst_sfx}[i] = trunc{dst_ew}(Vuu.{src_sfx}[i]{shift});",
            ).replace(f"i < {count}", f"i < {2 * count}")
            body = (
                f"for (i = 0; i < {2 * count}; i++) {{\n"
                f"    Vd.{dst_sfx}[i] = trunc{dst_ew}(Vuu.{src_sfx}[i]{shift});\n"
                "}\n"
            )

            def make_ref(src_ew=src_ew, dst_ew=dst_ew, odd=odd):
                def run(env):
                    vuu = Vector(env["Vuu"], src_ew)
                    out = []
                    for i in range(vuu.num_elems):
                        elem = vuu.elem(i)
                        if odd:
                            out.append(elem.extract(src_ew - 1, dst_ew))
                        else:
                            out.append(elem.trunc(dst_ew))
                    return vector_from_elems(out).bits

                return run

            specs.append(
                _spec(f"V6_vpack{which}{dst_sfx}", f"vpack{which}",
                      [OperandSpec("Vuu", 2 * VLEN)], VLEN, body,
                      f"pack_{which}", 1.0, 1.0, make_ref(),
                      elem_width=dst_ew, swizzle=True))
        # Saturating packs.
        for unsigned in (False, True):
            sat = f"usat{dst_ew}" if unsigned else f"sat{dst_ew}"
            name = f"V6_vpack{src_sfx}{'u' if unsigned else ''}{dst_sfx}_sat"
            body = (
                f"for (i = 0; i < {2 * count}; i++) {{\n"
                f"    Vd.{dst_sfx}[i] = {sat}(Vuu.{src_sfx}[i]);\n"
                "}\n"
            )

            def make_ref(src_ew=src_ew, dst_ew=dst_ew, unsigned=unsigned):
                def run(env):
                    vuu = Vector(env["Vuu"], src_ew)
                    out = []
                    for i in range(vuu.num_elems):
                        elem = vuu.elem(i)
                        if unsigned:
                            out.append(elem.saturate_to_unsigned(dst_ew))
                        else:
                            out.append(elem.saturate_to_signed(dst_ew))
                    return vector_from_elems(out).bits

                return run

            specs.append(
                _spec(name, "vpack_sat", [OperandSpec("Vuu", 2 * VLEN)], VLEN,
                      body, "pack_sat" + ("_u" if unsigned else "_s"), 1.0,
                      1.0, make_ref(), elem_width=dst_ew, swizzle=True))
    # vunpack / vsxt / vzxt: widen a vector into a pair.
    for src_ew in (8, 16):
        dst_ew = 2 * src_ew
        dst_sfx = _SUFFIX[dst_ew]
        count = VLEN // src_ew
        for unsigned in (False, True):
            src_sfx = _USUFFIX[src_ew] if unsigned else _SUFFIX[src_ew]
            ext = "zxt" if unsigned else "sxt"
            name = f"V6_vunpack{src_sfx}"
            body = _loop(
                count, f"Vd.{dst_sfx}[i] = {ext}{dst_ew}(Vu.{src_sfx}[i]);"
            )

            def make_ref(src_ew=src_ew, dst_ew=dst_ew, unsigned=unsigned):
                def run(env):
                    vu = Vector(env["Vu"], src_ew)
                    out = [
                        e.zext(dst_ew) if unsigned else e.sext(dst_ew)
                        for e in vu.elems()
                    ]
                    return vector_from_elems(out).bits

                return run

            specs.append(
                _spec(name, "vunpack", [OperandSpec("Vu", VLEN)], 2 * VLEN,
                      body, "unpack_widen" + ("_u" if unsigned else "_s"),
                      1.0, 1.0, make_ref(), elem_width=dst_ew, swizzle=True,
                      pair=True))
    # vsb / vsh aliases (sign-extending unpacks, as used in Table 3).
    for src_ew, alias in ((8, "V6_vsb"), (16, "V6_vsh")):
        dst_ew = 2 * src_ew
        dst_sfx = _SUFFIX[dst_ew]
        src_sfx = _SUFFIX[src_ew]
        count = VLEN // src_ew
        body = _loop(count, f"Vd.{dst_sfx}[i] = sxt{dst_ew}(Vu.{src_sfx}[i]);")

        def make_ref(src_ew=src_ew, dst_ew=dst_ew):
            def run(env):
                vu = Vector(env["Vu"], src_ew)
                return vector_from_elems([e.sext(dst_ew) for e in vu.elems()]).bits

            return run

        specs.append(
            _spec(alias, alias[3:], [OperandSpec("Vu", VLEN)], 2 * VLEN, body,
                  "unpack_widen_s", 1.0, 1.0, make_ref(), elem_width=dst_ew,
                  swizzle=True, pair=True))


def _gen_splat(specs: list[InstructionSpec]) -> None:
    for ew in (8, 16, 32):
        sfx = _SUFFIX[ew]
        count = VLEN // ew
        body = _loop(count, f"Vd.{sfx}[i] = Rt[{ew - 1}:0];")

        def make_ref(ew=ew, count=count):
            def run(env):
                elem = env["Rt"].trunc(ew)
                return vector_from_elems([elem] * count).bits

            return run

        specs.append(
            _spec(f"V6_lvsplat{sfx}", "vsplat", [OperandSpec("Rt", 32)], VLEN,
                  body, "broadcast", 1.0, 1.0, make_ref(), elem_width=ew,
                  swizzle=True))


def _gen_predicated(specs: list[InstructionSpec]) -> None:
    """vmux and Q-predicated adds (Q register = one bit per byte)."""
    qwidth = VLEN // 8
    for ew in (8, 16, 32):
        sfx = _SUFFIX[ew]
        count = VLEN // ew
        stride = ew // 8
        body = (
            f"for (i = 0; i < {count}; i++) {{\n"
            f"    if (Qt[i*{stride}:i*{stride}] == 1) {{\n"
            f"        Vd.{sfx}[i] = Vu.{sfx}[i];\n"
            "    } else {\n"
            f"        Vd.{sfx}[i] = Vv.{sfx}[i];\n"
            "    }\n"
            "}\n"
        )

        def make_ref(ew=ew, stride=stride):
            def run(env):
                vu, vv = Vector(env["Vu"], ew), Vector(env["Vv"], ew)
                qt = env["Qt"]
                out = []
                for i in range(vu.num_elems):
                    bit = (qt.value >> (i * stride)) & 1
                    out.append(vu.elem(i) if bit else vv.elem(i))
                return vector_from_elems(out).bits

            return run

        specs.append(
            _spec(f"V6_vmux_{sfx}", "vmux",
                  [OperandSpec("Qt", qwidth)] + _two_vec(), VLEN, body,
                  "predicated_mux", 1.0, 0.5, make_ref(), elem_width=ew,
                  swizzle=True))


def _gen_narrowing_shifts(specs: list[InstructionSpec]) -> None:
    """vasr-with-narrowing: shift right, saturate into the narrow type.

    These are the HVX workhorses for fixed-point requantization
    (``vasrwh``, ``vasrhub_sat`` and friends)."""
    cases = [
        # (name, src_ew, dst unsigned?, saturating?)
        ("vasrwh", 32, False, False),
        ("vasrwh_sat", 32, False, True),
        ("vasrwuh_sat", 32, True, True),
        ("vasrhb", 16, False, False),
        ("vasrhub_sat", 16, True, True),
        ("vasrhb_sat", 16, False, True),
    ]
    for name, src_ew, unsigned, saturating in cases:
        dst_ew = src_ew // 2
        src_sfx = _SUFFIX[src_ew]
        dst_sfx = _SUFFIX[dst_ew]
        count = 2 * VLEN // src_ew
        mask_high = {16: 3, 32: 4}[src_ew]
        if saturating:
            sat = f"usat{dst_ew}" if unsigned else f"sat{dst_ew}"
            rhs = f"{sat}(Vuu.{src_sfx}[i] >>> zxt{src_ew}(Rt[{mask_high}:0]))"
        else:
            rhs = f"trunc{dst_ew}(Vuu.{src_sfx}[i] >>> zxt{src_ew}(Rt[{mask_high}:0]))"
        body = (
            f"for (i = 0; i < {count}; i++) {{\n"
            f"    Vd.{dst_sfx}[i] = {rhs};\n"
            "}\n"
        )

        def make_ref(src_ew=src_ew, dst_ew=dst_ew, unsigned=unsigned,
                     saturating=saturating, mask_high=mask_high):
            def run(env):
                amount = env["Rt"].extract(mask_high, 0).zext(src_ew)
                vuu = Vector(env["Vuu"], src_ew)
                out = []
                for elem in vuu.elems():
                    shifted = elem.bvashr(amount)
                    if not saturating:
                        out.append(shifted.trunc(dst_ew))
                    elif unsigned:
                        out.append(shifted.saturate_to_unsigned(dst_ew))
                    else:
                        out.append(shifted.saturate_to_signed(dst_ew))
                return vector_from_elems(out).bits

            return run

        specs.append(
            _spec(f"V6_{name}", "vasr",
                  [OperandSpec("Vuu", 2 * VLEN), OperandSpec("Rt", 32)],
                  VLEN, body, "narrow_shift" + ("_sat" if saturating else ""),
                  2.0, 1.0, make_ref(), elem_width=dst_ew, swizzle=True))


def _gen_conditional(specs: list[InstructionSpec]) -> None:
    """Q-predicated arithmetic: if (Q) Vx.w += Vu.w etc."""
    qwidth = VLEN // 8
    for ew in (8, 16, 32):
        sfx = _SUFFIX[ew]
        count = VLEN // ew
        stride = ew // 8
        for op, symbol in (("add", "+"), ("sub", "-")):
            body = (
                f"for (i = 0; i < {count}; i++) {{\n"
                f"    if (Qv[i*{stride}:i*{stride}] == 1) {{\n"
                f"        Vd.{sfx}[i] = Vx.{sfx}[i] {symbol} Vu.{sfx}[i];\n"
                "    } else {\n"
                f"        Vd.{sfx}[i] = Vx.{sfx}[i];\n"
                "    }\n"
                "}\n"
            )

            def make_ref(ew=ew, stride=stride, op=op):
                def run(env):
                    vx, vu = Vector(env["Vx"], ew), Vector(env["Vu"], ew)
                    qv = env["Qv"]
                    out = []
                    for i in range(vx.num_elems):
                        if (qv.value >> (i * stride)) & 1:
                            if op == "add":
                                out.append(vx.elem(i).bvadd(vu.elem(i)))
                            else:
                                out.append(vx.elem(i).bvsub(vu.elem(i)))
                        else:
                            out.append(vx.elem(i))
                    return vector_from_elems(out).bits

                return run

            specs.append(
                _spec(f"V6_v{op}{sfx}q", f"v{op}q",
                      [OperandSpec("Qv", qwidth), OperandSpec("Vx", VLEN),
                       OperandSpec("Vu", VLEN)],
                      VLEN, body, f"predicated_{op}", 1.0, 0.5, make_ref(),
                      elem_width=ew, simd=True))


def _gen_counting(specs: list[InstructionSpec]) -> None:
    for ew in (16, 32):
        sfx = _SUFFIX[ew]
        count = VLEN // ew
        body = _loop(count, f"Vd.{sfx}[i] = popcount(Vu.{sfx}[i]);")

        def make_ref(ew=ew):
            def run(env):
                return Vector(env["Vu"], ew).map_lanes(lambda x: x.popcount()).bits

            return run

        specs.append(
            _spec(f"V6_vpopcount{sfx}", "vpopcount", [OperandSpec("Vu", VLEN)],
                  VLEN, body, "count_pop", 2.0, 1.0, make_ref(), elem_width=ew,
                  simd=True))


def generate_hvx_catalog() -> IsaCatalog:
    """Generate the full synthetic HVX manual."""
    specs: list[InstructionSpec] = []
    _gen_arith(specs)
    _gen_logic(specs)
    _gen_shifts(specs)
    _gen_multiply(specs)
    _gen_dot_products(specs)
    _gen_pair_ops(specs)
    _gen_swizzles(specs)
    _gen_pack_unpack(specs)
    _gen_splat(specs)
    _gen_predicated(specs)
    _gen_narrowing_shifts(specs)
    _gen_conditional(specs)
    _gen_counting(specs)
    return IsaCatalog("hvx", specs)
