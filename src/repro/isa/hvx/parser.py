"""Parser for the Qualcomm HVX programmer's-reference-manual C dialect.

The HVX PRM writes instruction behaviour as C-flavoured loops over typed
element accessors::

    for (i = 0; i < 32; i++) {
        Vd.w[i] = sat32(sxt64(Vu.w[i]) + sxt64(Vv.w[i]));
    }

Element accessors carry the width: ``.b``/``.ub`` are 8-bit, ``.h``/
``.uh`` 16-bit, ``.w``/``.uw`` 32-bit (signedness is expressed by the
functions applied, as in the manual).  Statements are C: ``for`` with
``i++`` steps, ``if/else`` with braces, and ``;``-terminated assignments.
Right shift ``>>`` is logical and ``>>>`` arithmetic — the explicit split
the paper had to patch into the vendor pseudocode by hand.
"""

from __future__ import annotations

import re

from repro.hydride_ir.ast import Input, SemanticsFunction
from repro.hydride_ir.indexexpr import IConst
from repro.isa.pseudo_core import (
    Builtin,
    CORE_BUILTINS,
    Lexer,
    PAssign,
    PBin,
    PCall,
    PCond,
    PElem,
    PFor,
    PIf,
    PInt,
    PSlice,
    PStmt,
    PExpr,
    PUn,
    PVar,
    Program,
    PseudocodeError,
    TokenStream,
    lower_program,
    make_cast_builtin,
)
from repro.isa.spec import InstructionSpec

_SYMBOLS = [
    "==", "!=", "<=s", ">=s", "<s", ">s", "<=u", ">=u", "<u", ">u",
    "<=", ">=", "<<", ">>>", ">>", "++", "(", ")", "[", "]", "{", "}",
    ";", ",", ":", "?", "=", "<", ">", "+", "-", "*", "/", "%",
    "&", "|", "^", "~", ".",
]

_LEXER = Lexer(_SYMBOLS)

_ELEM_WIDTHS = {"b": 8, "ub": 8, "h": 16, "uh": 16, "w": 32, "uw": 32}

_NAMED_BUILTINS: dict[str, Builtin] = {
    "min_s": CORE_BUILTINS["min_signed"],
    "max_s": CORE_BUILTINS["max_signed"],
    "min_u": CORE_BUILTINS["min_unsigned"],
    "max_u": CORE_BUILTINS["max_unsigned"],
    "abs": CORE_BUILTINS["abs"],
    "addsat_s": CORE_BUILTINS["sat_add_signed"],
    "addsat_u": CORE_BUILTINS["sat_add_unsigned"],
    "subsat_s": CORE_BUILTINS["sat_sub_signed"],
    "subsat_u": CORE_BUILTINS["sat_sub_unsigned"],
    "avg_s": CORE_BUILTINS["avg_signed"],
    "avg_u": CORE_BUILTINS["avg_unsigned"],
    "avgrnd_s": CORE_BUILTINS["avg_signed_round"],
    "avgrnd_u": CORE_BUILTINS["avg_unsigned_round"],
    "popcount": CORE_BUILTINS["popcount"],
}

# sxt32(x), zxt16(x), sat8(x), usat16(x), trunc8(x), fullmask32(x)
_CAST_RE = re.compile(r"^(sxt|zxt|usat|sat|trunc|fullmask)(\d+)$")
_CAST_OPS = {
    "sxt": "sext",
    "zxt": "zext",
    "sat": "saturate_to_signed",
    "usat": "saturate_to_unsigned",
    "trunc": "trunc",
    "fullmask": "sext",
}


def _builtin_for(name: str) -> Builtin | None:
    builtin = _NAMED_BUILTINS.get(name)
    if builtin is not None:
        return builtin
    match = _CAST_RE.match(name)
    if match is None:
        return None
    cast = make_cast_builtin(_CAST_OPS[match.group(1)])
    width = int(match.group(2))

    def build(args, widths, _inner=cast.constructor, _width=width):
        return _inner([args[0], _width], widths)

    return Builtin(1, build)


class _BuiltinTable(dict):
    def get(self, name: str, default=None):  # type: ignore[override]
        found = super().get(name)
        if found is not None:
            return found
        builtin = _builtin_for(name)
        if builtin is not None:
            self[name] = builtin
        return builtin if builtin is not None else default


_BUILTINS = _BuiltinTable(_NAMED_BUILTINS)


class _HvxParser:
    def __init__(self, text: str) -> None:
        self.stream = TokenStream(_LEXER.tokenize(text))

    def parse_program(self) -> Program:
        statements: list[PStmt] = []
        while not self.stream.at_end():
            statements.append(self._statement())
        return Program(tuple(statements))

    # -- statements -----------------------------------------------------

    def _block(self) -> tuple[PStmt, ...]:
        self.stream.expect("{")
        body: list[PStmt] = []
        while not self.stream.accept("}"):
            if self.stream.at_end():
                raise PseudocodeError("unexpected end of pseudocode in block")
            body.append(self._statement())
        return tuple(body)

    def _statement(self) -> PStmt:
        token = self.stream.peek()
        if token.text == "for":
            return self._for_statement()
        if token.text == "if":
            return self._if_statement()
        return self._assignment()

    def _for_statement(self) -> PFor:
        self.stream.expect("for")
        self.stream.expect("(")
        var = self.stream.expect_kind("ident").text
        self.stream.expect("=")
        start = self._expression()
        self.stream.expect(";")
        check_var = self.stream.expect_kind("ident").text
        if check_var != var:
            raise PseudocodeError(f"for condition tests {check_var!r}, not {var!r}")
        self.stream.expect("<")
        bound = self._expression()
        self.stream.expect(";")
        step_var = self.stream.expect_kind("ident").text
        if step_var != var:
            raise PseudocodeError(f"for step increments {step_var!r}, not {var!r}")
        self.stream.expect("++")
        self.stream.expect(")")
        body = self._block()
        # C loops are exclusive at the top; PFor ends inclusively.
        end = PBin("-", bound, PInt(1))
        return PFor(var, start, end, body)

    def _if_statement(self) -> PIf:
        self.stream.expect("if")
        self.stream.expect("(")
        cond = self._expression()
        self.stream.expect(")")
        then_body = self._block()
        else_body: tuple[PStmt, ...] = ()
        if self.stream.accept("else"):
            else_body = self._block()
        return PIf(cond, then_body, else_body)

    def _assignment(self) -> PAssign:
        target = self._postfix()
        if not isinstance(target, (PVar, PElem, PSlice)):
            raise PseudocodeError("assignment target must be a name or element")
        self.stream.expect("=")
        value = self._expression()
        self.stream.expect(";")
        return PAssign(target, value)

    # -- expressions ------------------------------------------------------

    def _expression(self) -> PExpr:
        return self._ternary()

    def _ternary(self) -> PExpr:
        cond = self._comparison()
        if self.stream.accept("?"):
            then_expr = self._ternary()
            self.stream.expect(":")
            else_expr = self._ternary()
            return PCond(cond, then_expr, else_expr)
        return cond

    _CMP_TOKENS = {
        "==", "!=", "<s", ">s", "<=s", ">=s", "<u", ">u", "<=u", ">=u",
        "<", ">", "<=", ">=",
    }

    def _comparison(self) -> PExpr:
        left = self._bitor()
        token = self.stream.peek().text
        if token in self._CMP_TOKENS:
            self.stream.next()
            return PBin(token, left, self._bitor())
        return left

    def _bitor(self) -> PExpr:
        expr = self._bitxor()
        while self.stream.peek().text == "|":
            self.stream.next()
            expr = PBin("|", expr, self._bitxor())
        return expr

    def _bitxor(self) -> PExpr:
        expr = self._bitand()
        while self.stream.peek().text == "^":
            self.stream.next()
            expr = PBin("^", expr, self._bitand())
        return expr

    def _bitand(self) -> PExpr:
        expr = self._shift()
        while self.stream.peek().text == "&":
            self.stream.next()
            expr = PBin("&", expr, self._shift())
        return expr

    def _shift(self) -> PExpr:
        expr = self._additive()
        while self.stream.peek().text in ("<<", ">>", ">>>"):
            op = self.stream.next().text
            expr = PBin(op, expr, self._additive())
        return expr

    def _additive(self) -> PExpr:
        expr = self._multiplicative()
        while self.stream.peek().text in ("+", "-"):
            op = self.stream.next().text
            expr = PBin(op, expr, self._multiplicative())
        return expr

    def _multiplicative(self) -> PExpr:
        expr = self._unary()
        while self.stream.peek().text in ("*", "/", "%"):
            op = self.stream.next().text
            expr = PBin(op, expr, self._unary())
        return expr

    def _unary(self) -> PExpr:
        token = self.stream.peek()
        if token.text == "-":
            self.stream.next()
            return PUn("-", self._unary())
        if token.text == "~":
            self.stream.next()
            return PUn("~", self._unary())
        return self._postfix()

    def _postfix(self) -> PExpr:
        expr = self._primary()
        while self.stream.peek().text == "[":
            if not isinstance(expr, PVar):
                raise PseudocodeError("only names can be indexed")
            name = expr.name
            if "." in name:
                base, suffix = name.rsplit(".", 1)
                width = _ELEM_WIDTHS.get(suffix)
                if width is None:
                    raise PseudocodeError(f"unknown element suffix .{suffix}")
                self.stream.expect("[")
                index = self._expression()
                self.stream.expect("]")
                expr = PElem(base, width, index)
            else:
                self.stream.expect("[")
                high = self._expression()
                self.stream.expect(":")
                low = self._expression()
                self.stream.expect("]")
                expr = PSlice(name, high, low)
        return expr

    def _primary(self) -> PExpr:
        token = self.stream.next()
        if token.kind == "int":
            return PInt(int(token.text))
        if token.kind == "ident":
            if self.stream.peek().text == "(":
                self.stream.expect("(")
                args: list[PExpr] = []
                if not self.stream.accept(")"):
                    args.append(self._expression())
                    while self.stream.accept(","):
                        args.append(self._expression())
                    self.stream.expect(")")
                return PCall(token.text, tuple(args))
            return PVar(token.text)
        if token.text == "(":
            expr = self._expression()
            self.stream.expect(")")
            return expr
        raise PseudocodeError(f"line {token.line}: unexpected token {token.text!r}")


def parse_hvx_pseudocode(text: str) -> Program:
    return _HvxParser(text).parse_program()


def hvx_semantics(spec: InstructionSpec) -> SemanticsFunction:
    program = parse_hvx_pseudocode(spec.pseudocode)
    input_widths = {op.name: op.width for op in spec.operands}
    body = lower_program(
        program,
        input_widths,
        output_name="Vd",
        output_width=spec.output_width,
        builtins=_BUILTINS,
    )
    inputs = tuple(
        Input(op.name, IConst(op.width), op.is_immediate) for op in spec.operands
    )
    return SemanticsFunction(spec.name, inputs, {}, body, IConst(spec.output_width))
