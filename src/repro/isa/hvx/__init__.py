"""HVX ISA: Qualcomm-PRM-style C dialect, spec generator, and parser."""

from repro.isa.hvx.parser import parse_hvx_pseudocode, hvx_semantics
from repro.isa.hvx.specgen import generate_hvx_catalog

__all__ = ["parse_hvx_pseudocode", "hvx_semantics", "generate_hvx_catalog"]
