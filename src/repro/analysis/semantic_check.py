"""Semantic lint rules driven by the abstract interpreter.

The syntactic checker (:mod:`repro.analysis.hydride_check`) verifies that
a semantics function is *well-formed*; the rules here verify that it is
*sensible*.  Each rule is a statement the abstract interpreter can prove
about every concrete execution of the spec:

``sem/select-const``
    an ``ite`` condition evaluates to the same truth value on every
    input — one branch is dead vendor pseudocode.
``sem/shift-overflow``
    a non-constant shift amount is provably >= the operand width, so the
    shift always produces the degenerate fill value.
``sem/impossible-compare``
    a comparison's result is abstractly constant — the predicate can
    never flip, e.g. an unsigned value compared against a range it
    cannot reach.
``sem/const-subtree``
    a non-trivial subtree evaluates to one known constant on every
    observed path — it could be folded offline.
``sem/dead-lanes``
    bits of a register input that no extract/use ever reads — lanes the
    output provably does not depend on.

All rules are WARNING/NOTE severity: they flag suspicious-but-executable
specs, and the corpus gate is a baseline diff rather than zero-tolerance.
Malformed specs (which raise :class:`SemanticsError` under abstract
evaluation exactly as they would under concrete evaluation) are skipped
here — the syntactic rules own those.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.analysis.absint import (
    UNROLL_LIMIT,
    _index_free_of,
    _mask,
    abstract_semantics,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    Provenance,
    Severity,
)
from repro.hydride_ir.ast import (
    BvBinOp,
    BvBroadcastConst,
    BvCast,
    BvCmp,
    BvConcat,
    BvConst,
    BvExpr,
    BvExtract,
    BvIte,
    BvUnOp,
    BvVar,
    ForConcat,
    SemanticsFunction,
)
from repro.hydride_ir.interp import SemanticsError, resolved_input_widths

_SHIFT_OPS = frozenset({"bvshl", "bvlshr", "bvashr"})
#: Constant shift operands are already covered by ``hydride/shift-range``.
_CONST_NODES = (BvConst, BvBroadcastConst)
#: Node kinds eligible for ``sem/const-subtree`` (BvCmp is excluded: a
#: constant comparison is ``sem/impossible-compare``'s finding).
_FOLDABLE = (BvBinOp, BvUnOp, BvCast, BvIte, BvConcat, BvExtract, ForConcat)
#: Minimum subtree node count for ``sem/const-subtree`` — a lone constant
#: or a cast of one is not worth a diagnostic.
_MIN_FOLD_SIZE = 3


class _Observer:
    """Accumulates abstract facts per *syntactic* node.

    A node inside a ``ForConcat`` body is evaluated once per iteration;
    the rules below only fire on facts that hold across every
    observation, so each map is keyed by ``id(node)`` and joined over
    repeat visits.
    """

    def __init__(self) -> None:
        self.nodes: dict[int, BvExpr] = {}
        # BvIte -> set of condition truth values (0, 1 or None=unknown).
        self.ite_truths: dict[int, set[int | None]] = {}
        # BvCmp -> set of abstract results (0, 1 or None).
        self.cmp_results: dict[int, set[int | None]] = {}
        # Foldable node -> set of constant values (None once any
        # observation was not a known constant).
        self.const_values: dict[int, set[int | None]] = {}
        # Shift node -> largest provable lower bound of the amount.
        self.shift_overflow: dict[int, int] = {}

    def __call__(self, node: BvExpr, value, children) -> None:
        nid = id(node)
        self.nodes[nid] = node
        if isinstance(node, BvIte):
            cond = children[0]
            self.ite_truths.setdefault(nid, set()).add(cond.const_value())
        if isinstance(node, BvCmp):
            self.cmp_results.setdefault(nid, set()).add(value.const_value())
        if (
            isinstance(node, BvBinOp)
            and node.op in _SHIFT_OPS
            and not isinstance(node.right, _CONST_NODES)
        ):
            left, right = children
            if right.umin >= left.width:
                self.shift_overflow[nid] = max(
                    self.shift_overflow.get(nid, 0), right.umin
                )
        if isinstance(node, _FOLDABLE) and not isinstance(node, BvCmp):
            self.const_values.setdefault(nid, set()).add(value.const_value())


def _subtree_size(node: BvExpr) -> int:
    return sum(1 for _ in node.walk())


def observed_bits(
    func: SemanticsFunction, params: Mapping[str, int] | None = None
) -> dict[str, tuple[int, int]]:
    """Which bits of each register input the body can possibly read.

    Returns ``{name: (read_mask, width)}`` for every non-immediate input
    with a positive resolved width.  The walk is conservative in the
    direction that avoids false dead-lane reports: any use it cannot
    reason about (unevaluable index, out-of-range extract, iterator-
    dependent loop past the unroll budget) marks the whole input read.
    """
    env = dict(params if params is not None else func.params)
    widths = resolved_input_widths(func, env)
    seen: dict[str, int] = {
        inp.name: 0
        for inp in func.inputs
        if not inp.is_immediate and widths.get(inp.name, 0) > 0
    }

    def mark_all(expr: BvExpr) -> None:
        for node in expr.walk():
            if isinstance(node, BvVar) and node.name in seen:
                seen[node.name] = _mask(widths[node.name])

    def visit(expr: BvExpr, env: dict[str, int]) -> None:
        if isinstance(expr, BvExtract) and isinstance(expr.src, BvVar):
            name = expr.src.name
            if name not in seen:
                return
            try:
                low = expr.low.evaluate(env)
                width = expr.width.evaluate(env)
            except (KeyError, ZeroDivisionError, ArithmeticError):
                seen[name] = _mask(widths[name])
                return
            if low < 0 or width <= 0 or low + width > widths[name]:
                seen[name] = _mask(widths[name])
            else:
                seen[name] |= _mask(width) << low
            return
        if isinstance(expr, BvVar):
            if expr.name in seen:
                seen[expr.name] = _mask(widths[expr.name])
            return
        if isinstance(expr, ForConcat):
            try:
                count = expr.count.evaluate(env)
            except (KeyError, ZeroDivisionError, ArithmeticError):
                count = None
            if count is not None and count > UNROLL_LIMIT:
                if _index_free_of(expr.body, expr.var):
                    count = 1
                else:
                    count = None
            if count is None or count <= 0:
                mark_all(expr.body)
                return
            for i in range(count):
                env_i = dict(env)
                env_i[expr.var] = i
                visit(expr.body, env_i)
            return
        for child in expr.children():
            visit(child, env)

    visit(func.body, env)
    return {name: (seen[name], widths[name]) for name in seen}


def check_semantic_rules(
    func: SemanticsFunction,
    params: Mapping[str, int] | None = None,
    *,
    isa: str = "",
    stage: str = "",
    sink: DiagnosticSink | None = None,
) -> list[Diagnostic]:
    """Run the ``sem/*`` rules over one semantics function.

    Returns the diagnostics found (also emitted into ``sink`` when one
    is given).  Malformed specs — anything the abstract interpreter
    rejects with :class:`SemanticsError` — produce no semantic
    diagnostics; the syntactic checker reports those shapes.
    """
    own_sink = sink or DiagnosticSink()
    before = len(own_sink.diagnostics)
    base = Provenance(isa=isa, instruction=func.name, stage=stage)

    def report(rule: str, message: str, node: BvExpr, severity: Severity) -> None:
        where = Provenance(
            isa=base.isa,
            instruction=base.instruction,
            stage=base.stage,
            node=type(node).__name__,
        )
        own_sink.emit(rule, message, severity, where)

    observer = _Observer()
    try:
        abstract_semantics(func, params=params, observe=observer)
    except SemanticsError:
        return own_sink.diagnostics[before:]

    for nid, truths in sorted(observer.ite_truths.items()):
        node = observer.nodes[nid]
        if truths == {1}:
            report(
                "sem/select-const",
                "select condition is always true; the else branch is dead",
                node,
                Severity.WARNING,
            )
        elif truths == {0}:
            report(
                "sem/select-const",
                "select condition is always false; the then branch is dead",
                node,
                Severity.WARNING,
            )

    for nid, results in sorted(observer.cmp_results.items()):
        node = observer.nodes[nid]
        if results == {1} or results == {0}:
            verdict = "true" if results == {1} else "false"
            report(
                "sem/impossible-compare",
                f"{node.op} is provably always {verdict}",
                node,
                Severity.WARNING,
            )

    for nid, bound in sorted(observer.shift_overflow.items()):
        node = observer.nodes[nid]
        report(
            "sem/shift-overflow",
            f"{node.op} amount is provably >= {bound}, at or past the "
            f"operand width",
            node,
            Severity.WARNING,
        )

    # Constant-foldable subtrees: report maximal ones only — walk the
    # body top-down and do not descend past a reported node.
    def fold_walk(node: BvExpr) -> None:
        values = observer.const_values.get(id(node))
        if (
            values is not None
            and None not in values
            and len(values) == 1
            and _subtree_size(node) >= _MIN_FOLD_SIZE
        ):
            (value,) = values
            report(
                "sem/const-subtree",
                f"{_subtree_size(node)}-node subtree always evaluates "
                f"to {value}",
                node,
                Severity.NOTE,
            )
            return
        for child in node.children():
            fold_walk(child)

    fold_walk(func.body)

    try:
        usage = observed_bits(func, params)
    except (SemanticsError, KeyError, ZeroDivisionError, ArithmeticError):
        usage = {}
    for name in sorted(usage):
        read_mask, width = usage[name]
        full = _mask(width)
        if read_mask == full:
            continue
        dead = width - bin(read_mask).count("1")
        if read_mask == 0:
            message = f"input {name!r} is never read"
        else:
            message = f"input {name!r}: {dead} of {width} bits never read"
        report("sem/dead-lanes", message, func.body, Severity.NOTE)

    return own_sink.diagnostics[before:]
