"""Cross-layer static analysis for the Hydride pipeline ("hydride-lint").

A pass-based verification framework shared by all three program
representations the compiler moves through:

* **Hydride IR** semantics functions
  (:mod:`repro.analysis.hydride_check`) — type/width inference,
  lane-count consistency, slice bounds, shift ranges, ``ForConcat``
  width arithmetic;
* **lowered Halide IR** windows (:mod:`repro.analysis.halide_check`);
* **synthesis candidate programs**
  (:mod:`repro.analysis.synth_check`) — the cheap pre-SMT
  well-typedness gate inside CEGIS;
* **AutoLLVM / LLVM IR** functions (:mod:`repro.analysis.llvm_check`)
  — SSA plus intrinsic-signature validation;
* **semantic rules** (:mod:`repro.analysis.semantic_check`) — driven by
  the abstract interpreter in :mod:`repro.analysis.absint` (known-bits
  + value-range lattices): dead branches, impossible compares,
  overflowing shifts, constant-foldable subtrees, dead input lanes.

All checkers report through one diagnostics engine
(:mod:`repro.analysis.diagnostics`) with stable rule IDs, severities,
provenance and JSON output.  Pipeline stages call the gated hooks in
:mod:`repro.analysis.hooks` (``REPRO_VERIFY_IR=1`` to enable), and
``python -m repro.analysis`` lints the full generated spec corpora.
"""

from repro.analysis.absint import (
    AbsValue,
    abstract_apply,
    abstract_program,
    abstract_semantics,
    abstract_window,
    abstract_window_lanes,
    provably_disagrees,
    screen_cached_program,
    screen_dictionary,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    IRVerificationError,
    Provenance,
    RULES,
    Severity,
    rule_doc,
)
from repro.analysis.halide_check import assert_window, check_window
from repro.analysis.hooks import (
    set_verification,
    verification,
    verification_enabled,
    verify_llvm,
    verify_program,
    verify_semantics,
    verify_window,
)
from repro.analysis.hydride_check import assert_semantics, check_semantics
from repro.analysis.llvm_check import check_function as check_llvm_function
from repro.analysis.sarif import sarif_json, to_sarif
from repro.analysis.semantic_check import check_semantic_rules, observed_bits
from repro.analysis.synth_check import assert_program, check_program

__all__ = [
    "AbsValue",
    "abstract_apply",
    "abstract_program",
    "abstract_semantics",
    "abstract_window",
    "abstract_window_lanes",
    "check_semantic_rules",
    "observed_bits",
    "provably_disagrees",
    "sarif_json",
    "screen_cached_program",
    "screen_dictionary",
    "to_sarif",
    "Diagnostic",
    "DiagnosticSink",
    "IRVerificationError",
    "Provenance",
    "RULES",
    "Severity",
    "rule_doc",
    "assert_program",
    "assert_semantics",
    "assert_window",
    "check_llvm_function",
    "check_program",
    "check_semantics",
    "check_window",
    "set_verification",
    "verification",
    "verification_enabled",
    "verify_llvm",
    "verify_program",
    "verify_semantics",
    "verify_window",
]
