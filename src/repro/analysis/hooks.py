"""Pipeline verification hooks, gated by the ``REPRO_VERIFY_IR`` flag.

Each compilation stage calls the matching ``verify_*`` hook on its
output.  When verification is disabled (the default — these are hot
paths) the hooks return immediately; when enabled they run the full
checker and raise :class:`~repro.analysis.diagnostics.IRVerificationError`
on the first stage whose output is malformed, so a width bug is caught at
the pass that introduced it instead of at the SMT solver.

Enable with ``REPRO_VERIFY_IR=1`` in the environment, programmatically
with :func:`set_verification`, or scoped with the :func:`verification`
context manager (used by the test suite).
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from contextlib import contextmanager

from repro.analysis.diagnostics import IRVerificationError, Severity

# Checker modules are imported lazily inside each hook: the hooks are
# called from leaf IR layers (transforms, lowering), and importing the
# synthesis stack there would create import cycles and slow cold starts.

ENV_FLAG = "REPRO_VERIFY_IR"

_FALSE_VALUES = frozenset({"", "0", "false", "off", "no"})

# Tri-state programmatic override: None defers to the environment.
_override: bool | None = None


def verification_enabled() -> bool:
    """Whether pipeline verification hooks are active."""
    if _override is not None:
        return _override
    return os.environ.get(ENV_FLAG, "").strip().lower() not in _FALSE_VALUES


def set_verification(enabled: bool | None) -> None:
    """Force verification on/off; ``None`` restores the env-var default."""
    global _override
    _override = enabled


@contextmanager
def verification(enabled: bool = True):
    """Scoped verification toggle (restores the prior state on exit)."""
    global _override
    previous = _override
    _override = enabled
    try:
        yield
    finally:
        _override = previous


def _raise_on_errors(diagnostics, context: str) -> None:
    if any(d.severity is Severity.ERROR for d in diagnostics):
        raise IRVerificationError(diagnostics, context)


def verify_semantics(
    func,
    params: Mapping[str, int] | None = None,
    *,
    isa: str = "",
    stage: str = "",
    declared_output_width: int | None = None,
) -> None:
    """Verify a Hydride IR semantics function (post-parse / post-transform)."""
    if not verification_enabled():
        return
    from repro.analysis import hydride_check

    diagnostics = hydride_check.check_semantics(
        func,
        params,
        declared_output_width=declared_output_width,
        isa=isa,
        stage=stage,
    )
    _raise_on_errors(diagnostics, f"{stage or 'semantics'}:{func.name}")


def verify_window(expr, *, kernel: str = "", stage: str = "lowering") -> None:
    """Verify a lowered Halide IR window."""
    if not verification_enabled():
        return
    from repro.analysis import halide_check

    diagnostics = halide_check.check_window(expr, kernel=kernel, stage=stage)
    _raise_on_errors(diagnostics, f"{stage}:{kernel or 'window'}")


def verify_program(node, *, isa: str = "", stage: str = "cegis") -> None:
    """Verify a synthesis candidate before it reaches the SMT solver."""
    if not verification_enabled():
        return
    from repro.analysis import synth_check

    diagnostics = synth_check.check_program(node, isa=isa, stage=stage)
    _raise_on_errors(diagnostics, f"{stage}:candidate")


def verify_llvm(function, dictionary=None, *, stage: str = "translate") -> None:
    """Verify an AutoLLVM / LLVM IR function."""
    if not verification_enabled():
        return
    from repro.analysis import llvm_check

    diagnostics = llvm_check.check_function(function, dictionary, stage=stage)
    _raise_on_errors(diagnostics, f"{stage}:{function.name}")
