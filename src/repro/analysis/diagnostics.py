"""Diagnostics engine for the cross-layer IR verifier ("hydride-lint").

Every well-formedness check in :mod:`repro.analysis` reports its findings
as :class:`Diagnostic` records instead of raising ad-hoc exceptions.  A
diagnostic carries a stable rule ID (the catalogue below), a severity, a
human-readable message and :class:`Provenance` — which ISA / instruction
spec / pipeline stage produced the offending node — so a defect found deep
inside CEGIS can still be traced back to the vendor pseudocode line that
introduced it.  Sinks aggregate diagnostics, render terminal summaries and
serialise to machine-readable JSON for tooling.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from enum import Enum


class Severity(str, Enum):
    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "note": 2}[self.value]


#: The rule catalogue.  IDs are ``<layer>/<defect>``; adding a rule here is
#: what makes it emittable — sinks reject unknown IDs so typos fail loudly.
RULES: dict[str, str] = {
    # -- instruction spec records (the "manual entry" layer) -------------
    "spec/duplicate-name": "two catalog entries share one instruction name",
    "spec/output-width": "declared output width is not positive",
    "spec/empty-pseudocode": "spec has no pseudocode text to parse",
    "spec/timing": "latency or throughput is not positive",
    "spec/semantics-io": "parsed semantics disagrees with the operand list",
    "spec/lane-width": "element or lane width does not tile the output width",
    "spec/mask-width": "mask register width disagrees with the element count",
    # -- Hydride IR semantics functions ----------------------------------
    "hydride/unknown-input": "body references an undeclared input register",
    "hydride/input-decl": "input declaration is malformed (dup name, width)",
    "hydride/unbound-symbol": "index expression uses an unbound param/iterator",
    "hydride/index-eval": "index expression cannot be evaluated",
    "hydride/op-name": "operator name unknown to the bitvector substrate",
    "hydride/nonpositive-width": "expression has a non-positive bit width",
    "hydride/binop-width": "binary operation operand widths differ",
    "hydride/cmp-width": "comparison operand widths differ",
    "hydride/ite-cond": "ite condition is not 1 bit wide",
    "hydride/ite-branch": "ite branch widths differ",
    "hydride/extract-bounds": "extract slice exceeds the source width",
    "hydride/shift-range": "constant shift amount out of element range",
    "hydride/loop-count": "ForConcat iteration count is not positive",
    "hydride/lane-width": "loop body width varies across iterations",
    "hydride/output-width": "body width disagrees with the declared output",
    "hydride/cast-width": "cast direction contradicts the width change",
    "hydride/saturate-width": "saturating cast widens its operand",
    "hydride/const-range": "constant value does not fit its declared width",
    # -- lowered Halide IR windows ---------------------------------------
    "halide/nonpositive-type": "node type has non-positive lanes or width",
    "halide/op-name": "unknown Halide operation or cast kind",
    "halide/binop-type": "binary operation operand types differ",
    "halide/select-cond": "select condition is not 1-bit with matching lanes",
    "halide/slice-bounds": "lane slice exceeds the source lane count",
    "halide/concat-elem": "concat parts have differing element widths",
    "halide/reduce-factor": "reduce_add factor does not divide the lanes",
    "halide/shuffle-index": "shuffle index outside the source lane range",
    "halide/load-conflict": "one load/broadcast name bound at two types",
    "halide/const-range": "splat constant does not fit the element width",
    # -- synthesis candidate programs (pre-SMT well-typedness) -----------
    "synth/nonpositive-width": "candidate node has a non-positive bit width",
    "synth/op-arity": "instruction application has wrong argument count",
    "synth/imm-arity": "instruction application has wrong immediate count",
    "synth/arg-width": "argument width disagrees with the input declaration",
    "synth/out-width": "recorded output width disagrees with the semantics",
    "synth/slice-width": "half-register slice of an unsplittable width",
    "synth/swizzle-arity": "swizzle pattern applied at the wrong arity",
    "synth/swizzle-width": "swizzle operand/output widths are inconsistent",
    # -- semantic rules (abstract interpretation, repro.analysis.absint) -
    "sem/select-const": "select condition is abstractly constant",
    "sem/shift-overflow": "shift amount is provably >= the operand width",
    "sem/impossible-compare": "comparison result is abstractly constant",
    "sem/const-subtree": "subtree always evaluates to one constant",
    "sem/dead-lanes": "input bits never observed by the output",
    # -- lint driver internals --------------------------------------------
    "A-INTERNAL": "a checker raised an internal error while linting",
    # -- AutoLLVM / LLVM IR functions ------------------------------------
    "llvm/undef-value": "use of an undefined SSA value",
    "llvm/redef": "SSA value defined twice",
    "llvm/undef-ret": "function returns an undefined value",
    "llvm/unknown-intrinsic": "autollvm callee absent from the dictionary",
    "llvm/op-arity": "intrinsic call has wrong register operand count",
    "llvm/imm-arity": "intrinsic call has wrong immediate operand count",
    "llvm/imm-type": "immediate operand is not an i32 scalar",
    "llvm/imm-position": "immediate operand precedes a register operand",
    "llvm/result-type": "call result type contradicts the intrinsic shape",
}


def rule_doc(rule_id: str) -> str:
    """One-line description of a rule; raises KeyError for unknown IDs."""
    return RULES[rule_id]


@dataclass(frozen=True)
class Provenance:
    """Where a diagnosed node came from."""

    isa: str = ""
    instruction: str = ""  # spec name / kernel name / LLVM function name
    stage: str = ""  # pipeline stage: parse, canonicalize, lowering, ...
    node: str = ""  # short rendering of the offending node

    def format(self) -> str:
        origin = ":".join(p for p in (self.isa, self.instruction) if p)
        parts = [p for p in (origin, self.stage) if p]
        text = " @".join(parts) if len(parts) == 2 else "".join(parts)
        if self.node:
            text = f"{text} [{self.node}]" if text else f"[{self.node}]"
        return text


@dataclass(frozen=True)
class Diagnostic:
    rule: str
    severity: Severity
    message: str
    provenance: Provenance = field(default_factory=Provenance)

    def format(self) -> str:
        where = self.provenance.format()
        prefix = f"{self.severity.value}[{self.rule}]"
        return f"{prefix} {where}: {self.message}" if where else f"{prefix}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "isa": self.provenance.isa,
            "instruction": self.provenance.instruction,
            "stage": self.provenance.stage,
            "node": self.provenance.node,
        }


class IRVerificationError(Exception):
    """Raised by verification hooks when a check finds errors."""

    def __init__(self, diagnostics: list[Diagnostic], context: str = "") -> None:
        self.diagnostics = list(diagnostics)
        errors = [d for d in self.diagnostics if d.severity is Severity.ERROR]
        shown = "\n".join(d.format() for d in errors[:8])
        extra = len(errors) - min(len(errors), 8)
        if extra > 0:
            shown += f"\n... and {extra} more"
        header = f"{context}: " if context else ""
        super().__init__(f"{header}{len(errors)} IR verification error(s)\n{shown}")


class DiagnosticSink:
    """Accumulates diagnostics and renders summaries.

    ``max_per_rule`` caps how many diagnostics of one rule are *stored*
    (counts keep growing), so linting a corpus with a systematic defect
    does not hoard thousands of identical records.
    """

    def __init__(self, max_per_rule: int = 200) -> None:
        self.diagnostics: list[Diagnostic] = []
        self.max_per_rule = max_per_rule
        self._rule_counts: Counter[str] = Counter()
        self._severity_counts: Counter[str] = Counter()

    def emit(
        self,
        rule: str,
        message: str,
        severity: Severity = Severity.ERROR,
        provenance: Provenance | None = None,
    ) -> Diagnostic:
        if rule not in RULES:
            raise KeyError(f"unknown diagnostic rule {rule!r}")
        diag = Diagnostic(rule, severity, message, provenance or Provenance())
        self.add(diag)
        return diag

    def add(self, diag: Diagnostic) -> None:
        if diag.rule not in RULES:
            raise KeyError(f"unknown diagnostic rule {diag.rule!r}")
        self._rule_counts[diag.rule] += 1
        self._severity_counts[diag.severity.value] += 1
        if self._rule_counts[diag.rule] <= self.max_per_rule:
            self.diagnostics.append(diag)

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        for diag in diagnostics:
            self.add(diag)

    @property
    def error_count(self) -> int:
        return self._severity_counts["error"]

    @property
    def warning_count(self) -> int:
        return self._severity_counts["warning"]

    def has_errors(self) -> bool:
        return self.error_count > 0

    def by_rule(self) -> Counter:
        return Counter(self._rule_counts)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def summary(self) -> dict:
        return {
            "errors": self.error_count,
            "warnings": self.warning_count,
            "notes": self._severity_counts["note"],
            "rules": dict(sorted(self._rule_counts.items())),
        }

    def to_json(self, indent: int | None = 2) -> str:
        payload = {
            "summary": self.summary(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    def raise_if_errors(self, context: str = "") -> None:
        if self.has_errors():
            raise IRVerificationError(self.diagnostics, context)
