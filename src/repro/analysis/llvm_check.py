"""Checker for AutoLLVM / LLVM IR functions.

Extends the original SSA sanity checks (defs precede uses, unique names,
defined return) with intrinsic-signature validation: every
``autollvm.view.*`` / ``autollvm.swizzle.*`` helper has a fixed shape,
and — when the AutoLLVM dictionary is supplied — every compute intrinsic
call is checked against its declared register/immediate arity, immediate
operand types and the registers-before-immediates operand layout the
instruction selector relies on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    Provenance,
    Severity,
)
from repro.autollvm.llvmir import (
    Function,
    ImmOperand,
    Instruction,
    IntType,
    Value,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.autollvm.intrinsics import AutoLLVMDictionary

# Swizzle helper arities; mirrors repro.synthesis.program.SWIZZLE_SHAPES
# without importing the synthesis stack into this leaf checker.
_SWIZZLE_ARITY = {
    "interleave_full": 2,
    "interleave_single": 1,
    "deinterleave_single": 1,
    "interleave_lo": 2,
    "interleave_hi": 2,
    "concat_lo": 2,
    "concat_hi": 2,
    "rotate_right": 1,
}


def check_function(
    function: Function,
    dictionary: "AutoLLVMDictionary | None" = None,
    *,
    stage: str = "",
    sink: DiagnosticSink | None = None,
) -> list[Diagnostic]:
    """Check one straight-line function; returns the diagnostics found."""
    own_sink = sink or DiagnosticSink()
    before = len(own_sink.diagnostics)

    def report(
        rule: str,
        message: str,
        severity: Severity = Severity.ERROR,
        node: str = "",
    ) -> None:
        own_sink.emit(
            rule,
            message,
            severity,
            Provenance(instruction=function.name, stage=stage, node=node),
        )

    defined: dict[str, Value] = {a.name: a for a in function.args}
    for instr in function.body:
        for op in instr.operands:
            if isinstance(op, Value) and op.name not in defined:
                report(
                    "llvm/undef-value",
                    f"use of undefined value %{op.name}",
                    node=instr.callee,
                )
        if instr.result.name in defined:
            report(
                "llvm/redef",
                f"%{instr.result.name} redefined",
                node=instr.callee,
            )
        defined[instr.result.name] = instr.result
        _check_call(instr, dictionary, report)
    if function.ret is not None and function.ret.name not in defined:
        report(
            "llvm/undef-ret",
            f"return of undefined value %{function.ret.name}",
        )
    return own_sink.diagnostics[before:]


def _check_call(instr: Instruction, dictionary, report) -> None:
    callee = instr.callee
    registers = [o for o in instr.operands if isinstance(o, Value)]
    immediates = [o for o in instr.operands if isinstance(o, ImmOperand)]

    if callee.startswith("autollvm."):
        # Registers-before-immediates layout: the selector splits operands
        # by kind and matches immediates positionally, so an interleaved
        # layout silently permutes the lowering.
        seen_imm = False
        for op in instr.operands:
            if isinstance(op, ImmOperand):
                seen_imm = True
            elif seen_imm:
                report(
                    "llvm/imm-position",
                    f"{callee}: register operand follows an immediate",
                    node=callee,
                )
                break
        for imm in immediates:
            if imm.type != IntType(32):
                report(
                    "llvm/imm-type",
                    f"{callee}: immediate {imm.value} typed {imm.type}, "
                    "expected i32",
                    node=callee,
                )

    if callee.startswith("autollvm.view."):
        _check_view(callee, instr, registers, immediates, report)
    elif callee.startswith("autollvm.swizzle."):
        _check_swizzle(callee, instr, registers, immediates, report)
    elif callee.startswith("autollvm.") and dictionary is not None:
        _check_compute(callee, instr, registers, immediates, dictionary, report)


def _check_view(callee, instr, registers, immediates, report) -> None:
    kind = callee.rsplit(".", 1)[-1]
    result_bits = instr.result.type.bits
    if kind == "splat":
        if len(registers) != 0 or len(immediates) != 2:
            report(
                "llvm/op-arity",
                f"{callee} takes (value, elem_width) immediates, got "
                f"{len(registers)} register(s) and {len(immediates)} "
                "immediate(s)",
                node=callee,
            )
            return
        elem = immediates[1].value
        if elem <= 0 or result_bits % elem:
            report(
                "llvm/result-type",
                f"{callee}: element width {elem} does not divide the "
                f"{result_bits}-bit result",
                node=callee,
            )
    elif kind == "slice":
        if len(registers) != 1 or len(immediates) != 1:
            report(
                "llvm/op-arity",
                f"{callee} takes one register and one immediate, got "
                f"{len(registers)} and {len(immediates)}",
                node=callee,
            )
            return
        if immediates[0].value not in (0, 1):
            report(
                "llvm/imm-type",
                f"{callee}: half selector must be 0 or 1, got "
                f"{immediates[0].value}",
                node=callee,
            )
        if result_bits * 2 != registers[0].type.bits:
            report(
                "llvm/result-type",
                f"{callee}: result is {result_bits} bits, source is "
                f"{registers[0].type.bits}",
                node=callee,
            )
    elif kind == "concat":
        if len(registers) != 2 or len(immediates) != 0:
            report(
                "llvm/op-arity",
                f"{callee} takes two registers, got {len(registers)} "
                f"register(s) and {len(immediates)} immediate(s)",
                node=callee,
            )
            return
        total = registers[0].type.bits + registers[1].type.bits
        if result_bits != total:
            report(
                "llvm/result-type",
                f"{callee}: result is {result_bits} bits, operands total "
                f"{total}",
                node=callee,
            )
    else:
        report(
            "llvm/unknown-intrinsic",
            f"unknown view helper {callee}",
            Severity.WARNING,
            node=callee,
        )


def _check_swizzle(callee, instr, registers, immediates, report) -> None:
    pattern = callee.rsplit(".", 1)[-1]
    arity = _SWIZZLE_ARITY.get(pattern)
    if arity is None:
        report(
            "llvm/unknown-intrinsic",
            f"unknown swizzle pattern {callee}",
            Severity.WARNING,
            node=callee,
        )
        return
    expected_imms = 2 if pattern == "rotate_right" else 1
    if len(registers) != arity or len(immediates) != expected_imms:
        report(
            "llvm/op-arity",
            f"{callee} takes {arity} register(s) and {expected_imms} "
            f"immediate(s), got {len(registers)} and {len(immediates)}",
            node=callee,
        )
        return
    widths = {r.type.bits for r in registers}
    if len(widths) > 1:
        report(
            "llvm/result-type",
            f"{callee}: operand widths differ: {sorted(widths)}",
            node=callee,
        )
        return
    bits = registers[0].type.bits
    elem = immediates[0].value
    if elem <= 0 or bits % elem:
        report(
            "llvm/result-type",
            f"{callee}: element width {elem} does not divide {bits} bits",
            node=callee,
        )
    expected = bits * 2 if pattern == "interleave_full" else bits
    if instr.result.type.bits != expected:
        report(
            "llvm/result-type",
            f"{callee}: result is {instr.result.type.bits} bits, "
            f"pattern produces {expected}",
            node=callee,
        )


def _check_compute(
    callee, instr, registers, immediates, dictionary, report
) -> None:
    try:
        op = dictionary.op_named(callee)
    except KeyError:
        report(
            "llvm/unknown-intrinsic",
            f"{callee} is not in the AutoLLVM dictionary",
            Severity.WARNING,
            node=callee,
        )
        return
    representative = op.eq_class.representative
    expected_regs = representative.bv_arity()
    if len(registers) != expected_regs:
        report(
            "llvm/op-arity",
            f"{callee} takes {expected_regs} register operand(s), got "
            f"{len(registers)}",
            node=callee,
        )
    # Class-parameter immediates first, then the member instruction's own
    # immediate operands (shift amounts etc.), as emitted by the
    # translator and consumed positionally by the selector.
    expected_imms = len(op.free_positions) + representative.imm_arity()
    if len(immediates) != expected_imms:
        report(
            "llvm/imm-arity",
            f"{callee} takes {expected_imms} immediate(s) "
            f"({len(op.free_positions)} class parameter(s) + "
            f"{representative.imm_arity()} instruction immediate(s)), "
            f"got {len(immediates)}",
            node=callee,
        )
