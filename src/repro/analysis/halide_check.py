"""Well-formedness checker for lowered (vectorised) Halide IR windows.

Halide IR node constructors validate some invariants in ``__post_init__``,
but nodes reach the synthesizer through transformations
(``dataclasses.replace``, scaling, slicing) that can silently violate
them, and several properties are never constructor-checked at all
(shuffle index ranges, splat constant ranges, consistent load typing
across the whole window).  This checker re-validates everything over the
final window, reporting through the diagnostics engine.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    IRVerificationError,
    Provenance,
    Severity,
)
from repro.halide import ir as hir


def _provenance(kernel: str, stage: str, node: hir.HExpr) -> Provenance:
    return Provenance(
        instruction=kernel, stage=stage, node=type(node).__name__
    )


def check_window(
    expr: hir.HExpr,
    *,
    kernel: str = "",
    stage: str = "",
    sink: DiagnosticSink | None = None,
) -> list[Diagnostic]:
    """Check one Halide IR window; returns the diagnostics found."""
    own_sink = sink or DiagnosticSink()
    before = len(own_sink.diagnostics)
    bound: dict[str, hir.HType] = {}

    def report(
        rule: str,
        message: str,
        node: hir.HExpr,
        severity: Severity = Severity.ERROR,
    ) -> None:
        own_sink.emit(rule, message, severity, _provenance(kernel, stage, node))

    for node in expr.walk():
        node_type = node.type
        if node_type.lanes <= 0 or node_type.elem_width <= 0:
            report(
                "halide/nonpositive-type",
                f"type {node_type} has non-positive lanes or element width",
                node,
            )
            continue

        if isinstance(node, (hir.HLoad, hir.HBroadcast)):
            existing = bound.setdefault(node.name, node.type)
            if existing != node.type:
                report(
                    "halide/load-conflict",
                    f"{node.name!r} bound at both {existing} and {node.type}",
                    node,
                )
        elif isinstance(node, hir.HConst):
            limit = 1 << node.elem_width
            if not -(limit >> 1) <= node.value < limit:
                report(
                    "halide/const-range",
                    f"splat value {node.value} does not fit "
                    f"{node.elem_width} bits",
                    node,
                    Severity.WARNING,
                )
        elif isinstance(node, hir.HBin):
            if node.op not in hir.H_BINOPS:
                report("halide/op-name", f"unknown binop {node.op!r}", node)
            if node.left.type != node.right.type:
                report(
                    "halide/binop-type",
                    f"{node.op} over {node.left.type} and {node.right.type}",
                    node,
                )
        elif isinstance(node, hir.HCmp):
            if node.op not in hir.H_CMPOPS:
                report("halide/op-name", f"unknown cmp {node.op!r}", node)
            if node.left.type != node.right.type:
                report(
                    "halide/binop-type",
                    f"{node.op} over {node.left.type} and {node.right.type}",
                    node,
                )
        elif isinstance(node, hir.HSelect):
            cond = node.cond.type
            if cond.elem_width != 1 or cond.lanes != node.then_expr.type.lanes:
                report(
                    "halide/select-cond",
                    f"condition type {cond} for value type "
                    f"{node.then_expr.type}",
                    node,
                )
            if node.then_expr.type != node.else_expr.type:
                report(
                    "halide/binop-type",
                    f"select branches {node.then_expr.type} and "
                    f"{node.else_expr.type}",
                    node,
                )
        elif isinstance(node, hir.HCast):
            if node.kind not in hir.H_CASTS:
                report("halide/op-name", f"unknown cast {node.kind!r}", node)
        elif isinstance(node, hir.HSlice):
            src_lanes = node.src.type.lanes
            if node.start < 0 or node.start + node.lanes > src_lanes:
                report(
                    "halide/slice-bounds",
                    f"lanes [{node.start}, {node.start + node.lanes}) of a "
                    f"{src_lanes}-lane value",
                    node,
                )
        elif isinstance(node, hir.HConcat):
            widths = {p.type.elem_width for p in node.parts}
            if len(widths) > 1:
                report(
                    "halide/concat-elem",
                    f"parts at element widths {sorted(widths)}",
                    node,
                )
        elif isinstance(node, hir.HReduceAdd):
            if node.factor <= 0 or node.src.type.lanes % node.factor:
                report(
                    "halide/reduce-factor",
                    f"factor {node.factor} over {node.src.type.lanes} lanes",
                    node,
                )
        elif isinstance(node, hir.HShuffle):
            src_lanes = node.src.type.lanes
            bad = [i for i in node.indices if i < 0 or i >= src_lanes]
            if bad:
                report(
                    "halide/shuffle-index",
                    f"indices {bad} outside [0, {src_lanes})",
                    node,
                )
    return own_sink.diagnostics[before:]


def assert_window(expr: hir.HExpr, *, kernel: str = "", stage: str = "") -> None:
    """Raise :class:`IRVerificationError` if the window fails the checker."""
    diagnostics = check_window(expr, kernel=kernel, stage=stage)
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    if errors:
        raise IRVerificationError(diagnostics, context=kernel or "halide window")
