"""Abstract interpretation of Hydride IR and synthesis candidate programs.

Two cooperating lattices over fixed-width bitvectors:

* **known bits** — per-bit 0/1/unknown, stored as a pair of masks
  (``zeros``/``ones``) over the value's width;
* **value ranges** — an unsigned interval ``[umin, umax]`` and a signed
  interval ``[smin, smax]`` (two's complement).

The two refine each other on construction (:func:`make`): known bits
clamp the ranges, a constant range pins every bit, and the shared high
bits of ``umin``/``umax`` become known bits.  Vector values are plain
wide :class:`AbsValue` objects; per-lane views are recovered with
:func:`lane_values` (the extract transfer applied per element), which is
how packed/vector precision is expressed without a separate domain.

**Soundness contract.**  For every expression ``e`` and every concrete
environment on which ``e`` evaluates without error, the concrete result
``v`` satisfies ``abstract(e).contains(v.value)`` — i.e. abstract
evaluation over-approximates concrete evaluation.  Everything built on
top (CEGIS pruning, cache screening, the semantic lint rules) relies
only on this direction; no consumer ever assumes precision.

Transfer functions live in patchable tables (:data:`BINARY_TRANSFERS`,
:data:`UNARY_TRANSFERS`, :data:`CMP_TRANSFERS`, :data:`CAST_TRANSFERS`)
keyed by the SMT-LIB op names of :class:`repro.bitvector.bv.BitVector`,
so the bug-injection tests can mutate one transfer at a time and assert
the soundness property test notices.

**Widening.**  The only recursive construct in the IR is ``ForConcat``.
Loops up to :data:`UNROLL_LIMIT` iterations are evaluated exactly (the
whole generated corpus fits); iterator-independent bodies are evaluated
once and replicated regardless of count; anything longer widens the
remaining iterations to top — the classic jump-to-top widening that
keeps the engine a single pass.  :meth:`AbsValue.widen` is the lattice
half of the operator, available to future fixpoint consumers.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.bitvector.packed import swizzle_order
from repro.halide import ir as hir
from repro.hydride_ir.ast import (
    BvBinOp,
    BvBroadcastConst,
    BvCast,
    BvCmp,
    BvConcat,
    BvConst,
    BvExpr,
    BvExtract,
    BvIte,
    BvUnOp,
    BvVar,
    ForConcat,
    SemanticsFunction,
)
from repro.hydride_ir.interp import (
    SemanticsError,
    compute_width,
    resolved_input_widths,
)
from repro.synthesis.program import (
    SConcat,
    SConstant,
    SInput,
    SNode,
    SOp,
    SSlice,
    SSwizzle,
)

# ForConcat loops longer than this are not fully unrolled; their tail
# iterations widen to top (see module docstring).
UNROLL_LIMIT = 128


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass(frozen=True)
class AbsValue:
    """One abstract bitvector: known bits plus unsigned/signed ranges.

    Construct through :func:`make` (or the :func:`top` / :func:`const` /
    :func:`from_ints` shorthands), which normalises the components
    against each other; the raw constructor performs no refinement.
    """

    width: int
    zeros: int  # mask of bits known to be 0
    ones: int  # mask of bits known to be 1
    umin: int
    umax: int
    smin: int
    smax: int

    # -- predicates ----------------------------------------------------

    def contains(self, value: int) -> bool:
        """True when concrete ``value`` (unsigned form) is represented."""
        value &= _mask(self.width)
        if value & self.zeros:
            return False
        if (value & self.ones) != self.ones:
            return False
        if not self.umin <= value <= self.umax:
            return False
        signed = value - (1 << self.width) if value >> (self.width - 1) else value
        return self.smin <= signed <= self.smax

    def is_const(self) -> bool:
        return self.umin == self.umax

    def const_value(self) -> int | None:
        return self.umin if self.umin == self.umax else None

    # -- lattice -------------------------------------------------------

    def join(self, other: "AbsValue") -> "AbsValue":
        """Least upper bound: represents everything either side does."""
        if self.width != other.width:
            raise ValueError(
                f"join requires equal widths, got {self.width} and {other.width}"
            )
        return make(
            self.width,
            zeros=self.zeros & other.zeros,
            ones=self.ones & other.ones,
            umin=min(self.umin, other.umin),
            umax=max(self.umax, other.umax),
            smin=min(self.smin, other.smin),
            smax=max(self.smax, other.smax),
        )

    def widen(self, other: "AbsValue") -> "AbsValue":
        """Widening: like join, but unstable bounds jump to the extreme.

        Guarantees termination of ascending chains in a handful of steps:
        a bound that moved between ``self`` and ``other`` is not nudged
        but thrown to the width's limit, and only bits known identically
        on both sides survive.
        """
        if self.width != other.width:
            raise ValueError(
                f"widen requires equal widths, got {self.width} and {other.width}"
            )
        half = 1 << (self.width - 1)
        return make(
            self.width,
            zeros=self.zeros & other.zeros,
            ones=self.ones & other.ones,
            umin=self.umin if other.umin >= self.umin else 0,
            umax=self.umax if other.umax <= self.umax else _mask(self.width),
            smin=self.smin if other.smin >= self.smin else -half,
            smax=self.smax if other.smax <= self.smax else half - 1,
        )


def make(
    width: int,
    zeros: int = 0,
    ones: int = 0,
    umin: int = 0,
    umax: int | None = None,
    smin: int | None = None,
    smax: int | None = None,
) -> AbsValue:
    """Build a normalised :class:`AbsValue`.

    The refinement loop propagates information between the lattices:
    known bits tighten both ranges, each range tightens the other when
    the value's sign is determined, and the common high-bit prefix of
    the unsigned bounds becomes known bits.
    """
    if width <= 0:
        raise ValueError(f"abstract value width must be positive, got {width}")
    mask = _mask(width)
    half = 1 << (width - 1)
    zeros &= mask
    ones &= mask
    umin = max(umin, 0)
    umax = mask if umax is None else min(umax, mask)
    smin = -half if smin is None else max(smin, -half)
    smax = half - 1 if smax is None else min(smax, half - 1)

    for _ in range(2):
        # Known bits -> unsigned range.
        umin = max(umin, ones)
        umax = min(umax, mask & ~zeros)
        # Unsigned range -> signed range (when the sign is decided).
        if umax < half:
            smin, smax = max(smin, umin), min(smax, umax)
        elif umin >= half:
            smin = max(smin, umin - (mask + 1))
            smax = min(smax, umax - (mask + 1))
        # Signed range -> unsigned range.
        if smin >= 0:
            umin, umax = max(umin, smin), min(umax, smax)
        elif smax < 0:
            umin = max(umin, smin + mask + 1)
            umax = min(umax, smax + mask + 1)
        # Signed range -> sign bit.
        if smax < 0:
            ones |= half
        elif smin >= 0:
            zeros |= half
        # Unsigned range -> shared high-bit prefix.
        if umin <= umax:
            diff = umin ^ umax
            if diff == 0:
                ones |= umin
                zeros |= mask & ~umin
            else:
                high = mask & ~_mask(diff.bit_length())
                ones |= umin & high
                zeros |= ~umin & high
    return AbsValue(width, zeros, ones, umin, umax, smin, smax)


def top(width: int) -> AbsValue:
    """The unconstrained value of ``width`` bits."""
    return make(width)


def const(value: int, width: int) -> AbsValue:
    """The singleton abstract value of a concrete constant."""
    value &= _mask(width)
    return make(width, umin=value, umax=value)


def from_ints(values, width: int) -> AbsValue:
    """The tightest element covering every value in ``values`` (a hull)."""
    result: AbsValue | None = None
    for value in values:
        element = const(value, width)
        result = element if result is None else result.join(element)
    if result is None:
        raise ValueError("from_ints requires at least one value")
    return result


def provably_disagrees(a: AbsValue, b: AbsValue) -> bool:
    """True when no concrete value is represented by both ``a`` and ``b``.

    Used contrapositively everywhere: if two expressions are equal on
    some input, their abstract values intersect; disjointness proves
    they differ on *every* input the abstractions cover.
    """
    if a.width != b.width:
        raise ValueError(
            f"disagreement check requires equal widths, got {a.width} and {b.width}"
        )
    if (a.ones & b.zeros) or (a.zeros & b.ones):
        return True
    if a.umax < b.umin or b.umax < a.umin:
        return True
    return a.smax < b.smin or b.smax < a.smin


def lane_values(value: AbsValue, elem_width: int) -> list[AbsValue]:
    """Per-lane view of a packed value, least-significant lane first."""
    if value.width % elem_width:
        raise ValueError(
            f"width {value.width} is not a multiple of lane width {elem_width}"
        )
    return [
        _extract(value, (i + 1) * elem_width - 1, i * elem_width)
        for i in range(value.width // elem_width)
    ]


def pack_lanes(lanes: list[AbsValue]) -> AbsValue:
    """Concatenate per-lane values (least-significant lane first)."""
    result = lanes[0]
    for lane in lanes[1:]:
        result = _concat(lane, result)
    return result


# ----------------------------------------------------------------------
# Transfer functions
# ----------------------------------------------------------------------


def _trailing_known(a: AbsValue) -> int:
    """Number of consecutive known bits starting at bit 0."""
    unknown = ~(a.zeros | a.ones) & _mask(a.width)
    if unknown == 0:
        return a.width
    return (unknown & -unknown).bit_length() - 1


def _trailing_zeros(a: AbsValue) -> int:
    """Number of consecutive bits known to be 0 starting at bit 0."""
    nonzero = ~a.zeros & _mask(a.width)
    if nonzero == 0:
        return a.width
    return (nonzero & -nonzero).bit_length() - 1


def _wrap_unsigned(lo: int, hi: int, width: int) -> tuple[int, int]:
    """Map an exact integer interval onto the width's unsigned range."""
    mask = _mask(width)
    if 0 <= lo and hi <= mask:
        return lo, hi
    if lo > mask and hi <= 2 * mask + 1:
        return lo - mask - 1, hi - mask - 1
    if hi < 0 and lo >= -(mask + 1):
        return lo + mask + 1, hi + mask + 1
    return 0, mask


def _wrap_signed(lo: int, hi: int, width: int) -> tuple[int, int]:
    """Map an exact integer interval onto the width's signed range."""
    half = 1 << (width - 1)
    if -half <= lo and hi < half:
        return lo, hi
    if lo >= half and hi < 3 * half:
        return lo - 2 * half, hi - 2 * half
    if hi < -half and lo >= -3 * half:
        return lo + 2 * half, hi + 2 * half
    return -half, half - 1


def _known_low_bits(a: AbsValue, b: AbsValue, combine) -> tuple[int, int]:
    """(zeros, ones) for the low bits fully determined by both operands."""
    k = min(_trailing_known(a), _trailing_known(b))
    if k == 0:
        return 0, 0
    low = combine(a.ones & _mask(k), b.ones & _mask(k)) & _mask(k)
    return ~low & _mask(k), low


def _add(a: AbsValue, b: AbsValue) -> AbsValue:
    umin, umax = _wrap_unsigned(a.umin + b.umin, a.umax + b.umax, a.width)
    smin, smax = _wrap_signed(a.smin + b.smin, a.smax + b.smax, a.width)
    zeros, ones = _known_low_bits(a, b, lambda x, y: x + y)
    return make(a.width, zeros, ones, umin, umax, smin, smax)


def _sub(a: AbsValue, b: AbsValue) -> AbsValue:
    umin, umax = _wrap_unsigned(a.umin - b.umax, a.umax - b.umin, a.width)
    smin, smax = _wrap_signed(a.smin - b.smax, a.smax - b.smin, a.width)
    zeros, ones = _known_low_bits(a, b, lambda x, y: x - y)
    return make(a.width, zeros, ones, umin, umax, smin, smax)


def _mul(a: AbsValue, b: AbsValue) -> AbsValue:
    mask = _mask(a.width)
    umin, umax = 0, mask
    if a.umax * b.umax <= mask:
        umin, umax = a.umin * b.umin, a.umax * b.umax
    smin, smax = -(mask + 1) // 2, mask // 2
    corners = [
        x * y for x in (a.smin, a.smax) for y in (b.smin, b.smax)
    ]
    if -(mask + 1) // 2 <= min(corners) and max(corners) <= mask // 2:
        smin, smax = min(corners), max(corners)
    zeros, ones = _known_low_bits(a, b, lambda x, y: x * y)
    # The product's trailing zeros accumulate from both factors even when
    # the remaining bits are unknown.
    tz = min(_trailing_zeros(a) + _trailing_zeros(b), a.width)
    zeros |= _mask(tz)
    return make(a.width, zeros, ones, umin, umax, smin, smax)


def _neg(a: AbsValue) -> AbsValue:
    return _sub(const(0, a.width), a)


def _and(a: AbsValue, b: AbsValue) -> AbsValue:
    return make(
        a.width,
        zeros=a.zeros | b.zeros,
        ones=a.ones & b.ones,
        umax=min(a.umax, b.umax),
    )


def _bitlength_bound(a: AbsValue, b: AbsValue) -> int:
    """Upper bound for any combination of bits drawn from ``a`` and ``b``."""
    bits = max(a.umax.bit_length(), b.umax.bit_length())
    return _mask(a.width) & _mask(bits)


def _or(a: AbsValue, b: AbsValue) -> AbsValue:
    return make(
        a.width,
        zeros=a.zeros & b.zeros,
        ones=a.ones | b.ones,
        umin=max(a.umin, b.umin),
        umax=_bitlength_bound(a, b),
    )


def _xor(a: AbsValue, b: AbsValue) -> AbsValue:
    return make(
        a.width,
        zeros=(a.zeros & b.zeros) | (a.ones & b.ones),
        ones=(a.ones & b.zeros) | (a.zeros & b.ones),
        umax=_bitlength_bound(a, b),
    )


def _not(a: AbsValue) -> AbsValue:
    mask = _mask(a.width)
    return make(
        a.width,
        zeros=a.ones,
        ones=a.zeros,
        umin=mask - a.umax,
        umax=mask - a.umin,
        smin=-a.smax - 1,
        smax=-a.smin - 1,
    )


def _shl(a: AbsValue, amount: AbsValue) -> AbsValue:
    width = a.width
    mask = _mask(width)
    k = amount.const_value()
    if k is not None:
        if k >= width:
            return const(0, width)
        kwargs = {
            "zeros": ((a.zeros << k) | _mask(k)) & mask,
            "ones": (a.ones << k) & mask,
        }
        if a.umax << k <= mask:
            kwargs["umin"] = a.umin << k
            kwargs["umax"] = a.umax << k
        return make(width, **kwargs)
    kmin = min(amount.umin, width)
    kmax = min(amount.umax, width)
    kwargs = {"zeros": _mask(kmin)}
    if kmax < width and a.umax << kmax <= mask:
        kwargs["umin"] = a.umin << kmin
        kwargs["umax"] = a.umax << kmax
    return make(width, **kwargs)


def _lshr(a: AbsValue, amount: AbsValue) -> AbsValue:
    width = a.width
    k = amount.const_value()
    if k is not None:
        if k >= width:
            return const(0, width)
        high = (_mask(k) << (width - k)) & _mask(width)
        return make(
            width,
            zeros=(a.zeros >> k) | high,
            ones=a.ones >> k,
            umin=a.umin >> k,
            umax=a.umax >> k,
        )
    kmin = min(amount.umin, width)
    kmax = amount.umax
    if kmin >= width:
        return const(0, width)
    high = (_mask(kmin) << (width - kmin)) & _mask(width)
    return make(
        width,
        zeros=high,
        umin=0 if kmax >= width else a.umin >> kmax,
        umax=a.umax >> kmin,
    )


def _ashr(a: AbsValue, amount: AbsValue) -> AbsValue:
    width = a.width
    shifts = {min(amount.umin, width), min(amount.umax, width)}
    corners = [x >> s for x in (a.smin, a.smax) for s in shifts]
    kwargs = {"smin": min(corners), "smax": max(corners)}
    k = amount.const_value()
    if k is not None:
        k = min(k, width)
        half = 1 << (width - 1)
        zeros = (a.zeros >> k) & _mask(width - k) if k < width else 0
        ones = (a.ones >> k) & _mask(width - k) if k < width else 0
        if k > 0:
            high = (_mask(k) << (width - k)) & _mask(width)
            if a.zeros & half:  # sign known 0: high bits fill with 0
                zeros |= high
            elif a.ones & half:  # sign known 1: high bits fill with 1
                ones |= high
        kwargs["zeros"] = zeros
        kwargs["ones"] = ones
    return make(width, **kwargs)


def _rot_masks(a: AbsValue, k: int, left: bool) -> tuple[int, int]:
    width = a.width
    mask = _mask(width)
    if not left:
        k = (width - k) % width
    zeros = ((a.zeros << k) | (a.zeros >> (width - k))) & mask if k else a.zeros
    ones = ((a.ones << k) | (a.ones >> (width - k))) & mask if k else a.ones
    return zeros, ones


def _rotl(a: AbsValue, amount: AbsValue) -> AbsValue:
    k = amount.const_value()
    if k is None:
        return top(a.width)
    zeros, ones = _rot_masks(a, k % a.width, left=True)
    return make(a.width, zeros, ones)


def _rotr(a: AbsValue, amount: AbsValue) -> AbsValue:
    k = amount.const_value()
    if k is None:
        return top(a.width)
    zeros, ones = _rot_masks(a, k % a.width, left=False)
    return make(a.width, zeros, ones)


def _udiv(a: AbsValue, b: AbsValue) -> AbsValue:
    mask = _mask(a.width)
    if b.const_value() == 0:
        return const(mask, a.width)  # SMT-LIB: division by zero is all-ones
    if b.umin == 0:
        return make(a.width, umin=a.umin // max(b.umax, 1), umax=mask)
    return make(a.width, umin=a.umin // b.umax, umax=a.umax // b.umin)


def _urem(a: AbsValue, b: AbsValue) -> AbsValue:
    if b.const_value() == 0:
        return a  # SMT-LIB: remainder by zero is the dividend
    if b.umin == 0:
        return make(a.width, umax=a.umax)
    return make(a.width, umax=min(a.umax, b.umax - 1))


def _sdiv(a: AbsValue, b: AbsValue) -> AbsValue:
    return top(a.width)


def _srem(a: AbsValue, b: AbsValue) -> AbsValue:
    return top(a.width)


def _abs(a: AbsValue) -> AbsValue:
    if a.smin <= 0 <= a.smax:
        lo = 0
    else:
        lo = min(abs(a.smin), abs(a.smax))
    hi = max(abs(a.smin), abs(a.smax))
    return make(a.width, umin=lo, umax=hi)


def _smin_t(a: AbsValue, b: AbsValue) -> AbsValue:
    j = a.join(b)
    return make(
        a.width, j.zeros, j.ones, j.umin, j.umax,
        min(a.smin, b.smin), min(a.smax, b.smax),
    )


def _smax_t(a: AbsValue, b: AbsValue) -> AbsValue:
    j = a.join(b)
    return make(
        a.width, j.zeros, j.ones, j.umin, j.umax,
        max(a.smin, b.smin), max(a.smax, b.smax),
    )


def _umin_t(a: AbsValue, b: AbsValue) -> AbsValue:
    j = a.join(b)
    return make(
        a.width, j.zeros, j.ones,
        min(a.umin, b.umin), min(a.umax, b.umax), j.smin, j.smax,
    )


def _umax_t(a: AbsValue, b: AbsValue) -> AbsValue:
    j = a.join(b)
    return make(
        a.width, j.zeros, j.ones,
        max(a.umin, b.umin), max(a.umax, b.umax), j.smin, j.smax,
    )


def _clamp_signed(value: int, width: int) -> int:
    half = 1 << (width - 1)
    return max(-half, min(half - 1, value))


def _saddsat(a: AbsValue, b: AbsValue) -> AbsValue:
    return make(
        a.width,
        smin=_clamp_signed(a.smin + b.smin, a.width),
        smax=_clamp_signed(a.smax + b.smax, a.width),
    )


def _uaddsat(a: AbsValue, b: AbsValue) -> AbsValue:
    mask = _mask(a.width)
    return make(
        a.width, umin=min(a.umin + b.umin, mask), umax=min(a.umax + b.umax, mask)
    )


def _ssubsat(a: AbsValue, b: AbsValue) -> AbsValue:
    return make(
        a.width,
        smin=_clamp_signed(a.smin - b.smax, a.width),
        smax=_clamp_signed(a.smax - b.smin, a.width),
    )


def _usubsat(a: AbsValue, b: AbsValue) -> AbsValue:
    return make(
        a.width, umin=max(a.umin - b.umax, 0), umax=max(a.umax - b.umin, 0)
    )


def _sshlsat(a: AbsValue, amount: AbsValue) -> AbsValue:
    width = a.width
    shifts = {min(amount.umin, width), min(amount.umax, width)}
    corners = [
        _clamp_signed(x << s, width) for x in (a.smin, a.smax) for s in shifts
    ]
    return make(width, smin=min(corners), smax=max(corners))


def _uavg(round_up: bool):
    r = 1 if round_up else 0

    def transfer(a: AbsValue, b: AbsValue) -> AbsValue:
        return make(
            a.width,
            umin=(a.umin + b.umin + r) >> 1,
            umax=(a.umax + b.umax + r) >> 1,
        )

    return transfer


def _savg(round_up: bool):
    r = 1 if round_up else 0

    def transfer(a: AbsValue, b: AbsValue) -> AbsValue:
        return make(
            a.width,
            smin=(a.smin + b.smin + r) >> 1,
            smax=(a.smax + b.smax + r) >> 1,
        )

    return transfer


def _popcount(a: AbsValue) -> AbsValue:
    return make(
        a.width,
        umin=bin(a.ones).count("1"),
        umax=bin(_mask(a.width) & ~a.zeros).count("1"),
    )


def _clz(a: AbsValue) -> AbsValue:
    return make(
        a.width,
        umin=a.width - a.umax.bit_length(),
        umax=a.width - a.umin.bit_length(),
    )


def _bool_result(truth: bool | None) -> AbsValue:
    if truth is None:
        return top(1)
    return const(1 if truth else 0, 1)


def _eq(a: AbsValue, b: AbsValue) -> AbsValue:
    if a.is_const() and b.is_const():
        return _bool_result(a.umin == b.umin)
    if provably_disagrees(a, b):
        return _bool_result(False)
    return _bool_result(None)


def _ne(a: AbsValue, b: AbsValue) -> AbsValue:
    result = _eq(a, b)
    truth = result.const_value()
    return _bool_result(None if truth is None else truth == 0)


def _cmp(attr_a: str, attr_b: str, strict: bool):
    """Order comparison via range bounds: a <(=) b decided by extremes."""

    def transfer(a: AbsValue, b: AbsValue) -> AbsValue:
        amin, amax = getattr(a, attr_a), getattr(a, attr_b)
        bmin, bmax = getattr(b, attr_a), getattr(b, attr_b)
        if strict:
            if amax < bmin:
                return _bool_result(True)
            if amin >= bmax:
                return _bool_result(False)
        else:
            if amax <= bmin:
                return _bool_result(True)
            if amin > bmax:
                return _bool_result(False)
        return _bool_result(None)

    return transfer


def _flip(transfer):
    return lambda a, b: transfer(b, a)


def _extract(a: AbsValue, high: int, low: int) -> AbsValue:
    if not 0 <= low <= high < a.width:
        raise ValueError(f"extract [{high}:{low}] out of range for width {a.width}")
    width = high - low + 1
    mask = _mask(width)
    kwargs = {
        "zeros": (a.zeros >> low) & mask,
        "ones": (a.ones >> low) & mask,
    }
    if low == 0:
        kwargs["umax"] = min(a.umax, mask)
        if a.umax <= mask:
            kwargs["umin"] = a.umin
    return make(width, **kwargs)


def _concat(high: AbsValue, low: AbsValue) -> AbsValue:
    width = high.width + low.width
    return make(
        width,
        zeros=(high.zeros << low.width) | low.zeros,
        ones=(high.ones << low.width) | low.ones,
        umin=(high.umin << low.width) + low.umin,
        umax=(high.umax << low.width) + low.umax,
    )


def _zext(a: AbsValue, new_width: int) -> AbsValue:
    if new_width < a.width:
        raise ValueError(f"zext cannot shrink {a.width} -> {new_width}")
    high = _mask(new_width) & ~_mask(a.width)
    return make(
        new_width, zeros=a.zeros | high, ones=a.ones, umin=a.umin, umax=a.umax
    )


def _sext(a: AbsValue, new_width: int) -> AbsValue:
    if new_width < a.width:
        raise ValueError(f"sext cannot shrink {a.width} -> {new_width}")
    if new_width == a.width:
        return a
    sign = 1 << (a.width - 1)
    high = _mask(new_width) & ~_mask(a.width)
    zeros = a.zeros & _mask(a.width - 1)
    ones = a.ones & _mask(a.width - 1)
    if a.zeros & sign:
        zeros |= high | sign
    elif a.ones & sign:
        ones |= high | sign
    return make(new_width, zeros=zeros, ones=ones, smin=a.smin, smax=a.smax)


def _trunc(a: AbsValue, new_width: int) -> AbsValue:
    if new_width > a.width:
        raise ValueError(f"trunc cannot grow {a.width} -> {new_width}")
    return _extract(a, new_width - 1, 0)


def _sat_signed(a: AbsValue, new_width: int) -> AbsValue:
    return make(
        new_width,
        smin=_clamp_signed(a.smin, new_width),
        smax=_clamp_signed(a.smax, new_width),
    )


def _sat_unsigned(a: AbsValue, new_width: int) -> AbsValue:
    mask = _mask(new_width)
    return make(
        new_width,
        umin=max(0, min(a.smin, mask)),
        umax=max(0, min(a.smax, mask)),
    )


def _resize_signed(a: AbsValue, new_width: int) -> AbsValue:
    return _sext(a, new_width) if new_width >= a.width else _trunc(a, new_width)


def _resize_unsigned(a: AbsValue, new_width: int) -> AbsValue:
    return _zext(a, new_width) if new_width >= a.width else _trunc(a, new_width)


# Patchable transfer tables, keyed like the BitVector method names the
# concrete evaluators dispatch on.  The injection tests monkeypatch
# individual entries; consumers must look ops up at call time.
BINARY_TRANSFERS = {
    "bvadd": _add,
    "bvsub": _sub,
    "bvmul": _mul,
    "bvudiv": _udiv,
    "bvurem": _urem,
    "bvsdiv": _sdiv,
    "bvsrem": _srem,
    "bvand": _and,
    "bvor": _or,
    "bvxor": _xor,
    "bvshl": _shl,
    "bvlshr": _lshr,
    "bvashr": _ashr,
    "bvrotl": _rotl,
    "bvrotr": _rotr,
    "bvsmin": _smin_t,
    "bvsmax": _smax_t,
    "bvumin": _umin_t,
    "bvumax": _umax_t,
    "bvsaddsat": _saddsat,
    "bvuaddsat": _uaddsat,
    "bvssubsat": _ssubsat,
    "bvusubsat": _usubsat,
    "bvsshlsat": _sshlsat,
    "bvuavg": _uavg(False),
    "bvsavg": _savg(False),
    "bvuavg_round": _uavg(True),
    "bvsavg_round": _savg(True),
}

UNARY_TRANSFERS = {
    "bvneg": _neg,
    "bvnot": _not,
    "bvabs": _abs,
    "popcount": _popcount,
    "count_leading_zeros": _clz,
}

CMP_TRANSFERS = {
    "bveq": _eq,
    "bvne": _ne,
    "bvult": _cmp("umin", "umax", strict=True),
    "bvule": _cmp("umin", "umax", strict=False),
    "bvugt": _flip(_cmp("umin", "umax", strict=True)),
    "bvuge": _flip(_cmp("umin", "umax", strict=False)),
    "bvslt": _cmp("smin", "smax", strict=True),
    "bvsle": _cmp("smin", "smax", strict=False),
    "bvsgt": _flip(_cmp("smin", "smax", strict=True)),
    "bvsge": _flip(_cmp("smin", "smax", strict=False)),
}

CAST_TRANSFERS = {
    "zext": _zext,
    "sext": _sext,
    "trunc": _trunc,
    "saturate_to_signed": _sat_signed,
    "saturate_to_unsigned": _sat_unsigned,
    "resize_signed": _resize_signed,
    "resize_unsigned": _resize_unsigned,
}


def _binary(op: str, a: AbsValue, b: AbsValue) -> AbsValue:
    transfer = BINARY_TRANSFERS.get(op)
    if transfer is None:
        raise SemanticsError(f"no abstract transfer for binary op {op!r}")
    if op not in ("bvshl", "bvlshr", "bvashr", "bvrotl", "bvrotr", "bvsshlsat"):
        # Shift amounts follow the concrete semantics (any width accepted);
        # everything else mirrors BitVector's same-width requirement.
        if a.width != b.width:
            raise SemanticsError(
                f"{op} requires equal widths, got {a.width} and {b.width}"
            )
    return transfer(a, b)


def _compare(op: str, a: AbsValue, b: AbsValue) -> AbsValue:
    transfer = CMP_TRANSFERS.get(op)
    if transfer is None:
        raise SemanticsError(f"no abstract transfer for comparison {op!r}")
    if a.width != b.width:
        raise SemanticsError(
            f"{op} requires equal widths, got {a.width} and {b.width}"
        )
    return transfer(a, b)


def _cast(op: str, a: AbsValue, new_width: int) -> AbsValue:
    transfer = CAST_TRANSFERS.get(op)
    if transfer is None:
        raise SemanticsError(f"no abstract transfer for cast {op!r}")
    return transfer(a, new_width)


# ----------------------------------------------------------------------
# Hydride IR (semantics function) evaluation
# ----------------------------------------------------------------------


def _index_free_of(expr: BvExpr, var: str) -> bool:
    """True when no index expression under ``expr`` reads iterator ``var``."""
    for node in expr.walk():
        if isinstance(node, ForConcat) and node.var == var:
            # The inner loop shadows the name; treating it as free would
            # only cost precision, but the shadowed body truly is
            # independent of the outer iterator through this name.
            continue
        for index in node.index_exprs():
            if var in index.ivars():
                return False
    return True


def abstract_semantics(
    func: SemanticsFunction,
    inputs: Mapping[str, AbsValue] | None = None,
    params: Mapping[str, int] | None = None,
    observe=None,
) -> AbsValue:
    """Abstractly execute a semantics function.

    ``inputs`` maps input names to abstract values; unmapped inputs
    (including immediates) default to top at their resolved width.
    ``observe(node, value, children)`` is invoked after each node is
    evaluated — the semantic lint rules hang off this hook.  Mirrors
    :func:`repro.hydride_ir.interp.interpret` node for node, including
    which shapes raise :class:`SemanticsError`.
    """
    param_env: dict[str, int] = dict(params if params is not None else func.params)
    widths = resolved_input_widths(func, param_env)
    bound: dict[str, AbsValue] = {
        name: top(width) for name, width in widths.items() if width > 0
    }
    if inputs:
        for name, value in inputs.items():
            bound[name] = value

    def notify(node: BvExpr, value: AbsValue, children) -> AbsValue:
        if observe is not None:
            observe(node, value, children)
        return value

    def run(expr: BvExpr, env: dict[str, int]) -> AbsValue:
        if isinstance(expr, BvVar):
            value = bound.get(expr.name)
            if value is None:
                raise SemanticsError(f"missing input {expr.name!r}")
            return notify(expr, value, ())
        if isinstance(expr, BvConst):
            width = expr.width.evaluate(env)
            if width <= 0:
                raise SemanticsError(f"constant width {width} in {func.name}")
            return notify(expr, const(expr.value.evaluate(env), width), ())
        if isinstance(expr, BvBroadcastConst):
            elem_width = expr.elem_width.evaluate(env)
            count = expr.num_elems.evaluate(env)
            if elem_width <= 0 or count <= 0:
                raise SemanticsError(f"broadcast shape in {func.name}")
            elem = const(expr.value.evaluate(env), elem_width)
            return notify(expr, pack_lanes([elem] * count), ())
        if isinstance(expr, BvExtract):
            src = run(expr.src, env)
            low = expr.low.evaluate(env)
            width = expr.width.evaluate(env)
            if low < 0 or width <= 0 or low + width > src.width:
                raise SemanticsError(
                    f"extract [{low}, {low + width}) out of range "
                    f"for width {src.width} in {func.name}"
                )
            return notify(expr, _extract(src, low + width - 1, low), (src,))
        if isinstance(expr, BvBinOp):
            left = run(expr.left, env)
            right = run(expr.right, env)
            return notify(expr, _binary(expr.op, left, right), (left, right))
        if isinstance(expr, BvUnOp):
            operand = run(expr.operand, env)
            transfer = UNARY_TRANSFERS.get(expr.op)
            if transfer is None:
                raise SemanticsError(
                    f"no abstract transfer for unary op {expr.op!r}"
                )
            return notify(expr, transfer(operand), (operand,))
        if isinstance(expr, BvCmp):
            left = run(expr.left, env)
            right = run(expr.right, env)
            return notify(expr, _compare(expr.op, left, right), (left, right))
        if isinstance(expr, BvCast):
            operand = run(expr.operand, env)
            new_width = expr.new_width.evaluate(env)
            if new_width <= 0:
                raise SemanticsError(f"cast width {new_width} in {func.name}")
            try:
                value = _cast(expr.op, operand, new_width)
            except ValueError as error:
                raise SemanticsError(str(error)) from None
            return notify(expr, value, (operand,))
        if isinstance(expr, BvIte):
            cond = run(expr.cond, env)
            taken = cond.const_value()
            if taken is not None:
                branch = expr.then_expr if taken else expr.else_expr
                return notify(expr, run(branch, env), (cond,))
            then_value = run(expr.then_expr, env)
            else_value = run(expr.else_expr, env)
            if then_value.width != else_value.width:
                raise SemanticsError(
                    f"ite branch widths differ in {func.name}: "
                    f"{then_value.width} vs {else_value.width}"
                )
            joined = then_value.join(else_value)
            return notify(expr, joined, (cond, then_value, else_value))
        if isinstance(expr, ForConcat):
            count = expr.count.evaluate(env)
            if count <= 0:
                raise SemanticsError(f"loop count {count} in {func.name}")
            return notify(expr, _run_loop(expr, env, count, run), ())
        if isinstance(expr, BvConcat):
            parts = [run(p, env) for p in expr.parts]
            result = parts[0]
            for part in parts[1:]:
                result = _concat(part, result)
            return notify(expr, result, tuple(parts))
        raise SemanticsError(f"unknown expression node {type(expr).__name__}")

    def _run_loop(expr: ForConcat, env: dict[str, int], count: int, run) -> AbsValue:
        if count > UNROLL_LIMIT and _index_free_of(expr.body, expr.var):
            body_env = dict(env)
            body_env[expr.var] = 0
            piece = run(expr.body, body_env)
            return pack_lanes([piece] * count)
        exact = min(count, UNROLL_LIMIT)
        pieces: list[AbsValue] = []
        for i in range(exact):
            env_i = dict(env)
            env_i[expr.var] = i
            pieces.append(run(expr.body, env_i))
        for i in range(exact, count):
            # Widen the tail to top at each iteration's width: the body
            # depends on the iterator, and the unroll budget is spent.
            env_i = dict(env)
            env_i[expr.var] = i
            pieces.append(top(compute_width(expr.body, env_i, widths)))
        return pack_lanes(pieces)

    return run(func.body, param_env)


# ----------------------------------------------------------------------
# Halide window (specification) evaluation — per-lane
# ----------------------------------------------------------------------


def abstract_window_lanes(
    expr: hir.HExpr, env: Mapping[str, AbsValue] | None = None
) -> list[AbsValue]:
    """Per-lane abstract evaluation of a Halide window.

    ``env`` binds load names to whole-register abstract values and
    broadcast names to single-element values; unbound names are top.
    Lane 0 (least significant) comes first, matching
    :class:`repro.bitvector.lanes.Vector`.
    """
    env = env or {}
    cache: dict[int, list[AbsValue]] = {}

    def run(node: hir.HExpr) -> list[AbsValue]:
        cached = cache.get(id(node))
        if cached is None:
            cached = _eval(node)
            cache[id(node)] = cached
        return cached

    def _eval(node: hir.HExpr) -> list[AbsValue]:
        if isinstance(node, hir.HLoad):
            value = env.get(node.name)
            if value is None:
                value = top(node.type.bits)
            elif value.width != node.type.bits:
                raise ValueError(
                    f"load {node.name!r}: bound width {value.width}, "
                    f"expected {node.type.bits}"
                )
            return lane_values(value, node.elem_width)
        if isinstance(node, hir.HConst):
            return [const(node.value, node.elem_width)] * node.lanes
        if isinstance(node, hir.HBroadcast):
            elem = env.get(node.name) or top(node.elem_width)
            if elem.width != node.elem_width:
                raise ValueError(f"broadcast {node.name!r} width mismatch")
            return [elem] * node.lanes
        if isinstance(node, hir.HBin):
            op = hir.H_BINOPS[node.op]
            left, right = run(node.left), run(node.right)
            return [_binary(op, x, y) for x, y in zip(left, right)]
        if isinstance(node, hir.HCmp):
            op = hir.H_CMPOPS[node.op]
            left, right = run(node.left), run(node.right)
            return [_compare(op, x, y) for x, y in zip(left, right)]
        if isinstance(node, hir.HSelect):
            out = []
            branches = zip(run(node.cond), run(node.then_expr), run(node.else_expr))
            for cond, then_value, else_value in branches:
                taken = cond.const_value()
                if taken is None:
                    out.append(then_value.join(else_value))
                else:
                    out.append(then_value if taken else else_value)
            return out
        if isinstance(node, hir.HCast):
            new = node.new_elem_width
            old = node.src.type.elem_width
            table = {
                "sext": "sext" if new >= old else "trunc",
                "zext": "zext" if new >= old else "trunc",
                "trunc": "trunc",
                "sat_s": "saturate_to_signed",
                "sat_u": "saturate_to_unsigned",
            }
            op = table[node.kind]
            return [_cast(op, lane, new) for lane in run(node.src)]
        if isinstance(node, hir.HSlice):
            return run(node.src)[node.start : node.start + node.lanes]
        if isinstance(node, hir.HConcat):
            out = []
            for part in node.parts:
                out.extend(run(part))
            return out
        if isinstance(node, hir.HReduceAdd):
            src = run(node.src)
            out = []
            for group in range(node.type.lanes):
                total = src[group * node.factor]
                for k in range(1, node.factor):
                    total = _binary("bvadd", total, src[group * node.factor + k])
                out.append(total)
            return out
        if isinstance(node, hir.HShuffle):
            src = run(node.src)
            return [src[i] for i in node.indices]
        raise TypeError(f"unknown Halide IR node {type(node).__name__}")

    return run(expr)


def abstract_window(
    expr: hir.HExpr, env: Mapping[str, AbsValue] | None = None
) -> AbsValue:
    """Whole-register abstract evaluation of a Halide window."""
    return pack_lanes(abstract_window_lanes(expr, env))


# ----------------------------------------------------------------------
# Synthesis candidate (SNode) evaluation
# ----------------------------------------------------------------------

# (id(binding), parameter values, immediates) -> hoisted abstract plan,
# mirroring program._SOP_EVAL_CACHE.  The binding reference in the value
# keeps the id()-keyed entry from aliasing a recycled object.
_SOP_ABS_CACHE: dict[tuple, tuple] = {}


def _sop_abs_plan(node: SOp) -> tuple:
    key = (id(node.binding), node.values(), node.imm_values)
    plan = _SOP_ABS_CACHE.get(key)
    if plan is None:
        symbolic = node.binding.member.symbolic
        values = dict(zip(symbolic.param_names, node.values()))
        func = symbolic.to_function(values)
        widths = resolved_input_widths(func, values)
        imm_env: dict[str, AbsValue] = {}
        reg_names: list[str] = []
        imm_iter = iter(node.imm_values)
        for inp in func.inputs:
            if inp.is_immediate:
                imm_env[inp.name] = const(next(imm_iter), widths[inp.name])
            else:
                reg_names.append(inp.name)
        plan = (node.binding, func, values, widths, imm_env, tuple(reg_names))
        _SOP_ABS_CACHE[key] = plan
    return plan


def abstract_apply(node: SNode, args: list[AbsValue]) -> AbsValue:
    """Abstract one-node application given the children's abstract values.

    The enumerator's incremental scheme: each admitted candidate stores
    its abstract output, so a new candidate costs one transfer instead
    of a DAG re-evaluation — exactly how concrete outputs are memoised.
    """
    if isinstance(node, SInput):
        raise ValueError("inputs have no arguments")
    if isinstance(node, SConstant):
        return pack_lanes([const(node.value, node.elem_width)] * node.lanes)
    if isinstance(node, SSlice):
        src = args[0]
        half = src.width // 2
        if node.high:
            return _extract(src, src.width - 1, half)
        return _extract(src, half - 1, 0)
    if isinstance(node, SConcat):
        return _concat(args[0], args[1])
    if isinstance(node, SSwizzle):
        elem_width = node.elem_width
        for value in args:
            if value.width % elem_width:
                raise ValueError(
                    f"register width {value.width} is not a multiple of "
                    f"element width {elem_width}"
                )
        order = swizzle_order(
            node.pattern, args[0].width // elem_width, node.amount
        )
        arg_lanes = [lane_values(value, elem_width) for value in args]
        return pack_lanes([arg_lanes[source][index] for source, index in order])
    assert isinstance(node, SOp)
    _, func, values, widths, imm_env, reg_names = _sop_abs_plan(node)
    bound = dict(imm_env)
    for name, value in zip(reg_names, args):
        if value.width != widths[name]:
            raise SemanticsError(
                f"input {name!r} has width {value.width}, expected {widths[name]}"
            )
        bound[name] = value
    return abstract_semantics(func, bound, values)


def abstract_program(
    node: SNode, env: Mapping[str, AbsValue] | None = None
) -> AbsValue:
    """Abstractly run a candidate program; unbound inputs are top."""
    env = env or {}
    cache: dict[int, AbsValue] = {}

    def run(n: SNode) -> AbsValue:
        cached = cache.get(id(n))
        if cached is None:
            if isinstance(n, SInput):
                cached = env.get(n.name) or top(n.bits)
                if cached.width != n.bits:
                    raise ValueError(
                        f"input {n.name!r}: bound width {cached.width}, "
                        f"expected {n.bits}"
                    )
            else:
                cached = abstract_apply(n, [run(a) for a in n.children()])
            cache[id(n)] = cached
        return cached

    return run(node)


# ----------------------------------------------------------------------
# Solver-free screening (cache entries and dictionary members)
# ----------------------------------------------------------------------


def screen_cached_program(spec: hir.HExpr, program: SNode) -> list[str]:
    """Cheap tripwire for a stale or corrupt cached synthesis result.

    Checks the stored program against the specification it is about to
    be served for: inputs must exist at matching widths, and the
    program's abstract output must not provably disagree with the
    specification's on any lane.  A sound cache entry can never trip
    this (both abstractions over-approximate the same function); an
    empty list therefore means "no proof of corruption", not "verified".
    """
    problems: list[str] = []
    try:
        loads = spec.loads()
    except ValueError as error:
        return [f"specification rejected: {error}"]
    for n in program.walk():
        if not isinstance(n, SInput):
            continue
        declared = loads.get(n.name)
        if declared is None:
            problems.append(f"program reads unknown input {n.name!r}")
        elif declared.bits != n.bits:
            problems.append(
                f"input {n.name!r} has width {n.bits}, "
                f"specification expects {declared.bits}"
            )
    if problems:
        return problems
    try:
        program_value = abstract_program(program)
        spec_lanes = abstract_window_lanes(spec)
    except Exception as error:  # abstraction failure == suspicious entry
        return [f"abstract evaluation failed: {error}"]
    spec_bits = spec.type.bits
    if program_value.width != spec_bits:
        return [
            f"program output width {program_value.width}, "
            f"specification expects {spec_bits}"
        ]
    elem_width = spec.type.elem_width
    for index, (mine, theirs) in enumerate(
        zip(lane_values(program_value, elem_width), spec_lanes)
    ):
        if provably_disagrees(mine, theirs):
            problems.append(f"lane {index} provably disagrees with specification")
    return problems


def screen_dictionary(dictionary) -> dict:
    """Abstractly re-check every AutoLLVM dictionary binding.

    Evaluates each binding's semantics on top inputs and compares the
    result width against the instruction's declared output width; any
    mismatch or evaluation failure flags the entry.  Returns a summary
    ``{"checked": n, "flagged": [{"instruction", "problem"}, ...]}``.
    """
    checked = 0
    flagged: list[dict] = []
    for name, op in sorted(dictionary.by_target_instruction.items()):
        for binding in op.bindings:
            if binding.spec.name != name:
                continue
            checked += 1
            try:
                symbolic = binding.member.symbolic
                values = dict(zip(symbolic.param_names, binding.member.values()))
                func = symbolic.to_function(values)
                result = abstract_semantics(func, params=values)
            except Exception as error:
                flagged.append({"instruction": name, "problem": str(error)})
                continue
            declared = binding.spec.output_width
            if result.width != declared:
                flagged.append(
                    {
                        "instruction": name,
                        "problem": (
                            f"abstract output width {result.width}, "
                            f"declared {declared}"
                        ),
                    }
                )
    return {"checked": checked, "flagged": flagged}
