"""``hydride-lint``: lint the generated ISA spec corpora.

``python -m repro.analysis`` (or ``scripts/lint_ir.py``) loads each ISA's
catalog, parses + canonicalises every instruction's semantics, and runs
the spec-record and Hydride-IR checkers over the result, printing a
per-ISA diagnostic summary.  Exit status 1 when any error-severity
diagnostic was found.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import hydride_check
from repro.analysis.diagnostics import DiagnosticSink, Provenance, Severity
from repro.hydride_ir.interp import resolved_input_widths
from repro.isa.registry import SUPPORTED_ISAS, load_isa
from repro.isa.spec import InstructionSpec, IsaCatalog

SMOKE_LIMIT = 25


def _check_spec_record(
    spec: InstructionSpec, seen: set[str], sink: DiagnosticSink
) -> None:
    """Catalog-record checks (the structured form of ``validate_catalog``)."""
    where = Provenance(isa=spec.isa, instruction=spec.name, stage="catalog")
    if spec.name in seen:
        sink.emit("spec/duplicate-name", "duplicate instruction name", provenance=where)
    seen.add(spec.name)
    if spec.output_width <= 0:
        sink.emit(
            "spec/output-width",
            f"declared output width {spec.output_width}",
            provenance=where,
        )
    if not spec.pseudocode.strip():
        sink.emit("spec/empty-pseudocode", "no pseudocode text", provenance=where)
    if spec.latency <= 0 or spec.throughput <= 0:
        sink.emit(
            "spec/timing",
            f"latency {spec.latency}, throughput {spec.throughput}",
            provenance=where,
        )


def _check_semantics_io(spec: InstructionSpec, func, sink: DiagnosticSink) -> None:
    """The parsed semantics must agree with the documented operand list."""
    where = Provenance(isa=spec.isa, instruction=spec.name, stage="parse")
    declared = {op.name: op for op in spec.operands}
    try:
        widths = resolved_input_widths(func, func.params)
    except KeyError as exc:
        sink.emit(
            "spec/semantics-io",
            f"input width unresolved: {exc}",
            provenance=where,
        )
        return
    for inp in func.inputs:
        operand = declared.get(inp.name)
        if operand is None:
            sink.emit(
                "spec/semantics-io",
                f"semantics input {inp.name!r} is not a documented operand",
                provenance=where,
            )
            continue
        if operand.width != widths[inp.name]:
            sink.emit(
                "spec/semantics-io",
                f"operand {inp.name!r} documented at {operand.width} bits, "
                f"semantics declares {widths[inp.name]}",
                provenance=where,
            )
        if operand.is_immediate != inp.is_immediate:
            sink.emit(
                "spec/semantics-io",
                f"operand {inp.name!r} immediate flag mismatch",
                provenance=where,
            )


def lint_isa(
    isa: str, sink: DiagnosticSink, limit: int | None = None
) -> tuple[int, int]:
    """Lint one ISA corpus; returns (instructions checked, catalog size)."""
    loaded = load_isa(isa)
    catalog: IsaCatalog = loaded.catalog
    specs = list(catalog)[:limit] if limit else list(catalog)
    seen: set[str] = set()
    for spec in specs:
        _check_spec_record(spec, seen, sink)
        func = loaded.semantics.get(spec.name)
        if func is None:
            sink.emit(
                "spec/semantics-io",
                "no parsed semantics for this instruction",
                provenance=Provenance(isa=isa, instruction=spec.name, stage="parse"),
            )
            continue
        _check_semantics_io(spec, func, sink)
        hydride_check.check_semantics(
            func,
            declared_output_width=spec.output_width,
            isa=isa,
            stage="canonicalize",
            sink=sink,
        )
    return len(specs), len(catalog)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hydride-lint",
        description="Lint the generated ISA spec corpora across all IR layers.",
    )
    parser.add_argument(
        "--isa",
        action="append",
        choices=SUPPORTED_ISAS,
        help="ISA(s) to lint (default: all)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"fast mode: first {SMOKE_LIMIT} instructions per ISA",
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="max instructions per ISA"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the summary table",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print every diagnostic"
    )
    args = parser.parse_args(argv)

    isas = tuple(args.isa) if args.isa else SUPPORTED_ISAS
    limit = args.limit if args.limit is not None else (
        SMOKE_LIMIT if args.smoke else None
    )

    sink = DiagnosticSink()
    rows = []
    for isa in isas:
        start = time.time()
        errors_before = sink.error_count
        warnings_before = sink.warning_count
        checked, total = lint_isa(isa, sink, limit)
        rows.append(
            (
                isa,
                checked,
                total,
                sink.error_count - errors_before,
                sink.warning_count - warnings_before,
                time.time() - start,
            )
        )

    if args.json:
        print(sink.to_json())
        return 1 if sink.has_errors() else 0

    print(f"{'ISA':<6} {'checked':>8} {'total':>6} {'errors':>7} "
          f"{'warnings':>9} {'secs':>6}")
    for isa, checked, total, errors, warnings, seconds in rows:
        print(
            f"{isa:<6} {checked:>8} {total:>6} {errors:>7} "
            f"{warnings:>9} {seconds:>6.1f}"
        )
    histogram = sink.by_rule()
    if histogram:
        print("\nrule histogram:")
        for rule, count in sorted(histogram.items(), key=lambda kv: -kv[1]):
            print(f"  {rule:<28} {count}")
    if args.verbose or sink.has_errors():
        shown = [
            d for d in sink.diagnostics
            if args.verbose or d.severity is Severity.ERROR
        ]
        if shown:
            print()
        for diag in shown[:100]:
            print(diag.format())
    status = "FAIL" if sink.has_errors() else "OK"
    print(
        f"\n{status}: {sink.error_count} error(s), "
        f"{sink.warning_count} warning(s) across {len(isas)} ISA(s)"
    )
    return 1 if sink.has_errors() else 0


if __name__ == "__main__":
    sys.exit(main())
