"""``hydride-lint``: lint the generated ISA spec corpora.

``python -m repro.analysis`` (or ``scripts/lint_ir.py``) loads each ISA's
catalog, parses + canonicalises every instruction's semantics, and runs
the spec-record, Hydride-IR and semantic (abstract-interpretation)
checkers over the result, printing a per-ISA diagnostic summary.  Exit
status 1 when any error-severity diagnostic was found, when a checker
crashed internally (``A-INTERNAL``), or — under ``--baseline`` — when
any diagnostic not covered by the checked-in baseline appeared.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from collections import Counter

from repro.analysis import hydride_check, semantic_check
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    Provenance,
    Severity,
)
from repro.analysis.sarif import sarif_json
from repro.hydride_ir.interp import resolved_input_widths
from repro.isa.registry import SUPPORTED_ISAS, load_isa
from repro.isa.spec import InstructionSpec, IsaCatalog

SMOKE_LIMIT = 25

#: Corpus linting keeps every diagnostic so baseline counts are exact;
#: the default sink cap is for long-running pipeline use.
_CORPUS_MAX_PER_RULE = 1_000_000


def _check_spec_record(
    spec: InstructionSpec, seen: set[str], sink: DiagnosticSink
) -> None:
    """Catalog-record checks (the structured form of ``validate_catalog``)."""
    where = Provenance(isa=spec.isa, instruction=spec.name, stage="catalog")
    if spec.name in seen:
        sink.emit("spec/duplicate-name", "duplicate instruction name", provenance=where)
    seen.add(spec.name)
    if spec.output_width <= 0:
        sink.emit(
            "spec/output-width",
            f"declared output width {spec.output_width}",
            provenance=where,
        )
    if not spec.pseudocode.strip():
        sink.emit("spec/empty-pseudocode", "no pseudocode text", provenance=where)
    if spec.latency <= 0 or spec.throughput <= 0:
        sink.emit(
            "spec/timing",
            f"latency {spec.latency}, throughput {spec.throughput}",
            provenance=where,
        )
    _check_spec_widths(spec, sink, where)


def _check_spec_widths(
    spec: InstructionSpec, sink: DiagnosticSink, where: Provenance
) -> None:
    """Width-assumption checks over the spec's declared attributes.

    These catch the historical class of bug where a fixed lane or vector
    width (e.g. 128-bit SSE lanes) is baked into generated specs and then
    silently mis-tiles at a different vector length.
    """
    attrs = spec.attributes
    elem_width = attrs.get("elem_width")
    lane_bits = attrs.get("lane_bits")
    # Mask-producing specs declare output_width in *mask bits*, not data
    # bits, so element tiling intentionally does not apply to them.
    if not attrs.get("mask_output"):
        if isinstance(elem_width, int) and elem_width > 0:
            if spec.output_width % elem_width:
                sink.emit(
                    "spec/lane-width",
                    f"element width {elem_width} does not divide output "
                    f"width {spec.output_width}",
                    provenance=where,
                )
        if isinstance(lane_bits, int) and lane_bits > 0:
            if spec.output_width % lane_bits:
                sink.emit(
                    "spec/lane-width",
                    f"lane width {lane_bits} does not divide output "
                    f"width {spec.output_width}",
                    provenance=where,
                )
            if (
                isinstance(elem_width, int)
                and elem_width > 0
                and lane_bits % elem_width
            ):
                sink.emit(
                    "spec/lane-width",
                    f"element width {elem_width} does not divide lane "
                    f"width {lane_bits}",
                    provenance=where,
                )
    mask_elems = attrs.get("mask_elems")
    if isinstance(mask_elems, int) and mask_elems > 0:
        if attrs.get("mask_output") and spec.output_width != mask_elems:
            sink.emit(
                "spec/mask-width",
                f"mask output is {spec.output_width} bits for "
                f"{mask_elems} elements",
                provenance=where,
            )
        declared = {op.name: op.width for op in spec.operands}
        for name in attrs.get("mask_operands", ()) or ():
            width = declared.get(name)
            if width is not None and width != mask_elems:
                sink.emit(
                    "spec/mask-width",
                    f"mask operand {name!r} is {width} bits for "
                    f"{mask_elems} elements",
                    provenance=where,
                )


def _check_semantics_io(spec: InstructionSpec, func, sink: DiagnosticSink) -> None:
    """The parsed semantics must agree with the documented operand list."""
    where = Provenance(isa=spec.isa, instruction=spec.name, stage="parse")
    declared = {op.name: op for op in spec.operands}
    try:
        widths = resolved_input_widths(func, func.params)
    except KeyError as exc:
        sink.emit(
            "spec/semantics-io",
            f"input width unresolved: {exc}",
            provenance=where,
        )
        return
    for inp in func.inputs:
        operand = declared.get(inp.name)
        if operand is None:
            sink.emit(
                "spec/semantics-io",
                f"semantics input {inp.name!r} is not a documented operand",
                provenance=where,
            )
            continue
        if operand.width != widths[inp.name]:
            sink.emit(
                "spec/semantics-io",
                f"operand {inp.name!r} documented at {operand.width} bits, "
                f"semantics declares {widths[inp.name]}",
                provenance=where,
            )
        if operand.is_immediate != inp.is_immediate:
            sink.emit(
                "spec/semantics-io",
                f"operand {inp.name!r} immediate flag mismatch",
                provenance=where,
            )


def _lint_one_spec(
    isa: str,
    spec: InstructionSpec,
    func,
    seen: set[str],
    sink: DiagnosticSink,
    semantic: bool,
) -> None:
    _check_spec_record(spec, seen, sink)
    if func is None:
        sink.emit(
            "spec/semantics-io",
            "no parsed semantics for this instruction",
            provenance=Provenance(isa=isa, instruction=spec.name, stage="parse"),
        )
        return
    _check_semantics_io(spec, func, sink)
    hydride_check.check_semantics(
        func,
        declared_output_width=spec.output_width,
        isa=isa,
        stage="canonicalize",
        sink=sink,
    )
    if semantic:
        semantic_check.check_semantic_rules(
            func, isa=isa, stage="absint", sink=sink
        )


def lint_isa(
    isa: str,
    sink: DiagnosticSink,
    limit: int | None = None,
    *,
    semantic: bool = True,
) -> tuple[int, int]:
    """Lint one ISA corpus; returns (instructions checked, catalog size).

    A checker crash on one spec must not silently pass the whole corpus:
    any exception escaping the per-spec checks is converted into an
    ``A-INTERNAL`` error diagnostic (which makes the run exit nonzero)
    and linting continues with the next instruction.
    """
    loaded = load_isa(isa)
    catalog: IsaCatalog = loaded.catalog
    specs = list(catalog)[:limit] if limit else list(catalog)
    seen: set[str] = set()
    for spec in specs:
        func = loaded.semantics.get(spec.name)
        try:
            _lint_one_spec(isa, spec, func, seen, sink, semantic)
        except Exception as exc:  # noqa: BLE001 — the tripwire itself
            sink.emit(
                "A-INTERNAL",
                f"checker crashed: {type(exc).__name__}: {exc}",
                provenance=Provenance(
                    isa=isa, instruction=spec.name, stage="lint"
                ),
            )
    return len(specs), len(catalog)


# -- baseline diffing ------------------------------------------------------


def baseline_counts(diagnostics: list[Diagnostic]) -> dict[str, int]:
    """Per-``rule|isa|instruction`` diagnostic counts, the baseline unit."""
    counts: Counter[str] = Counter(
        f"{d.rule}|{d.provenance.isa}|{d.provenance.instruction}"
        for d in diagnostics
    )
    return dict(sorted(counts.items()))


def diff_against_baseline(
    diagnostics: list[Diagnostic], baseline: dict[str, int]
) -> list[tuple[str, int, int]]:
    """Keys whose diagnostic count exceeds the baseline.

    Returns ``(key, current, allowed)`` tuples; a key absent from the
    baseline has ``allowed == 0``.  Disappearing diagnostics are fine —
    the gate is "no *new* findings", not an exact match.
    """
    current = baseline_counts(diagnostics)
    return [
        (key, count, baseline.get(key, 0))
        for key, count in current.items()
        if count > baseline.get(key, 0)
    ]


def load_baseline(path: str) -> dict[str, int]:
    payload = json.loads(pathlib.Path(path).read_text())
    counts = payload.get("counts", payload)
    return {str(k): int(v) for k, v in counts.items()}


def write_baseline(path: str, diagnostics: list[Diagnostic]) -> None:
    payload = {
        "comment": (
            "hydride-lint corpus baseline: per rule|isa|instruction "
            "diagnostic counts; regenerate with --write-baseline"
        ),
        "counts": baseline_counts(diagnostics),
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="hydride-lint",
        description="Lint the generated ISA spec corpora across all IR layers.",
    )
    parser.add_argument(
        "--isa",
        action="append",
        choices=SUPPORTED_ISAS,
        help="ISA(s) to lint (default: all)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"fast mode: first {SMOKE_LIMIT} instructions per ISA",
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="max instructions per ISA"
    )
    parser.add_argument(
        "--format",
        choices=("table", "json", "sarif"),
        default="table",
        help="report format (default: table)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="alias for --format json",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the machine-readable report to this file "
        "(JSON unless --format sarif)",
    )
    parser.add_argument(
        "--no-semantic",
        action="store_true",
        help="skip the abstract-interpretation (sem/*) rules",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON; exit 1 on any diagnostic not covered by it",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        help="write the current diagnostic counts as a new baseline file",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print every diagnostic"
    )
    args = parser.parse_args(argv)

    isas = tuple(args.isa) if args.isa else SUPPORTED_ISAS
    limit = args.limit if args.limit is not None else (
        SMOKE_LIMIT if args.smoke else None
    )
    fmt = "json" if args.json else args.format

    sink = DiagnosticSink(max_per_rule=_CORPUS_MAX_PER_RULE)
    rows = []
    for isa in isas:
        start = time.time()
        errors_before = sink.error_count
        warnings_before = sink.warning_count
        checked, total = lint_isa(
            isa, sink, limit, semantic=not args.no_semantic
        )
        rows.append(
            (
                isa,
                checked,
                total,
                sink.error_count - errors_before,
                sink.warning_count - warnings_before,
                time.time() - start,
            )
        )

    if args.write_baseline:
        write_baseline(args.write_baseline, sink.diagnostics)

    new_findings: list[tuple[str, int, int]] = []
    if args.baseline:
        new_findings = diff_against_baseline(
            sink.diagnostics, load_baseline(args.baseline)
        )

    if args.output:
        report = (
            sarif_json(sink.diagnostics) if fmt == "sarif" else sink.to_json()
        )
        pathlib.Path(args.output).write_text(report + "\n")

    failed = sink.has_errors() or bool(new_findings)

    if fmt == "sarif":
        print(sarif_json(sink.diagnostics))
        return 1 if failed else 0
    if fmt == "json":
        print(sink.to_json())
        return 1 if failed else 0

    print(f"{'ISA':<6} {'checked':>8} {'total':>6} {'errors':>7} "
          f"{'warnings':>9} {'secs':>6}")
    for isa, checked, total, errors, warnings, seconds in rows:
        print(
            f"{isa:<6} {checked:>8} {total:>6} {errors:>7} "
            f"{warnings:>9} {seconds:>6.1f}"
        )
    histogram = sink.by_rule()
    if histogram:
        print("\nrule histogram:")
        for rule, count in sorted(histogram.items(), key=lambda kv: -kv[1]):
            print(f"  {rule:<28} {count}")
    if new_findings:
        print(f"\n{len(new_findings)} finding(s) not in the baseline:")
        for key, count, allowed in new_findings[:50]:
            print(f"  {key}: {count} (baseline allows {allowed})")
    if args.verbose or sink.has_errors():
        shown = [
            d for d in sink.diagnostics
            if args.verbose or d.severity is Severity.ERROR
        ]
        if shown:
            print()
        for diag in shown[:100]:
            print(diag.format())
    status = "FAIL" if failed else "OK"
    print(
        f"\n{status}: {sink.error_count} error(s), "
        f"{sink.warning_count} warning(s) across {len(isas)} ISA(s)"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
