"""SARIF 2.1.0 output for hydride-lint diagnostics.

CI systems (GitHub code scanning among them) ingest SARIF to annotate
diagnostics on pull requests.  The mapping from our diagnostics model:

* each entry of :data:`repro.analysis.diagnostics.RULES` becomes a
  ``reportingDescriptor`` under ``tool.driver.rules`` — the stable rule
  ID (e.g. ``hydride/shift-range``, ``sem/dead-lanes``, ``A-INTERNAL``)
  is the SARIF ``ruleId`` verbatim, and the catalogue's one-line
  description is its ``shortDescription``;
* :class:`Severity` maps onto the SARIF ``level`` — ``ERROR`` ->
  ``error``, ``WARNING`` -> ``warning``, ``NOTE`` -> ``note``;
* provenance has no file/line (specs are generated in memory), so it is
  carried as a ``logicalLocation`` whose ``fullyQualifiedName`` is
  ``<isa>:<instruction>`` and whose ``kind`` is the pipeline stage.
"""

from __future__ import annotations

import json

from repro.analysis.diagnostics import RULES, Diagnostic

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Severity.value -> SARIF result level (they coincide by design).
_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def to_sarif(diagnostics: list[Diagnostic]) -> dict:
    """Render diagnostics as a single-run SARIF 2.1.0 log (as a dict)."""
    used = sorted({d.rule for d in diagnostics})
    rules = [
        {
            "id": rule,
            "shortDescription": {"text": RULES[rule]},
        }
        for rule in used
    ]
    index = {rule: i for i, rule in enumerate(used)}
    results = []
    for diag in diagnostics:
        origin = ":".join(
            p for p in (diag.provenance.isa, diag.provenance.instruction) if p
        )
        result = {
            "ruleId": diag.rule,
            "ruleIndex": index[diag.rule],
            "level": _LEVELS[diag.severity.value],
            "message": {"text": diag.message},
        }
        if origin:
            location: dict = {"fullyQualifiedName": origin}
            if diag.provenance.stage:
                location["kind"] = diag.provenance.stage
            result["locations"] = [{"logicalLocations": [location]}]
        results.append(result)
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "hydride-lint",
                        "informationUri": "https://github.com/",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def sarif_json(diagnostics: list[Diagnostic], indent: int | None = 2) -> str:
    return json.dumps(to_sarif(diagnostics), indent=indent, sort_keys=True)
