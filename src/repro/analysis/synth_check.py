"""Pre-SMT well-typedness check for synthesis candidate programs.

CEGIS verifies a candidate by lowering it to an SMT term and querying the
equivalence checker — an expensive step that silently produces a wrong
query if the candidate DAG is malformed (an ``SOp`` applied at the wrong
arity, a recorded ``out_bits`` that disagrees with the member semantics,
a swizzle fed operands of unequal widths).  This module is the cheap
well-typedness gate run before :class:`repro.smt.solver.EquivalenceChecker`:
pure integer bookkeeping, no solver and no interpretation.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    IRVerificationError,
    Provenance,
    Severity,
)
from repro.hydride_ir.interp import SemanticsError, compute_width
from repro.synthesis.program import (
    SConcat,
    SConstant,
    SInput,
    SNode,
    SOp,
    SSlice,
    SSwizzle,
    SWIZZLE_SHAPES,
)


def check_program(
    node: SNode,
    *,
    isa: str = "",
    stage: str = "",
    sink: DiagnosticSink | None = None,
) -> list[Diagnostic]:
    """Check one candidate program DAG; returns the diagnostics found."""
    own_sink = sink or DiagnosticSink()
    before = len(own_sink.diagnostics)
    seen: set[int] = set()

    def report(rule: str, message: str, where: SNode) -> None:
        own_sink.emit(
            rule,
            message,
            Severity.ERROR,
            Provenance(isa=isa, stage=stage, node=_describe(where)),
        )

    def visit(current: SNode) -> None:
        if id(current) in seen:
            return
        seen.add(id(current))
        for child in current.children():
            visit(child)
        _check_node(current, report)

    visit(node)
    return own_sink.diagnostics[before:]


def _describe(node: SNode) -> str:
    describe = getattr(node, "describe", None)
    if describe is None:
        return type(node).__name__
    text = describe()
    return text if len(text) <= 80 else text[:77] + "..."


def _check_node(node: SNode, report) -> None:
    if isinstance(node, (SInput, SConstant)):
        if node.lanes <= 0 or node.elem_width <= 0:
            report(
                "synth/nonpositive-width",
                f"{node.lanes} x {node.elem_width}-bit leaf",
                node,
            )
        return

    if isinstance(node, SSlice):
        bits = node.src.bits
        if bits < 2 or bits % 2:
            report(
                "synth/slice-width",
                f"half-slice of a {bits}-bit value",
                node,
            )
        return

    if isinstance(node, SConcat):
        if node.high_part.bits <= 0 or node.low_part.bits <= 0:
            report(
                "synth/nonpositive-width",
                f"concat of {node.high_part.bits} and {node.low_part.bits} bits",
                node,
            )
        return

    if isinstance(node, SSwizzle):
        shape = SWIZZLE_SHAPES.get(node.pattern)
        if shape is None:
            report(
                "synth/swizzle-arity",
                f"unknown swizzle pattern {node.pattern!r}",
                node,
            )
            return
        arity, ratio = shape
        if len(node.args) != arity:
            report(
                "synth/swizzle-arity",
                f"{node.pattern} takes {arity} operand(s), got {len(node.args)}",
                node,
            )
            return
        widths = {a.bits for a in node.args}
        if len(widths) > 1:
            report(
                "synth/swizzle-width",
                f"{node.pattern} over unequal widths {sorted(widths)}",
                node,
            )
            return
        bits = node.args[0].bits
        if node.elem_width <= 0 or bits % node.elem_width:
            report(
                "synth/swizzle-width",
                f"element width {node.elem_width} does not divide {bits} bits",
                node,
            )
            return
        expected = bits * 2 if node.pattern == "interleave_full" else int(bits * ratio)
        if node.out_bits != expected:
            report(
                "synth/swizzle-width",
                f"{node.pattern} records {node.out_bits} output bits, "
                f"semantics gives {expected}",
                node,
            )
        return

    if isinstance(node, SOp):
        values = dict(
            zip(node.binding.member.symbolic.param_names, node.values())
        )
        try:
            func = node.binding.member.symbolic.to_function(values)
        except Exception as exc:  # malformed binding
            report("synth/op-arity", f"cannot instantiate member: {exc}", node)
            return
        register_inputs = [i for i in func.inputs if not i.is_immediate]
        imm_inputs = [i for i in func.inputs if i.is_immediate]
        if len(node.args) != len(register_inputs):
            report(
                "synth/op-arity",
                f"{func.name} takes {len(register_inputs)} register "
                f"argument(s), got {len(node.args)}",
                node,
            )
            return
        if len(node.imm_values) != len(imm_inputs):
            report(
                "synth/imm-arity",
                f"{func.name} takes {len(imm_inputs)} immediate(s), "
                f"got {len(node.imm_values)}",
                node,
            )
            return
        widths: dict[str, int] = {}
        for inp, arg in zip(register_inputs, node.args):
            try:
                declared = inp.width.evaluate(values)
            except KeyError as exc:
                report(
                    "synth/arg-width",
                    f"{func.name}: width of {inp.name!r} unresolved: {exc}",
                    node,
                )
                return
            widths[inp.name] = declared
            if arg.bits != declared:
                report(
                    "synth/arg-width",
                    f"{func.name}: input {inp.name!r} declared at "
                    f"{declared} bits, argument supplies {arg.bits}",
                    node,
                )
        for inp in imm_inputs:
            try:
                widths[inp.name] = inp.width.evaluate(values)
            except KeyError:
                widths[inp.name] = 0
        try:
            out_width = compute_width(func.body, values, widths)
        except (SemanticsError, KeyError, ZeroDivisionError) as exc:
            report(
                "synth/out-width",
                f"{func.name}: cannot infer output width: {exc}",
                node,
            )
            return
        if node.out_bits != out_width:
            report(
                "synth/out-width",
                f"{func.name} records {node.out_bits} output bits, "
                f"semantics produces {out_width}",
                node,
            )
        return

    report("synth/op-arity", f"unknown node {type(node).__name__}", node)


def assert_program(node: SNode, *, isa: str = "", stage: str = "") -> None:
    """Raise :class:`IRVerificationError` if the candidate is malformed."""
    diagnostics = check_program(node, isa=isa, stage=stage)
    if diagnostics:
        raise IRVerificationError(diagnostics, context=stage or "candidate")
