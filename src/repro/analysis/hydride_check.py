"""Type-and-width inference checker for Hydride IR semantics functions.

The interpreter and the solver lowering both *assume* a well-formed body:
equal operand widths, in-range extracts, positive loop counts, uniform
lane widths.  Violations surface only when (and if) the bad path is
executed — often as a wrong SMT query rather than a Python error.  This
checker walks the expression tree once per loop-iteration assignment and
verifies every assumption eagerly, reporting violations through the
:mod:`repro.analysis.diagnostics` engine.

Widths are inferred bottom-up under a concrete parameter environment
(the instruction's own ``params`` by default), with ``ForConcat`` bodies
re-checked at every iterator value so affine *and* non-affine index
expressions are covered exactly.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticSink,
    IRVerificationError,
    Provenance,
    Severity,
)
from repro.hydride_ir.ast import (
    BvBinOp,
    BvBroadcastConst,
    BvCast,
    BvCmp,
    BvConcat,
    BvConst,
    BvExpr,
    BvExtract,
    BvIte,
    BvUnOp,
    BvVar,
    ForConcat,
    SemanticsFunction,
)
from repro.hydride_ir.indexexpr import IConst, IndexExpr
from repro.smt import terms as smt

_SHIFT_OPS = frozenset({"bvshl", "bvlshr", "bvashr"})
_SATURATING_CASTS = frozenset({"saturate_to_signed", "saturate_to_unsigned"})
_NARROWING_CASTS = frozenset({"trunc"}) | _SATURATING_CASTS
_WIDENING_CASTS = frozenset({"zext", "sext"})


class _Checker:
    """One check run over one semantics function."""

    def __init__(
        self,
        func: SemanticsFunction,
        env: dict[str, int],
        sink: DiagnosticSink,
        provenance: Provenance,
    ) -> None:
        self.func = func
        self.env = env
        self.sink = sink
        self.provenance = provenance
        self.input_widths: dict[str, int] = {}

    # -- reporting -------------------------------------------------------

    def report(
        self,
        rule: str,
        message: str,
        node: BvExpr | None = None,
        severity: Severity = Severity.ERROR,
    ) -> None:
        where = Provenance(
            isa=self.provenance.isa,
            instruction=self.provenance.instruction,
            stage=self.provenance.stage,
            node=type(node).__name__ if node is not None else "",
        )
        self.sink.emit(rule, message, severity, where)

    # -- index evaluation ------------------------------------------------

    def eval_index(
        self, expr: IndexExpr, env: Mapping[str, int], node: BvExpr, what: str
    ) -> int | None:
        """Evaluate an index expression, diagnosing unbound symbols."""
        try:
            return expr.evaluate(env)
        except KeyError as exc:
            self.report(
                "hydride/unbound-symbol", f"{what}: {exc.args[0]}", node
            )
        except (ZeroDivisionError, ArithmeticError) as exc:
            self.report("hydride/index-eval", f"{what}: {exc}", node)
        return None

    # -- declarations ----------------------------------------------------

    def check_inputs(self) -> None:
        seen: set[str] = set()
        for inp in self.func.inputs:
            if inp.name in seen:
                self.report(
                    "hydride/input-decl", f"duplicate input {inp.name!r}"
                )
            seen.add(inp.name)
            width = self.eval_index(
                inp.width, self.env, self.func.body, f"width of input {inp.name!r}"
            )
            if width is None:
                continue
            if width <= 0:
                self.report(
                    "hydride/input-decl",
                    f"input {inp.name!r} has non-positive width {width}",
                )
                continue
            self.input_widths[inp.name] = width

    # -- width inference -------------------------------------------------

    def width(self, expr: BvExpr, env: dict[str, int]) -> int | None:
        """Bit width of ``expr`` under ``env``; None once diagnosis failed."""
        if isinstance(expr, BvVar):
            if expr.name not in self.input_widths:
                self.report(
                    "hydride/unknown-input",
                    f"reference to undeclared input {expr.name!r}",
                    expr,
                )
                return None
            return self.input_widths[expr.name]

        if isinstance(expr, BvConst):
            width = self.eval_index(expr.width, env, expr, "constant width")
            if width is None:
                return None
            if width <= 0:
                self.report(
                    "hydride/nonpositive-width",
                    f"constant declared at width {width}",
                    expr,
                )
                return None
            value = self.eval_index(expr.value, env, expr, "constant value")
            if value is not None and not -(1 << (width - 1)) <= value < (1 << width):
                self.report(
                    "hydride/const-range",
                    f"value {value} does not fit {width} bits",
                    expr,
                    Severity.WARNING,
                )
            return width

        if isinstance(expr, BvBroadcastConst):
            elem = self.eval_index(expr.elem_width, env, expr, "element width")
            count = self.eval_index(expr.num_elems, env, expr, "element count")
            if elem is None or count is None:
                return None
            if elem <= 0 or count <= 0:
                self.report(
                    "hydride/nonpositive-width",
                    f"broadcast of {count} x {elem}-bit elements",
                    expr,
                )
                return None
            value = self.eval_index(expr.value, env, expr, "broadcast value")
            if value is not None and not -(1 << (elem - 1)) <= value < (1 << elem):
                self.report(
                    "hydride/const-range",
                    f"splat value {value} does not fit {elem} bits",
                    expr,
                    Severity.WARNING,
                )
            return elem * count

        if isinstance(expr, BvExtract):
            src_width = self.width(expr.src, env)
            low = self.eval_index(expr.low, env, expr, "extract low bound")
            width = self.eval_index(expr.width, env, expr, "extract width")
            if width is not None and width <= 0:
                self.report(
                    "hydride/nonpositive-width",
                    f"extract of width {width}",
                    expr,
                )
                return None
            if src_width is None or low is None or width is None:
                return width
            if low < 0 or low + width > src_width:
                self.report(
                    "hydride/extract-bounds",
                    f"slice [{low}, {low + width}) of a {src_width}-bit value",
                    expr,
                )
            return width

        if isinstance(expr, BvBinOp):
            if expr.op not in smt.BINARY_SAME_WIDTH:
                self.report(
                    "hydride/op-name", f"unknown binary op {expr.op!r}", expr
                )
            left = self.width(expr.left, env)
            right = self.width(expr.right, env)
            if left is not None and right is not None and left != right:
                self.report(
                    "hydride/binop-width",
                    f"{expr.op} over widths {left} and {right}",
                    expr,
                )
            if expr.op in _SHIFT_OPS and left is not None:
                self._check_shift_amount(expr, env, left)
            return left if left is not None else right

        if isinstance(expr, BvUnOp):
            if expr.op not in smt.UNARY_SAME_WIDTH:
                self.report(
                    "hydride/op-name", f"unknown unary op {expr.op!r}", expr
                )
            return self.width(expr.operand, env)

        if isinstance(expr, BvCmp):
            if expr.op not in smt.COMPARISONS:
                self.report(
                    "hydride/op-name", f"unknown comparison {expr.op!r}", expr
                )
            left = self.width(expr.left, env)
            right = self.width(expr.right, env)
            if left is not None and right is not None and left != right:
                self.report(
                    "hydride/cmp-width",
                    f"{expr.op} over widths {left} and {right}",
                    expr,
                )
            return 1

        if isinstance(expr, BvCast):
            if expr.op not in smt.WIDTH_CHANGING:
                self.report(
                    "hydride/op-name", f"unknown cast {expr.op!r}", expr
                )
            src = self.width(expr.operand, env)
            new = self.eval_index(expr.new_width, env, expr, "cast width")
            if new is None:
                return None
            if new <= 0:
                self.report(
                    "hydride/nonpositive-width", f"cast to width {new}", expr
                )
                return None
            if src is not None:
                if expr.op in _WIDENING_CASTS and new < src:
                    self.report(
                        "hydride/cast-width",
                        f"{expr.op} from {src} down to {new} bits",
                        expr,
                    )
                elif expr.op == "trunc" and new > src:
                    self.report(
                        "hydride/cast-width",
                        f"trunc from {src} up to {new} bits",
                        expr,
                    )
                elif expr.op in _SATURATING_CASTS and new > src:
                    self.report(
                        "hydride/saturate-width",
                        f"{expr.op} widens {src} to {new} bits",
                        expr,
                        Severity.WARNING,
                    )
            return new

        if isinstance(expr, BvIte):
            cond = self.width(expr.cond, env)
            if cond is not None and cond != 1:
                self.report(
                    "hydride/ite-cond", f"condition is {cond} bits wide", expr
                )
            then_w = self.width(expr.then_expr, env)
            else_w = self.width(expr.else_expr, env)
            if then_w is not None and else_w is not None and then_w != else_w:
                self.report(
                    "hydride/ite-branch",
                    f"branch widths {then_w} and {else_w}",
                    expr,
                )
            return then_w if then_w is not None else else_w

        if isinstance(expr, ForConcat):
            count = self.eval_index(expr.count, env, expr, "loop count")
            if count is None:
                return None
            if count <= 0:
                self.report(
                    "hydride/loop-count", f"loop count {count}", expr
                )
                return None
            total = 0
            first_width: int | None = None
            for i in range(count):
                body_env = dict(env)
                body_env[expr.var] = i
                body_width = self.width(expr.body, body_env)
                if body_width is None:
                    return None
                if first_width is None:
                    first_width = body_width
                elif body_width != first_width:
                    self.report(
                        "hydride/lane-width",
                        f"iteration {i} produces {body_width} bits, "
                        f"iteration 0 produced {first_width}",
                        expr,
                    )
                    return None
                total += body_width
            return total

        if isinstance(expr, BvConcat):
            if not expr.parts:
                self.report(
                    "hydride/nonpositive-width", "empty concatenation", expr
                )
                return None
            total = 0
            for part in expr.parts:
                part_width = self.width(part, env)
                if part_width is None:
                    return None
                total += part_width
            return total

        self.report(
            "hydride/op-name",
            f"unknown expression node {type(expr).__name__}",
            expr,
        )
        return None

    def _check_shift_amount(
        self, expr: BvBinOp, env: dict[str, int], width: int
    ) -> None:
        """Constant shift amounts must be in ``[0, width)``.

        Shifting by the full width is well-defined on the bitvector
        substrate (it yields zero / the sign fill) but never appears in a
        correct vendor spec — it means an element width and a shift
        constant were conflated somewhere upstream.
        """
        amount: int | None = None
        right = expr.right
        if isinstance(right, BvConst):
            amount = self.eval_index(right.value, env, expr, "shift amount")
        elif isinstance(right, BvBroadcastConst):
            amount = self.eval_index(right.value, env, expr, "shift amount")
            elem = self.eval_index(right.elem_width, env, expr, "shift element")
            if elem is not None:
                width = elem
        if amount is not None and not 0 <= amount < width:
            self.report(
                "hydride/shift-range",
                f"{expr.op} by constant {amount} on {width}-bit operand",
                expr,
            )


def check_semantics(
    func: SemanticsFunction,
    params: Mapping[str, int] | None = None,
    *,
    declared_output_width: int | None = None,
    isa: str = "",
    stage: str = "",
    sink: DiagnosticSink | None = None,
) -> list[Diagnostic]:
    """Check one semantics function; returns the diagnostics found.

    ``params`` overrides the function's own parameter assignment (used to
    lint a parameterized semantics at a specific instantiation);
    ``declared_output_width`` additionally cross-checks the inferred body
    width against the catalog's declared register width.
    """
    own_sink = sink or DiagnosticSink()
    before = len(own_sink.diagnostics)
    env = dict(params if params is not None else func.params)
    provenance = Provenance(isa=isa, instruction=func.name, stage=stage)
    checker = _Checker(func, env, own_sink, provenance)
    checker.check_inputs()
    body_width = checker.width(func.body, env)
    if body_width is not None:
        expected: int | None = None
        if declared_output_width is not None:
            expected = declared_output_width
        elif not (
            isinstance(func.output_width, IConst) and func.output_width.value == 0
        ):
            expected = checker.eval_index(
                func.output_width, env, func.body, "declared output width"
            )
        if expected is not None and expected != body_width:
            checker.report(
                "hydride/output-width",
                f"body produces {body_width} bits, declared {expected}",
            )
    return own_sink.diagnostics[before:]


def assert_semantics(
    func: SemanticsFunction,
    params: Mapping[str, int] | None = None,
    *,
    declared_output_width: int | None = None,
    isa: str = "",
    stage: str = "",
) -> None:
    """Raise :class:`IRVerificationError` if ``func`` fails the checker."""
    diagnostics = check_semantics(
        func,
        params,
        declared_output_width=declared_output_width,
        isa=isa,
        stage=stage,
    )
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    if errors:
        raise IRVerificationError(diagnostics, context=func.name)
