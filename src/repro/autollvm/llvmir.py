"""A miniature LLVM IR.

The Hydride pipeline needs LLVM only as a carrier for intrinsic calls:
AutoLLVM operations are "implemented as LLVM intrinsic functions to avoid
the need for changes to existing LLVM passes".  This module provides the
corresponding substrate: integer/vector types, SSA values, call
instructions with immediate arguments, straight-line functions, a module
printer in LLVM's textual style, and a verifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class IntType:
    width: int

    def __str__(self) -> str:
        return f"i{self.width}"

    @property
    def bits(self) -> int:
        return self.width


@dataclass(frozen=True)
class VectorType:
    num_elems: int
    elem_width: int

    def __str__(self) -> str:
        return f"<{self.num_elems} x i{self.elem_width}>"

    @property
    def bits(self) -> int:
        return self.num_elems * self.elem_width


Type = IntType | VectorType


def type_for_bits(bits: int, elem_width: int | None = None) -> Type:
    """A vector type when an element width is known, else an integer."""
    if elem_width and bits % elem_width == 0 and bits // elem_width > 1:
        return VectorType(bits // elem_width, elem_width)
    return IntType(bits)


@dataclass(frozen=True)
class Value:
    """An SSA value: a function argument or an instruction result."""

    name: str
    type: Type

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class ImmOperand:
    """An immediate (compile-time constant) operand."""

    value: int
    type: Type = field(default_factory=lambda: IntType(32))

    def __str__(self) -> str:
        return str(self.value)


Operand = Value | ImmOperand


@dataclass
class Instruction:
    """A call to an intrinsic (AutoLLVM or target-specific)."""

    result: Value
    callee: str
    operands: list[Operand]
    comment: str = ""

    def render(self) -> str:
        args = ", ".join(f"{op.type} {op}" for op in self.operands)
        text = f"{self.result} = call {self.result.type} @{self.callee}({args})"
        if self.comment:
            text += f"  ; {self.comment}"
        return text


@dataclass
class Function:
    name: str
    args: list[Value]
    body: list[Instruction] = field(default_factory=list)
    ret: Value | None = None

    def add(self, instr: Instruction) -> Value:
        self.body.append(instr)
        return instr.result

    def render(self) -> str:
        params = ", ".join(f"{a.type} {a}" for a in self.args)
        ret_type = self.ret.type if self.ret is not None else "void"
        lines = [f"define {ret_type} @{self.name}({params}) {{"]
        for instr in self.body:
            lines.append(f"  {instr.render()}")
        if self.ret is not None:
            lines.append(f"  ret {self.ret.type} {self.ret}")
        else:
            lines.append("  ret void")
        lines.append("}")
        return "\n".join(lines)


@dataclass
class Module:
    name: str
    functions: list[Function] = field(default_factory=list)
    declarations: list[str] = field(default_factory=list)

    def declare_intrinsic(self, signature: str) -> None:
        if signature not in self.declarations:
            self.declarations.append(signature)

    def render(self) -> str:
        parts = [f"; ModuleID = '{self.name}'"]
        parts.extend(f"declare {d}" for d in self.declarations)
        parts.extend(f.render() for f in self.functions)
        return "\n\n".join(parts) + "\n"


class VerificationError(Exception):
    """Raised for malformed functions; carries the individual diagnostics."""

    def __init__(self, message: str, diagnostics: list | None = None):
        super().__init__(message)
        self.diagnostics = diagnostics or []


def verify_function(function: Function, dictionary=None) -> None:
    """SSA and intrinsic-call sanity for an AutoLLVM function.

    Beyond def-before-use/unique-name SSA checks this validates every
    ``autollvm.*`` call: operand layout (registers before immediates),
    immediate types and positions, view/swizzle shapes, and — when an
    :class:`~repro.autollvm.intrinsics.AutoLLVMDictionary` is supplied —
    register/immediate arity against the op's symbolic semantics.
    """
    from repro.analysis.llvm_check import check_function

    diagnostics = check_function(function, dictionary, stage="verify")
    errors = [d for d in diagnostics if d.severity.value == "error"]
    if errors:
        raise VerificationError(
            f"{function.name}: " + "; ".join(d.message for d in errors[:4]),
            diagnostics=errors,
        )
