"""Auto-generated target-specific instruction selection (Section 3.5).

Because every AutoLLVM operation remembers the original concrete values
of each abstracted parameter for every member instruction, lowering is a
1-1 table lookup: match the call's immediate parameters against the
member bindings for the requested ISA and rewrite the call in place.
There is no pattern matching beyond the parameter comparison — that is
the point of the design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autollvm.intrinsics import AutoLLVMDictionary, AutoLLVMOp, TargetBinding
from repro.autollvm.llvmir import (
    Function,
    ImmOperand,
    Instruction,
    Operand,
    Value,
)


class SelectionError(Exception):
    """No target instruction exists for the requested parameter values."""


@dataclass
class SelectedInstruction:
    """An AutoLLVM call resolved to a concrete target instruction."""

    binding: TargetBinding
    operands: list[Operand]

    @property
    def name(self) -> str:
        return self.binding.spec.name

    @property
    def latency(self) -> float:
        return self.binding.spec.latency

    @property
    def throughput(self) -> float:
        return self.binding.spec.throughput


class InstructionSelector:
    """The generated instruction-selection pass for one target ISA."""

    def __init__(self, dictionary: AutoLLVMDictionary, isa: str) -> None:
        if isa not in dictionary.isas:
            raise ValueError(f"dictionary was not built with ISA {isa!r}")
        self.dictionary = dictionary
        self.isa = isa
        # (op name, free parameter values) -> binding.
        self._table: dict[tuple[str, tuple[int, ...]], TargetBinding] = {}
        for op in dictionary.ops:
            free = op.free_positions
            for binding in op.bindings_for(isa):
                key = (op.name, binding.free_values(free))
                # First binding wins deterministically; duplicates are
                # semantically interchangeable members.
                self._table.setdefault(key, binding)

    def rule_count(self) -> int:
        return len(self._table)

    def select(
        self, op: AutoLLVMOp, immediates: tuple[int, ...], operands: list[Operand]
    ) -> SelectedInstruction:
        """Resolve one AutoLLVM call; permutes operands per the member's
        argument alignment recorded during similarity checking."""
        binding = self._table.get((op.name, immediates))
        if binding is None:
            raise SelectionError(
                f"{op.name} with parameters {immediates} has no {self.isa} "
                "instruction"
            )
        order = binding.member.arg_order
        register_operands = [operands[order[i]] for i in range(len(order))]
        return SelectedInstruction(binding, register_operands)

    def lower_call(self, instr: Instruction) -> Instruction:
        """Rewrite an AutoLLVM intrinsic call into a target intrinsic call."""
        op = self.dictionary.op_named(instr.callee)
        register_ops = [o for o in instr.operands if isinstance(o, Value)]
        imm_ops = [o for o in instr.operands if isinstance(o, ImmOperand)]
        immediates = tuple(imm.value for imm in imm_ops)
        selected = self.select(op, immediates, list(register_ops))
        return Instruction(
            result=instr.result,
            callee=f"llvm.{self.isa}.{selected.name.lstrip('_')}",
            operands=selected.operands,
            comment=f"{selected.binding.spec.asm} (from {instr.callee})",
        )

    def lower_function(self, function: Function) -> Function:
        lowered = Function(function.name + f".{self.isa}", list(function.args))
        for instr in function.body:
            if instr.callee.startswith("autollvm."):
                lowered.body.append(self.lower_call(instr))
            else:
                lowered.body.append(instr)
        lowered.ret = function.ret
        return lowered
