"""AutoLLVM IR: the automatically designed compiler IR (paper Section 3.4).

Every equivalence class of similar machine instructions becomes one
retargetable *AutoLLVM intrinsic* whose immediate parameters are the
class's free symbolic parameters; choosing concrete parameter values
selects a specific member instruction, which makes instruction selection
a trivial 1-1 table lookup (Section 3.5).

* :mod:`repro.autollvm.llvmir` — a miniature LLVM IR (types, SSA values,
  intrinsic calls, module printer/verifier) standing in for LLVM proper,
* :mod:`repro.autollvm.intrinsics` — AutoLLVM operation definitions
  generated from equivalence classes,
* :mod:`repro.autollvm.tablegen` — the generated TableGen-style file,
* :mod:`repro.autollvm.lowering` — the auto-generated per-target
  instruction selectors.
"""

from repro.autollvm.intrinsics import AutoLLVMOp, AutoLLVMDictionary, build_dictionary
from repro.autollvm.llvmir import (
    Instruction,
    IntType,
    Module,
    Value,
    VectorType,
)
from repro.autollvm.lowering import InstructionSelector, SelectionError

__all__ = [
    "AutoLLVMOp",
    "AutoLLVMDictionary",
    "build_dictionary",
    "Instruction",
    "IntType",
    "Module",
    "Value",
    "VectorType",
    "InstructionSelector",
    "SelectionError",
]
