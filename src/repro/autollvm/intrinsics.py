"""AutoLLVM intrinsic generation from equivalence classes.

Each class yields one parameterized operation.  Its callable signature is
the representative's register inputs (vector-typed using the member's
element width where known) followed by one ``i32`` immediate per *free*
parameter; fixed parameters (identical across the class) are folded away,
exactly the paper's EliminateUnnecessaryArgs."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from functools import lru_cache

from repro.isa.registry import CORE_ISAS, load_catalog
from repro.isa.spec import InstructionSpec
from repro.similarity.eqclass import ClassMember, EquivalenceClass
from repro.similarity.engine import build_equivalence_classes


@dataclass
class TargetBinding:
    """One target instruction reachable from an AutoLLVM op."""

    member: ClassMember
    spec: InstructionSpec

    @property
    def isa(self) -> str:
        return self.spec.isa

    def free_values(self, free_positions: list[int]) -> tuple[int, ...]:
        values = self.member.values()
        return tuple(values[i] for i in free_positions)


@dataclass
class AutoLLVMOp:
    """One AutoLLVM IR operation (an LLVM intrinsic in the paper)."""

    name: str
    class_id: int
    eq_class: EquivalenceClass
    bindings: list[TargetBinding] = field(default_factory=list)

    @property
    def free_positions(self) -> list[int]:
        return self.eq_class.free_param_positions()

    @property
    def arity(self) -> int:
        return len(self.eq_class.representative.inputs)

    def isas(self) -> set[str]:
        return {b.isa for b in self.bindings}

    def bindings_for(self, isa: str) -> list[TargetBinding]:
        return [b for b in self.bindings if b.isa == isa]

    def ops_used(self) -> set[str]:
        ops: set[str] = set()
        for node in self.eq_class.representative.body.walk():
            op = getattr(node, "op", None)
            if op is not None:
                ops.add(op)
        return ops

    def intrinsic_signature(self) -> str:
        """LLVM-style declaration used in module headers / TableGen."""
        params = ", ".join(["<W x iN>"] * self.arity + ["i32"] * len(self.free_positions))
        return f"<W x iN> @{self.name}({params})"


@dataclass
class AutoLLVMDictionary:
    """The generated dictionary: every AutoLLVM op plus reverse indexes.

    This is the artefact the paper's offline phase hands to both the
    synthesizer (grammar source) and the code generator (lowering table).
    """

    isas: tuple[str, ...]
    ops: list[AutoLLVMOp]
    by_target_instruction: dict[str, AutoLLVMOp] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.ops)

    def op_named(self, name: str) -> AutoLLVMOp:
        for op in self.ops:
            if op.name == name:
                return op
        raise KeyError(name)

    def ops_for_isa(self, isa: str) -> list[AutoLLVMOp]:
        return [op for op in self.ops if isa in op.isas()]


def _family_label(bindings: list[TargetBinding]) -> str:
    families = Counter(b.spec.family for b in bindings)
    label, _count = families.most_common(1)[0]
    return label.replace("/", "_")


def dictionary_from_classes(
    isas: tuple[str, ...], classes: list[EquivalenceClass]
) -> AutoLLVMDictionary:
    """Assemble the dictionary over an already-computed class partition.

    Target specs are resolved from the (cheap, parse-free) generated
    catalogs by name, which is what lets an artifact loaded from disk
    (:mod:`repro.irgen`) rebuild the full dictionary without ever running
    the pseudocode parser.
    """
    specs = {
        isa: {spec.name: spec for spec in load_catalog(isa)} for isa in isas
    }
    ops: list[AutoLLVMOp] = []
    reverse: dict[str, AutoLLVMOp] = {}
    for cls in classes:
        bindings = [
            TargetBinding(member, specs[member.isa][member.name])
            for member in cls.members
        ]
        label = _family_label(bindings)
        op = AutoLLVMOp(
            name=f"autollvm.{label}.{cls.class_id}",
            class_id=cls.class_id,
            eq_class=cls,
            bindings=bindings,
        )
        ops.append(op)
        for binding in bindings:
            reverse[binding.spec.name] = op
    return AutoLLVMDictionary(tuple(isas), ops, reverse)


def dictionary_isas(isa: str) -> tuple[str, ...]:
    """The dictionary an ``isa``-targeted job should compile against.

    Core ISAs share the canonical 3-ISA dictionary (keeping its
    fingerprint, grammar, and class ids identical to historical runs);
    a plug-in ISA such as rvv extends that tuple, opting in to a larger
    dictionary without perturbing anyone else's.
    """
    if isa in CORE_ISAS:
        return CORE_ISAS
    return CORE_ISAS + (isa,)


def build_dictionary(isas: tuple[str, ...] = CORE_ISAS) -> AutoLLVMDictionary:
    """Generate the AutoLLVM dictionary for a set of ISAs (cached).

    When ``REPRO_IRGEN_CACHE`` names an artifact store, the class
    partition comes from the persisted irgen artifact (warm load or
    rebuild-and-persist); otherwise the in-memory serial engine runs.
    """
    return _build_dictionary_cached(tuple(isas))


@lru_cache(maxsize=None)
def _build_dictionary_cached(isas: tuple[str, ...]) -> AutoLLVMDictionary:
    from repro.irgen import artifact_classes_and_stats

    cached = artifact_classes_and_stats(isas)
    if cached is not None:
        classes, _stats = cached
    else:
        classes, _stats = build_equivalence_classes(isas)
    return dictionary_from_classes(isas, classes)
