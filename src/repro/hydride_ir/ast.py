"""Bitvector expression AST for Hydride IR (paper Fig. 4).

The value language is expression-shaped: an instruction's semantics is one
expression producing the output register.  Loops appear as ``ForConcat``
nodes — "concatenate the body evaluated at each iteration" — which directly
model the canonical two-level lane/element loop nest the paper requires.
Iteration 0 produces the least-significant slice, matching the little-endian
lane order of the vendor manuals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hydride_ir.indexexpr import IConst, IndexExpr


@dataclass(frozen=True)
class BvExpr:
    """Base class for bitvector-valued expressions."""

    def children(self) -> tuple["BvExpr", ...]:
        return ()

    def index_exprs(self) -> tuple[IndexExpr, ...]:
        """The index expressions directly attached to this node."""
        return ()

    def walk(self):
        """Yield every node in the expression tree (pre-order)."""
        stack: list[BvExpr] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))


@dataclass(frozen=True)
class BvVar(BvExpr):
    """Reference to an input register by name."""

    name: str


@dataclass(frozen=True)
class BvConst(BvExpr):
    """A literal whose value and width are index expressions.

    Shift factors, masks and round constants in vendor pseudocode become
    ``BvConst`` nodes; the Similarity Checking Engine abstracts their value
    expressions into symbolic parameters.
    """

    value: IndexExpr
    width: IndexExpr

    def index_exprs(self) -> tuple[IndexExpr, ...]:
        return (self.value, self.width)


@dataclass(frozen=True)
class BvBroadcastConst(BvExpr):
    """A constant replicated into every element (splat)."""

    value: IndexExpr
    elem_width: IndexExpr
    num_elems: IndexExpr

    def index_exprs(self) -> tuple[IndexExpr, ...]:
        return (self.value, self.elem_width, self.num_elems)


@dataclass(frozen=True)
class BvExtract(BvExpr):
    """Slice ``[low, low + width)`` of ``src``.

    Expressing the high bound as ``low + width - 1`` implicitly (rather than
    a second free expression) is the representation choice the paper relies
    on when refining access patterns with holes.
    """

    src: BvExpr
    low: IndexExpr
    width: IndexExpr

    def children(self) -> tuple[BvExpr, ...]:
        return (self.src,)

    def index_exprs(self) -> tuple[IndexExpr, ...]:
        return (self.low, self.width)


@dataclass(frozen=True)
class BvBinOp(BvExpr):
    """Same-width binary operation (op names match :mod:`repro.smt.terms`)."""

    op: str
    left: BvExpr
    right: BvExpr

    def children(self) -> tuple[BvExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class BvUnOp(BvExpr):
    op: str
    operand: BvExpr

    def children(self) -> tuple[BvExpr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class BvCmp(BvExpr):
    """Comparison producing a 1-bit value."""

    op: str
    left: BvExpr
    right: BvExpr

    def children(self) -> tuple[BvExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class BvCast(BvExpr):
    """Width change: zext / sext / trunc / saturate_to_signed / _unsigned."""

    op: str
    operand: BvExpr
    new_width: IndexExpr

    def children(self) -> tuple[BvExpr, ...]:
        return (self.operand,)

    def index_exprs(self) -> tuple[IndexExpr, ...]:
        return (self.new_width,)


@dataclass(frozen=True)
class BvIte(BvExpr):
    cond: BvExpr
    then_expr: BvExpr
    else_expr: BvExpr

    def children(self) -> tuple[BvExpr, ...]:
        return (self.cond, self.then_expr, self.else_expr)


@dataclass(frozen=True)
class BvConcat(BvExpr):
    """Explicit concatenation; ``parts[0]`` is least significant.

    Parsers emit ``BvConcat`` for pseudocode that enumerates per-element
    assignments (``dst[15:0] := ...; dst[31:16] := ...``); the loop
    rerolling transform turns it back into a :class:`ForConcat`.
    """

    parts: tuple[BvExpr, ...]

    def children(self) -> tuple[BvExpr, ...]:
        return self.parts


@dataclass(frozen=True)
class ForConcat(BvExpr):
    """``concat_{var = count-1 .. 0} body(var)`` with iteration 0 least
    significant.  The canonical instruction form is two nested ForConcats:
    outer over lanes, inner over elements within a lane."""

    var: str
    count: IndexExpr
    body: BvExpr

    def children(self) -> tuple[BvExpr, ...]:
        return (self.body,)

    def index_exprs(self) -> tuple[IndexExpr, ...]:
        return (self.count,)


@dataclass(frozen=True)
class Input:
    """A declared input register (or scalar) of a semantics function."""

    name: str
    width: IndexExpr
    is_immediate: bool = False


@dataclass(frozen=True)
class SemanticsFunction:
    """The operational semantics Phi(I, k) of one machine instruction.

    ``params`` maps parameter name to its concrete value for this
    instruction; leaving parameters symbolic (ignoring the values) gives the
    parameterized semantics Sigma(I, alpha).
    """

    name: str
    inputs: tuple[Input, ...]
    params: dict[str, int]
    body: BvExpr
    output_width: IndexExpr = field(default_factory=lambda: IConst(0))

    def input_names(self) -> list[str]:
        return [i.name for i in self.inputs]

    def param_values(self) -> dict[str, int]:
        return dict(self.params)

    def with_body(self, body: BvExpr) -> "SemanticsFunction":
        return SemanticsFunction(
            self.name, self.inputs, dict(self.params), body, self.output_width
        )

    def bv_input_count(self) -> int:
        return sum(1 for i in self.inputs if not i.is_immediate)

    def imm_input_count(self) -> int:
        return sum(1 for i in self.inputs if i.is_immediate)
