"""S-expression pretty printer for Hydride IR.

The textual form mirrors the Rosette surface syntax the paper's figures
use, which keeps debugging output and the generated "Rosette code" of the
similarity engine readable side by side with the paper.
"""

from __future__ import annotations

from repro.hydride_ir.ast import (
    BvBinOp,
    BvBroadcastConst,
    BvCast,
    BvCmp,
    BvConcat,
    BvConst,
    BvExpr,
    BvExtract,
    BvIte,
    BvUnOp,
    BvVar,
    ForConcat,
    SemanticsFunction,
)


def pretty_expr(expr: BvExpr, indent: int = 0) -> str:
    pad = "  " * indent

    if isinstance(expr, BvVar):
        return f"{pad}%{expr.name}"
    if isinstance(expr, BvConst):
        return f"{pad}(bv {expr.value} {expr.width})"
    if isinstance(expr, BvBroadcastConst):
        return f"{pad}(splat {expr.value} {expr.elem_width} x{expr.num_elems})"
    if isinstance(expr, BvExtract):
        src = pretty_expr(expr.src, indent + 1)
        return f"{pad}(extract low={expr.low} width={expr.width}\n{src})"
    if isinstance(expr, (BvBinOp, BvCmp)):
        left = pretty_expr(expr.left, indent + 1)
        right = pretty_expr(expr.right, indent + 1)
        return f"{pad}({expr.op}\n{left}\n{right})"
    if isinstance(expr, BvUnOp):
        return f"{pad}({expr.op}\n{pretty_expr(expr.operand, indent + 1)})"
    if isinstance(expr, BvCast):
        operand = pretty_expr(expr.operand, indent + 1)
        return f"{pad}({expr.op} width={expr.new_width}\n{operand})"
    if isinstance(expr, BvIte):
        parts = [
            pretty_expr(expr.cond, indent + 1),
            pretty_expr(expr.then_expr, indent + 1),
            pretty_expr(expr.else_expr, indent + 1),
        ]
        joined = "\n".join(parts)
        return f"{pad}(ite\n{joined})"
    if isinstance(expr, ForConcat):
        body = pretty_expr(expr.body, indent + 1)
        return f"{pad}(for-concat {expr.var} in [0, {expr.count})\n{body})"
    if isinstance(expr, BvConcat):
        parts = "\n".join(pretty_expr(p, indent + 1) for p in expr.parts)
        return f"{pad}(concat ; lsb first\n{parts})"
    return f"{pad}<unknown {type(expr).__name__}>"


def pretty(func: SemanticsFunction) -> str:
    """Full textual form of a semantics function."""
    inputs = " ".join(
        f"(%{i.name} : bv[{i.width}]{' imm' if i.is_immediate else ''})"
        for i in func.inputs
    )
    params = " ".join(f"{k}={v}" for k, v in sorted(func.params.items()))
    header = f"(define ({func.name} {inputs})"
    if params:
        header += f"  ; params: {params}"
    return f"{header}\n{pretty_expr(func.body, 1)})"
