"""Index expressions: integer arithmetic over parameters and iterators.

Widths, loop bounds, slice offsets and literal values in Hydride IR are all
index expressions.  Keeping them symbolic (over :class:`IParam` nodes) is
what lets the Similarity Checking Engine compare two instructions "after
abstracting away target-specific numerical properties".
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass


class IndexExpr:
    """Base class for integer-valued expressions."""

    def evaluate(self, env: Mapping[str, int]) -> int:
        raise NotImplementedError

    def params(self) -> set[str]:
        """Names of :class:`IParam` nodes appearing in this expression."""
        return set()

    def ivars(self) -> set[str]:
        """Names of :class:`IVar` loop iterators appearing here."""
        return set()

    # Operator sugar -----------------------------------------------------

    def __add__(self, other: "IndexExpr | int") -> "IndexExpr":
        return ibin("+", self, _coerce(other))

    def __radd__(self, other: int) -> "IndexExpr":
        return ibin("+", _coerce(other), self)

    def __sub__(self, other: "IndexExpr | int") -> "IndexExpr":
        return ibin("-", self, _coerce(other))

    def __rsub__(self, other: int) -> "IndexExpr":
        return ibin("-", _coerce(other), self)

    def __mul__(self, other: "IndexExpr | int") -> "IndexExpr":
        return ibin("*", self, _coerce(other))

    def __rmul__(self, other: int) -> "IndexExpr":
        return ibin("*", _coerce(other), self)

    def __floordiv__(self, other: "IndexExpr | int") -> "IndexExpr":
        return ibin("//", self, _coerce(other))

    def __mod__(self, other: "IndexExpr | int") -> "IndexExpr":
        return ibin("%", self, _coerce(other))


@dataclass(frozen=True)
class IConst(IndexExpr):
    value: int

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.value

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class IParam(IndexExpr):
    """A numeric instruction parameter (element width, vector width, ...)."""

    name: str

    def evaluate(self, env: Mapping[str, int]) -> int:
        try:
            return env[self.name]
        except KeyError:
            raise KeyError(f"unbound parameter {self.name!r}") from None

    def params(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class IVar(IndexExpr):
    """A loop iterator introduced by :class:`ForConcat`."""

    name: str

    def evaluate(self, env: Mapping[str, int]) -> int:
        try:
            return env[self.name]
        except KeyError:
            raise KeyError(f"unbound loop iterator {self.name!r}") from None

    def ivars(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IBin(IndexExpr):
    op: str
    left: IndexExpr
    right: IndexExpr

    _OPS = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "//": lambda a, b: a // b,
        "%": lambda a, b: a % b,
    }

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self._OPS[self.op](self.left.evaluate(env), self.right.evaluate(env))

    def params(self) -> set[str]:
        return self.left.params() | self.right.params()

    def ivars(self) -> set[str]:
        return self.left.ivars() | self.right.ivars()

    def __repr__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


def iconst(value: int) -> IConst:
    return IConst(value)


def iparam(name: str) -> IParam:
    return IParam(name)


def ivar(name: str) -> IVar:
    return IVar(name)


def _coerce(value: "IndexExpr | int") -> IndexExpr:
    return IConst(value) if isinstance(value, int) else value


def ibin(op: str, left: IndexExpr, right: IndexExpr) -> IndexExpr:
    """Build a binary index expression with light constant folding."""
    if isinstance(left, IConst) and isinstance(right, IConst):
        return IConst(IBin._OPS[op](left.value, right.value))
    if op == "+":
        if isinstance(left, IConst) and left.value == 0:
            return right
        if isinstance(right, IConst) and right.value == 0:
            return left
    if op == "-" and isinstance(right, IConst) and right.value == 0:
        return left
    if op == "*":
        if isinstance(left, IConst):
            if left.value == 0:
                return IConst(0)
            if left.value == 1:
                return right
        if isinstance(right, IConst):
            if right.value == 0:
                return IConst(0)
            if right.value == 1:
                return left
    if op == "//" and isinstance(right, IConst) and right.value == 1:
        return left
    return IBin(op, left, right)


def simplify_index(expr: IndexExpr) -> IndexExpr:
    """Recursively re-fold an index expression."""
    if isinstance(expr, IBin):
        return ibin(expr.op, simplify_index(expr.left), simplify_index(expr.right))
    return expr


def normalize_affine(expr: IndexExpr) -> IndexExpr:
    """Normalise to an ordered sum-of-products: ``t1 + t2 + ... + c``.

    Terms are ``var``/``var * coeff`` products ordered by first appearance,
    with the constant offset last and *omitted when zero*.  This canonical
    shape is what lets the similarity engine align slice offsets across
    instructions — and what makes the remaining lo/hi-style mismatch (a
    present vs. absent trailing constant) exactly the gap the hole
    refinement of Section 3.3 closes.

    Non-affine subexpressions (divisions, modulo over iterators) are kept
    opaque and treated as unit terms.
    """
    const_part = 0
    coeffs: dict[str, int] = {}
    atoms: dict[str, IndexExpr] = {}
    order: list[str] = []

    def add_term(key: str, atom: IndexExpr, coeff: int) -> None:
        nonlocal const_part
        if coeff == 0:
            return
        if key not in coeffs:
            coeffs[key] = 0
            atoms[key] = atom
            order.append(key)
        coeffs[key] += coeff

    def walk(node: IndexExpr, sign: int) -> None:
        nonlocal const_part
        if isinstance(node, IConst):
            const_part += sign * node.value
            return
        if isinstance(node, (IParam, IVar)):
            add_term(repr(node), node, sign)
            return
        if isinstance(node, IBin):
            if node.op == "+":
                walk(node.left, sign)
                walk(node.right, sign)
                return
            if node.op == "-":
                walk(node.left, sign)
                walk(node.right, -sign)
                return
            if node.op == "*":
                left_const = isinstance(node.left, IConst)
                right_const = isinstance(node.right, IConst)
                if left_const and not right_const:
                    scale = node.left.value  # type: ignore[union-attr]
                    inner = normalize_affine(node.right)
                    _scale_into(inner, sign * scale)
                    return
                if right_const and not left_const:
                    scale = node.right.value  # type: ignore[union-attr]
                    inner = normalize_affine(node.left)
                    _scale_into(inner, sign * scale)
                    return
        # Opaque: keep as a unit term (normalised internally).
        if isinstance(node, IBin):
            node = IBin(node.op, normalize_affine(node.left), normalize_affine(node.right))
        add_term(repr(node), node, sign)

    def _scale_into(node: IndexExpr, scale: int) -> None:
        """Add ``scale * node`` where node is already normalised affine."""
        nonlocal const_part
        if isinstance(node, IConst):
            const_part += scale * node.value
            return
        if isinstance(node, IBin) and node.op == "+":
            _scale_into(node.left, scale)
            _scale_into(node.right, scale)
            return
        if isinstance(node, IBin) and node.op == "*" and isinstance(node.right, IConst):
            add_term(repr(node.left), node.left, scale * node.right.value)
            return
        add_term(repr(node), node, scale)

    walk(expr, 1)

    result: IndexExpr | None = None
    # Order terms by |coefficient| descending (appearance order breaking
    # ties): outer-loop strides are larger than element strides, so this
    # aligns the lane term before the element term across instructions
    # regardless of how each vendor's pseudocode happened to write them.
    ordered = sorted(
        range(len(order)), key=lambda idx: (-abs(coeffs[order[idx]]), idx)
    )
    for position in ordered:
        key = order[position]
        coeff = coeffs[key]
        if coeff == 0:
            continue
        term: IndexExpr = atoms[key] if coeff == 1 else IBin(
            "*", atoms[key], IConst(coeff)
        )
        result = term if result is None else IBin("+", result, term)
    if result is None:
        return IConst(const_part)
    if const_part != 0:
        result = IBin("+", result, IConst(const_part))
    return result


def substitute_index(expr: IndexExpr, bindings: Mapping[str, IndexExpr]) -> IndexExpr:
    """Replace parameters and iterators by other index expressions."""
    if isinstance(expr, (IParam, IVar)):
        return bindings.get(expr.name, expr)
    if isinstance(expr, IBin):
        return ibin(
            expr.op,
            substitute_index(expr.left, bindings),
            substitute_index(expr.right, bindings),
        )
    return expr
