"""Interpretation and solver-lowering of Hydride IR.

Two consumers need to execute semantics functions:

* the differential fuzzer and the synthesizer evaluate them on concrete
  register values (:func:`interpret`),
* the Similarity Checking Engine and CEGIS verification lower them to
  symbolic :class:`repro.smt.Term` DAGs (:func:`to_term`) under a concrete
  parameter assignment — the paper's Phi(I, k) with k substituted.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.bitvector.bv import BitVector
from repro.smt import terms as smt
from repro.hydride_ir.ast import (
    BvBinOp,
    BvBroadcastConst,
    BvCast,
    BvCmp,
    BvConcat,
    BvConst,
    BvExpr,
    BvExtract,
    BvIte,
    BvUnOp,
    BvVar,
    ForConcat,
    SemanticsFunction,
)


class SemanticsError(Exception):
    """An ill-formed semantics function (bad widths, unknown input, ...)."""


def compute_width(expr: BvExpr, env: Mapping[str, int], input_widths: Mapping[str, int]) -> int:
    """The bit width of ``expr`` under index environment ``env``."""
    if isinstance(expr, BvVar):
        return input_widths[expr.name]
    if isinstance(expr, BvConst):
        return expr.width.evaluate(env)
    if isinstance(expr, BvBroadcastConst):
        return expr.elem_width.evaluate(env) * expr.num_elems.evaluate(env)
    if isinstance(expr, BvExtract):
        return expr.width.evaluate(env)
    if isinstance(expr, (BvBinOp,)):
        return compute_width(expr.left, env, input_widths)
    if isinstance(expr, BvUnOp):
        return compute_width(expr.operand, env, input_widths)
    if isinstance(expr, BvCmp):
        return 1
    if isinstance(expr, BvCast):
        return expr.new_width.evaluate(env)
    if isinstance(expr, BvIte):
        return compute_width(expr.then_expr, env, input_widths)
    if isinstance(expr, ForConcat):
        count = expr.count.evaluate(env)
        body_env = dict(env)
        body_env[expr.var] = 0
        return count * compute_width(expr.body, body_env, input_widths)
    if isinstance(expr, BvConcat):
        return sum(compute_width(p, env, input_widths) for p in expr.parts)
    raise SemanticsError(f"unknown expression node {type(expr).__name__}")


def resolved_input_widths(
    func: SemanticsFunction, params: Mapping[str, int]
) -> dict[str, int]:
    """Concrete widths of every input under a parameter assignment."""
    return {i.name: i.width.evaluate(params) for i in func.inputs}


def interpret(
    func: SemanticsFunction,
    inputs: Mapping[str, BitVector],
    params: Mapping[str, int] | None = None,
) -> BitVector:
    """Run the semantics on concrete register values."""
    param_env: dict[str, int] = dict(params if params is not None else func.params)
    widths = resolved_input_widths(func, param_env)
    _check_inputs(widths, inputs)
    return _run_body(func, inputs, param_env)


def make_evaluator(func: SemanticsFunction, params: Mapping[str, int] | None = None):
    """A reusable concrete evaluator with the per-call setup hoisted out.

    :func:`interpret` rebuilds the parameter environment and re-evaluates
    every input-width expression on each call; the synthesizer applies the
    same instruction (same parameter vector) to thousands of candidate
    argument tuples, so this returns a closure that has both precomputed.
    The resolved widths are exposed as ``input_widths`` so callers can
    build argument environments without touching the width expressions.
    """
    param_env: dict[str, int] = dict(params if params is not None else func.params)
    widths = resolved_input_widths(func, param_env)

    def evaluate(inputs: Mapping[str, BitVector]) -> BitVector:
        _check_inputs(widths, inputs)
        return _run_body(func, inputs, param_env)

    evaluate.input_widths = widths  # type: ignore[attr-defined]
    return evaluate


def _check_inputs(
    widths: Mapping[str, int], inputs: Mapping[str, BitVector]
) -> None:
    for name, width in widths.items():
        value = inputs.get(name)
        if value is None:
            raise SemanticsError(f"missing input {name!r}")
        if value.width != width:
            raise SemanticsError(
                f"input {name!r} has width {value.width}, expected {width}"
            )


def _run_body(
    func: SemanticsFunction,
    inputs: Mapping[str, BitVector],
    param_env: dict[str, int],
) -> BitVector:
    def run(expr: BvExpr, env: dict[str, int]) -> BitVector:
        if isinstance(expr, BvVar):
            return inputs[expr.name]
        if isinstance(expr, BvConst):
            return BitVector(expr.value.evaluate(env), expr.width.evaluate(env))
        if isinstance(expr, BvBroadcastConst):
            elem = BitVector(expr.value.evaluate(env), expr.elem_width.evaluate(env))
            count = expr.num_elems.evaluate(env)
            result = elem
            for _ in range(count - 1):
                result = result.concat(elem)
            return result
        if isinstance(expr, BvExtract):
            src = run(expr.src, env)
            low = expr.low.evaluate(env)
            width = expr.width.evaluate(env)
            if low < 0 or low + width > src.width:
                raise SemanticsError(
                    f"extract [{low}, {low + width}) out of range "
                    f"for width {src.width} in {func.name}"
                )
            return src.extract(low + width - 1, low)
        if isinstance(expr, BvBinOp):
            left = run(expr.left, env)
            right = run(expr.right, env)
            if expr.op == "bvuavg_round":
                return left.bvuavg(right, round_up=True)
            if expr.op == "bvsavg_round":
                return left.bvsavg(right, round_up=True)
            return getattr(left, expr.op)(right)
        if isinstance(expr, BvUnOp):
            return getattr(run(expr.operand, env), expr.op)()
        if isinstance(expr, BvCmp):
            return getattr(run(expr.left, env), expr.op)(run(expr.right, env))
        if isinstance(expr, BvCast):
            return getattr(run(expr.operand, env), expr.op)(expr.new_width.evaluate(env))
        if isinstance(expr, BvIte):
            cond = run(expr.cond, env)
            return run(expr.then_expr, env) if cond.value else run(expr.else_expr, env)
        if isinstance(expr, ForConcat):
            count = expr.count.evaluate(env)
            if count <= 0:
                raise SemanticsError(f"loop count {count} in {func.name}")
            pieces: list[BitVector] = []
            for i in range(count):
                env_i = dict(env)
                env_i[expr.var] = i
                pieces.append(run(expr.body, env_i))
            result = pieces[0]
            for piece in pieces[1:]:
                result = piece.concat(result)
            return result
        if isinstance(expr, BvConcat):
            parts = [run(p, env) for p in expr.parts]
            result = parts[0]
            for part in parts[1:]:
                result = part.concat(result)
            return result
        raise SemanticsError(f"unknown expression node {type(expr).__name__}")

    return run(func.body, param_env)


def to_term(
    func: SemanticsFunction,
    params: Mapping[str, int] | None = None,
    rename: Mapping[str, str] | None = None,
) -> smt.Term:
    """Lower to a symbolic term with inputs as free variables.

    ``rename`` optionally maps input names to fresh variable names, which
    the similarity engine uses to align the argument lists of two
    instructions before an equivalence query.
    """
    param_env: dict[str, int] = dict(params if params is not None else func.params)
    widths = resolved_input_widths(func, param_env)
    rename = rename or {}

    def run(expr: BvExpr, env: dict[str, int]) -> smt.Term:
        if isinstance(expr, BvVar):
            return smt.var(rename.get(expr.name, expr.name), widths[expr.name])
        if isinstance(expr, BvConst):
            return smt.const(expr.value.evaluate(env), expr.width.evaluate(env))
        if isinstance(expr, BvBroadcastConst):
            elem = smt.const(expr.value.evaluate(env), expr.elem_width.evaluate(env))
            count = expr.num_elems.evaluate(env)
            result: smt.Term = elem
            for _ in range(count - 1):
                result = smt.apply_op("concat", [elem, result])
            return result
        if isinstance(expr, BvExtract):
            src = run(expr.src, env)
            low = expr.low.evaluate(env)
            width = expr.width.evaluate(env)
            if low < 0 or low + width > src.width:
                raise SemanticsError(
                    f"extract [{low}, {low + width}) out of range "
                    f"for width {src.width} in {func.name}"
                )
            return smt.apply_op("extract", [src], (low + width - 1, low))
        if isinstance(expr, BvBinOp):
            return smt.apply_op(expr.op, [run(expr.left, env), run(expr.right, env)])
        if isinstance(expr, BvUnOp):
            return smt.apply_op(expr.op, [run(expr.operand, env)])
        if isinstance(expr, BvCmp):
            return smt.apply_op(expr.op, [run(expr.left, env), run(expr.right, env)])
        if isinstance(expr, BvCast):
            return smt.apply_op(
                expr.op, [run(expr.operand, env)], (expr.new_width.evaluate(env),)
            )
        if isinstance(expr, BvIte):
            return smt.apply_op(
                "ite",
                [run(expr.cond, env), run(expr.then_expr, env), run(expr.else_expr, env)],
            )
        if isinstance(expr, ForConcat):
            count = expr.count.evaluate(env)
            if count <= 0:
                raise SemanticsError(f"loop count {count} in {func.name}")
            pieces: list[smt.Term] = []
            for i in range(count):
                env_i = dict(env)
                env_i[expr.var] = i
                pieces.append(run(expr.body, env_i))
            result = pieces[0]
            for piece in pieces[1:]:
                result = smt.apply_op("concat", [piece, result])
            return result
        if isinstance(expr, BvConcat):
            parts = [run(p, env) for p in expr.parts]
            result = parts[0]
            for part in parts[1:]:
                result = smt.apply_op("concat", [part, result])
            return result
        raise SemanticsError(f"unknown expression node {type(expr).__name__}")

    return run(func.body, param_env)
