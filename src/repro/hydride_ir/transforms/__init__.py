"""Canonicalising transformations on Hydride IR.

The Similarity Checking Engine requires every instruction's semantics in a
canonical shape — "at least two loops in a loop nest: one outer loop over
lanes, an inner loop over elements in a lane" — before constants are
extracted.  These transforms produce that shape:

* :func:`repro.hydride_ir.transforms.reroll.reroll` turns an explicit
  per-element concatenation back into a loop,
* :func:`repro.hydride_ir.transforms.constprop.propagate_constants`
  re-folds index arithmetic and prunes degenerate nodes,
* :func:`repro.hydride_ir.transforms.canonicalize.canonicalize` drives the
  pipeline and inserts the artificial single-iteration inner loop for pure
  SIMD instructions.
"""

from repro.hydride_ir.transforms.canonicalize import canonicalize
from repro.hydride_ir.transforms.constprop import propagate_constants
from repro.hydride_ir.transforms.reroll import reroll
from repro.hydride_ir.transforms.rewrite import rewrite_bottom_up

__all__ = ["canonicalize", "propagate_constants", "reroll", "rewrite_bottom_up"]
