"""Loop rerolling: recover ``ForConcat`` loops from unrolled concatenations.

Vendor pseudocode frequently enumerates every element explicitly::

    dst[15:0]  := a[15:0]  + b[15:0]
    dst[31:16] := a[31:16] + b[31:16]
    ...

The parser turns that into a :class:`BvConcat` of per-element expressions;
rerolling *anti-unifies* the parts: all parts must share one tree shape,
and every integer constant position must either be invariant or follow an
affine progression ``base + i * stride`` in the part index ``i``.  Those
positions become index expressions over a fresh loop iterator, and the
whole concatenation collapses to a single ``ForConcat``.
"""

from __future__ import annotations

import itertools

from repro.hydride_ir.ast import (
    BvBinOp,
    BvBroadcastConst,
    BvCast,
    BvCmp,
    BvConcat,
    BvConst,
    BvExpr,
    BvExtract,
    BvIte,
    BvUnOp,
    BvVar,
    ForConcat,
)
from repro.hydride_ir.indexexpr import IBin, IConst, IndexExpr, IParam, IVar, ivar
from repro.hydride_ir.transforms.rewrite import rewrite_bottom_up

_FRESH = itertools.count()


class _CannotReroll(Exception):
    pass


def _index_skeletons_match(a: IndexExpr, b: IndexExpr) -> bool:
    """Structural match allowing IConst values to differ."""
    if isinstance(a, IConst) and isinstance(b, IConst):
        return True
    if isinstance(a, IParam) and isinstance(b, IParam):
        return a.name == b.name
    if isinstance(a, IVar) and isinstance(b, IVar):
        return a.name == b.name
    if isinstance(a, IBin) and isinstance(b, IBin):
        return (
            a.op == b.op
            and _index_skeletons_match(a.left, b.left)
            and _index_skeletons_match(a.right, b.right)
        )
    return False


def _generalize_index(
    instances: list[IndexExpr], loop_var: IVar
) -> IndexExpr:
    """Anti-unify index expressions that differ only in IConst values."""
    first = instances[0]
    if isinstance(first, IConst):
        values = []
        for inst in instances:
            assert isinstance(inst, IConst)
            values.append(inst.value)
        if all(v == values[0] for v in values):
            return first
        stride = values[1] - values[0]
        if all(values[i] == values[0] + i * stride for i in range(len(values))):
            # Keep the additive base explicit even when zero: nested
            # rerolling anti-unifies sibling positions structurally, and a
            # folded-away +0 would make their skeletons diverge.
            return IBin(
                "+", IBin("*", loop_var, IConst(stride)), IConst(values[0])
            )
        raise _CannotReroll(f"non-affine constant progression {values}")
    if isinstance(first, (IParam, IVar)):
        return first
    assert isinstance(first, IBin)
    lefts = [inst.left for inst in instances]  # type: ignore[union-attr]
    rights = [inst.right for inst in instances]  # type: ignore[union-attr]
    return IBin(
        first.op,
        _generalize_index(lefts, loop_var),
        _generalize_index(rights, loop_var),
    )


def _expr_skeletons_match(a: BvExpr, b: BvExpr) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, BvVar):
        return a.name == b.name  # type: ignore[union-attr]
    if isinstance(a, (BvBinOp, BvCmp, BvUnOp, BvCast)):
        if a.op != b.op:  # type: ignore[union-attr]
            return False
    if isinstance(a, ForConcat):
        if a.var != b.var:  # type: ignore[union-attr]
            return False
    index_a, index_b = a.index_exprs(), b.index_exprs()
    if len(index_a) != len(index_b):
        return False
    if not all(_index_skeletons_match(x, y) for x, y in zip(index_a, index_b)):
        return False
    kids_a, kids_b = a.children(), b.children()
    if len(kids_a) != len(kids_b):
        return False
    return all(_expr_skeletons_match(x, y) for x, y in zip(kids_a, kids_b))


def _generalize_expr(instances: list[BvExpr], loop_var: IVar) -> BvExpr:
    first = instances[0]
    kids = [
        _generalize_expr([inst.children()[k] for inst in instances], loop_var)
        for k in range(len(first.children()))
    ]
    if isinstance(first, BvVar):
        return first
    if isinstance(first, BvConst):
        return BvConst(
            _generalize_index([i.value for i in instances], loop_var),  # type: ignore[union-attr]
            _generalize_index([i.width for i in instances], loop_var),  # type: ignore[union-attr]
        )
    if isinstance(first, BvBroadcastConst):
        return BvBroadcastConst(
            _generalize_index([i.value for i in instances], loop_var),  # type: ignore[union-attr]
            _generalize_index([i.elem_width for i in instances], loop_var),  # type: ignore[union-attr]
            _generalize_index([i.num_elems for i in instances], loop_var),  # type: ignore[union-attr]
        )
    if isinstance(first, BvExtract):
        return BvExtract(
            kids[0],
            _generalize_index([i.low for i in instances], loop_var),  # type: ignore[union-attr]
            _generalize_index([i.width for i in instances], loop_var),  # type: ignore[union-attr]
        )
    if isinstance(first, BvBinOp):
        return BvBinOp(first.op, kids[0], kids[1])
    if isinstance(first, BvUnOp):
        return BvUnOp(first.op, kids[0])
    if isinstance(first, BvCmp):
        return BvCmp(first.op, kids[0], kids[1])
    if isinstance(first, BvCast):
        return BvCast(
            first.op,
            kids[0],
            _generalize_index([i.new_width for i in instances], loop_var),  # type: ignore[union-attr]
        )
    if isinstance(first, BvIte):
        return BvIte(kids[0], kids[1], kids[2])
    if isinstance(first, ForConcat):
        return ForConcat(
            first.var,
            _generalize_index([i.count for i in instances], loop_var),  # type: ignore[union-attr]
            kids[0],
        )
    if isinstance(first, BvConcat):
        return BvConcat(tuple(kids))
    raise _CannotReroll(f"cannot generalize {type(first).__name__}")


def _group_divisors(n: int) -> list[int]:
    """Group sizes to try: 1, then every proper divisor in ascending order."""
    return [g for g in range(1, n) if n % g == 0]


def _anti_unify_units(units: list[BvExpr]) -> BvExpr | None:
    template = units[0]
    if not all(_expr_skeletons_match(template, u) for u in units[1:]):
        return None
    loop_var = ivar(f"_r{next(_FRESH)}")
    try:
        body = _generalize_expr(units, loop_var)
    except _CannotReroll:
        return None
    return ForConcat(loop_var.name, IConst(len(units)), body)


def _try_reroll_concat(expr: BvConcat) -> BvExpr:
    """Reroll a flat concatenation, trying grouped units for interleaves.

    A SIMD instruction rerolls with group size 1.  An interleave emits
    alternating a-slice/b-slice parts, so consecutive parts only unify when
    grouped in pairs; a multi-lane interleave needs one unit per 128-bit
    lane first, with the within-lane concatenation rerolled recursively —
    which recovers exactly the canonical lane/element nest of the paper's
    Figure 3(b).
    """
    parts = list(expr.parts)
    if len(parts) < 2:
        return parts[0] if parts else expr
    for group in _group_divisors(len(parts)):
        if group == 1:
            units: list[BvExpr] = parts
        else:
            units = [
                BvConcat(tuple(parts[i : i + group]))
                for i in range(0, len(parts), group)
            ]
        rolled = _anti_unify_units(units)
        if rolled is not None:
            return ForConcat(rolled.var, rolled.count, reroll(rolled.body))
    return expr


def reroll(expr: BvExpr) -> BvExpr:
    """Reroll every concatenation in ``expr`` that admits a loop form."""

    def visit(node: BvExpr) -> BvExpr:
        if isinstance(node, BvConcat):
            return _try_reroll_concat(node)
        return node

    return rewrite_bottom_up(expr, visit)
