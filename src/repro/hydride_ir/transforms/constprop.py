"""Constant propagation and index-expression folding."""

from __future__ import annotations

from repro.hydride_ir.ast import (
    BvBroadcastConst,
    BvCast,
    BvConcat,
    BvConst,
    BvExpr,
    BvExtract,
    BvIte,
    ForConcat,
    SemanticsFunction,
)
from repro.hydride_ir.indexexpr import IConst, normalize_affine, simplify_index
from repro.hydride_ir.transforms.rewrite import rewrite_bottom_up


def _canon_index(expr):
    return normalize_affine(simplify_index(expr))


def _fold_node(expr: BvExpr) -> BvExpr:
    if isinstance(expr, BvConst):
        return BvConst(_canon_index(expr.value), _canon_index(expr.width))
    if isinstance(expr, BvBroadcastConst):
        return BvBroadcastConst(
            _canon_index(expr.value),
            _canon_index(expr.elem_width),
            _canon_index(expr.num_elems),
        )
    if isinstance(expr, BvExtract):
        low = _canon_index(expr.low)
        width = _canon_index(expr.width)
        return BvExtract(expr.src, low, width)
    if isinstance(expr, BvCast):
        return BvCast(expr.op, expr.operand, _canon_index(expr.new_width))
    if isinstance(expr, ForConcat):
        count = _canon_index(expr.count)
        if isinstance(count, IConst) and count.value == 1 and not _uses_ivar(
            expr.body, expr.var
        ):
            return expr.body
        return ForConcat(expr.var, count, expr.body)
    if isinstance(expr, BvIte):
        cond = expr.cond
        if isinstance(cond, BvConst) and isinstance(cond.value, IConst):
            return expr.then_expr if cond.value.value else expr.else_expr
        return expr
    if isinstance(expr, BvConcat) and len(expr.parts) == 1:
        return expr.parts[0]
    return expr


def _uses_ivar(expr: BvExpr, name: str) -> bool:
    for node in expr.walk():
        for index_expr in node.index_exprs():
            if name in index_expr.ivars():
                return True
    return False


def propagate_constants(expr: BvExpr) -> BvExpr:
    """Fold index arithmetic and collapse degenerate structure.

    Note that single-iteration loops whose body ignores the iterator are
    removed here; :func:`repro.hydride_ir.transforms.canonicalize.canonicalize`
    re-adds the artificial inner loop afterwards so the canonical two-level
    shape is restored deterministically.
    """
    return rewrite_bottom_up(expr, _fold_node)


def propagate_constants_function(func: SemanticsFunction) -> SemanticsFunction:
    return func.with_body(propagate_constants(func.body))
