"""Canonicalisation pipeline for instruction semantics.

Section 3.3 of the paper: semantics must contain "at least two loops in a
loop nest: one outer loop for iteration over lanes ... and an inner loop
for iteration over elements in a given lane", with an artificial
single-iteration inner loop added for pure SIMD instructions.  This module
drives rerolling + constant propagation and then enforces that shape.
"""

from __future__ import annotations

import itertools

from repro.hydride_ir.ast import (
    BvExpr,
    ForConcat,
    SemanticsFunction,
)
from repro.hydride_ir.indexexpr import IConst
from repro.hydride_ir.transforms.constprop import propagate_constants
from repro.hydride_ir.transforms.reroll import reroll

_FRESH = itertools.count()


def _loop_depth_on_spine(expr: BvExpr) -> int:
    """Number of ForConcat nodes on the outermost loop spine."""
    depth = 0
    node = expr
    while isinstance(node, ForConcat):
        depth += 1
        node = node.body
    return depth


def _ensure_two_level(expr: BvExpr) -> BvExpr:
    """Wrap the loop nest so the spine has (at least) two levels."""
    if not isinstance(expr, ForConcat):
        # Scalar semantics: wrap in a 1x1 lane/element nest.
        inner = ForConcat(f"_e{next(_FRESH)}", IConst(1), expr)
        return ForConcat(f"_l{next(_FRESH)}", IConst(1), inner)
    if _loop_depth_on_spine(expr) >= 2:
        return expr
    # One loop over elements: add the artificial single-iteration inner loop.
    inner = ForConcat(f"_e{next(_FRESH)}", IConst(1), expr.body)
    return ForConcat(expr.var, expr.count, inner)


def canonicalize(func: SemanticsFunction) -> SemanticsFunction:
    """Reroll, fold, and enforce the two-level lane/element loop shape.

    Under ``REPRO_VERIFY_IR`` each constituent pass's output is re-checked
    by the :mod:`repro.analysis` verifier, so a transform that breaks
    width arithmetic is caught at the pass that introduced the damage.
    """
    from repro.analysis import hooks

    verify = hooks.verification_enabled()
    body = reroll(func.body)
    if verify:
        hooks.verify_semantics(func.with_body(body), stage="reroll")
    body = propagate_constants(body)
    if verify:
        hooks.verify_semantics(func.with_body(body), stage="constprop")
    body = _ensure_two_level(body)
    result = func.with_body(body)
    if verify:
        hooks.verify_semantics(result, stage="canonicalize")
    return result
