"""Generic bottom-up rewriting over Hydride IR expressions."""

from __future__ import annotations

from collections.abc import Callable

from repro.hydride_ir.ast import (
    BvBinOp,
    BvCast,
    BvCmp,
    BvConcat,
    BvExpr,
    BvExtract,
    BvIte,
    BvUnOp,
    ForConcat,
)


def reconstruct(expr: BvExpr, children: list[BvExpr]) -> BvExpr:
    """Rebuild ``expr`` with new children (same node kind and attributes)."""
    if isinstance(expr, BvExtract):
        return BvExtract(children[0], expr.low, expr.width)
    if isinstance(expr, BvBinOp):
        return BvBinOp(expr.op, children[0], children[1])
    if isinstance(expr, BvUnOp):
        return BvUnOp(expr.op, children[0])
    if isinstance(expr, BvCmp):
        return BvCmp(expr.op, children[0], children[1])
    if isinstance(expr, BvCast):
        return BvCast(expr.op, children[0], expr.new_width)
    if isinstance(expr, BvIte):
        return BvIte(children[0], children[1], children[2])
    if isinstance(expr, ForConcat):
        return ForConcat(expr.var, expr.count, children[0])
    if isinstance(expr, BvConcat):
        return BvConcat(tuple(children))
    if children:
        raise TypeError(f"cannot reconstruct {type(expr).__name__} with children")
    return expr


def rewrite_bottom_up(expr: BvExpr, fn: Callable[[BvExpr], BvExpr]) -> BvExpr:
    """Apply ``fn`` to every node, children first.

    ``fn`` receives a node whose children are already rewritten and returns
    a replacement (or the node unchanged).
    """
    children = [rewrite_bottom_up(c, fn) for c in expr.children()]
    if children or expr.children():
        expr = reconstruct(expr, children)
    return fn(expr)
