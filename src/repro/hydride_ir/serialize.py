"""Structural (de)serialization of Hydride IR expressions.

The offline IR-generation artifact (:mod:`repro.irgen`) persists the
parameterized semantics of every instruction — full :class:`BvExpr`
bodies over symbolic :class:`IndexExpr` widths — so that a warm process
can reload equivalence classes without re-parsing any vendor pseudocode.

The encoding is compact JSON: index expressions are plain integers
(``IConst``, by far the most common node) or small tagged lists;
bitvector nodes are tagged lists whose first element selects the
constructor.  Encoding and decoding are exact inverses on canonical IR,
which the artifact round-trip tests assert.
"""

from __future__ import annotations

from typing import Any

from repro.hydride_ir.ast import (
    BvBinOp,
    BvBroadcastConst,
    BvCast,
    BvCmp,
    BvConcat,
    BvConst,
    BvExpr,
    BvExtract,
    BvIte,
    BvUnOp,
    BvVar,
    ForConcat,
    Input,
)
from repro.hydride_ir.indexexpr import IBin, IConst, IndexExpr, IParam, IVar


class IrSerializeError(ValueError):
    """An IR node cannot be encoded or a payload cannot be decoded."""


# ----------------------------------------------------------------------
# Index expressions
# ----------------------------------------------------------------------


def index_to_obj(expr: IndexExpr) -> Any:
    if isinstance(expr, IConst):
        return expr.value
    if isinstance(expr, IParam):
        return ["p", expr.name]
    if isinstance(expr, IVar):
        return ["v", expr.name]
    if isinstance(expr, IBin):
        return [expr.op, index_to_obj(expr.left), index_to_obj(expr.right)]
    raise IrSerializeError(f"cannot serialize index node {type(expr).__name__}")


def index_from_obj(obj: Any) -> IndexExpr:
    if isinstance(obj, bool):
        raise IrSerializeError(f"invalid index payload {obj!r}")
    if isinstance(obj, int):
        return IConst(obj)
    if not isinstance(obj, list) or not obj:
        raise IrSerializeError(f"invalid index payload {obj!r}")
    tag = obj[0]
    if tag == "p":
        return IParam(obj[1])
    if tag == "v":
        return IVar(obj[1])
    if tag in IBin._OPS:
        return IBin(tag, index_from_obj(obj[1]), index_from_obj(obj[2]))
    raise IrSerializeError(f"unknown index tag {tag!r}")


# ----------------------------------------------------------------------
# Bitvector expressions
# ----------------------------------------------------------------------


def expr_to_obj(expr: BvExpr) -> Any:
    if isinstance(expr, BvVar):
        return ["V", expr.name]
    if isinstance(expr, BvConst):
        return ["C", index_to_obj(expr.value), index_to_obj(expr.width)]
    if isinstance(expr, BvBroadcastConst):
        return [
            "B",
            index_to_obj(expr.value),
            index_to_obj(expr.elem_width),
            index_to_obj(expr.num_elems),
        ]
    if isinstance(expr, BvExtract):
        return [
            "X",
            expr_to_obj(expr.src),
            index_to_obj(expr.low),
            index_to_obj(expr.width),
        ]
    if isinstance(expr, BvBinOp):
        return ["O", expr.op, expr_to_obj(expr.left), expr_to_obj(expr.right)]
    if isinstance(expr, BvUnOp):
        return ["U", expr.op, expr_to_obj(expr.operand)]
    if isinstance(expr, BvCmp):
        return ["M", expr.op, expr_to_obj(expr.left), expr_to_obj(expr.right)]
    if isinstance(expr, BvCast):
        return ["T", expr.op, expr_to_obj(expr.operand), index_to_obj(expr.new_width)]
    if isinstance(expr, BvIte):
        return [
            "I",
            expr_to_obj(expr.cond),
            expr_to_obj(expr.then_expr),
            expr_to_obj(expr.else_expr),
        ]
    if isinstance(expr, BvConcat):
        return ["K", [expr_to_obj(p) for p in expr.parts]]
    if isinstance(expr, ForConcat):
        return ["F", expr.var, index_to_obj(expr.count), expr_to_obj(expr.body)]
    raise IrSerializeError(f"cannot serialize IR node {type(expr).__name__}")


def expr_from_obj(obj: Any) -> BvExpr:
    if not isinstance(obj, list) or not obj:
        raise IrSerializeError(f"invalid IR payload {obj!r}")
    tag = obj[0]
    if tag == "V":
        return BvVar(obj[1])
    if tag == "C":
        return BvConst(index_from_obj(obj[1]), index_from_obj(obj[2]))
    if tag == "B":
        return BvBroadcastConst(
            index_from_obj(obj[1]), index_from_obj(obj[2]), index_from_obj(obj[3])
        )
    if tag == "X":
        return BvExtract(
            expr_from_obj(obj[1]), index_from_obj(obj[2]), index_from_obj(obj[3])
        )
    if tag == "O":
        return BvBinOp(obj[1], expr_from_obj(obj[2]), expr_from_obj(obj[3]))
    if tag == "U":
        return BvUnOp(obj[1], expr_from_obj(obj[2]))
    if tag == "M":
        return BvCmp(obj[1], expr_from_obj(obj[2]), expr_from_obj(obj[3]))
    if tag == "T":
        return BvCast(obj[1], expr_from_obj(obj[2]), index_from_obj(obj[3]))
    if tag == "I":
        return BvIte(
            expr_from_obj(obj[1]), expr_from_obj(obj[2]), expr_from_obj(obj[3])
        )
    if tag == "K":
        return BvConcat(tuple(expr_from_obj(p) for p in obj[1]))
    if tag == "F":
        return ForConcat(obj[1], index_from_obj(obj[2]), expr_from_obj(obj[3]))
    raise IrSerializeError(f"unknown IR tag {tag!r}")


# ----------------------------------------------------------------------
# Declared inputs
# ----------------------------------------------------------------------


def input_to_obj(inp: Input) -> Any:
    return [inp.name, index_to_obj(inp.width), 1 if inp.is_immediate else 0]


def input_from_obj(obj: Any) -> Input:
    if not isinstance(obj, list) or len(obj) != 3:
        raise IrSerializeError(f"invalid input payload {obj!r}")
    return Input(obj[0], index_from_obj(obj[1]), bool(obj[2]))
