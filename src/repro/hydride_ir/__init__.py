"""Hydride IR: the program representation for instruction semantics.

The paper defines Hydride IR (Fig. 4) as a solver-aided DSL in which the
operational semantics of every machine instruction is expressed: an outer
loop over register lanes, an inner loop over elements within a lane, and a
body of bitvector operations over extracted slices.

Here the IR is a pure-Python expression language with two sorts:

* **index expressions** (:mod:`repro.hydride_ir.indexexpr`) — integer
  arithmetic over numeric parameters and loop iterators; these are what
  the Similarity Checking Engine abstracts into symbolic parameters,
* **bitvector expressions** (:mod:`repro.hydride_ir.ast`) — the value
  computation, including the ``ForConcat`` lane/element loops.

A :class:`~repro.hydride_ir.ast.SemanticsFunction` packages inputs,
numeric parameters and a body; it can be interpreted directly
(:mod:`repro.hydride_ir.interp`) or lowered to a symbolic
:class:`repro.smt.Term` for solver queries.
"""

from repro.hydride_ir.indexexpr import IndexExpr, iconst, iparam, ivar
from repro.hydride_ir.ast import (
    BvBinOp,
    BvBroadcastConst,
    BvCast,
    BvCmp,
    BvConcat,
    BvConst,
    BvExpr,
    BvExtract,
    BvIte,
    BvUnOp,
    BvVar,
    ForConcat,
    Input,
    SemanticsFunction,
)
from repro.hydride_ir.interp import interpret, to_term
from repro.hydride_ir.printer import pretty

__all__ = [
    "IndexExpr",
    "iconst",
    "iparam",
    "ivar",
    "BvBinOp",
    "BvBroadcastConst",
    "BvCast",
    "BvCmp",
    "BvConcat",
    "BvConst",
    "BvExpr",
    "BvExtract",
    "BvIte",
    "BvUnOp",
    "BvVar",
    "ForConcat",
    "Input",
    "SemanticsFunction",
    "interpret",
    "to_term",
    "pretty",
]
