"""Solver substrate: symbolic bitvectors, bit-blasting, and CDCL SAT.

The paper uses Rosette (backed by an SMT solver) to verify instruction
equivalence and to drive CEGIS.  No SMT solver is available offline, so
this package implements the slice of QF_BV that Hydride needs:

* :mod:`repro.smt.terms` — symbolic bitvector expression language,
* :mod:`repro.smt.eval` — concrete evaluation of terms,
* :mod:`repro.smt.simplify` — constant folding and algebraic identities,
* :mod:`repro.smt.cnf` / :mod:`repro.smt.sat` — CNF formulas and a CDCL
  SAT solver with two-watched-literal propagation,
* :mod:`repro.smt.bitblast` — Tseitin translation of terms to CNF,
* :mod:`repro.smt.solver` — the high-level equivalence/model interface
  (structural fast path, exhaustive enumeration for tiny input spaces,
  bit-blasting otherwise, randomized fallback for unsupported operators).

The paper's key tractability trick — scaling vectors down before solving —
is exactly what makes a from-scratch solver adequate here: scaled queries
have small bitwidths, where bit-blasting plus CDCL is a complete decision
procedure.
"""

from repro.smt.terms import App, Const, Term, Var, const, var
from repro.smt.eval import evaluate
from repro.smt.solver import (
    CheckResult,
    EquivalenceChecker,
    check_equivalence,
    find_model,
)

__all__ = [
    "App",
    "Const",
    "Term",
    "Var",
    "const",
    "var",
    "evaluate",
    "CheckResult",
    "EquivalenceChecker",
    "check_equivalence",
    "find_model",
]
