"""CNF formula container with Tseitin gate helpers.

Literals use the DIMACS convention: a positive integer ``v`` is variable
``v``, ``-v`` is its negation.  Variable 0 is never used.  Two reserved
variables encode the constants true/false so gate encodings never need
special cases for constant inputs.
"""

from __future__ import annotations


class CnfBuilder:
    """Accumulates clauses and allocates fresh variables."""

    def __init__(self) -> None:
        self._next_var = 1
        self.clauses: list[tuple[int, ...]] = []
        # Reserved constant-true variable; its clause pins it true, and
        # ``-self.true_lit`` serves as constant false.
        self.true_lit = self.new_var()
        self.add_clause([self.true_lit])

    @property
    def false_lit(self) -> int:
        return -self.true_lit

    @property
    def num_vars(self) -> int:
        return self._next_var - 1

    def new_var(self) -> int:
        v = self._next_var
        self._next_var += 1
        return v

    def new_vars(self, count: int) -> list[int]:
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: list[int]) -> None:
        self.clauses.append(tuple(lits))

    # ------------------------------------------------------------------
    # Gates.  Each returns the output literal.
    # ------------------------------------------------------------------

    def gate_and(self, a: int, b: int) -> int:
        if a == self.false_lit or b == self.false_lit:
            return self.false_lit
        if a == self.true_lit:
            return b
        if b == self.true_lit:
            return a
        if a == b:
            return a
        if a == -b:
            return self.false_lit
        out = self.new_var()
        self.add_clause([-out, a])
        self.add_clause([-out, b])
        self.add_clause([out, -a, -b])
        return out

    def gate_or(self, a: int, b: int) -> int:
        return -self.gate_and(-a, -b)

    def gate_xor(self, a: int, b: int) -> int:
        if a == self.false_lit:
            return b
        if b == self.false_lit:
            return a
        if a == self.true_lit:
            return -b
        if b == self.true_lit:
            return -a
        if a == b:
            return self.false_lit
        if a == -b:
            return self.true_lit
        out = self.new_var()
        self.add_clause([-out, a, b])
        self.add_clause([-out, -a, -b])
        self.add_clause([out, -a, b])
        self.add_clause([out, a, -b])
        return out

    def gate_mux(self, sel: int, when_true: int, when_false: int) -> int:
        """``sel ? when_true : when_false``."""
        if sel == self.true_lit:
            return when_true
        if sel == self.false_lit:
            return when_false
        if when_true == when_false:
            return when_true
        out = self.new_var()
        self.add_clause([-out, -sel, when_true])
        self.add_clause([-out, sel, when_false])
        self.add_clause([out, -sel, -when_true])
        self.add_clause([out, sel, -when_false])
        return out

    def gate_full_adder(self, a: int, b: int, carry_in: int) -> tuple[int, int]:
        """Returns ``(sum, carry_out)``."""
        partial = self.gate_xor(a, b)
        total = self.gate_xor(partial, carry_in)
        carry_out = self.gate_or(self.gate_and(a, b), self.gate_and(partial, carry_in))
        return total, carry_out

    def assert_lit(self, lit: int) -> None:
        self.add_clause([lit])

    def gate_big_or(self, lits: list[int]) -> int:
        out = self.false_lit
        for lit in lits:
            out = self.gate_or(out, lit)
        return out
