"""High-level decision interface: equivalence checking and model finding.

Strategy ladder, cheapest first — mirroring how Hydride keeps its Rosette
queries tractable:

1. *structural*: both terms normalise to the identical tree,
2. *fuzz*: a handful of random inputs finds a counterexample quickly,
3. *exhaustive*: the symbolic input space is tiny (after lane scaling it
   usually is), so enumerate it completely,
4. *sat*: bit-blast ``a != b`` and run CDCL,
5. *probabilistic*: for operators with no circuit encoding (division,
   popcount), a large randomized battery; documented as incomplete.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from repro.bitvector.bv import BitVector
from repro.perf import global_counters, phase_timer
from repro.smt.bitblast import BitBlaster, NotBitblastable
from repro.smt.eval import evaluate
from repro.smt.sat import CdclSolver, SatResult, SolverBudgetExceeded, SolverConfig
from repro.smt.simplify import simplify
from repro.smt.terms import App, Term, apply_op

# Input spaces up to this many total bits are enumerated exhaustively.
EXHAUSTIVE_BIT_LIMIT = 14

# Random samples tried before falling through to heavier methods.
QUICK_FUZZ_SAMPLES = 48
PROBABILISTIC_SAMPLES = 512


class SolverTimeout(Exception):
    """A query exceeded its conflict budget."""


@dataclass
class CheckResult:
    """Outcome of an equivalence query."""

    equivalent: bool
    counterexample: dict[str, BitVector] | None
    method: str

    def __bool__(self) -> bool:
        return self.equivalent


def _merged_variables(a: Term, b: Term) -> dict[str, int]:
    variables = dict(a.variables())
    for name, width in b.variables().items():
        if variables.setdefault(name, width) != width:
            raise ValueError(f"variable {name!r} has conflicting widths")
    return variables


def _random_env(
    variables: dict[str, int], rng: random.Random
) -> dict[str, BitVector]:
    env: dict[str, BitVector] = {}
    for name, width in variables.items():
        # Mix uniform values with boundary-ish values: all-zeros, all-ones,
        # sign-boundary patterns shake out saturation/overflow bugs.
        choice = rng.randrange(6)
        if choice == 0:
            value = 0
        elif choice == 1:
            value = (1 << width) - 1
        elif choice == 2:
            value = 1 << (width - 1)
        else:
            value = rng.getrandbits(width)
        env[name] = BitVector(value, width)
    return env


class IncrementalSatContext:
    """One persistent blaster/solver pair amortised over many queries.

    CEGIS verifies a stream of candidates against a single specification.
    The spec's circuit only gets blasted once (the blaster's structural
    cache is keyed on term uids), and the solver keeps its clause database
    and learned clauses between queries — each per-candidate assertion is
    guarded by a fresh *activation literal* passed as an assumption, then
    retired with a unit clause so it can never constrain later queries.
    """

    def __init__(
        self,
        max_vars: int = 400_000,
        config: SolverConfig | None = None,
    ) -> None:
        self.blaster = BitBlaster()
        self.solver = CdclSolver(config=config)
        self.max_vars = max_vars
        self.queries = 0
        # How many of the builder's clauses have been fed to the solver.
        self._fed = 0
        # Variable-count boundary of the primed specification's blast
        # cone (0 = never primed).  Clauses whose variables all lie in
        # the cone are consequences of the spec circuit alone and can be
        # transferred to any context primed with the same term.
        self.spec_cone_vars = 0
        self._imported = 0

    def oversized(self) -> bool:
        """True once retired queries have bloated the database enough that
        starting over is cheaper than dragging the dead weight along."""
        return self.blaster.cnf.num_vars > self.max_vars

    def _sync(self) -> None:
        cnf = self.blaster.cnf
        self.solver.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses[self._fed :]:
            self.solver.add_clause(clause)
        self._fed = len(cnf.clauses)

    # -- cross-window clause reuse --------------------------------------

    def prime(self, spec: Term) -> int:
        """Blast ``spec`` before anything else touches the builder.

        Priming pins the spec's Tseitin variables to the prefix
        ``1..spec_cone_vars`` of the variable space (blasting is
        deterministic over a fresh blaster), which makes learned clauses
        over that prefix portable between contexts primed with the same
        term.  Returns the cone boundary.
        """
        if self.queries or self._fed:
            raise RuntimeError("prime() must precede all queries")
        with phase_timer("blast"):
            self.blaster.blast(spec)
            self._sync()
        self.spec_cone_vars = self.blaster.cnf.num_vars
        return self.spec_cone_vars

    def export_learned(self, limit: int = 256) -> list[tuple[int, ...]]:
        """Learned clauses confined to the primed spec's blast cone.

        Candidate circuits are plain Tseitin definitions and every
        per-candidate assertion is guarded by an activation literal, so
        any model of the spec-cone clauses extends to the full database;
        a learned clause over cone variables is therefore entailed by the
        spec circuit alone and sound to preload into a sibling context.
        Best clauses first (low LBD, then short).
        """
        if not self.spec_cone_vars:
            return []
        cone = self.spec_cone_vars
        eligible = [
            (lbd, clause)
            for clause, lbd in self.solver.learned_clauses()
            if all(abs(lit) <= cone for lit in clause)
        ]
        eligible.sort(key=lambda item: (item[0], len(item[1])))
        return [clause for _, clause in eligible[:limit]]

    def import_clauses(self, clauses: list[tuple[int, ...]]) -> int:
        """Preload clauses previously exported from a same-spec context."""
        if not self.spec_cone_vars:
            raise RuntimeError("import_clauses() requires a primed context")
        cone = self.spec_cone_vars
        added = 0
        for clause in clauses:
            if not clause or any(abs(lit) > cone for lit in clause):
                continue  # stale entry from a different blast layout
            self.solver.add_clause(list(clause))
            added += 1
        self._imported += added
        return added

    def check_not_equal(
        self, a: Term, b: Term, max_conflicts: int | None = None
    ) -> SatResult:
        """SAT iff some input makes ``a`` and ``b`` differ.

        Raises :class:`NotBitblastable` / :class:`SolverBudgetExceeded`
        like the one-shot path; the context stays usable afterwards.
        """
        perf = global_counters()
        with phase_timer("blast"):
            bits_a = self.blaster.blast(a)
            bits_b = self.blaster.blast(b)
            cnf = self.blaster.cnf
            diff = [cnf.gate_xor(x, y) for x, y in zip(bits_a, bits_b)]
            any_diff = cnf.gate_big_or(diff)
            activation = cnf.new_var()
            cnf.add_clause([-activation, any_diff])
            self._sync()
        self.queries += 1
        perf.incremental_queries += 1
        perf.sat_queries += 1
        learned_before = self.solver.learned_count
        restarts_before = self.solver.restarts
        deleted_before = self.solver.clauses_deleted
        try:
            with phase_timer("sat"):
                result = self.solver.solve(
                    max_conflicts, assumptions=(activation,)
                )
        finally:
            # Retire the guard: later queries must not inherit this one's
            # difference assertion.
            self.solver.add_clause([-activation])
            perf.learned_clauses_retained += (
                self.solver.learned_count - learned_before
            )
            perf.sat_restarts += self.solver.restarts - restarts_before
            perf.sat_clauses_deleted += (
                self.solver.clauses_deleted - deleted_before
            )
        perf.sat_conflicts += result.conflicts
        return result


class EquivalenceChecker:
    """Reusable checker carrying an RNG and a conflict budget."""

    def __init__(
        self,
        seed: int = 0,
        max_conflicts: int | None = 200_000,
        exhaustive_bit_limit: int = EXHAUSTIVE_BIT_LIMIT,
        sat_node_limit: int = 6_000,
        probabilistic_samples: int = PROBABILISTIC_SAMPLES,
        incremental: bool = False,
        solver_config: SolverConfig | None = None,
    ) -> None:
        self.rng = random.Random(seed)
        self.max_conflicts = max_conflicts
        self.exhaustive_bit_limit = exhaustive_bit_limit
        self.probabilistic_samples = probabilistic_samples
        # Terms larger than this skip bit-blasting (the CNF would dwarf the
        # budget) and rely on the randomized battery instead.
        self.sat_node_limit = sat_node_limit
        # Share one solver context across this checker's SAT queries.
        self.incremental = incremental
        self.solver_config = solver_config
        self._context: IncrementalSatContext | None = None
        # Cross-window reuse: the spec term to prime new contexts with
        # and the clause suite to preload into them (re-applied whenever
        # an oversized context is replaced).
        self._prime_term: Term | None = None
        self._preload: list[tuple[int, ...]] = []
        self._preload_cone = 0
        self.clauses_preloaded = 0
        self.stats = {"structural": 0, "fuzz": 0, "exhaustive": 0, "sat": 0, "probabilistic": 0}

    # ------------------------------------------------------------------

    def prime(
        self,
        spec: Term,
        clauses: list[tuple[int, ...]] | None = None,
        cone_vars: int = 0,
    ) -> None:
        """Declare the spec every SAT query will verify against.

        Incremental contexts created from now on blast ``spec`` first —
        pinning its Tseitin variables to a deterministic prefix — and
        preload ``clauses`` previously exported from a same-spec run.
        ``cone_vars`` is the blast-cone boundary the clauses were
        exported under; if the fresh blast produces a different boundary
        the stored layout is stale and the whole suite is dropped.
        No-op for non-incremental checkers.
        """
        if not self.incremental:
            return
        self._prime_term = simplify(spec)
        self._preload = list(clauses or [])
        self._preload_cone = cone_vars
        self._context = None  # rebuilt (and re-primed) lazily

    def export_learned(self, limit: int = 256) -> list[tuple[int, ...]]:
        """Spec-cone learned clauses from the live context (see
        :meth:`IncrementalSatContext.export_learned`)."""
        if self._context is None:
            return []
        return self._context.export_learned(limit)

    def cone_vars(self) -> int:
        """The live context's spec blast-cone boundary (0 = none)."""
        if self._context is None:
            return 0
        return self._context.spec_cone_vars

    def _new_context(self) -> IncrementalSatContext:
        context = IncrementalSatContext(config=self.solver_config)
        if self._prime_term is not None:
            cone = context.prime(self._prime_term)
            if self._preload and self._preload_cone in (0, cone):
                self.clauses_preloaded += context.import_clauses(self._preload)
        return context

    # ------------------------------------------------------------------

    def check_equivalence(self, a: Term, b: Term) -> CheckResult:
        """Decide whether ``a`` and ``b`` agree on every input."""
        if a.width != b.width:
            return CheckResult(False, None, "width")
        sa, sb = simplify(a), simplify(b)
        if sa == sb:
            self.stats["structural"] += 1
            return CheckResult(True, None, "structural")

        variables = _merged_variables(sa, sb)

        # Quick randomized refutation.
        for _ in range(QUICK_FUZZ_SAMPLES):
            env = _random_env(variables, self.rng)
            if evaluate(sa, env).value != evaluate(sb, env).value:
                self.stats["fuzz"] += 1
                return CheckResult(False, env, "fuzz")

        total_bits = sum(variables.values())
        if total_bits <= self.exhaustive_bit_limit:
            self.stats["exhaustive"] += 1
            return self._exhaustive(sa, sb, variables)

        if sa.size() + sb.size() <= self.sat_node_limit and not (
            _has_wide_multiply(sa) or _has_wide_multiply(sb)
        ):
            try:
                result = self._sat_check(sa, sb, variables)
                self.stats["sat"] += 1
                return result
            except NotBitblastable:
                pass

        for _ in range(self.probabilistic_samples):
            env = _random_env(variables, self.rng)
            if evaluate(sa, env).value != evaluate(sb, env).value:
                self.stats["probabilistic"] += 1
                return CheckResult(False, env, "probabilistic")
        self.stats["probabilistic"] += 1
        return CheckResult(True, None, "probabilistic")

    # ------------------------------------------------------------------

    def _exhaustive(
        self, a: Term, b: Term, variables: dict[str, int]
    ) -> CheckResult:
        names = sorted(variables)
        spaces = [range(1 << variables[n]) for n in names]
        for values in itertools.product(*spaces):
            env = {
                name: BitVector(value, variables[name])
                for name, value in zip(names, values)
            }
            if evaluate(a, env).value != evaluate(b, env).value:
                return CheckResult(False, env, "exhaustive")
        return CheckResult(True, None, "exhaustive")

    def _sat_check(
        self, a: Term, b: Term, variables: dict[str, int]
    ) -> CheckResult:
        if self.incremental:
            if self._context is None or self._context.oversized():
                self._context = self._new_context()
            try:
                result = self._context.check_not_equal(a, b, self.max_conflicts)
            except SolverBudgetExceeded as exc:
                raise SolverTimeout(str(exc)) from exc
            if not result.satisfiable:
                return CheckResult(True, None, "sat")
            env = self._model_to_env(result.model, self._context.blaster, variables)
            return CheckResult(False, env, "sat")

        perf = global_counters()
        with phase_timer("blast"):
            blaster = BitBlaster()
            bits_a = blaster.blast(a)
            bits_b = blaster.blast(b)
            # Assert that some output bit differs.
            diff_lits = [blaster.cnf.gate_xor(x, y) for x, y in zip(bits_a, bits_b)]
            blaster.cnf.assert_lit(blaster.cnf.gate_big_or(diff_lits))
        solver = CdclSolver(
            blaster.cnf.num_vars, blaster.cnf.clauses,
            config=self.solver_config,
        )
        perf.fresh_queries += 1
        perf.sat_queries += 1
        try:
            with phase_timer("sat"):
                result = solver.solve(self.max_conflicts)
        except SolverBudgetExceeded as exc:
            raise SolverTimeout(str(exc)) from exc
        perf.sat_conflicts += result.conflicts
        if not result.satisfiable:
            return CheckResult(True, None, "sat")
        env = self._model_to_env(result.model, blaster, variables)
        return CheckResult(False, env, "sat")

    @staticmethod
    def _model_to_env(
        model: dict[int, bool], blaster: BitBlaster, variables: dict[str, int]
    ) -> dict[str, BitVector]:
        env: dict[str, BitVector] = {}
        for name, width in variables.items():
            bits = blaster.var_bits.get(name)
            value = 0
            if bits is not None:
                for i, lit in enumerate(bits):
                    assigned = model.get(abs(lit), False)
                    bit = assigned if lit > 0 else not assigned
                    if bit:
                        value |= 1 << i
            env[name] = BitVector(value, width)
        return env

    # ------------------------------------------------------------------

    def find_model(self, constraint: Term) -> dict[str, BitVector] | None:
        """Find variable values making a 1-bit ``constraint`` true, or None."""
        if constraint.width != 1:
            raise ValueError("constraint must be a 1-bit term")
        constraint = simplify(constraint)
        variables = constraint.variables()
        total_bits = sum(variables.values())
        if total_bits <= self.exhaustive_bit_limit:
            names = sorted(variables)
            spaces = [range(1 << variables[n]) for n in names]
            for values in itertools.product(*spaces):
                env = {
                    name: BitVector(value, variables[name])
                    for name, value in zip(names, values)
                }
                if evaluate(constraint, env).value:
                    return env
            return None
        blaster = BitBlaster()
        bits = blaster.blast(constraint)
        blaster.cnf.assert_lit(bits[0])
        solver = CdclSolver(blaster.cnf.num_vars, blaster.cnf.clauses)
        try:
            result = solver.solve(self.max_conflicts)
        except SolverBudgetExceeded as exc:
            raise SolverTimeout(str(exc)) from exc
        if not result.satisfiable:
            return None
        return self._model_to_env(result.model, blaster, variables)


_DEFAULT_CHECKER = EquivalenceChecker()


def check_equivalence(a: Term, b: Term) -> CheckResult:
    """Module-level convenience using a shared default checker."""
    return _DEFAULT_CHECKER.check_equivalence(a, b)


def find_model(constraint: Term) -> dict[str, BitVector] | None:
    return _DEFAULT_CHECKER.find_model(constraint)


# Multiplier circuits beyond this operand width produce CNF the CDCL
# budget cannot usefully chew through; such queries go to the battery.
SAT_MULTIPLY_WIDTH_LIMIT = 12


def _has_wide_multiply(term: Term) -> bool:
    for node in term.walk():
        if isinstance(node, App) and node.op == "bvmul":
            if node.width > SAT_MULTIPLY_WIDTH_LIMIT:
                return True
    return False


def not_equal(a: Term, b: Term) -> Term:
    """A 1-bit term that is true iff ``a != b`` (for model queries)."""
    return apply_op("bvne", [a, b])
