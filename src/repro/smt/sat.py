"""A CDCL SAT solver with two-watched-literal propagation.

This is the decision procedure under every symbolic query in the
reproduction: first-UIP clause learning, VSIDS-style activity decay,
geometric restarts, and non-chronological backjumping.  It is deliberately
compact — the paper's tractability tricks (lane scaling) keep our CNF
instances small enough that a clean Python CDCL suffices.

The solver is *incremental*: clauses and variables may be added between
``solve()`` calls, and ``solve(assumptions=...)`` decides satisfiability
under a set of assumption literals without asserting them permanently.
Learned clauses and level-0 implications are retained across calls (they
are consequences of the clause database alone, so they stay valid no
matter which assumptions the next query carries), which is what makes
repeated CEGIS verification queries against one specification cheap: the
solver re-learns nothing about the shared circuit.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field


@dataclass
class SatResult:
    satisfiable: bool
    # Model maps variable -> bool for satisfiable results.
    model: dict[int, bool] = field(default_factory=dict)
    # Conflicts spent answering this query.
    conflicts: int = 0


class CdclSolver:
    """CDCL over a growable clause database.

    One-shot use is unchanged: ``CdclSolver(n, clauses).solve()``.
    Incremental use interleaves :meth:`ensure_vars` / :meth:`add_clause`
    with ``solve(assumptions=[...])`` calls on one instance.
    """

    def __init__(
        self, num_vars: int = 0, clauses: Iterable[Sequence[int]] = ()
    ) -> None:
        self.num_vars = 0
        # assignment[v]: None unassigned, else bool.
        self.assignment: list[bool | None] = [None]
        self.level: list[int] = [0]
        self.reason: list[list[int] | None] = [None]
        self.activity: list[float] = [0.0]
        self.trail: list[int] = []
        self.activity_inc = 1.0
        self.clauses: list[list[int]] = []
        self.watches: dict[int, list[list[int]]] = {}
        self._empty_clause = False
        self._units: list[int] = []
        self._prop_head = 0
        # Permanently unsatisfiable (conflict at level 0, no assumptions).
        self._unsat = False
        # Cumulative accounting across all solve() calls.
        self.learned_count = 0
        self.total_conflicts = 0
        self.ensure_vars(num_vars)
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # Clause database
    # ------------------------------------------------------------------

    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable space to at least ``num_vars`` variables."""
        if num_vars <= self.num_vars:
            return
        grow = num_vars - self.num_vars
        self.assignment.extend([None] * grow)
        self.level.extend([0] * grow)
        self.reason.extend([None] * grow)
        self.activity.extend([0.0] * grow)
        self.num_vars = num_vars

    def add_clause(self, lits: Sequence[int]) -> None:
        """Add one clause; safe to call between ``solve()`` calls."""
        # Dedup literals; drop tautologies.
        seen: set[int] = set()
        unique: list[int] = []
        for lit in lits:
            if -lit in seen:
                return
            if lit not in seen:
                seen.add(lit)
                unique.append(lit)
        if not unique:
            self._empty_clause = True
            return
        top = max(abs(lit) for lit in unique)
        if top > self.num_vars:
            self.ensure_vars(top)
        if len(unique) == 1:
            self._units.append(unique[0])
            return
        self.clauses.append(unique)
        self._watch(unique[0], unique)
        self._watch(unique[1], unique)

    def _watch(self, lit: int, clause: list[int]) -> None:
        self.watches.setdefault(lit, []).append(clause)

    # ------------------------------------------------------------------
    # Assignment machinery
    # ------------------------------------------------------------------

    def _lit_value(self, lit: int) -> bool | None:
        value = self.assignment[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit: int, reason: list[int] | None, level: int) -> None:
        variable = abs(lit)
        self.assignment[variable] = lit > 0
        self.level[variable] = level
        self.reason[variable] = reason
        self.trail.append(lit)

    def _propagate(self, level: int) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or None."""
        head = self._prop_head
        while head < len(self.trail):
            lit = self.trail[head]
            head += 1
            falsified = -lit
            watch_list = self.watches.get(falsified)
            if not watch_list:
                continue
            new_watch_list: list[list[int]] = []
            conflict: list[int] | None = None
            for clause in watch_list:
                if conflict is not None:
                    new_watch_list.append(clause)
                    continue
                # Ensure the falsified literal is in slot 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) is True:
                    new_watch_list.append(clause)
                    continue
                # Look for a replacement watch.
                replaced = False
                for slot in range(2, len(clause)):
                    if self._lit_value(clause[slot]) is not False:
                        clause[1], clause[slot] = clause[slot], clause[1]
                        self._watch(clause[1], clause)
                        replaced = True
                        break
                if replaced:
                    continue
                new_watch_list.append(clause)
                if self._lit_value(first) is False:
                    conflict = clause
                else:
                    self._enqueue(first, clause, level)
            self.watches[falsified] = new_watch_list
            if conflict is not None:
                self._prop_head = head
                return conflict
        self._prop_head = head
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _bump(self, variable: int) -> None:
        self.activity[variable] += self.activity_inc
        if self.activity[variable] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.activity_inc *= 1e-100

    def _analyze(self, conflict: list[int], level: int) -> tuple[list[int], int]:
        learned: list[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        clause: list[int] | None = conflict
        trail_index = len(self.trail) - 1
        while True:
            assert clause is not None
            for clause_lit in clause:
                variable = abs(clause_lit)
                if clause_lit == lit or seen[variable]:
                    continue
                seen[variable] = True
                self._bump(variable)
                if self.level[variable] == level:
                    counter += 1
                elif self.level[variable] > 0:
                    learned.append(clause_lit)
            # Walk the trail backwards to the next seen literal.
            while not seen[abs(self.trail[trail_index])]:
                trail_index -= 1
            lit = self.trail[trail_index]
            trail_index -= 1
            counter -= 1
            if counter == 0:
                break
            clause = self.reason[abs(lit)]
        learned.insert(0, -lit)
        if len(learned) == 1:
            return learned, 0
        backjump = max(self.level[abs(l)] for l in learned[1:])
        return learned, backjump

    def _backtrack(self, target_level: int) -> None:
        while self.trail and self.level[abs(self.trail[-1])] > target_level:
            lit = self.trail.pop()
            variable = abs(lit)
            self.assignment[variable] = None
            self.reason[variable] = None
        self._prop_head = len(self.trail)

    def _pick_branch(self) -> int:
        best_var = 0
        best_activity = -1.0
        for variable in range(1, self.num_vars + 1):
            if self.assignment[variable] is None and self.activity[variable] > best_activity:
                best_activity = self.activity[variable]
                best_var = variable
        return best_var

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def solve(
        self,
        max_conflicts: int | None = None,
        assumptions: Sequence[int] = (),
    ) -> SatResult:
        """Decide the database, optionally under assumption literals.

        Without assumptions the answer is permanent; with assumptions an
        UNSAT answer only refutes the database *plus the assumptions*, and
        the solver stays usable (all learned clauses are assumption-free
        consequences of the database).
        """
        if self._empty_clause or self._unsat:
            return SatResult(False)
        if assumptions:
            self.ensure_vars(max(abs(lit) for lit in assumptions))
        # Retract everything above level 0; level-0 implications persist.
        self._backtrack(0)
        # Re-run propagation over the whole level-0 trail so that clauses
        # added since the last call see the retained assignments.
        self._prop_head = 0
        for lit in self._units:
            current = self._lit_value(lit)
            if current is False:
                self._unsat = True
                return SatResult(False)
            if current is None:
                self._enqueue(lit, None, 0)
        if self._propagate(0) is not None:
            self._unsat = True
            return SatResult(False)

        level = 0
        conflicts = 0
        restart_limit = 100
        while True:
            # Decide the next assumption first; branch freely only once
            # every assumption is satisfied by the current assignment.
            branch_lit = 0
            failed_assumption = False
            for lit in assumptions:
                value = self._lit_value(lit)
                if value is False:
                    failed_assumption = True
                    break
                if value is None:
                    branch_lit = lit
                    break
            if failed_assumption:
                self.total_conflicts += conflicts
                return SatResult(False, conflicts=conflicts)
            if branch_lit == 0:
                branch_var = self._pick_branch()
                if branch_var == 0:
                    model = {
                        v: bool(self.assignment[v])
                        for v in range(1, self.num_vars + 1)
                    }
                    self.total_conflicts += conflicts
                    return SatResult(True, model, conflicts=conflicts)
                branch_lit = branch_var
            level += 1
            self._enqueue(branch_lit, None, level)
            while True:
                conflict = self._propagate(level)
                if conflict is None:
                    break
                conflicts += 1
                if max_conflicts is not None and conflicts > max_conflicts:
                    self.total_conflicts += conflicts
                    # Leave the solver reusable after a budget blowout.
                    self._backtrack(0)
                    raise SolverBudgetExceeded(conflicts)
                if level == 0:
                    self._unsat = True
                    self.total_conflicts += conflicts
                    return SatResult(False, conflicts=conflicts)
                learned, backjump = self._analyze(conflict, level)
                self._backtrack(backjump)
                level = backjump
                self.activity_inc *= 1.05
                self.learned_count += 1
                if len(learned) == 1:
                    self._units.append(learned[0])
                    if self._lit_value(learned[0]) is False:
                        # Contradicts a retained level-0 implication only
                        # when the database itself is unsatisfiable.
                        if self.level[abs(learned[0])] == 0:
                            self._unsat = True
                            self.total_conflicts += conflicts
                            return SatResult(False, conflicts=conflicts)
                        self._backtrack(0)
                        level = 0
                    if self._lit_value(learned[0]) is None:
                        self._enqueue(learned[0], None, 0)
                else:
                    self.clauses.append(learned)
                    self._watch(learned[0], learned)
                    self._watch(learned[1], learned)
                    self._enqueue(learned[0], learned, level)
                if conflicts >= restart_limit and level > 0:
                    restart_limit = int(restart_limit * 1.5)
                    self._backtrack(0)
                    level = 0
                    break


class SolverBudgetExceeded(Exception):
    """Raised when a query exceeds its conflict budget (treated as timeout)."""

    def __init__(self, conflicts: int) -> None:
        super().__init__(f"SAT query exceeded {conflicts} conflicts")
        self.conflicts = conflicts


def solve_cnf(
    num_vars: int, clauses: list[tuple[int, ...]], max_conflicts: int | None = None
) -> SatResult:
    """Convenience one-shot entry point."""
    return CdclSolver(num_vars, clauses).solve(max_conflicts)
