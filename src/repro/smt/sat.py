"""A CDCL SAT solver with two-watched-literal propagation.

This is the decision procedure under every symbolic query in the
reproduction: first-UIP clause learning, VSIDS-style activity with
configurable decay, Luby-sequence (or legacy geometric) restarts,
LBD-based learned-clause database reduction, and non-chronological
backjumping.  It is deliberately compact — the paper's tractability
tricks (lane scaling) keep our CNF instances small enough that a clean
Python CDCL suffices.

The solver is *incremental*: clauses and variables may be added between
``solve()`` calls, and ``solve(assumptions=...)`` decides satisfiability
under a set of assumption literals without asserting them permanently.
Learned clauses and level-0 implications are retained across calls (they
are consequences of the clause database alone, so they stay valid no
matter which assumptions the next query carries), which is what makes
repeated CEGIS verification queries against one specification cheap: the
solver re-learns nothing about the shared circuit.

Heuristic behaviour is captured by :class:`SolverConfig` so the
portfolio layer can race differently-configured solvers over one
problem; :meth:`SolverConfig.legacy` reproduces the exact pre-upgrade
behaviour (geometric restarts on the total-conflict count, no clause
deletion, the old implicit 1.05 activity ramp) for A/B audits.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field


def luby(i: int) -> int:
    """The ``i``-th element (1-indexed) of the Luby restart sequence:
    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...

    The sequence is self-similar: after each power-of-two block the next
    element doubles the block's maximum, which gives restarts the
    log-optimal worst case for Las Vegas algorithms (Luby et al. 1993).
    """
    if i < 1:
        raise ValueError("luby sequence is 1-indexed")
    while True:
        # Smallest complete block (size 2^k - 1) containing i.
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        # Interior of the block: self-similar prefix of size 2^(k-1) - 1.
        i -= (1 << (k - 1)) - 1


@dataclass(frozen=True)
class SolverConfig:
    """Heuristic knobs for one :class:`CdclSolver` instance.

    The defaults are the modern core (Luby restarts, VSIDS decay, LBD
    clause-database reduction); :meth:`legacy` pins every knob to the
    pre-upgrade solver so the two can be raced and diffed.
    """

    # Per-conflict VSIDS decay: the activity increment grows by
    # ``1 / var_decay`` after every conflict, so recently-bumped
    # variables dominate older ones.
    var_decay: float = 0.95
    # Restart policy: "luby" (unit-scaled Luby sequence on the
    # conflicts-since-restart count), "geometric" (legacy: total-conflict
    # thresholds growing by ``restart_growth``), or "none".
    restart: str = "luby"
    luby_unit: int = 100
    restart_base: int = 100
    restart_growth: float = 1.5
    # LBD-based learned-clause DB reduction: when the live learned set
    # exceeds a growing threshold (``reduce_interval`` more clauses per
    # reduction), the worst ``reduce_fraction`` of deletable clauses is
    # unlinked.  Glue clauses (LBD <= reduce_keep_lbd) and clauses locked
    # as the reason of a current assignment are never deleted.
    reduce_db: bool = True
    reduce_interval: int = 2_000
    reduce_keep_lbd: int = 2
    reduce_fraction: float = 0.5
    # Portfolio diversification: a seeded RNG occasionally (with
    # ``random_branch_freq`` probability) overrides the VSIDS pick with a
    # random unassigned variable.  None disables the perturbation.
    branch_seed: int | None = None
    random_branch_freq: float = 0.02

    @classmethod
    def legacy(cls) -> "SolverConfig":
        """The exact pre-upgrade heuristics (PR 3 solver)."""
        return cls(
            var_decay=1.0 / 1.05,
            restart="geometric",
            reduce_db=False,
            branch_seed=None,
        )


@dataclass
class SatResult:
    satisfiable: bool
    # Model maps variable -> bool for satisfiable results.
    model: dict[int, bool] = field(default_factory=dict)
    # Conflicts spent answering this query.
    conflicts: int = 0


class CdclSolver:
    """CDCL over a growable clause database.

    One-shot use is unchanged: ``CdclSolver(n, clauses).solve()``.
    Incremental use interleaves :meth:`ensure_vars` / :meth:`add_clause`
    with ``solve(assumptions=[...])`` calls on one instance.
    """

    def __init__(
        self,
        num_vars: int = 0,
        clauses: Iterable[Sequence[int]] = (),
        config: SolverConfig | None = None,
    ) -> None:
        self.config = config or SolverConfig()
        self.num_vars = 0
        # assignment[v]: None unassigned, else bool.
        self.assignment: list[bool | None] = [None]
        self.level: list[int] = [0]
        self.reason: list[list[int] | None] = [None]
        self.activity: list[float] = [0.0]
        self.trail: list[int] = []
        self.activity_inc = 1.0
        # Problem clauses (incl. incremental additions): never deleted.
        self.clauses: list[list[int]] = []
        # Learned clauses: redundant consequences, deletable at will.
        self.learned: list[list[int]] = []
        # Learned-clause metadata keyed by clause identity.
        self._lbd: dict[int, int] = {}
        self._birth: dict[int, int] = {}
        self.watches: dict[int, list[list[int]]] = {}
        self._empty_clause = False
        self._units: list[int] = []
        self._learned_units: list[int] = []
        self._prop_head = 0
        # Permanently unsatisfiable (conflict at level 0, no assumptions).
        self._unsat = False
        # Cumulative accounting across all solve() calls.
        self.learned_count = 0
        self.total_conflicts = 0
        self.restarts = 0
        self.db_reductions = 0
        self.clauses_deleted = 0
        self._reduce_limit = self.config.reduce_interval
        self._rng = (
            random.Random(self.config.branch_seed)
            if self.config.branch_seed is not None
            else None
        )
        self.ensure_vars(num_vars)
        for clause in clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # Clause database
    # ------------------------------------------------------------------

    def ensure_vars(self, num_vars: int) -> None:
        """Grow the variable space to at least ``num_vars`` variables."""
        if num_vars <= self.num_vars:
            return
        grow = num_vars - self.num_vars
        self.assignment.extend([None] * grow)
        self.level.extend([0] * grow)
        self.reason.extend([None] * grow)
        self.activity.extend([0.0] * grow)
        self.num_vars = num_vars

    def add_clause(self, lits: Sequence[int]) -> None:
        """Add one clause; safe to call between ``solve()`` calls."""
        # Dedup literals; drop tautologies.
        seen: set[int] = set()
        unique: list[int] = []
        for lit in lits:
            if -lit in seen:
                return
            if lit not in seen:
                seen.add(lit)
                unique.append(lit)
        if not unique:
            self._empty_clause = True
            return
        top = max(abs(lit) for lit in unique)
        if top > self.num_vars:
            self.ensure_vars(top)
        if len(unique) == 1:
            self._units.append(unique[0])
            return
        self.clauses.append(unique)
        self._watch(unique[0], unique)
        self._watch(unique[1], unique)

    def _watch(self, lit: int, clause: list[int]) -> None:
        self.watches.setdefault(lit, []).append(clause)

    def learned_clauses(self) -> list[tuple[tuple[int, ...], int]]:
        """Live learned clauses as ``(literals, lbd)`` pairs, plus the
        learned level-0 units as singleton clauses (LBD 0).

        Every returned clause is an assumption-free consequence of the
        database — safe to feed to any solver over a superset of the same
        variable meanings (the cross-window reuse contract).
        """
        out = [((lit,), 0) for lit in self._learned_units]
        out.extend(
            (tuple(clause), self._lbd.get(id(clause), len(clause)))
            for clause in self.learned
        )
        return out

    # ------------------------------------------------------------------
    # Assignment machinery
    # ------------------------------------------------------------------

    def _lit_value(self, lit: int) -> bool | None:
        value = self.assignment[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit: int, reason: list[int] | None, level: int) -> None:
        variable = abs(lit)
        self.assignment[variable] = lit > 0
        self.level[variable] = level
        self.reason[variable] = reason
        self.trail.append(lit)

    def _propagate(self, level: int) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or None."""
        head = self._prop_head
        while head < len(self.trail):
            lit = self.trail[head]
            head += 1
            falsified = -lit
            watch_list = self.watches.get(falsified)
            if not watch_list:
                continue
            new_watch_list: list[list[int]] = []
            conflict: list[int] | None = None
            for clause in watch_list:
                if conflict is not None:
                    new_watch_list.append(clause)
                    continue
                # Ensure the falsified literal is in slot 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) is True:
                    new_watch_list.append(clause)
                    continue
                # Look for a replacement watch.
                replaced = False
                for slot in range(2, len(clause)):
                    if self._lit_value(clause[slot]) is not False:
                        clause[1], clause[slot] = clause[slot], clause[1]
                        self._watch(clause[1], clause)
                        replaced = True
                        break
                if replaced:
                    continue
                new_watch_list.append(clause)
                if self._lit_value(first) is False:
                    conflict = clause
                else:
                    self._enqueue(first, clause, level)
            self.watches[falsified] = new_watch_list
            if conflict is not None:
                self._prop_head = head
                return conflict
        self._prop_head = head
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _bump(self, variable: int) -> None:
        self.activity[variable] += self.activity_inc
        if self.activity[variable] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.activity_inc *= 1e-100

    def _decay_activity(self) -> None:
        """One conflict's worth of VSIDS decay (increment growth)."""
        self.activity_inc /= self.config.var_decay

    def _analyze(self, conflict: list[int], level: int) -> tuple[list[int], int]:
        learned: list[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        clause: list[int] | None = conflict
        trail_index = len(self.trail) - 1
        while True:
            assert clause is not None
            for clause_lit in clause:
                variable = abs(clause_lit)
                if clause_lit == lit or seen[variable]:
                    continue
                seen[variable] = True
                self._bump(variable)
                if self.level[variable] == level:
                    counter += 1
                elif self.level[variable] > 0:
                    learned.append(clause_lit)
            # Walk the trail backwards to the next seen literal.
            while not seen[abs(self.trail[trail_index])]:
                trail_index -= 1
            lit = self.trail[trail_index]
            trail_index -= 1
            counter -= 1
            if counter == 0:
                break
            clause = self.reason[abs(lit)]
        learned.insert(0, -lit)
        if len(learned) == 1:
            return learned, 0
        backjump = max(self.level[abs(l)] for l in learned[1:])
        return learned, backjump

    def _clause_lbd(self, clause: list[int]) -> int:
        """Literal block distance: distinct decision levels in the clause."""
        return len(
            {self.level[abs(lit)] for lit in clause if self.level[abs(lit)] > 0}
        )

    def _backtrack(self, target_level: int) -> None:
        while self.trail and self.level[abs(self.trail[-1])] > target_level:
            lit = self.trail.pop()
            variable = abs(lit)
            self.assignment[variable] = None
            self.reason[variable] = None
        self._prop_head = len(self.trail)

    def _pick_branch(self) -> int:
        if self._rng is not None and self._rng.random() < self.config.random_branch_freq:
            unassigned = [
                v for v in range(1, self.num_vars + 1)
                if self.assignment[v] is None
            ]
            if unassigned:
                return self._rng.choice(unassigned)
        best_var = 0
        best_activity = -1.0
        for variable in range(1, self.num_vars + 1):
            if self.assignment[variable] is None and self.activity[variable] > best_activity:
                best_activity = self.activity[variable]
                best_var = variable
        return best_var

    # ------------------------------------------------------------------
    # Learned-clause database reduction
    # ------------------------------------------------------------------

    def _maybe_reduce_db(self) -> None:
        """Reduce when the live learned set outgrows its (growing) cap.

        Only ever called with the solver at decision level 0, so the
        locked set is exactly the reasons of retained level-0
        implications.
        """
        if not self.config.reduce_db:
            return
        if len(self.learned) < self._reduce_limit:
            return
        self._reduce_db()
        self._reduce_limit += self.config.reduce_interval

    def _reduce_db(self) -> None:
        keep_lbd = self.config.reduce_keep_lbd
        locked = {id(r) for r in self.reason if r is not None}
        deletable = [
            clause
            for clause in self.learned
            if id(clause) not in locked
            and self._lbd.get(id(clause), len(clause)) > keep_lbd
        ]
        # Best first: low LBD, then recent.  The tail is dropped.
        deletable.sort(
            key=lambda c: (
                self._lbd.get(id(c), len(c)),
                -self._birth.get(id(c), 0),
            )
        )
        drop_count = int(len(deletable) * self.config.reduce_fraction)
        if drop_count == 0:
            self.db_reductions += 1
            return
        dropped = {id(c) for c in deletable[len(deletable) - drop_count:]}
        self.learned = [c for c in self.learned if id(c) not in dropped]
        for lit in list(self.watches):
            watch_list = self.watches[lit]
            if any(id(c) in dropped for c in watch_list):
                self.watches[lit] = [
                    c for c in watch_list if id(c) not in dropped
                ]
        for cid in dropped:
            self._lbd.pop(cid, None)
            self._birth.pop(cid, None)
        self.clauses_deleted += drop_count
        self.db_reductions += 1

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def solve(
        self,
        max_conflicts: int | None = None,
        assumptions: Sequence[int] = (),
    ) -> SatResult:
        """Decide the database, optionally under assumption literals.

        Without assumptions the answer is permanent; with assumptions an
        UNSAT answer only refutes the database *plus the assumptions*, and
        the solver stays usable (all learned clauses are assumption-free
        consequences of the database).
        """
        if self._empty_clause or self._unsat:
            return SatResult(False)
        if assumptions:
            self.ensure_vars(max(abs(lit) for lit in assumptions))
        # Retract everything above level 0; level-0 implications persist.
        self._backtrack(0)
        self._maybe_reduce_db()
        # Re-run propagation over the whole level-0 trail so that clauses
        # added since the last call see the retained assignments.
        self._prop_head = 0
        for lit in self._units:
            current = self._lit_value(lit)
            if current is False:
                self._unsat = True
                return SatResult(False)
            if current is None:
                self._enqueue(lit, None, 0)
        if self._propagate(0) is not None:
            self._unsat = True
            return SatResult(False)

        config = self.config
        level = 0
        conflicts = 0
        since_restart = 0
        restart_count = 0
        if config.restart == "geometric":
            restart_limit: int | None = config.restart_base
        elif config.restart == "luby":
            restart_limit = luby(restart_count + 1) * config.luby_unit
        else:
            restart_limit = None
        while True:
            # Decide the next assumption first; branch freely only once
            # every assumption is satisfied by the current assignment.
            branch_lit = 0
            failed_assumption = False
            for lit in assumptions:
                value = self._lit_value(lit)
                if value is False:
                    failed_assumption = True
                    break
                if value is None:
                    branch_lit = lit
                    break
            if failed_assumption:
                self.total_conflicts += conflicts
                return SatResult(False, conflicts=conflicts)
            if branch_lit == 0:
                branch_var = self._pick_branch()
                if branch_var == 0:
                    model = {
                        v: bool(self.assignment[v])
                        for v in range(1, self.num_vars + 1)
                    }
                    self.total_conflicts += conflicts
                    return SatResult(True, model, conflicts=conflicts)
                branch_lit = branch_var
            level += 1
            self._enqueue(branch_lit, None, level)
            while True:
                conflict = self._propagate(level)
                if conflict is None:
                    break
                conflicts += 1
                since_restart += 1
                if max_conflicts is not None and conflicts > max_conflicts:
                    self.total_conflicts += conflicts
                    # Leave the solver reusable after a budget blowout.
                    self._backtrack(0)
                    raise SolverBudgetExceeded(conflicts)
                if level == 0:
                    self._unsat = True
                    self.total_conflicts += conflicts
                    return SatResult(False, conflicts=conflicts)
                learned, backjump = self._analyze(conflict, level)
                self._backtrack(backjump)
                level = backjump
                self._decay_activity()
                self.learned_count += 1
                if len(learned) == 1:
                    self._units.append(learned[0])
                    self._learned_units.append(learned[0])
                    if self._lit_value(learned[0]) is False:
                        # Contradicts a retained level-0 implication only
                        # when the database itself is unsatisfiable.
                        if self.level[abs(learned[0])] == 0:
                            self._unsat = True
                            self.total_conflicts += conflicts
                            return SatResult(False, conflicts=conflicts)
                        self._backtrack(0)
                        level = 0
                    if self._lit_value(learned[0]) is None:
                        self._enqueue(learned[0], None, 0)
                else:
                    self.learned.append(learned)
                    self._lbd[id(learned)] = self._clause_lbd(learned)
                    self._birth[id(learned)] = self.learned_count
                    self._watch(learned[0], learned)
                    self._watch(learned[1], learned)
                    self._enqueue(learned[0], learned, level)
                restart_now = False
                if restart_limit is not None and level > 0:
                    if config.restart == "geometric":
                        # Legacy semantics: thresholds on the query's total
                        # conflict count, growing geometrically.
                        if conflicts >= restart_limit:
                            restart_limit = int(
                                restart_limit * config.restart_growth
                            )
                            restart_now = True
                    elif since_restart >= restart_limit:
                        restart_count += 1
                        restart_limit = (
                            luby(restart_count + 1) * config.luby_unit
                        )
                        restart_now = True
                if restart_now:
                    self.restarts += 1
                    since_restart = 0
                    self._backtrack(0)
                    level = 0
                    self._maybe_reduce_db()
                    break


class SolverBudgetExceeded(Exception):
    """Raised when a query exceeds its conflict budget (treated as timeout)."""

    def __init__(self, conflicts: int) -> None:
        super().__init__(f"SAT query exceeded {conflicts} conflicts")
        self.conflicts = conflicts


def solve_cnf(
    num_vars: int,
    clauses: list[tuple[int, ...]],
    max_conflicts: int | None = None,
    config: SolverConfig | None = None,
) -> SatResult:
    """Convenience one-shot entry point."""
    return CdclSolver(num_vars, clauses, config=config).solve(max_conflicts)
