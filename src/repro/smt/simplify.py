"""Term simplification: constant folding, identities, canonical ordering.

The simplifier serves two masters.  For the SAT pipeline it shrinks terms
before bit-blasting.  For the similarity engine it acts as the *structural
fast path*: two instruction semantics that normalise to the identical term
are equivalent without any solver query, which is how the bulk of the
pairwise checks in Algorithm 1 are discharged cheaply.
"""

from __future__ import annotations

from repro.smt.eval import evaluate
from repro.smt.terms import App, Const, Term, Var, apply_op

# Commutative operators get their arguments sorted into a canonical order so
# that e.g. ``bvadd(x, y)`` and ``bvadd(y, x)`` normalise identically.
_COMMUTATIVE = frozenset(
    {
        "bvadd",
        "bvmul",
        "bvand",
        "bvor",
        "bvxor",
        "bveq",
        "bvne",
        "bvsmin",
        "bvsmax",
        "bvumin",
        "bvumax",
        "bvsaddsat",
        "bvuaddsat",
        "bvuavg",
        "bvsavg",
        "bvuavg_round",
        "bvsavg_round",
    }
)


def _term_key(term: Term) -> tuple:
    """A deterministic sort key for canonical argument ordering."""
    if isinstance(term, Const):
        return (0, term.width, term.value)
    if isinstance(term, Var):
        return (1, term.width, term.name)
    assert isinstance(term, App)
    return (2, term.width, term.op, term.params, tuple(_term_key(a) for a in term.args))


def simplify(term: Term) -> Term:
    """Return an equivalent, normalised term."""
    cache: dict[int, Term] = {}

    def run(node: Term) -> Term:
        cached = cache.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, (Const, Var)):
            result: Term = node
        else:
            assert isinstance(node, App)
            args = [run(a) for a in node.args]
            result = _simplify_app(node.op, args, node.params, node.width)
        cache[id(node)] = result
        return result

    return run(term)


def _all_const(args: list[Term]) -> bool:
    return all(isinstance(a, Const) for a in args)


def _fold(op: str, args: list[Term], params: tuple[int, ...]) -> Const:
    """Evaluate an all-constant application down to a literal."""
    app = apply_op(op, args, params)
    value = evaluate(app, {})
    return Const(value.width, value.value)


def _is_zero(term: Term) -> bool:
    return isinstance(term, Const) and term.value == 0


def _is_all_ones(term: Term) -> bool:
    return isinstance(term, Const) and term.value == (1 << term.width) - 1


def _simplify_app(
    op: str, args: list[Term], params: tuple[int, ...], width: int
) -> Term:
    if _all_const(args):
        return _fold(op, args, params)

    if op in _COMMUTATIVE:
        args = sorted(args, key=_term_key)

    first = args[0]
    second = args[1] if len(args) > 1 else None

    if op == "bvadd":
        if _is_zero(first):
            return second
        if _is_zero(second):
            return first
    elif op == "bvsub":
        if _is_zero(second):
            return first
        if first == second:
            return Const(width, 0)
    elif op == "bvmul":
        if _is_zero(first) or _is_zero(second):
            return Const(width, 0)
        if isinstance(first, Const) and first.value == 1:
            return second
        if isinstance(second, Const) and second.value == 1:
            return first
    elif op == "bvand":
        if _is_zero(first) or _is_zero(second):
            return Const(width, 0)
        if _is_all_ones(first):
            return second
        if _is_all_ones(second):
            return first
        if first == second:
            return first
    elif op == "bvor":
        if _is_zero(first):
            return second
        if _is_zero(second):
            return first
        if _is_all_ones(first) or _is_all_ones(second):
            return Const(width, (1 << width) - 1)
        if first == second:
            return first
    elif op == "bvxor":
        if _is_zero(first):
            return second
        if _is_zero(second):
            return first
        if first == second:
            return Const(width, 0)
    elif op in ("bvshl", "bvlshr", "bvashr"):
        if _is_zero(second):
            return first
        if _is_zero(first):
            return Const(width, 0)
    elif op == "ite":
        cond, then_term, else_term = args
        if isinstance(cond, Const):
            return then_term if cond.value else else_term
        if then_term == else_term:
            return then_term
    elif op == "extract":
        high, low = params
        if low == 0 and high == first.width - 1:
            return first
        # extract of extract composes into a single extract.
        if isinstance(first, App) and first.op == "extract":
            inner_high, inner_low = first.params
            del inner_high
            return _simplify_app(
                "extract",
                [first.args[0]],
                (inner_low + high, inner_low + low),
                width,
            )
        # extract of concat resolves into whichever side it lands in.
        if isinstance(first, App) and first.op == "concat":
            high_part, low_part = first.args
            if high < low_part.width:
                return _simplify_app("extract", [low_part], (high, low), width)
            if low >= low_part.width:
                return _simplify_app(
                    "extract",
                    [high_part],
                    (high - low_part.width, low - low_part.width),
                    width,
                )
        # extract of zext/sext that stays within the original operand.
        if isinstance(first, App) and first.op in ("zext", "sext"):
            operand = first.args[0]
            if high < operand.width:
                return _simplify_app("extract", [operand], (high, low), width)
    elif op in ("zext", "sext", "trunc"):
        if params[0] == first.width:
            return first
        if op == "trunc":
            return _simplify_app("extract", [first], (params[0] - 1, 0), params[0])
        # zext/sext of zext/sext collapse when compatible.
        if isinstance(first, App) and first.op == "zext" and op == "zext":
            return _simplify_app("zext", [first.args[0]], params, width)
        if isinstance(first, App) and first.op == "sext" and op == "sext":
            return _simplify_app("sext", [first.args[0]], params, width)
        if isinstance(first, App) and first.op == "zext" and op == "sext":
            # The zero-extended value is non-negative, so sext == zext.
            return _simplify_app("zext", [first.args[0]], params, width)
    elif op == "bveq":
        if first == second:
            return Const(1, 1)
    elif op in ("bvsmin", "bvsmax", "bvumin", "bvumax"):
        if first == second:
            return first

    return apply_op(op, args, params)


def structurally_equal(a: Term, b: Term) -> bool:
    """True when the two terms normalise to the identical tree."""
    return simplify(a) == simplify(b)


def substitute(term: Term, bindings: dict[str, Term]) -> Term:
    """Replace variables by terms (used for symbolic-parameter instantiation)."""
    cache: dict[int, Term] = {}

    def run(node: Term) -> Term:
        cached = cache.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, Var):
            result = bindings.get(node.name, node)
            if result is not node and result.width != node.width:
                raise ValueError(
                    f"substitution for {node.name!r} changes width "
                    f"{node.width} -> {result.width}"
                )
        elif isinstance(node, Const):
            result = node
        else:
            assert isinstance(node, App)
            result = apply_op(node.op, [run(a) for a in node.args], node.params)
        cache[id(node)] = result
        return result

    return run(term)
