"""Concrete evaluation of symbolic terms over :class:`BitVector` values."""

from __future__ import annotations

from collections.abc import Mapping

from repro.bitvector.bv import BitVector
from repro.smt.terms import App, Const, Term, Var

# Ops whose App name maps directly to a same-named BitVector method taking
# the remaining args.
_DIRECT_BINARY = {
    "bvadd",
    "bvsub",
    "bvmul",
    "bvudiv",
    "bvurem",
    "bvsdiv",
    "bvsrem",
    "bvand",
    "bvor",
    "bvxor",
    "bvshl",
    "bvlshr",
    "bvashr",
    "bvrotl",
    "bvrotr",
    "bveq",
    "bvne",
    "bvult",
    "bvule",
    "bvugt",
    "bvuge",
    "bvslt",
    "bvsle",
    "bvsgt",
    "bvsge",
    "bvsmin",
    "bvsmax",
    "bvumin",
    "bvumax",
    "bvsaddsat",
    "bvuaddsat",
    "bvssubsat",
    "bvusubsat",
    "bvsshlsat",
    "bvuavg",
    "bvsavg",
}

_DIRECT_UNARY = {"bvneg", "bvnot", "bvabs", "popcount"}


def evaluate(term: Term, env: Mapping[str, BitVector]) -> BitVector:
    """Evaluate ``term`` with variables bound by ``env``.

    Shared subterms are evaluated once (memoised by node identity), so DAGs
    with heavy sharing — typical after lane expansion — stay linear.
    """
    cache: dict[int, BitVector] = {}

    def run(node: Term) -> BitVector:
        cached = cache.get(id(node))
        if cached is not None:
            return cached
        result = _eval_node(node, env, run)
        cache[id(node)] = result
        return result

    return run(term)


def _eval_node(node: Term, env: Mapping[str, BitVector], run) -> BitVector:
    if isinstance(node, Const):
        return BitVector(node.value, node.width)
    if isinstance(node, Var):
        try:
            value = env[node.name]
        except KeyError:
            raise KeyError(f"unbound variable {node.name!r}") from None
        if value.width != node.width:
            raise ValueError(
                f"variable {node.name!r} bound at width {value.width}, "
                f"expected {node.width}"
            )
        return value
    assert isinstance(node, App)
    op = node.op
    if op in _DIRECT_BINARY:
        return getattr(run(node.args[0]), op)(run(node.args[1]))
    if op in _DIRECT_UNARY:
        return getattr(run(node.args[0]), op)()
    if op == "bvuavg_round":
        return run(node.args[0]).bvuavg(run(node.args[1]), round_up=True)
    if op == "bvsavg_round":
        return run(node.args[0]).bvsavg(run(node.args[1]), round_up=True)
    if op == "extract":
        high, low = node.params
        return run(node.args[0]).extract(high, low)
    if op == "concat":
        return run(node.args[0]).concat(run(node.args[1]))
    if op in ("zext", "sext", "trunc", "saturate_to_signed", "saturate_to_unsigned"):
        return getattr(run(node.args[0]), op)(node.params[0])
    if op == "ite":
        cond = run(node.args[0])
        return run(node.args[1]) if cond.value else run(node.args[2])
    raise ValueError(f"unknown operator {op!r}")
