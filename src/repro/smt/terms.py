"""Symbolic bitvector terms.

Terms form an immutable DAG.  There are three node kinds:

* :class:`Const` — a concrete bitvector literal,
* :class:`Var` — a named symbolic input of known width,
* :class:`App` — an operator applied to argument terms, optionally with
  integer attributes (``params``) for things like extract bounds.

Operator names match the methods of :class:`repro.bitvector.BitVector`
one-for-one, so evaluation is a direct dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# Operators producing a result of the same width as their (equal-width) args.
BINARY_SAME_WIDTH = frozenset(
    {
        "bvadd",
        "bvsub",
        "bvmul",
        "bvudiv",
        "bvurem",
        "bvsdiv",
        "bvsrem",
        "bvand",
        "bvor",
        "bvxor",
        "bvshl",
        "bvlshr",
        "bvashr",
        "bvrotl",
        "bvrotr",
        "bvsmin",
        "bvsmax",
        "bvumin",
        "bvumax",
        "bvsaddsat",
        "bvuaddsat",
        "bvssubsat",
        "bvusubsat",
        "bvsshlsat",
        "bvuavg",
        "bvsavg",
        "bvuavg_round",
        "bvsavg_round",
    }
)

UNARY_SAME_WIDTH = frozenset({"bvneg", "bvnot", "bvabs", "popcount"})

# Predicates producing a 1-bit result from equal-width args.
COMPARISONS = frozenset(
    {"bveq", "bvne", "bvult", "bvule", "bvugt", "bvuge", "bvslt", "bvsle", "bvsgt", "bvsge"}
)

# Width-changing operators; the new width travels in ``params[0]`` except
# for extract, whose params are ``(high, low)``.
WIDTH_CHANGING = frozenset(
    {"zext", "sext", "trunc", "saturate_to_signed", "saturate_to_unsigned"}
)

ALL_OPS = (
    BINARY_SAME_WIDTH
    | UNARY_SAME_WIDTH
    | COMPARISONS
    | WIDTH_CHANGING
    | {"extract", "concat", "ite"}
)

# Operators the bit-blaster does not support; equivalence queries containing
# them fall back to exhaustive or randomized checking.
NOT_BITBLASTABLE = frozenset({"bvudiv", "bvurem", "bvsdiv", "bvsrem", "popcount"})


@dataclass(frozen=True)
class Term:
    """Base class for symbolic bitvector terms."""

    width: int

    def walk(self):
        """Yield every node in this term DAG exactly once (post-order)."""
        seen: set[int] = set()
        stack: list[tuple[Term, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if id(node) in seen:
                continue
            if expanded:
                seen.add(id(node))
                yield node
                continue
            stack.append((node, True))
            if isinstance(node, App):
                for arg in node.args:
                    if id(arg) not in seen:
                        stack.append((arg, False))

    def variables(self) -> dict[str, int]:
        """Map of variable name to width for every Var in this term."""
        return {n.name: n.width for n in self.walk() if isinstance(n, Var)}

    def ops_used(self) -> set[str]:
        return {n.op for n in self.walk() if isinstance(n, App)}

    def size(self) -> int:
        """Number of nodes in the DAG."""
        return sum(1 for _ in self.walk())


@dataclass(frozen=True)
class Const(Term):
    value: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & ((1 << self.width) - 1))

    def __repr__(self) -> str:
        return f"c{self.width}({self.value:#x})"


@dataclass(frozen=True)
class Var(Term):
    name: str = ""

    def __repr__(self) -> str:
        return f"{self.name}:bv{self.width}"


@dataclass(frozen=True)
class App(Term):
    op: str = ""
    args: tuple[Term, ...] = ()
    params: tuple[int, ...] = field(default=())

    def __repr__(self) -> str:
        parts = [repr(a) for a in self.args] + [str(p) for p in self.params]
        return f"({self.op} {' '.join(parts)}):bv{self.width}"


def const(value: int, width: int) -> Const:
    return Const(width, value)


def var(name: str, width: int) -> Var:
    return Var(width, name)


def _require_same_width(op: str, a: Term, b: Term) -> None:
    if a.width != b.width:
        raise ValueError(f"{op}: width mismatch {a.width} vs {b.width}")


def apply_op(op: str, args: list[Term], params: tuple[int, ...] = ()) -> App:
    """Construct an :class:`App` with width inference and legality checks."""
    if op in BINARY_SAME_WIDTH:
        first, second = args
        _require_same_width(op, first, second)
        return App(first.width, op, (first, second))
    if op in UNARY_SAME_WIDTH:
        (operand,) = args
        return App(operand.width, op, (operand,))
    if op in COMPARISONS:
        first, second = args
        _require_same_width(op, first, second)
        return App(1, op, (first, second))
    if op in WIDTH_CHANGING:
        (operand,) = args
        (new_width,) = params
        return App(new_width, op, (operand,), params)
    if op == "extract":
        (operand,) = args
        high, low = params
        if not 0 <= low <= high < operand.width:
            raise ValueError(
                f"extract [{high}:{low}] out of range for width {operand.width}"
            )
        return App(high - low + 1, op, (operand,), params)
    if op == "concat":
        high_part, low_part = args
        return App(high_part.width + low_part.width, op, (high_part, low_part))
    if op == "ite":
        cond, then_term, else_term = args
        if cond.width != 1:
            raise ValueError("ite condition must be 1 bit wide")
        _require_same_width(op, then_term, else_term)
        return App(then_term.width, op, (cond, then_term, else_term))
    raise ValueError(f"unknown operator {op!r}")


# ----------------------------------------------------------------------
# Convenience builders (make test and semantics code readable)
# ----------------------------------------------------------------------


def bvadd(a: Term, b: Term) -> App:
    return apply_op("bvadd", [a, b])


def bvsub(a: Term, b: Term) -> App:
    return apply_op("bvsub", [a, b])


def bvmul(a: Term, b: Term) -> App:
    return apply_op("bvmul", [a, b])


def bvand(a: Term, b: Term) -> App:
    return apply_op("bvand", [a, b])


def bvor(a: Term, b: Term) -> App:
    return apply_op("bvor", [a, b])


def bvxor(a: Term, b: Term) -> App:
    return apply_op("bvxor", [a, b])


def bvnot(a: Term) -> App:
    return apply_op("bvnot", [a])


def bvneg(a: Term) -> App:
    return apply_op("bvneg", [a])


def extract(a: Term, high: int, low: int) -> App:
    return apply_op("extract", [a], (high, low))


def concat(high_part: Term, low_part: Term) -> App:
    return apply_op("concat", [high_part, low_part])


def zext(a: Term, width: int) -> App:
    return apply_op("zext", [a], (width,))


def sext(a: Term, width: int) -> App:
    return apply_op("sext", [a], (width,))


def trunc(a: Term, width: int) -> App:
    return apply_op("trunc", [a], (width,))


def ite(cond: Term, then_term: Term, else_term: Term) -> App:
    return apply_op("ite", [cond, then_term, else_term])


def bveq(a: Term, b: Term) -> App:
    return apply_op("bveq", [a, b])
