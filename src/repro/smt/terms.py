"""Symbolic bitvector terms.

Terms form an immutable DAG.  There are three node kinds:

* :class:`Const` — a concrete bitvector literal,
* :class:`Var` — a named symbolic input of known width,
* :class:`App` — an operator applied to argument terms, optionally with
  integer attributes (``params``) for things like extract bounds.

Operator names match the methods of :class:`repro.bitvector.BitVector`
one-for-one, so evaluation is a direct dispatch.

Terms are *hash-consed*: every distinct structure is assigned a stable
integer uid from a process-wide intern table, and the public constructors
(:func:`const`, :func:`var`, :func:`apply_op`) return the canonical
instance for their structure.  Equality and hashing are O(1) through the
uid, and downstream caches (the bit-blaster, evaluators) key on
:func:`term_uid` instead of ``id(term)`` — uids are never reused, so a
cache can never alias two different terms the way recycled ``id`` values
can.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.perf import global_counters as _global_counters


# Operators producing a result of the same width as their (equal-width) args.
BINARY_SAME_WIDTH = frozenset(
    {
        "bvadd",
        "bvsub",
        "bvmul",
        "bvudiv",
        "bvurem",
        "bvsdiv",
        "bvsrem",
        "bvand",
        "bvor",
        "bvxor",
        "bvshl",
        "bvlshr",
        "bvashr",
        "bvrotl",
        "bvrotr",
        "bvsmin",
        "bvsmax",
        "bvumin",
        "bvumax",
        "bvsaddsat",
        "bvuaddsat",
        "bvssubsat",
        "bvusubsat",
        "bvsshlsat",
        "bvuavg",
        "bvsavg",
        "bvuavg_round",
        "bvsavg_round",
    }
)

UNARY_SAME_WIDTH = frozenset({"bvneg", "bvnot", "bvabs", "popcount"})

# Predicates producing a 1-bit result from equal-width args.
COMPARISONS = frozenset(
    {"bveq", "bvne", "bvult", "bvule", "bvugt", "bvuge", "bvslt", "bvsle", "bvsgt", "bvsge"}
)

# Width-changing operators; the new width travels in ``params[0]`` except
# for extract, whose params are ``(high, low)``.
WIDTH_CHANGING = frozenset(
    {"zext", "sext", "trunc", "saturate_to_signed", "saturate_to_unsigned"}
)

ALL_OPS = (
    BINARY_SAME_WIDTH
    | UNARY_SAME_WIDTH
    | COMPARISONS
    | WIDTH_CHANGING
    | {"extract", "concat", "ite"}
)

# Operators the bit-blaster does not support; equivalence queries containing
# them fall back to exhaustive or randomized checking.
NOT_BITBLASTABLE = frozenset({"bvudiv", "bvurem", "bvsdiv", "bvsrem", "popcount"})


@dataclass(frozen=True)
class Term:
    """Base class for symbolic bitvector terms."""

    width: int

    def walk(self):
        """Yield every node in this term DAG exactly once (post-order)."""
        seen: set[int] = set()
        stack: list[tuple[Term, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if id(node) in seen:
                continue
            if expanded:
                seen.add(id(node))
                yield node
                continue
            stack.append((node, True))
            if isinstance(node, App):
                for arg in node.args:
                    if id(arg) not in seen:
                        stack.append((arg, False))

    def variables(self) -> dict[str, int]:
        """Map of variable name to width for every Var in this term."""
        return {n.name: n.width for n in self.walk() if isinstance(n, Var)}

    def ops_used(self) -> set[str]:
        return {n.op for n in self.walk() if isinstance(n, App)}

    def size(self) -> int:
        """Number of nodes in the DAG."""
        return sum(1 for _ in self.walk())


@dataclass(frozen=True)
class Const(Term):
    value: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value & ((1 << self.width) - 1))

    def __repr__(self) -> str:
        return f"c{self.width}({self.value:#x})"


@dataclass(frozen=True)
class Var(Term):
    name: str = ""

    def __repr__(self) -> str:
        return f"{self.name}:bv{self.width}"


@dataclass(frozen=True)
class App(Term):
    op: str = ""
    args: tuple[Term, ...] = ()
    params: tuple[int, ...] = field(default=())

    def __repr__(self) -> str:
        parts = [repr(a) for a in self.args] + [str(p) for p in self.params]
        return f"({self.op} {' '.join(parts)}):bv{self.width}"


# ----------------------------------------------------------------------
# Hash-consing
# ----------------------------------------------------------------------

# Structural key -> canonical instance.  The table is never cleared: uids
# are handed out monotonically, so a uid uniquely names one structure for
# the lifetime of the process (the property downstream caches rely on).
_INTERN: dict[tuple, Term] = {}
_UIDS = itertools.count(1)


def _local_key(term: Term) -> tuple:
    """Structural identity of one node in terms of its children's uids."""
    if isinstance(term, Const):
        return (0, term.width, term.value)
    if isinstance(term, Var):
        return (1, term.width, term.name)
    assert isinstance(term, App)
    return (
        2,
        term.width,
        term.op,
        term.params,
        tuple(a.__dict__["_uid"] for a in term.args),
    )


def term_uid(term: Term) -> int:
    """The stable structural uid of ``term`` (computing and caching it,
    bottom-up and iteratively, for any nodes that don't have one yet)."""
    cached = term.__dict__.get("_uid")
    if cached is not None:
        return cached
    perf = _global_counters()
    stack = [term]
    while stack:
        node = stack[-1]
        if "_uid" in node.__dict__:
            stack.pop()
            continue
        if isinstance(node, App):
            pending = [a for a in node.args if "_uid" not in a.__dict__]
            if pending:
                stack.extend(pending)
                continue
        key = _local_key(node)
        canonical = _INTERN.get(key)
        if canonical is None:
            object.__setattr__(node, "_uid", next(_UIDS))
            _INTERN[key] = node
            perf.term_intern_misses += 1
        else:
            object.__setattr__(node, "_uid", canonical.__dict__["_uid"])
            perf.term_intern_hits += 1
        stack.pop()
    return term.__dict__["_uid"]


def intern_term(term: Term) -> Term:
    """The canonical instance for ``term``'s structure."""
    uid = term_uid(term)
    del uid
    return _INTERN[_local_key(term)]


def intern_table_size() -> int:
    return len(_INTERN)


def _term_hash(self: Term) -> int:
    return term_uid(self)


def _term_eq(self: Term, other: object):
    if self is other:
        return True
    if not isinstance(other, Term):
        return NotImplemented
    return term_uid(self) == term_uid(other)


def _term_ne(self: Term, other: object):
    result = _term_eq(self, other)
    if result is NotImplemented:
        return result
    return not result


# Replace the dataclass-generated structural (recursive) equality and hash
# with O(1) uid comparisons — consistent because one uid names exactly one
# structure for the process lifetime.
for _cls in (Const, Var, App):
    _cls.__hash__ = _term_hash  # type: ignore[assignment]
    _cls.__eq__ = _term_eq  # type: ignore[assignment]
    _cls.__ne__ = _term_ne  # type: ignore[assignment]


def const(value: int, width: int) -> Const:
    return intern_term(Const(width, value))


def var(name: str, width: int) -> Var:
    return intern_term(Var(width, name))


def _require_same_width(op: str, a: Term, b: Term) -> None:
    if a.width != b.width:
        raise ValueError(f"{op}: width mismatch {a.width} vs {b.width}")


def apply_op(op: str, args: list[Term], params: tuple[int, ...] = ()) -> App:
    """Construct an :class:`App` with width inference and legality checks.

    The returned node is interned: structurally identical applications are
    the same object, so downstream uid-keyed caches share their work."""
    if op in BINARY_SAME_WIDTH:
        first, second = args
        _require_same_width(op, first, second)
        app = App(first.width, op, (first, second))
    elif op in UNARY_SAME_WIDTH:
        (operand,) = args
        app = App(operand.width, op, (operand,))
    elif op in COMPARISONS:
        first, second = args
        _require_same_width(op, first, second)
        app = App(1, op, (first, second))
    elif op in WIDTH_CHANGING:
        (operand,) = args
        (new_width,) = params
        app = App(new_width, op, (operand,), params)
    elif op == "extract":
        (operand,) = args
        high, low = params
        if not 0 <= low <= high < operand.width:
            raise ValueError(
                f"extract [{high}:{low}] out of range for width {operand.width}"
            )
        app = App(high - low + 1, op, (operand,), params)
    elif op == "concat":
        high_part, low_part = args
        app = App(high_part.width + low_part.width, op, (high_part, low_part))
    elif op == "ite":
        cond, then_term, else_term = args
        if cond.width != 1:
            raise ValueError("ite condition must be 1 bit wide")
        _require_same_width(op, then_term, else_term)
        app = App(then_term.width, op, (cond, then_term, else_term))
    else:
        raise ValueError(f"unknown operator {op!r}")
    return intern_term(app)


# ----------------------------------------------------------------------
# Convenience builders (make test and semantics code readable)
# ----------------------------------------------------------------------


def bvadd(a: Term, b: Term) -> App:
    return apply_op("bvadd", [a, b])


def bvsub(a: Term, b: Term) -> App:
    return apply_op("bvsub", [a, b])


def bvmul(a: Term, b: Term) -> App:
    return apply_op("bvmul", [a, b])


def bvand(a: Term, b: Term) -> App:
    return apply_op("bvand", [a, b])


def bvor(a: Term, b: Term) -> App:
    return apply_op("bvor", [a, b])


def bvxor(a: Term, b: Term) -> App:
    return apply_op("bvxor", [a, b])


def bvnot(a: Term) -> App:
    return apply_op("bvnot", [a])


def bvneg(a: Term) -> App:
    return apply_op("bvneg", [a])


def extract(a: Term, high: int, low: int) -> App:
    return apply_op("extract", [a], (high, low))


def concat(high_part: Term, low_part: Term) -> App:
    return apply_op("concat", [high_part, low_part])


def zext(a: Term, width: int) -> App:
    return apply_op("zext", [a], (width,))


def sext(a: Term, width: int) -> App:
    return apply_op("sext", [a], (width,))


def trunc(a: Term, width: int) -> App:
    return apply_op("trunc", [a], (width,))


def ite(cond: Term, then_term: Term, else_term: Term) -> App:
    return apply_op("ite", [cond, then_term, else_term])


def bveq(a: Term, b: Term) -> App:
    return apply_op("bveq", [a, b])
